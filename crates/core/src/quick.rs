//! High-level one-call helpers.

use ckpt_exp::{run_scenario, PolicyKind, RunnerOptions, Scenario, ScenarioResult};
use ckpt_policies::OptExp;
use ckpt_workload::JobSpec;

pub use ckpt_exp::Study;

/// The Theorem-1 optimal checkpoint period (seconds of work between
/// checkpoints) for Exponential failures with the given per-processor
/// MTBF.
pub fn optimal_period(spec: &JobSpec, proc_mtbf: f64) -> f64 {
    OptExp::from_mtbf(spec, proc_mtbf).period()
}

/// The Theorem-1 optimal expected makespan for a sequential job, seconds.
///
/// # Panics
/// Panics when `spec.procs != 1` (the closed form is sequential; parallel
/// expectations need simulation, §3.2).
pub fn expected_makespan(spec: &JobSpec, mtbf: f64) -> f64 {
    ckpt_policies::optexp::optimal_expected_makespan_sequential(spec, 1.0 / mtbf)
}

/// Run a full degradation-from-best comparison (the paper's table format)
/// on one scenario with the standard §4.1 roster.
///
/// For batches of cells — or to handle malformed scenarios as values
/// instead of panics — use [`Study`] and its `run_all`.
pub fn degradation_table(scenario: &Scenario) -> ScenarioResult {
    let include_dp_makespan = scenario.procs == 1
        || matches!(scenario.dist, ckpt_exp::DistSpec::Exponential { .. });
    let kinds = PolicyKind::paper_roster(include_dp_makespan);
    run_scenario(scenario, &kinds, &RunnerOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_period_positive_and_bounded() {
        let spec = JobSpec::table1_single_processor();
        let p = optimal_period(&spec, 86_400.0);
        assert!(p > 0.0 && p <= spec.work);
    }

    #[test]
    fn expected_makespan_exceeds_work() {
        let spec = JobSpec::table1_single_processor();
        let m = expected_makespan(&spec, 7.0 * 86_400.0);
        assert!(m > spec.work);
    }

    #[test]
    #[should_panic]
    fn expected_makespan_rejects_parallel() {
        let spec = JobSpec::table1_petascale(1024);
        expected_makespan(&spec, 1e9);
    }

    #[test]
    fn study_run_all_matches_degradation_table() {
        let mut sc = Scenario::single_processor(
            ckpt_exp::DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            3,
        );
        sc.total_work = 12.0 * 3_600.0;
        let table = degradation_table(&sc);
        let batch = Study::new().run_all(std::slice::from_ref(&sc));
        let r = batch[0].as_ref().expect("well-formed cell");
        // Same default roster, same options → bit-identical rows.
        assert_eq!(r.outcomes.len(), table.outcomes.len());
        for (a, b) in r.outcomes.iter().zip(&table.outcomes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.mean_makespan, b.mean_makespan, "{}", a.name);
        }
    }
}
