//! Facade crate for the checkpointing-strategies workspace.
//!
//! Re-exports every sub-crate under a stable module layout plus a small
//! high-level API ([`quick`]) for the common "which policy, what period,
//! what makespan" questions, so downstream users depend on one crate:
//!
//! ```
//! use ckpt_core::prelude::*;
//!
//! // The paper's headline sequential result (Theorem 1): the optimal
//! // period for a 20-day job, 600 s checkpoints, 1-day MTBF.
//! let spec = JobSpec::table1_single_processor();
//! let opt = OptExp::from_mtbf(&spec, 86_400.0);
//! assert!(opt.chunk_count() > 1);
//! ```

pub use ckpt_dist as dist;
pub use ckpt_exp as exp;
pub use ckpt_math as math;
pub use ckpt_platform as platform;
pub use ckpt_policies as policies;
pub use ckpt_sim as sim;
pub use ckpt_traces as traces;
pub use ckpt_workload as workload;

pub mod quick;

/// One-import convenience module.
pub mod prelude {
    pub use crate::quick::{degradation_table, expected_makespan, optimal_period, Study};
    pub use ckpt_dist::{
        fit_exponential, fit_weibull_mle, Empirical, Exponential, FailureDistribution,
        GammaDist, KernelTable, LogNormal, MinOf, Mixture, Weibull,
    };
    pub use ckpt_exp::{run_scenario, DistSpec, PolicyKind, RunnerOptions, Scenario};
    pub use ckpt_math::{SeedSequence, Summary};
    pub use ckpt_platform::{AgeView, RejuvenationModel, Topology, TraceSet};
    pub use ckpt_policies::{
        daly_high, daly_low, young, Bouguerra, DpCaches, DpMakespan, DpMakespanConfig,
        DpNextFailure, DpNextFailureConfig, FixedPeriod, Liu, OptExp, Policy,
        PolicySession, StateCompression,
    };
    pub use ckpt_sim::{
        lower_bound_makespan, simulate, simulate_rejuvenate_all,
        simulate_replicated_independent, simulate_replicated_synchronized, PowerModel,
        ReplicationStats, RunStats, SimOptions,
    };
    pub use ckpt_traces::{
        parse_fta_events, synthetic_lanl_cluster, AvailabilityLog, LanlClusterModel,
    };
    pub use ckpt_workload::{
        JobSpec, OverheadModel, ParallelismModel, DAY, EXASCALE_PROCS, HOUR, JAGUAR_PROCS,
        WEEK, YEAR,
    };
}
