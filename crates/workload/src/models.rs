//! The `W(p)` parallelism laws and `C(p)` overhead laws of §3.1.

use serde::{Deserialize, Serialize};

/// How failure-free execution time scales with processor count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParallelismModel {
    /// `W(p) = W/p` — perfectly divisible work.
    EmbarrassinglyParallel,
    /// `W(p) = W/p + γW` — Amdahl's law with sequential fraction `γ < 1`.
    Amdahl {
        /// Inherently sequential fraction of the work.
        gamma: f64,
    },
    /// `W(p) = W/p + γ·W^{2/3}/√p` — 2-D grid numerical kernels
    /// (matrix product, LU/QR on a `q × q` grid, `W = O(N³)`); `γ` is the
    /// platform's communication-to-computation ratio.
    NumericalKernel {
        /// Communication-to-computation ratio.
        gamma: f64,
    },
}

impl ParallelismModel {
    /// Failure-free execution time `W(p)` for total sequential work `w`
    /// (seconds on a unit-speed processor) on `p` processors.
    pub fn parallel_work(&self, w: f64, p: u64) -> f64 {
        assert!(w >= 0.0, "work must be non-negative");
        assert!(p >= 1, "need at least one processor");
        let pf = p as f64;
        match *self {
            Self::EmbarrassinglyParallel => w / pf,
            Self::Amdahl { gamma } => w / pf + gamma * w,
            Self::NumericalKernel { gamma } => w / pf + gamma * w.powf(2.0 / 3.0) / pf.sqrt(),
        }
    }

    /// Short display label used by the experiment matrix.
    pub fn label(&self) -> String {
        match *self {
            Self::EmbarrassinglyParallel => "ep".to_string(),
            Self::Amdahl { gamma } => format!("amdahl-{gamma:e}"),
            Self::NumericalKernel { gamma } => format!("kernel-{gamma}"),
        }
    }

    /// The six instantiations evaluated in the paper's §5.2.
    pub fn paper_suite() -> Vec<Self> {
        vec![
            Self::EmbarrassinglyParallel,
            Self::Amdahl { gamma: 1e-4 },
            Self::Amdahl { gamma: 1e-6 },
            Self::NumericalKernel { gamma: 0.1 },
            Self::NumericalKernel { gamma: 1.0 },
            Self::NumericalKernel { gamma: 10.0 },
        ]
    }
}

/// How the synchronized checkpoint/recovery cost scales with `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OverheadModel {
    /// `C(p) = c` — the resilient storage system's incoming bandwidth is
    /// the bottleneck (the paper's "constant overhead": 600 s).
    Constant {
        /// Checkpoint/recovery time in seconds.
        seconds: f64,
    },
    /// `C(p) = c · ptotal / p` — each processor's outgoing link is the
    /// bottleneck, so cost shrinks as memory per processor shrinks
    /// (the paper's "proportional overhead": `600 · 45208/p`).
    Proportional {
        /// Cost in seconds when the full platform is used.
        seconds_at_full: f64,
        /// Total processors in the platform.
        ptotal: u64,
    },
}

/// Which side of the I/O path saturates during a checkpoint (§3.1's two
/// scenarios for an application of memory footprint `V`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoBottleneck {
    /// Each processor's outgoing link: `C(p) = αV/p` (proportional).
    ProcessorLinks,
    /// The resilient storage system's incoming bandwidth: `C(p) = αV`
    /// (constant).
    ResilientStorage,
}

impl OverheadModel {
    /// Build from the paper's first-principles parameters: memory
    /// footprint `V` (bytes), inverse bandwidth `α` (seconds per byte),
    /// and the saturating side of the I/O path. `ptotal` anchors the
    /// proportional variant.
    pub fn from_footprint(
        alpha: f64,
        footprint_bytes: f64,
        bottleneck: IoBottleneck,
        ptotal: u64,
    ) -> Self {
        assert!(alpha > 0.0 && footprint_bytes > 0.0 && ptotal >= 1);
        match bottleneck {
            IoBottleneck::ResilientStorage => {
                Self::Constant { seconds: alpha * footprint_bytes }
            }
            IoBottleneck::ProcessorLinks => Self::Proportional {
                seconds_at_full: alpha * footprint_bytes / ptotal as f64,
                ptotal,
            },
        }
    }

    /// Checkpoint (= recovery) duration `C(p)` in seconds.
    pub fn cost(&self, p: u64) -> f64 {
        assert!(p >= 1);
        match *self {
            Self::Constant { seconds } => seconds,
            Self::Proportional { seconds_at_full, ptotal } => {
                seconds_at_full * ptotal as f64 / p as f64
            }
        }
    }

    /// Short display label used by the experiment matrix.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Constant { .. } => "const",
            Self::Proportional { .. } => "prop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ep_scales_perfectly() {
        let m = ParallelismModel::EmbarrassinglyParallel;
        assert_eq!(m.parallel_work(1000.0, 1), 1000.0);
        assert_eq!(m.parallel_work(1000.0, 10), 100.0);
        assert_eq!(m.parallel_work(1000.0, 1000), 1.0);
    }

    #[test]
    fn amdahl_floors_at_sequential_fraction() {
        let m = ParallelismModel::Amdahl { gamma: 1e-4 };
        let w = 1e8;
        // As p → ∞ the time approaches γW.
        let huge = m.parallel_work(w, 1 << 30);
        assert!((huge - 1e-4 * w).abs() < 1.0);
        // Monotone decreasing in p.
        assert!(m.parallel_work(w, 100) > m.parallel_work(w, 200));
    }

    #[test]
    fn kernel_has_sqrt_p_communication_term() {
        let m = ParallelismModel::NumericalKernel { gamma: 1.0 };
        let w: f64 = 1e9;
        let p = 10_000u64;
        let expect = w / 1e4 + w.powf(2.0 / 3.0) / 100.0;
        assert!((m.parallel_work(w, p) - expect).abs() < 1e-6 * expect);
    }

    #[test]
    fn all_models_agree_at_one_processor_when_gamma_zero_equivalent() {
        // At p = 1 the EP model gives W; Amdahl gives W(1 + γ); kernel adds
        // the communication term — check exact formulas rather than
        // equality.
        let w = 500.0;
        assert_eq!(
            ParallelismModel::EmbarrassinglyParallel.parallel_work(w, 1),
            500.0
        );
        let am = ParallelismModel::Amdahl { gamma: 0.1 }.parallel_work(w, 1);
        assert!((am - 550.0).abs() < 1e-12);
    }

    #[test]
    fn paper_suite_has_six_models() {
        assert_eq!(ParallelismModel::paper_suite().len(), 6);
    }

    #[test]
    fn constant_overhead_ignores_p() {
        let c = OverheadModel::Constant { seconds: 600.0 };
        assert_eq!(c.cost(1), 600.0);
        assert_eq!(c.cost(45_208), 600.0);
    }

    #[test]
    fn proportional_overhead_table1() {
        // C(p) = 600 · 45208/p.
        let c = OverheadModel::Proportional { seconds_at_full: 600.0, ptotal: 45_208 };
        assert_eq!(c.cost(45_208), 600.0);
        assert!((c.cost(1_024) - 600.0 * 45_208.0 / 1_024.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ParallelismModel::EmbarrassinglyParallel.label(), "ep");
        assert_eq!(OverheadModel::Constant { seconds: 1.0 }.label(), "const");
    }

    #[test]
    fn footprint_storage_bottleneck_is_constant() {
        // αV = 600 s regardless of p.
        let m = OverheadModel::from_footprint(
            600.0 / 1e12,
            1e12,
            IoBottleneck::ResilientStorage,
            45_208,
        );
        assert!((m.cost(1) - 600.0).abs() < 1e-9);
        assert!((m.cost(45_208) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn footprint_link_bottleneck_is_proportional() {
        // αV/p: at full platform, αV/ptotal; at one processor, αV.
        let alpha = 600.0 * 45_208.0 / 1e12; // so that C(ptotal) = 600 s
        let m = OverheadModel::from_footprint(
            alpha,
            1e12,
            IoBottleneck::ProcessorLinks,
            45_208,
        );
        assert!((m.cost(45_208) - 600.0).abs() < 1e-6);
        assert!((m.cost(1) - 600.0 * 45_208.0).abs() < 1e-3);
        // Halving p doubles the cost.
        assert!((m.cost(1_024) / m.cost(2_048) - 2.0).abs() < 1e-9);
    }
}
