//! Job specifications and Table 1 presets.

use crate::models::{OverheadModel, ParallelismModel};
use serde::{Deserialize, Serialize};

/// The paper's three platform rows (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformClass {
    /// Single processor, small MTBF, W = 20 days.
    SingleProcessor,
    /// Jaguar-like, 45 208 processors, proc MTBF 125 y, W = 1000 y.
    Petascale,
    /// 2^20 processors, proc MTBF 1250 y, W = 10 000 y.
    Exascale,
}

/// Everything a policy and the simulator need to know about one job run:
/// the per-processor parallel workload `W(p)`, checkpoint cost `C(p)`,
/// recovery cost `R(p)`, downtime `D`, and processor count `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Number of processors enrolled.
    pub procs: u64,
    /// Per-processor work to complete, seconds of unit-speed compute
    /// (`W(p)` after applying the parallelism model).
    pub work: f64,
    /// Checkpoint duration `C(p)`, seconds.
    pub checkpoint: f64,
    /// Recovery duration `R(p)`, seconds.
    pub recovery: f64,
    /// Downtime after a failure `D`, seconds (independent of `p`).
    pub downtime: f64,
}

impl JobSpec {
    /// Assemble a spec from total sequential work plus the two model laws.
    pub fn from_models(
        total_work: f64,
        procs: u64,
        parallelism: ParallelismModel,
        overhead: OverheadModel,
        downtime: f64,
    ) -> Self {
        assert!(total_work > 0.0, "work must be positive");
        assert!(downtime >= 0.0, "downtime must be non-negative");
        let cost = overhead.cost(procs);
        Self {
            procs,
            work: parallelism.parallel_work(total_work, procs),
            checkpoint: cost,
            recovery: cost,
            downtime,
        }
    }

    /// Direct construction for sequential jobs (§2): `p = 1`.
    pub fn sequential(work: f64, checkpoint: f64, recovery: f64, downtime: f64) -> Self {
        assert!(work > 0.0 && checkpoint >= 0.0 && recovery >= 0.0 && downtime >= 0.0);
        Self { procs: 1, work, checkpoint, recovery, downtime }
    }

    /// Table 1 single-processor preset: `W = 20 d`, `C = R = 600 s`,
    /// `D = 60 s`.
    pub fn table1_single_processor() -> Self {
        Self::sequential(20.0 * crate::DAY, 600.0, 600.0, 60.0)
    }

    /// Table 1 Petascale preset for `p` processors, embarrassingly parallel
    /// work and constant overhead (the main-text configuration):
    /// `W = 1000 y`, `C = R = 600 s`, `D = 60 s`.
    pub fn table1_petascale(p: u64) -> Self {
        Self::from_models(
            1000.0 * crate::YEAR,
            p,
            ParallelismModel::EmbarrassinglyParallel,
            OverheadModel::Constant { seconds: 600.0 },
            60.0,
        )
    }

    /// Table 1 Exascale preset: `W = 10 000 y`, `C = R = 600 s`, `D = 60 s`.
    pub fn table1_exascale(p: u64) -> Self {
        Self::from_models(
            10_000.0 * crate::YEAR,
            p,
            ParallelismModel::EmbarrassinglyParallel,
            OverheadModel::Constant { seconds: 600.0 },
            60.0,
        )
    }

    /// Total wall-clock of one successful chunk attempt of size `ω`.
    pub fn attempt_duration(&self, chunk: f64) -> f64 {
        chunk + self.checkpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DAY, JAGUAR_PROCS, YEAR};

    #[test]
    fn single_processor_preset() {
        let s = JobSpec::table1_single_processor();
        assert_eq!(s.procs, 1);
        assert_eq!(s.work, 20.0 * DAY);
        assert_eq!(s.checkpoint, 600.0);
        assert_eq!(s.recovery, 600.0);
        assert_eq!(s.downtime, 60.0);
    }

    #[test]
    fn petascale_full_platform_runs_about_eight_days() {
        // §4.2: a full-platform job should take ≈ 8 days failure-free.
        let s = JobSpec::table1_petascale(JAGUAR_PROCS);
        let days = s.work / DAY;
        assert!(
            (7.0..9.5).contains(&days),
            "full-platform Petascale job = {days} days"
        );
    }

    #[test]
    fn exascale_full_platform_runs_about_three_and_half_days() {
        let s = JobSpec::table1_exascale(1 << 20);
        let days = s.work / DAY;
        assert!(
            (3.0..4.0).contains(&days),
            "full-platform Exascale job = {days} days"
        );
    }

    #[test]
    fn proportional_overhead_feeds_into_spec() {
        let s = JobSpec::from_models(
            1000.0 * YEAR,
            1_024,
            ParallelismModel::EmbarrassinglyParallel,
            OverheadModel::Proportional { seconds_at_full: 600.0, ptotal: JAGUAR_PROCS },
            60.0,
        );
        assert!((s.checkpoint - 600.0 * 45_208.0 / 1_024.0).abs() < 1e-9);
        assert_eq!(s.checkpoint, s.recovery);
    }

    #[test]
    fn attempt_duration_adds_checkpoint() {
        let s = JobSpec::sequential(100.0, 7.0, 7.0, 1.0);
        assert_eq!(s.attempt_duration(50.0), 57.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_work() {
        JobSpec::sequential(0.0, 1.0, 1.0, 1.0);
    }
}
