//! Parallel job and checkpoint-cost models (§3.1, Table 1).
//!
//! * [`ParallelismModel`] — how the failure-free execution time `W(p)`
//!   scales with the processor count `p`: embarrassingly parallel, Amdahl,
//!   or 2-D numerical kernel (ScaLAPACK-style matrix product / LU / QR).
//! * [`OverheadModel`] — how the synchronized checkpoint/recovery cost
//!   `C(p) = R(p)` scales: constant (resilient-storage-bound) or
//!   proportional `∝ 1/p` (per-processor-link-bound).
//! * [`JobSpec`] — the bundle of `W`, `p`, `C(p)`, `R(p)`, `D` a policy and
//!   the simulator consume, with the paper's Table 1 presets.

pub mod models;
pub mod spec;

pub use models::{IoBottleneck, OverheadModel, ParallelismModel};
pub use spec::{JobSpec, PlatformClass};

/// Seconds in a day — Table 1 quotes W in days.
pub const DAY: f64 = 86_400.0;
/// Seconds in a Julian year — MTBFs are quoted in years.
pub const YEAR: f64 = 365.25 * DAY;
/// Seconds in a week.
pub const WEEK: f64 = 7.0 * DAY;
/// Seconds in an hour.
pub const HOUR: f64 = 3_600.0;

/// Number of processors of the Jaguar reference platform (§4.2).
pub const JAGUAR_PROCS: u64 = 45_208;
/// Number of processors of the Exascale reference platform (2^20).
pub const EXASCALE_PROCS: u64 = 1 << 20;
