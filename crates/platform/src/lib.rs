//! Platform substrate: processors, nodes, failure traces, rejuvenation.
//!
//! The paper's experiments drive a simulated platform of `p` individually
//! scheduled processors, each with iid failure inter-arrival times. This
//! crate provides:
//!
//! * [`trace`] — per-unit failure traces sampled to a fixed horizon, with
//!   the §4.3 prefix-stability guarantee (experiments with `p ≤ b`
//!   processors reuse the first `p` traces of the `b`-processor set) and a
//!   merged platform event stream for the simulator;
//! * [`topology`] — node granularity (the LANL logs tag failures by
//!   4-processor *node*, so a node failure takes down all its processors);
//! * [`mtbf`] — the analytic platform-MTBF formulas behind Figure 1
//!   (rejuvenate-all vs rejuvenate-failed-only under Weibull failures);
//! * [`ages`] — the compressed processor-age view handed to policies
//!   (ages of ever-failed processors plus a bulk count of never-failed
//!   ones, which keeps parallel `DPNextFailure` state-building `O(f)` in
//!   the number of failures rather than `O(p)`).

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod ages;
pub mod error;
pub mod mtbf;
pub mod renewal;
pub mod topology;
pub mod trace;

pub use ages::AgeView;
pub use error::PlatformError;
pub use mtbf::{platform_mtbf_failed_only, platform_mtbf_rejuvenate_all};
pub use renewal::{
    expected_failures, platform_failure_rate, poisson_quantile, spares_for_quantile,
    spares_for_quantile_renewal,
};
pub use topology::Topology;
pub use trace::{FailureTrace, PlatformEvents, TraceSet};

/// Which processors get rejuvenated (rebooted / replaced) after a failure
/// (§3.1's "important remark on rejuvenation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RejuvenationModel {
    /// Only the processor that failed restarts its lifetime — the model the
    /// paper argues is the realistic one for hardware failures and the one
    /// used throughout its main results.
    FailedOnly,
    /// Every processor restarts its lifetime after any failure — the
    /// assumption underlying Bouguerra's and the original DPMakespan
    /// analyses, harmful for Weibull shapes `k < 1`.
    All,
}
