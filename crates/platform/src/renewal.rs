//! Renewal-process analytics for failure streams.
//!
//! The paper leans on renewal arguments in several places — the
//! failed-only platform MTBF `(D + μ)/p` (§3.1), spare-processor sizing
//! from failure counts (§5.2.2), the elementary-renewal justification of
//! the degradation metric's stability. This module makes those arguments
//! executable:
//!
//! * [`expected_failures`] — expected number of renewals of a single unit
//!   in a window, by numerically solving the renewal equation
//!   `m(t) = F(t) + ∫₀ᵗ m(t−s) dF(s)` on a grid;
//! * [`platform_failure_rate`] — superposed steady-state rate of `p` iid
//!   renewal processes;
//! * [`spares_for_quantile`] — how many spare processors cover the
//!   q-quantile of the failure count in a window (Poisson tail bound via
//!   the superposition limit).

use ckpt_dist::FailureDistribution;

/// Renewal function `m(t)`: expected failures of one unit in `[0, t]`,
/// solved on an `n`-point grid by the discretised renewal equation.
pub fn expected_failures(dist: &dyn FailureDistribution, t: f64, n: usize) -> f64 {
    assert!(t >= 0.0);
    assert!(n >= 2, "need at least 2 grid points");
    if t == 0.0 { // lint: allow(float-eq) — exact zero fast path, not a tolerance check
        return 0.0;
    }
    let h = t / n as f64;
    // F on the grid.
    let f: Vec<f64> = (0..=n).map(|i| dist.cdf(i as f64 * h)).collect();
    // m(0) = 0; m(tᵢ) = F(tᵢ) + Σⱼ ½(m(tᵢ₋ⱼ) + m(tᵢ₋ⱼ₊₁))·ΔFⱼ — the
    // implicit-trapezoid (Riemann–Stieltjes midpoint) scheme. The j = 1
    // term contains m(tᵢ) itself; solve for it algebraically.
    let mut m = vec![0.0f64; n + 1];
    for i in 1..=n {
        let df1 = f[1] - f[0];
        let mut rhs = f[i] + 0.5 * m[i - 1] * df1;
        for j in 2..=i {
            let df = f[j] - f[j - 1];
            rhs += 0.5 * (m[i - j] + m[i - j + 1]) * df;
        }
        let denom = 1.0 - 0.5 * df1;
        m[i] = if denom > 1e-12 { rhs / denom } else { rhs };
    }
    m[n]
}

/// Steady-state platform failure rate of `p` iid units with downtime `d`
/// per failure: `p / (μ + d)` failures per second.
pub fn platform_failure_rate(mean: f64, downtime: f64, p: u64) -> f64 {
    assert!(mean > 0.0 && downtime >= 0.0 && p >= 1);
    p as f64 / (mean + downtime)
}

/// Spare processors needed so that, with probability at least `q`, the
/// failures arriving in a window `w` do not exceed the spare pool
/// (superposition → Poisson approximation; exact Poisson tail, no
/// normal approximation).
pub fn spares_for_quantile(mean: f64, downtime: f64, p: u64, window: f64, q: f64) -> u64 {
    assert!((0.0..1.0).contains(&q), "q ∈ [0, 1)");
    assert!(window >= 0.0);
    let lambda = platform_failure_rate(mean, downtime, p) * window;
    poisson_quantile(lambda, q)
}

/// Spares covering the q-quantile of failures among `p` iid units over
/// the absolute window `[t0, t1]`, each unit pristine at time 0: Poisson
/// bound with `λ = p·(m(t1) − m(t0))` from the renewal function. Unlike
/// [`spares_for_quantile`]'s steady-state `p/(μ+d)` rate, this stays
/// valid for Weibull shapes `k < 1`, whose early hazard exceeds `1/μ`
/// and front-loads failures well above the exponential-rate estimate.
/// Downtime is ignored (instant replacement), which only raises the
/// failure count — the bound stays on the safe side.
pub fn spares_for_quantile_renewal(
    dist: &dyn FailureDistribution,
    p: u64,
    t0: f64,
    t1: f64,
    q: f64,
) -> u64 {
    assert!((0.0..1.0).contains(&q), "q ∈ [0, 1)");
    assert!(0.0 <= t0 && t0 <= t1, "window [{t0}, {t1}] must be ordered");
    let grid = 400;
    let lambda = p as f64 * (expected_failures(dist, t1, grid) - expected_failures(dist, t0, grid));
    poisson_quantile(lambda.max(0.0), q)
}

/// Smallest `k` with `P(N ≤ k) ≥ q` for `N ~ Poisson(λ)`.
pub fn poisson_quantile(lambda: f64, q: f64) -> u64 {
    assert!((0.0..1.0).contains(&q), "q ∈ [0, 1)");
    assert!(lambda >= 0.0);
    let mut cumulative = (-lambda).exp();
    let mut term = cumulative;
    let mut k = 0u64;
    while cumulative < q && k < 100_000_000 {
        k += 1;
        term *= lambda / k as f64;
        cumulative += term;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dist::{Exponential, Weibull};

    #[test]
    fn exponential_renewal_function_is_linear() {
        // Poisson process: m(t) = λt exactly.
        let d = Exponential::new(0.01);
        for &t in &[50.0, 200.0, 1_000.0] {
            let m = expected_failures(&d, t, 400);
            assert!(
                (m - 0.01 * t).abs() < 0.02 * (0.01 * t).max(0.05),
                "t = {t}: m = {m}, expected {}",
                0.01 * t
            );
        }
    }

    #[test]
    fn weibull_sub_one_renews_faster_early() {
        // k < 1: decreasing hazard front-loads failures, so m(t) exceeds
        // t/μ for small t.
        let d = Weibull::from_mtbf(0.5, 1_000.0);
        let m = expected_failures(&d, 100.0, 400);
        assert!(m > 100.0 / 1_000.0, "m(100) = {m}");
    }

    #[test]
    fn renewal_function_is_monotone() {
        let d = Weibull::from_mtbf(0.7, 500.0);
        let mut prev = 0.0;
        for i in 1..=8 {
            let m = expected_failures(&d, i as f64 * 200.0, 300);
            assert!(m >= prev - 1e-9);
            prev = m;
        }
    }

    #[test]
    fn platform_rate_matches_paper_jaguar_figure() {
        // §4.3: 45,208 processors at 125-year MTBF ≈ 1 failure/day.
        let year = 365.25 * 86_400.0;
        let rate = platform_failure_rate(125.0 * year, 60.0, 45_208);
        let per_day = rate * 86_400.0;
        assert!((0.9..1.1).contains(&per_day), "failures/day {per_day}");
    }

    #[test]
    fn spares_cover_the_reported_failure_counts() {
        // §5.2.2: a 10.5-day Jaguar run sees ~38 failures on average, max
        // 66 over 600 runs. The 99.99 % Poisson quantile should land in
        // the tens, comfortably covering that maximum.
        let year = 365.25 * 86_400.0;
        let window = 10.5 * 86_400.0;
        let spares = spares_for_quantile(125.0 * year, 60.0, 45_208, window, 0.9999);
        assert!(
            (20..=80).contains(&spares),
            "99.99% spare quantile {spares}"
        );
    }

    #[test]
    fn zero_window_needs_no_spares() {
        assert_eq!(spares_for_quantile(1_000.0, 10.0, 100, 0.0, 0.999), 0);
    }

    #[test]
    fn quantile_monotone_in_q() {
        let a = spares_for_quantile(1_000.0, 0.0, 100, 100.0, 0.5);
        let b = spares_for_quantile(1_000.0, 0.0, 100, 100.0, 0.999);
        assert!(b >= a);
    }

    #[test]
    fn renewal_spares_match_exponential_rate() {
        // For Exponential units m(t) = t/μ, so the renewal-aware bound
        // coincides with the steady-state one at zero downtime.
        let d = Exponential::from_mtbf(10_000.0);
        let a = spares_for_quantile_renewal(&d, 200, 0.0, 500.0, 0.999);
        let b = spares_for_quantile(10_000.0, 0.0, 200, 500.0, 0.999);
        assert!((a as i64 - b as i64).abs() <= 1, "renewal {a} vs steady-state {b}");
    }

    #[test]
    fn renewal_spares_exceed_exponential_rate_for_young_weibull() {
        // k < 1 front-loads failures: starting from pristine units the
        // renewal-aware spare count must dominate the exponential-rate one.
        let year = 365.25 * 86_400.0;
        let d = Weibull::from_mtbf(0.7, 125.0 * year);
        let a = spares_for_quantile_renewal(&d, 1 << 10, 0.0, 2.0 * year, 0.9999);
        let b = spares_for_quantile(125.0 * year, 60.0, 1 << 10, 2.0 * year, 0.9999);
        assert!(a > b, "renewal-aware {a} should exceed exponential-rate {b}");
    }
}
