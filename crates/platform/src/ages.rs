//! Compressed processor-age view.
//!
//! A policy asking "how likely is the platform to survive the next `x`
//! seconds?" needs the multiset `{τ₁, …, τ_p}` of times since each
//! processor's last failure. Materialising that is `O(p)` per decision —
//! prohibitive at `p = 2^20`. But under failed-only rejuvenation almost all
//! processors have *never* failed, and those all share the same age
//! (time since the trace origin). [`AgeView`] therefore stores only the
//! ages of ever-failed units plus a bulk count, making every policy-side
//! operation `O(#failures so far)`.

/// Snapshot of processor ages at a decision point.
#[derive(Debug, Clone, PartialEq)]
pub struct AgeView {
    /// Ages (seconds since own last failure) of units that failed at least
    /// once, in ascending order. Each entry is `(age, procs_in_unit)`.
    failed: Vec<(f64, u32)>,
    /// Number of processors that never failed.
    pristine_procs: u64,
    /// Common age of the never-failed processors (time since trace origin).
    pristine_age: f64,
}

impl AgeView {
    /// Build a view. `failed_ages` holds `(age, processor-count)` pairs for
    /// ever-failed units in any order.
    pub fn new(mut failed_ages: Vec<(f64, u32)>, pristine_procs: u64, pristine_age: f64) -> Self {
        assert!(pristine_age >= 0.0);
        assert!(
            failed_ages.iter().all(|&(a, n)| a >= 0.0 && n >= 1),
            "ages must be non-negative with positive multiplicity"
        );
        failed_ages.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self { failed: failed_ages, pristine_procs, pristine_age }
    }

    /// Build from ages already sorted ascending — skips the sort, which
    /// matters when the simulator constructs a view at every decision
    /// point of a failure-dense run.
    pub fn from_sorted(failed_ages: Vec<(f64, u32)>, pristine_procs: u64, pristine_age: f64) -> Self {
        debug_assert!(
            failed_ages.windows(2).all(|w| w[0].0 <= w[1].0),
            "from_sorted: ages must be ascending"
        );
        debug_assert!(failed_ages.iter().all(|&(a, n)| a >= 0.0 && n >= 1));
        Self { failed: failed_ages, pristine_procs, pristine_age }
    }

    /// A platform where no processor has failed yet.
    pub fn all_pristine(procs: u64, age: f64) -> Self {
        Self::new(Vec::new(), procs, age)
    }

    /// A single processor of the given age (the sequential case).
    pub fn single(age: f64) -> Self {
        Self::new(vec![(age, 1)], 0, 0.0)
    }

    /// Total processor count.
    pub fn proc_count(&self) -> u64 {
        self.pristine_procs + self.failed.iter().map(|&(_, n)| u64::from(n)).sum::<u64>()
    }

    /// Ages of ever-failed units, ascending, with processor multiplicity.
    pub fn failed_ages(&self) -> &[(f64, u32)] {
        &self.failed
    }

    /// `(count, age)` of the never-failed processors.
    pub fn pristine(&self) -> (u64, f64) {
        (self.pristine_procs, self.pristine_age)
    }

    /// Recover the failed-ages vector, surrendering the view. Lets a
    /// simulation loop recycle one buffer across decision points instead
    /// of allocating a fresh snapshot per decision.
    pub fn into_failed(self) -> Vec<(f64, u32)> {
        self.failed
    }

    /// Smallest age across the platform.
    pub fn min_age(&self) -> f64 {
        match self.failed.first() {
            Some(&(a, _)) if self.pristine_procs == 0 || a <= self.pristine_age => a,
            _ if self.pristine_procs > 0 => self.pristine_age,
            Some(&(a, _)) => a,
            None => self.pristine_age,
        }
    }

    /// Platform-wide log-survival of the next `x` seconds:
    /// `Σᵢ nᵢ · (lnS(τᵢ + x) − lnS(τᵢ))` — the log of §3.3's
    /// `Psuc(x | τ₁…τ_p) = Π P(X ≥ x + τᵢ | X ≥ τᵢ)`.
    pub fn log_psuc(&self, dist: &dyn ckpt_dist::FailureDistribution, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for &(age, n) in &self.failed {
            acc += f64::from(n) * (dist.log_survival(age + x) - dist.log_survival(age));
        }
        if self.pristine_procs > 0 {
            acc += self.pristine_procs as f64
                * (dist.log_survival(self.pristine_age + x)
                    - dist.log_survival(self.pristine_age));
        }
        acc
    }

    /// Platform-wide success probability over the next `x` seconds.
    pub fn psuc(&self, dist: &dyn ckpt_dist::FailureDistribution, x: f64) -> f64 {
        self.log_psuc(dist, x).exp()
    }

    /// Advance every age by `dt` (time passing with no failures).
    #[must_use]
    pub fn advanced(&self, dt: f64) -> Self {
        assert!(dt >= 0.0);
        Self {
            failed: self.failed.iter().map(|&(a, n)| (a + dt, n)).collect(),
            pristine_procs: self.pristine_procs,
            pristine_age: self.pristine_age + dt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dist::{Exponential, FailureDistribution, Weibull};

    #[test]
    fn proc_count_sums_multiplicities() {
        let v = AgeView::new(vec![(10.0, 4), (20.0, 4)], 92, 1000.0);
        assert_eq!(v.proc_count(), 100);
    }

    #[test]
    fn min_age_considers_both_sides() {
        let v = AgeView::new(vec![(10.0, 1)], 5, 1000.0);
        assert_eq!(v.min_age(), 10.0);
        let v2 = AgeView::new(vec![(10.0, 1)], 5, 2.0);
        assert_eq!(v2.min_age(), 2.0);
        let v3 = AgeView::all_pristine(8, 7.0);
        assert_eq!(v3.min_age(), 7.0);
    }

    #[test]
    fn exponential_psuc_is_product_form() {
        // Memoryless: platform psuc = e^{−pλx} regardless of ages.
        let d = Exponential::new(1e-4);
        let v = AgeView::new(vec![(5.0, 2), (500.0, 3)], 5, 99.0);
        let p = v.psuc(&d, 1000.0);
        let expect = (-10.0f64 * 1e-4 * 1000.0).exp();
        assert!((p - expect).abs() < 1e-12, "{p} vs {expect}");
    }

    #[test]
    fn weibull_psuc_matches_bruteforce_product() {
        let d = Weibull::from_mtbf(0.7, 5000.0);
        let v = AgeView::new(vec![(3.0, 2), (70.0, 1)], 4, 400.0);
        let x = 120.0;
        let brute: f64 = [3.0, 3.0, 70.0, 400.0, 400.0, 400.0, 400.0]
            .iter()
            .map(|&tau| d.psuc(x, tau))
            .product();
        assert!((v.psuc(&d, x) - brute).abs() < 1e-12);
    }

    #[test]
    fn older_platform_survives_better_for_sub_one_shape() {
        let d = Weibull::from_mtbf(0.7, 5000.0);
        let young = AgeView::all_pristine(100, 1.0);
        let old = AgeView::all_pristine(100, 100_000.0);
        assert!(old.psuc(&d, 50.0) > young.psuc(&d, 50.0));
    }

    #[test]
    fn advanced_shifts_all_ages() {
        let v = AgeView::new(vec![(1.0, 1)], 2, 10.0).advanced(5.0);
        assert_eq!(v.failed_ages(), &[(6.0, 1)]);
        assert_eq!(v.pristine(), (2, 15.0));
    }

    #[test]
    fn zero_window_certain_success() {
        let d = Weibull::from_mtbf(0.5, 10.0);
        let v = AgeView::all_pristine(1000, 0.0);
        assert_eq!(v.psuc(&d, 0.0), 1.0);
    }

    #[test]
    fn single_age_view_equals_scalar_psuc() {
        let d = Weibull::from_mtbf(0.7, 100.0);
        let v = AgeView::single(42.0);
        assert!((v.psuc(&d, 10.0) - d.psuc(10.0, 42.0)).abs() < 1e-15);
    }
}
