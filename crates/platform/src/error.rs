//! Typed errors for platform/trace construction.

/// Why a trace set or platform view could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A trace set needs at least one failure unit.
    NoUnits,
    /// The sampling horizon must be positive and finite.
    BadHorizon {
        /// The offending horizon, seconds.
        horizon: f64,
    },
    /// The job start time must fall within `[0, horizon)`.
    StartOutsideHorizon {
        /// The offending start time, seconds.
        start: f64,
        /// The horizon, seconds.
        horizon: f64,
    },
    /// A prefix was requested beyond the generated unit count.
    BadPrefix {
        /// Requested unit count.
        want: usize,
        /// Available unit count.
        have: usize,
    },
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoUnits => write!(f, "need at least one failure unit"),
            Self::BadHorizon { horizon } => {
                write!(f, "horizon must be positive and finite, got {horizon}")
            }
            Self::StartOutsideHorizon { start, horizon } => {
                write!(f, "start time {start} outside horizon [0, {horizon})")
            }
            Self::BadPrefix { want, have } => {
                write!(f, "prefix of {want} units requested from a {have}-unit trace set")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = PlatformError::StartOutsideHorizon { start: 5.0, horizon: 2.0 };
        assert!(e.to_string().contains("outside horizon"));
        assert!(PlatformError::NoUnits.to_string().contains("at least one"));
    }
}
