//! Analytic platform MTBF under the two rejuvenation options — the math
//! behind Figure 1 and the §3.1 "important remark on rejuvenation".
//!
//! Take `p` processors with iid Weibull(λ, k) inter-arrival times of mean
//! `μ = λ Γ(1 + 1/k)` and a downtime `D` per failure.
//!
//! * **Rejuvenate all**: after every failure the whole platform restarts a
//!   fresh lifetime, so platform failures are iid minima of `p` Weibulls —
//!   again Weibull, with scale `λ/p^{1/k}` — and the platform MTBF is
//!   `D + μ/p^{1/k}`.
//! * **Rejuvenate failed only**: each processor renews independently every
//!   `D + μ` on average, so the platform sees `p/(D+μ)` failures per unit
//!   time: MTBF `(D + μ)/p`.
//!
//! For `k < 1` (all real-world fits), `p^{1/k} ≫ p`, so rejuvenating
//! everything *destroys* the platform MTBF — the paper's argument for the
//! failed-only model.

use ckpt_dist::{FailureDistribution, Weibull};

/// Platform MTBF when **all** processors are rejuvenated after each
/// failure: `D + μ / p^{1/k}`.
pub fn platform_mtbf_rejuvenate_all(weibull: &Weibull, downtime: f64, p: u64) -> f64 {
    assert!(p >= 1 && downtime >= 0.0);
    downtime + weibull.min_of(p).mean()
}

/// Platform MTBF when **only the failed** processor is rejuvenated:
/// `(D + μ) / p`. Valid for any inter-arrival distribution of mean `μ`.
pub fn platform_mtbf_failed_only(proc_mean: f64, downtime: f64, p: u64) -> f64 {
    assert!(p >= 1 && downtime >= 0.0 && proc_mean > 0.0);
    (downtime + proc_mean) / p as f64
}

/// One row of Figure 1: `(p, MTBF_all, MTBF_failed_only)` in seconds.
pub fn figure1_row(weibull: &Weibull, downtime: f64, p: u64) -> (u64, f64, f64) {
    (
        p,
        platform_mtbf_rejuvenate_all(weibull, downtime, p),
        platform_mtbf_failed_only(weibull.mean(), downtime, p),
    )
}

/// The full Figure 1 series over powers of two `2^lo ..= 2^hi`.
pub fn figure1_series(
    weibull: &Weibull,
    downtime: f64,
    lo: u32,
    hi: u32,
) -> Vec<(u64, f64, f64)> {
    assert!(lo <= hi && hi < 63);
    (lo..=hi).map(|e| figure1_row(weibull, downtime, 1u64 << e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const YEAR: f64 = 365.25 * 86_400.0;

    fn paper_weibull() -> Weibull {
        // Figure 1 configuration: shape 0.70, processor MTBF 125 years.
        Weibull::from_mtbf(0.7, 125.0 * YEAR)
    }

    #[test]
    fn exponential_case_prefers_rejuvenate_all() {
        // §3.1: for k = 1 rejuvenating all gives a higher platform MTBF
        // (μ/p + D vs (μ + D)/p — the downtime isn't divided by p).
        let w = Weibull::from_mtbf(1.0, 125.0 * YEAR);
        let d = 60.0;
        for &p in &[16u64, 1024, 45_208] {
            let all = platform_mtbf_rejuvenate_all(&w, d, p);
            let failed = platform_mtbf_failed_only(w.mean(), d, p);
            assert!(all > failed, "p = {p}: all {all} failed {failed}");
        }
    }

    #[test]
    fn weibull_sub_one_prefers_failed_only_at_scale() {
        // The crossover behaviour of Figure 1: for k = 0.7 and large p,
        // failed-only wins by orders of magnitude.
        let w = paper_weibull();
        let d = 60.0;
        let all = platform_mtbf_rejuvenate_all(&w, d, 1 << 18);
        let failed = platform_mtbf_failed_only(w.mean(), d, 1 << 18);
        assert!(
            failed > 4.0 * all,
            "failed-only {failed} should dominate rejuvenate-all {all}"
        );
    }

    #[test]
    fn figure1_series_is_monotone_decreasing() {
        let w = paper_weibull();
        let rows = figure1_series(&w, 60.0, 4, 22);
        assert_eq!(rows.len(), 19);
        for pair in rows.windows(2) {
            assert!(pair[0].1 > pair[1].1, "rejuvenate-all not decreasing");
            assert!(pair[0].2 > pair[1].2, "failed-only not decreasing");
        }
    }

    #[test]
    fn failed_only_scales_exactly_inverse_p() {
        let m1 = platform_mtbf_failed_only(1000.0, 60.0, 1);
        let m10 = platform_mtbf_failed_only(1000.0, 60.0, 10);
        assert!((m1 / m10 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rejuvenate_all_scales_inverse_p_to_one_over_k() {
        let w = paper_weibull();
        // Without downtime, MTBF_all(p) = μ / p^{1/k} exactly.
        let m1 = platform_mtbf_rejuvenate_all(&w, 0.0, 1);
        let m1024 = platform_mtbf_rejuvenate_all(&w, 0.0, 1024);
        let expect = 1024f64.powf(1.0 / 0.7);
        assert!(((m1 / m1024) / expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jaguar_failure_per_day_consistency() {
        // §4.3: a 45,208-proc platform at 125 y per-proc MTBF experiences
        // ≈ 1 failure per day under failed-only renewal.
        let mtbf = platform_mtbf_failed_only(125.0 * YEAR, 60.0, 45_208);
        let per_day = 86_400.0 / mtbf;
        assert!(
            (0.9..1.2).contains(&per_day),
            "failures/day = {per_day}"
        );
    }
}
