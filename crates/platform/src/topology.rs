//! Unit → processor topology.
//!
//! Synthetic experiments strike individual processors; the LANL log-based
//! experiments strike 4-processor nodes (§4.3: "to simulate a
//! 45,208-processor platform we generate 11,302 failure traces, one for
//! each four-processor node").

use serde::{Deserialize, Serialize};

/// How many processors share each failure unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    procs_per_unit: u32,
}

impl Topology {
    /// One failure unit per processor (synthetic distributions).
    pub fn per_processor() -> Self {
        Self { procs_per_unit: 1 }
    }

    /// `n`-processor nodes (log-based distributions; the LANL clusters use
    /// `n = 4`).
    pub fn nodes_of(n: u32) -> Self {
        assert!(n >= 1, "a node holds at least one processor");
        Self { procs_per_unit: n }
    }

    /// Processors per failure unit.
    pub fn procs_per_unit(&self) -> usize {
        self.procs_per_unit as usize
    }

    /// Units needed to cover `p` processors (rounded up).
    pub fn units_for_procs(&self, p: u64) -> usize {
        p.div_ceil(u64::from(self.procs_per_unit)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_processor_is_identity() {
        let t = Topology::per_processor();
        assert_eq!(t.procs_per_unit(), 1);
        assert_eq!(t.units_for_procs(45_208), 45_208);
    }

    #[test]
    fn lanl_nodes() {
        let t = Topology::nodes_of(4);
        // §4.3: 45,208 processors → 11,302 four-processor nodes.
        assert_eq!(t.units_for_procs(45_208), 11_302);
    }

    #[test]
    fn rounding_up() {
        let t = Topology::nodes_of(4);
        assert_eq!(t.units_for_procs(5), 2);
        assert_eq!(t.units_for_procs(4), 1);
        assert_eq!(t.units_for_procs(1), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_node() {
        Topology::nodes_of(0);
    }
}
