//! Failure traces: per-unit sampled failure dates and the merged platform
//! event stream (§4.3 "Scenario generation").
//!
//! A *unit* is the granularity at which failures strike — a processor for
//! synthetic distributions, a 4-processor node for the log-based setups.
//! Each unit's trace is the sequence of absolute failure dates obtained by
//! iid sampling of inter-arrival times from time 0 until the horizon.
//!
//! Under the failed-only rejuvenation model a unit's lifetime restarts
//! exactly at its own failures, so the whole trace can be pre-sampled —
//! failure dates do not depend on what the job does. (Downtime is *not*
//! modelled as delaying subsequent failures: the paper assumes failures
//! cannot happen during a downtime, which the simulator enforces by
//! construction when it consumes these events.)

use crate::error::PlatformError;
use crate::topology::Topology;
use ckpt_math::SeedSequence;
use ckpt_dist::FailureDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Failure dates of one unit, strictly increasing, within `[0, horizon)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FailureTrace {
    /// Absolute failure dates in seconds from the trace origin.
    pub failures: Vec<f64>,
}

impl FailureTrace {
    /// Sample a trace by accumulating iid inter-arrival times until the
    /// horizon is passed.
    pub fn sample(dist: &dyn FailureDistribution, horizon: f64, seed: u64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut failures = Vec::new();
        let mut t = 0.0;
        loop {
            t += dist.sample(&mut rng);
            if t >= horizon || t.is_nan() {
                break;
            }
            failures.push(t);
        }
        Self { failures }
    }

    /// Date of the last failure strictly before `t`, if any.
    pub fn last_failure_before(&self, t: f64) -> Option<f64> {
        let idx = self.failures.partition_point(|&f| f < t);
        idx.checked_sub(1).map(|i| self.failures[i])
    }

    /// Date of the first failure at or after `t`, if any.
    pub fn next_failure_at_or_after(&self, t: f64) -> Option<f64> {
        let idx = self.failures.partition_point(|&f| f < t);
        self.failures.get(idx).copied()
    }
}

/// A full trace set: one [`FailureTrace`] per unit, plus the topology that
/// maps units to processors.
#[derive(Debug, Clone)]
pub struct TraceSet {
    /// One trace per failure unit (processor or node).
    pub units: Vec<FailureTrace>,
    /// Unit → processor mapping.
    pub topology: Topology,
    /// Horizon the traces were sampled to, seconds.
    pub horizon: f64,
    /// Job start time `t0` within the horizon (§4.3: 1 year for parallel
    /// platforms to avoid synchronous-initialisation side effects, 0 for
    /// the single-processor experiments).
    pub start_time: f64,
}

impl TraceSet {
    /// Generate traces for `units` failure units.
    ///
    /// Each unit's RNG seed derives from `seeds.child(unit_index)`, which
    /// delivers the §4.3 prefix property: generating for `b` units and
    /// truncating to `p ≤ b` equals generating for `p` units directly.
    ///
    /// # Panics
    /// Panics on invalid inputs; the fallible form is
    /// [`TraceSet::try_generate`].
    pub fn generate(
        dist: &dyn FailureDistribution,
        units: usize,
        topology: Topology,
        horizon: f64,
        start_time: f64,
        seeds: SeedSequence,
    ) -> Self {
        match Self::try_generate(dist, units, topology, horizon, start_time, seeds) {
            Ok(set) => set,
            Err(e) => panic!("TraceSet::generate: {e}"),
        }
    }

    /// Generate traces for `units` failure units, reporting a typed
    /// [`PlatformError`] instead of panicking on invalid inputs.
    pub fn try_generate(
        dist: &dyn FailureDistribution,
        units: usize,
        topology: Topology,
        horizon: f64,
        start_time: f64,
        seeds: SeedSequence,
    ) -> Result<Self, PlatformError> {
        if units < 1 {
            return Err(PlatformError::NoUnits);
        }
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(PlatformError::BadHorizon { horizon });
        }
        if !(0.0..horizon).contains(&start_time) {
            return Err(PlatformError::StartOutsideHorizon { start: start_time, horizon });
        }
        let units = (0..units)
            .map(|i| FailureTrace::sample(dist, horizon, seeds.child(i as u64).seed()))
            .collect();
        Ok(Self { units, topology, horizon, start_time })
    }

    /// Number of failure units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Number of processors covered (`units × procs_per_unit`).
    pub fn proc_count(&self) -> usize {
        self.units.len() * self.topology.procs_per_unit()
    }

    /// Restrict to the first `units` traces (prefix-coherent subset).
    ///
    /// # Panics
    /// Panics when `units` is zero or exceeds the generated unit count;
    /// the fallible form is [`TraceSet::try_prefix`].
    pub fn prefix(&self, units: usize) -> Self {
        match self.try_prefix(units) {
            Ok(set) => set,
            Err(e) => panic!("TraceSet::prefix: {e}"),
        }
    }

    /// Restrict to the first `units` traces, reporting a typed error when
    /// the request exceeds the generated unit count.
    pub fn try_prefix(&self, units: usize) -> Result<Self, PlatformError> {
        if units < 1 || units > self.units.len() {
            return Err(PlatformError::BadPrefix { want: units, have: self.units.len() });
        }
        Ok(Self {
            units: self.units[..units].to_vec(),
            topology: self.topology,
            horizon: self.horizon,
            start_time: self.start_time,
        })
    }

    /// Merge into the platform-wide event stream used by the simulator.
    pub fn platform_events(&self) -> PlatformEvents {
        let mut events: Vec<(f64, u32)> = self
            .units
            .iter()
            .enumerate()
            .flat_map(|(u, tr)| tr.failures.iter().map(move |&t| (t, u as u32)))
            .collect();
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        PlatformEvents {
            times: events.iter().map(|&(t, _)| t).collect(),
            units: events.iter().map(|&(_, u)| u).collect(),
        }
    }

    /// Empirical platform MTBF over `[start_time, horizon)` — used to
    /// sanity-check the analytic formulas of [`crate::mtbf`].
    pub fn empirical_platform_mtbf(&self) -> Option<f64> {
        let n: usize = self
            .units
            .iter()
            .map(|tr| tr.failures.iter().filter(|&&t| t >= self.start_time).count())
            .sum();
        if n == 0 {
            None
        } else {
            Some((self.horizon - self.start_time) / n as f64)
        }
    }
}

/// Time-sorted failure events for one platform trace, stored as a
/// structure of arrays: the simulator's hot path scans dates only (to find
/// the next failure past a time), so keeping dates densely packed halves
/// the bytes touched per probe versus a `Vec<(f64, u32)>`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformEvents {
    times: Vec<f64>,
    units: Vec<u32>,
}

impl PlatformEvents {
    /// Event dates in ascending order.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Failing unit of each event, parallel to [`Self::times`].
    pub fn units(&self) -> &[u32] {
        &self.units
    }

    /// The `i`-th event as a `(date, unit)` pair.
    pub fn get(&self, i: usize) -> (f64, u32) {
        (self.times[i], self.units[i])
    }

    /// Number of failures in the stream.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the platform never fails within the horizon.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Index of the first event at or after time `t`.
    pub fn first_at_or_after(&self, t: f64) -> usize {
        self.times.partition_point(|&d| d < t)
    }

    /// The first `(date, unit)` failure at or after `t`, if any.
    pub fn next_failure(&self, t: f64) -> Option<(f64, u32)> {
        let i = self.first_at_or_after(t);
        (i < self.times.len()).then(|| self.get(i))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ckpt_dist::{Exponential, Weibull};

    fn seeds() -> SeedSequence {
        SeedSequence::from_label("trace-tests")
    }

    #[test]
    fn traces_are_sorted_and_within_horizon() {
        let d = Exponential::from_mtbf(10.0);
        let tr = FailureTrace::sample(&d, 1000.0, 42);
        assert!(!tr.failures.is_empty());
        for w in tr.failures.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*tr.failures.last().unwrap() < 1000.0);
    }

    #[test]
    fn expected_failure_count_matches_mtbf() {
        let d = Exponential::from_mtbf(10.0);
        let n: usize = (0..200)
            .map(|i| FailureTrace::sample(&d, 1000.0, 1000 + i).failures.len())
            .sum();
        let avg = n as f64 / 200.0;
        assert!((avg - 100.0).abs() < 3.0, "avg failures {avg}");
    }

    #[test]
    fn lookup_helpers() {
        let tr = FailureTrace { failures: vec![10.0, 20.0, 30.0] };
        assert_eq!(tr.last_failure_before(5.0), None);
        assert_eq!(tr.last_failure_before(25.0), Some(20.0));
        assert_eq!(tr.last_failure_before(30.0), Some(20.0));
        assert_eq!(tr.next_failure_at_or_after(30.0), Some(30.0));
        assert_eq!(tr.next_failure_at_or_after(30.1), None);
    }

    #[test]
    fn prefix_stability() {
        // §4.3: first p traces of a b-unit set == the p-unit set.
        let d = Weibull::from_mtbf(0.7, 50.0);
        let big = TraceSet::generate(&d, 64, Topology::per_processor(), 500.0, 0.0, seeds());
        let small = TraceSet::generate(&d, 16, Topology::per_processor(), 500.0, 0.0, seeds());
        assert_eq!(&big.units[..16], &small.units[..]);
        assert_eq!(big.prefix(16).units, small.units);
    }

    #[test]
    fn platform_events_are_merged_and_sorted() {
        let d = Exponential::from_mtbf(20.0);
        let set = TraceSet::generate(&d, 8, Topology::per_processor(), 400.0, 0.0, seeds());
        let ev = set.platform_events();
        let total: usize = set.units.iter().map(|t| t.failures.len()).sum();
        assert_eq!(ev.len(), total);
        assert_eq!(ev.times().len(), ev.units().len());
        for w in ev.times().windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn next_failure_scans_correctly() {
        let set = TraceSet {
            units: vec![
                FailureTrace { failures: vec![5.0, 50.0] },
                FailureTrace { failures: vec![10.0] },
            ],
            topology: Topology::per_processor(),
            horizon: 100.0,
            start_time: 0.0,
        };
        let ev = set.platform_events();
        assert_eq!(ev.next_failure(0.0), Some((5.0, 0)));
        assert_eq!(ev.next_failure(6.0), Some((10.0, 1)));
        assert_eq!(ev.next_failure(10.0), Some((10.0, 1)));
        assert_eq!(ev.next_failure(60.0), None);
    }

    #[test]
    fn empirical_platform_mtbf_scales_inversely_with_units() {
        let d = Exponential::from_mtbf(1000.0);
        let one = TraceSet::generate(&d, 4, Topology::per_processor(), 100_000.0, 0.0, seeds());
        let many = TraceSet::generate(&d, 64, Topology::per_processor(), 100_000.0, 0.0, seeds());
        let m1 = one.empirical_platform_mtbf().unwrap();
        let m2 = many.empirical_platform_mtbf().unwrap();
        // 16× more units → roughly 16× smaller platform MTBF.
        let ratio = m1 / m2;
        assert!((8.0..32.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn try_generate_reports_typed_errors() {
        let d = Exponential::from_mtbf(10.0);
        let t = Topology::per_processor();
        assert_eq!(
            TraceSet::try_generate(&d, 0, t, 100.0, 0.0, seeds()).err(),
            Some(PlatformError::NoUnits)
        );
        assert_eq!(
            TraceSet::try_generate(&d, 1, t, f64::NAN, 0.0, seeds()).err().map(|e| e.to_string()),
            Some("horizon must be positive and finite, got NaN".into())
        );
        assert!(matches!(
            TraceSet::try_generate(&d, 1, t, 10.0, 20.0, seeds()),
            Err(PlatformError::StartOutsideHorizon { .. })
        ));
        let set = TraceSet::try_generate(&d, 2, t, 100.0, 0.0, seeds()).expect("valid");
        assert_eq!(
            set.try_prefix(3).err(),
            Some(PlatformError::BadPrefix { want: 3, have: 2 })
        );
    }

    #[test]
    fn node_topology_proc_count() {
        let d = Exponential::from_mtbf(100.0);
        let set = TraceSet::generate(&d, 10, Topology::nodes_of(4), 100.0, 0.0, seeds());
        assert_eq!(set.unit_count(), 10);
        assert_eq!(set.proc_count(), 40);
    }
}
