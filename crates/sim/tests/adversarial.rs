//! Adversarial failure-injection tests: exact boundary timings, simultaneous
//! failures, degenerate jobs — the places discrete-event engines go wrong.

use ckpt_platform::{FailureTrace, Topology, TraceSet};
use ckpt_policies::{FixedPeriod, Policy};
use ckpt_sim::{lower_bound_makespan, SimOptions};
use ckpt_workload::JobSpec;

fn traces(failures: Vec<Vec<f64>>, horizon: f64, start: f64) -> TraceSet {
    TraceSet {
        units: failures.into_iter().map(|f| FailureTrace { failures: f }).collect(),
        topology: Topology::per_processor(),
        horizon,
        start_time: start,
    }
}

fn run(spec: &JobSpec, ts: &TraceSet, period: f64) -> ckpt_sim::RunStats {
    let policy = FixedPeriod::new("p", period);
    let mut s = policy.session();
    ckpt_sim::engine::simulate_traceset(spec, &mut *s, ts, SimOptions::default())
}

#[test]
fn failure_exactly_at_checkpoint_commit_does_not_destroy_chunk() {
    // Attempt spans [0, 260); a failure at exactly t = 260 strikes *after*
    // the commit instant: the chunk survives.
    let spec = JobSpec::sequential(500.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![vec![260.0]], 1e9, 0.0);
    let st = run(&spec, &ts, 250.0);
    // Chunk 1 committed at 260; failure at 260 interrupts chunk 2 at its
    // very start (0 s lost), D 5 + R 20, then 260 more: 260+25+260 = 545.
    assert!((st.makespan - 545.0).abs() < 1e-9, "makespan {}", st.makespan);
    assert_eq!(st.chunks_completed, 2);
    assert!((st.lost_time - 0.0).abs() < 1e-9);
}

#[test]
fn failure_at_instant_zero() {
    let spec = JobSpec::sequential(100.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![vec![0.0]], 1e9, 0.0);
    let st = run(&spec, &ts, 100.0);
    // Immediate failure: D 5 + R 20, then 110: total 135.
    assert!((st.makespan - 135.0).abs() < 1e-9, "makespan {}", st.makespan);
    assert_eq!(st.failures, 1);
}

#[test]
fn simultaneous_failures_on_two_units() {
    let spec = JobSpec { procs: 2, ..JobSpec::sequential(100.0, 10.0, 20.0, 5.0) };
    let ts = traces(vec![vec![50.0], vec![50.0]], 1e9, 0.0);
    let st = run(&spec, &ts, 100.0);
    // Both failures counted; one downtime window (they coincide); one
    // recovery; replay.
    assert_eq!(st.failures, 2);
    // 50 lost + 5 D + 20 R + 110 = 185.
    assert!((st.makespan - 185.0).abs() < 1e-9, "makespan {}", st.makespan);
}

#[test]
fn failure_exactly_at_recovery_end_does_not_abort_it() {
    // Failure at 100 → D ends 105 → recovery [105, 125). A second failure
    // at exactly 125 lands after the recovery completes: it interrupts the
    // *chunk* instead (at 0 s in).
    let spec = JobSpec::sequential(200.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![vec![100.0, 125.0]], 1e9, 0.0);
    let st = run(&spec, &ts, 200.0);
    assert_eq!(st.failures, 2);
    // 100 lost, +5 +20 → 125; failure at 125 (0 lost), +5 +20 → 150;
    // then 210 → 360.
    assert!((st.makespan - 360.0).abs() < 1e-9, "makespan {}", st.makespan);
}

#[test]
fn tiny_job_single_chunk() {
    let spec = JobSpec::sequential(1.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![vec![]], 1e9, 0.0);
    let st = run(&spec, &ts, 1e6);
    assert!((st.makespan - 11.0).abs() < 1e-9);
    assert_eq!(st.chunks_completed, 1);
}

#[test]
fn job_start_offset_ages_respect_origin() {
    // Job starts at t0 = 1000; a failure at 500 happened before the job:
    // the engine must begin with that unit's failure "in the past".
    let spec = JobSpec::sequential(300.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![vec![500.0]], 1e9, 1_000.0);
    let st = run(&spec, &ts, 300.0);
    // No failure during the job window: clean run.
    assert_eq!(st.failures, 0);
    assert!((st.makespan - 310.0).abs() < 1e-9);
}

#[test]
fn past_horizon_flag_set_when_running_beyond_traces() {
    let spec = JobSpec::sequential(10_000.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![vec![50.0]], 100.0, 0.0);
    let st = run(&spec, &ts, 1_000.0);
    assert!(st.past_horizon);
    assert!((st.work_time - 10_000.0).abs() < 1e-6);
}

#[test]
fn lower_bound_on_adversarial_trace_still_below_policy() {
    // Failure storm with exact-boundary timings.
    let fails: Vec<f64> = (1..40).map(|i| i as f64 * 137.0).collect();
    let spec = JobSpec::sequential(3_000.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![fails], 1e9, 0.0);
    let lb = lower_bound_makespan(&spec, &ts).makespan;
    for period in [50.0, 100.0, 127.0, 500.0] {
        let st = run(&spec, &ts, period);
        assert!(lb <= st.makespan + 1e-6, "period {period}");
    }
}

#[test]
fn dense_cascade_terminates() {
    // Failures every D/2 for a long stretch: downtime cascades must chain,
    // then the engine recovers and completes.
    let fails: Vec<f64> = (0..500).map(|i| 100.0 + i as f64 * 2.4).collect();
    let spec = JobSpec::sequential(400.0, 10.0, 20.0, 5.0);
    let ts = traces(vec![fails], 1e9, 0.0);
    let st = run(&spec, &ts, 400.0);
    assert!(st.makespan.is_finite());
    assert!((st.work_time - 400.0).abs() < 1e-6);
    // Own-downtime shadowing: consecutive failures of the same unit within
    // D = 5 s are swallowed, so counted failures are roughly half.
    assert!(st.failures < 400, "counted {}", st.failures);
}

#[test]
fn two_units_alternating_cascade() {
    // Units alternate failures 3 s apart (> no shadowing: different units)
    // keeping the platform down for a long stretch.
    let a: Vec<f64> = (0..50).map(|i| 100.0 + i as f64 * 6.0).collect();
    let b: Vec<f64> = (0..50).map(|i| 103.0 + i as f64 * 6.0).collect();
    let spec = JobSpec { procs: 2, ..JobSpec::sequential(200.0, 10.0, 20.0, 5.0) };
    let ts = traces(vec![a, b], 1e9, 0.0);
    let st = run(&spec, &ts, 200.0);
    assert_eq!(st.failures, 100);
    assert!(st.makespan.is_finite());
    assert!((st.work_time - 200.0).abs() < 1e-6);
}
