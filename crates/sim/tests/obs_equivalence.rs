//! Recording must be observationally invisible to the engine.
//!
//! The pipeline's correctness contract is *bit-identical results at any
//! thread count*, and `ckpt-obs` instrumentation must not bend it: the
//! engine and the DP solver count into locals and flush to the registry
//! only after their results are final, so an open session can never
//! feed back into control flow. This property test drives random
//! Weibull scenarios through [`simulate_traceset`] once without a
//! session and once per rayon thread count (1 and 8) with a session
//! recording, and compares the full [`RunStats`] structs bit for bit.
//!
//! Without the `obs` feature sessions cannot open and the test reduces
//! to a determinism check; `scripts/check.sh` runs it with the feature
//! on so the live recorder is exercised.

use ckpt_dist::Weibull;
use ckpt_math::SeedSequence;
use ckpt_platform::{Topology, TraceSet};
use ckpt_policies::{DpCaches, DpNextFailure, DpNextFailureConfig, Policy};
use ckpt_sim::engine::simulate_traceset;
use ckpt_sim::{RunStats, SimOptions};
use ckpt_workload::JobSpec;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Case {
    shape: f64,
    mtbf: f64,
    work: f64,
    checkpoint: f64,
    units: usize,
    seed: u64,
}

fn run_case(c: Case) -> RunStats {
    let dist = Weibull::from_mtbf(c.shape, c.mtbf);
    let traces = TraceSet::generate(
        &dist,
        c.units,
        Topology::per_processor(),
        1e9,
        0.0,
        SeedSequence::new(c.seed),
    );
    let spec = JobSpec {
        procs: c.units as u64,
        ..JobSpec::sequential(c.work, c.checkpoint, c.checkpoint, 60.0)
    };
    let cfg = DpNextFailureConfig { quanta: Some(30), ..Default::default() };
    // Private caches: every pass recomputes from scratch, so warm shared
    // state cannot mask (or cause) a difference between passes.
    let policy =
        DpNextFailure::with_caches(&spec, Box::new(dist), c.mtbf, cfg, DpCaches::private());
    let mut session = policy.session();
    simulate_traceset(&spec, &mut *session, &traces, SimOptions::default())
}

proptest! {
    // DP solves are the expensive part of a case; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn run_stats_bit_identical_with_and_without_recording(
        shape in 0.5..1.3f64,
        mtbf in 20_000.0..400_000.0f64,
        work in 5_000.0..80_000.0f64,
        checkpoint in 60.0..900.0f64,
        units in 1usize..4,
        seed in 0u64..1_000u64,
    ) {
        let case = Case { shape, mtbf, work, checkpoint, units, seed };
        let baseline = run_case(case);

        for threads in [1usize, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let obs = ckpt_obs::ObsSession::start(); // None without `obs`
            let recorded = pool.install(|| run_case(case));
            if let Some(obs) = obs {
                let data = obs.finish();
                prop_assert!(
                    data.counter("sim.runs") >= 1,
                    "session must actually have recorded the run"
                );
            }
            prop_assert_eq!(
                &baseline,
                &recorded,
                "recording at {} thread(s) changed RunStats",
                threads
            );
        }
    }
}
