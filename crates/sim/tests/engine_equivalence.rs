//! The flat-state engine must be observationally identical to the seed
//! engine it replaced.
//!
//! The seed engine kept per-unit failure state in a `HashMap<u32, f64>`
//! and rebuilt the age snapshot by sorting at every decision point. The
//! production engine now keeps a dense `Vec<f64>` plus an incrementally
//! maintained recency list. This test re-implements the seed semantics
//! (hash map, sort-per-decision) as an independent oracle and checks that
//! both produce bit-identical [`RunStats`] on randomized small traces.

use ckpt_platform::{AgeView, FailureTrace, Topology, TraceSet};
use ckpt_policies::{FixedPeriod, Policy, PolicySession};
use ckpt_sim::engine::simulate_traceset;
use ckpt_sim::{RunStats, SimOptions};
use ckpt_workload::JobSpec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Seed-engine re-implementation: `HashMap` unit state, snapshot sorted
/// from scratch at each decision. Mirrors the pre-refactor control flow
/// (downtime cascades, fault-prone recoveries, own-downtime shadowing).
fn reference_simulate(
    spec: &JobSpec,
    session: &mut dyn PolicySession,
    traces: &TraceSet,
) -> RunStats {
    let mut events: Vec<(f64, u32)> = traces
        .units
        .iter()
        .enumerate()
        .flat_map(|(u, tr)| tr.failures.iter().map(move |&t| (t, u as u32)))
        .collect();
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
    let ppu = traces.topology.procs_per_unit() as u32;
    let start = traces.start_time;

    let mut stats = RunStats {
        makespan: 0.0,
        failures: 0,
        work_time: 0.0,
        checkpoint_time: 0.0,
        lost_time: 0.0,
        downtime_time: 0.0,
        recovery_time: 0.0,
        chunks_completed: 0,
        decisions: 0,
        chunk_min: f64::INFINITY,
        chunk_max: 0.0,
        past_horizon: false,
    };
    let mut now = start;
    let mut remaining = spec.work;
    let mut cursor = events.partition_point(|&(t, _)| t < now);
    let mut last_failure: HashMap<u32, f64> = HashMap::new();
    for &(t, u) in &events[..cursor] {
        last_failure.insert(u, t);
    }
    let eps = spec.work * 1e-12;

    let shadowed = |lf: &HashMap<u32, f64>, t: f64, u: u32| match lf.get(&u) {
        Some(&prev) => t - prev < spec.downtime,
        None => false,
    };
    let ages_of = |lf: &HashMap<u32, f64>, now: f64| -> AgeView {
        let failed: Vec<(f64, u32)> = lf.values().map(|&t| (now - t, ppu)).collect();
        let pristine = spec.procs.saturating_sub(failed.len() as u64 * u64::from(ppu));
        AgeView::new(failed, pristine, now)
    };
    // Absorb the downtime starting at `now` plus cascading failures.
    let settle = |stats: &mut RunStats,
                  cursor: &mut usize,
                  lf: &mut HashMap<u32, f64>,
                  now: f64|
     -> f64 {
        let mut ready = now + spec.downtime;
        while *cursor < events.len() && events[*cursor].0 < ready {
            let (t, u) = events[*cursor];
            *cursor += 1;
            if shadowed(lf, t, u) {
                continue;
            }
            stats.failures += 1;
            lf.insert(u, t);
            ready = ready.max(t + spec.downtime);
        }
        stats.downtime_time += ready - now;
        ready
    };
    let pop_next = |cursor: &mut usize, lf: &HashMap<u32, f64>| -> Option<(f64, u32)> {
        while *cursor < events.len() {
            let (t, u) = events[*cursor];
            if shadowed(lf, t, u) {
                *cursor += 1;
            } else {
                return Some((t, u));
            }
        }
        None
    };

    while remaining > eps {
        stats.decisions += 1;
        assert!(stats.decisions < 1_000_000, "reference engine runaway");
        let ages = if session.wants_ages() {
            ages_of(&last_failure, now)
        } else {
            AgeView::all_pristine(spec.procs, now)
        };
        let proposed = session.next_chunk(remaining, &ages, now - start);
        let chunk = if !proposed.is_finite() || proposed <= 0.0 {
            remaining
        } else {
            proposed.min(remaining)
        };
        stats.chunk_min = stats.chunk_min.min(chunk);
        stats.chunk_max = stats.chunk_max.max(chunk);
        let attempt = chunk + spec.checkpoint;
        match pop_next(&mut cursor, &last_failure) {
            Some((tf, unit)) if tf < now + attempt => {
                stats.failures += 1;
                stats.lost_time += tf - now;
                cursor += 1;
                last_failure.insert(unit, tf);
                session.on_failure();
                now = settle(&mut stats, &mut cursor, &mut last_failure, tf);
                // Fault-prone recovery attempts.
                loop {
                    match pop_next(&mut cursor, &last_failure) {
                        Some((t2, u2)) if t2 < now + spec.recovery => {
                            stats.failures += 1;
                            stats.recovery_time += t2 - now;
                            cursor += 1;
                            last_failure.insert(u2, t2);
                            now = settle(&mut stats, &mut cursor, &mut last_failure, t2);
                        }
                        _ => {
                            stats.recovery_time += spec.recovery;
                            now += spec.recovery;
                            break;
                        }
                    }
                }
            }
            _ => {
                now += attempt;
                remaining -= chunk;
                stats.work_time += chunk;
                stats.checkpoint_time += spec.checkpoint;
                stats.chunks_completed += 1;
            }
        }
    }
    stats.makespan = now - start;
    stats.past_horizon = now > traces.horizon;
    stats
}

/// A session whose chunk size depends on the age snapshot, so the test
/// exercises the incrementally maintained ages, not just the event flow.
struct AgeSensitive {
    base: f64,
}

impl PolicySession for AgeSensitive {
    fn next_chunk(&mut self, remaining: f64, ages: &AgeView, _now: f64) -> f64 {
        let (pristine, _) = ages.pristine();
        let chunk = self.base + 0.01 * ages.min_age() + 0.5 * pristine as f64;
        chunk.max(1.0).min(remaining)
    }
}

fn traces_from_gaps(gaps: Vec<Vec<f64>>, horizon: f64) -> TraceSet {
    let units = gaps
        .into_iter()
        .map(|gs| {
            let mut t = 0.0;
            let mut failures = Vec::with_capacity(gs.len());
            for g in gs {
                t += g;
                failures.push(t);
            }
            FailureTrace { failures }
        })
        .collect();
    TraceSet { units, topology: Topology::per_processor(), horizon, start_time: 0.0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flat_engine_matches_reference_fixed_period(
        gaps in proptest::collection::vec(
            proptest::collection::vec(20.0..600.0f64, 0..10), 1..4),
        work in 500.0..4_000.0f64,
        period in 60.0..900.0f64,
        checkpoint in 5.0..40.0f64,
    ) {
        let procs = gaps.len() as u64;
        let spec = JobSpec { procs, ..JobSpec::sequential(work, checkpoint, 25.0, 8.0) };
        let traces = traces_from_gaps(gaps, 1e9);
        let policy = FixedPeriod::new("p", period);
        let mut s1 = policy.session();
        let fast = simulate_traceset(&spec, &mut *s1, &traces, SimOptions::default());
        let mut s2 = policy.session();
        let slow = reference_simulate(&spec, &mut *s2, &traces);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn flat_engine_matches_reference_age_sensitive(
        gaps in proptest::collection::vec(
            proptest::collection::vec(15.0..500.0f64, 0..12), 1..5),
        work in 400.0..3_000.0f64,
        base in 40.0..400.0f64,
    ) {
        let procs = gaps.len() as u64;
        let spec = JobSpec { procs, ..JobSpec::sequential(work, 12.0, 30.0, 6.0) };
        let traces = traces_from_gaps(gaps, 1e9);
        let mut s1 = AgeSensitive { base };
        let fast = simulate_traceset(&spec, &mut s1, &traces, SimOptions::default());
        let mut s2 = AgeSensitive { base };
        let slow = reference_simulate(&spec, &mut s2, &traces);
        prop_assert_eq!(fast, slow);
    }
}
