//! Cache sharing must be observationally invisible.
//!
//! `DpNextFailure` instances now share one process-wide plan/kernel-row
//! cache ([`DpCaches::global`]); a policy built with a private cache
//! ([`DpCaches::private`]) recomputes every solve from scratch. Whatever
//! the cache serves, the simulated [`RunStats`] must stay *bit-identical*:
//! plans are keyed by the exact quantised state, kernel rows are pure
//! functions of their key, and FIFO eviction only ever forces a
//! recompute — never a different value. This property test drives random
//! Weibull scenarios through both configurations (and through a warm
//! shared cache a second time) and compares the full stats structs.

use ckpt_dist::Weibull;
use ckpt_math::SeedSequence;
use ckpt_platform::{Topology, TraceSet};
use ckpt_policies::{DpCaches, DpNextFailure, DpNextFailureConfig, Policy};
use ckpt_sim::engine::simulate_traceset;
use ckpt_sim::{RunStats, SimOptions};
use ckpt_workload::JobSpec;
use proptest::prelude::*;

fn run(policy: &DpNextFailure, spec: &JobSpec, traces: &TraceSet) -> RunStats {
    let mut session = policy.session();
    simulate_traceset(spec, &mut *session, traces, SimOptions::default())
}

proptest! {
    // DP solves are the expensive part of a case; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn run_stats_bit_identical_across_cache_sharing(
        shape in 0.5..1.3f64,
        mtbf in 20_000.0..400_000.0f64,
        work in 5_000.0..80_000.0f64,
        checkpoint in 60.0..900.0f64,
        units in 1usize..4,
        seed in 0u64..1_000u64,
    ) {
        let dist = Weibull::from_mtbf(shape, mtbf);
        let traces = TraceSet::generate(
            &dist,
            units,
            Topology::per_processor(),
            1e9,
            0.0,
            SeedSequence::new(seed),
        );
        let spec = JobSpec {
            procs: units as u64,
            ..JobSpec::sequential(work, checkpoint, checkpoint, 60.0)
        };
        let cfg = DpNextFailureConfig { quanta: Some(30), ..Default::default() };

        let shared =
            DpNextFailure::new(&spec, Box::new(dist), mtbf, cfg);
        let private = DpNextFailure::with_caches(
            &spec,
            Box::new(Weibull::from_mtbf(shape, mtbf)),
            mtbf,
            cfg,
            DpCaches::private(),
        );

        let via_shared = run(&shared, &spec, &traces);
        let via_private = run(&private, &spec, &traces);
        // Second pass over the shared instance: every plan it needs is now
        // warm, so this run is served almost entirely from the cache.
        let via_warm = run(&shared, &spec, &traces);

        prop_assert_eq!(&via_shared, &via_private);
        prop_assert_eq!(&via_shared, &via_warm);
    }
}
