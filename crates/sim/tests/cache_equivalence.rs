//! Cache sharing must be observationally invisible.
//!
//! `DpNextFailure` instances now share one process-wide plan/kernel-row
//! cache ([`DpCaches::global`]); a policy built with a private cache
//! ([`DpCaches::private`]) recomputes every solve from scratch. Whatever
//! the cache serves, the simulated [`RunStats`] must stay *bit-identical*:
//! plans are keyed by the exact quantised state, kernel rows are pure
//! functions of their key, and FIFO eviction only ever forces a
//! recompute — never a different value. This property test drives random
//! Weibull scenarios through both configurations (and through a warm
//! shared cache a second time) and compares the full stats structs.

use ckpt_dist::Weibull;
use ckpt_math::SeedSequence;
use ckpt_platform::{Topology, TraceSet};
use ckpt_policies::plan_cache::KernelRowKey;
use ckpt_policies::{DistId, DpCaches, DpNextFailure, DpNextFailureConfig, Policy, ShardedCache};
use ckpt_sim::engine::simulate_traceset;
use ckpt_sim::{RunStats, SimOptions};
use ckpt_workload::JobSpec;
use proptest::prelude::*;
use std::sync::Arc;

fn run(policy: &DpNextFailure, spec: &JobSpec, traces: &TraceSet) -> RunStats {
    let mut session = policy.session();
    simulate_traceset(spec, &mut *session, traces, SimOptions::default())
}

proptest! {
    // DP solves are the expensive part of a case; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn run_stats_bit_identical_across_cache_sharing(
        shape in 0.5..1.3f64,
        mtbf in 20_000.0..400_000.0f64,
        work in 5_000.0..80_000.0f64,
        checkpoint in 60.0..900.0f64,
        units in 1usize..4,
        seed in 0u64..1_000u64,
    ) {
        let dist = Weibull::from_mtbf(shape, mtbf);
        let traces = TraceSet::generate(
            &dist,
            units,
            Topology::per_processor(),
            1e9,
            0.0,
            SeedSequence::new(seed),
        );
        let spec = JobSpec {
            procs: units as u64,
            ..JobSpec::sequential(work, checkpoint, checkpoint, 60.0)
        };
        let cfg = DpNextFailureConfig { quanta: Some(30), ..Default::default() };

        let shared =
            DpNextFailure::new(&spec, Box::new(dist), mtbf, cfg);
        let private = DpNextFailure::with_caches(
            &spec,
            Box::new(Weibull::from_mtbf(shape, mtbf)),
            mtbf,
            cfg,
            DpCaches::private(),
        );

        let via_shared = run(&shared, &spec, &traces);
        let via_private = run(&private, &spec, &traces);
        // Second pass over the shared instance: every plan it needs is now
        // warm, so this run is served almost entirely from the cache.
        let via_warm = run(&shared, &spec, &traces);

        prop_assert_eq!(&via_shared, &via_private);
        prop_assert_eq!(&via_shared, &via_warm);
    }
}

/// The value a cache entry must hold for `key` — a pure function of the
/// key, like real plan/row entries.
fn row_for(key: &KernelRowKey) -> Arc<[f64]> {
    let seed = key.bucket as f64 + key.x_max as f64 * 0.5;
    Arc::from(vec![seed, seed * 1.5, f64::from_bits(key.u_bits)])
}

/// 8 threads hammering one 16-way sharded cache under heavy eviction
/// pressure, with colliding `DistId` fingerprints so distinct logical
/// keys contend on the same shards. Whatever interleaving happens:
/// every lookup is counted exactly once, eviction keeps every shard at
/// its cap, and a served value is always the pure function of its key.
#[test]
fn contended_sharded_cache_counters_stay_consistent() {
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 40;
    const KEYS: u64 = 512;
    const SHARDS: usize = 16;
    const CAP: usize = 8; // 16 × 8 = 128 resident max « 512 keys: constant eviction.

    let cache: Arc<ShardedCache<KernelRowKey, Arc<[f64]>>> =
        Arc::new(ShardedCache::new(SHARDS, CAP));

    let key_of = |k: u64| KernelRowKey {
        // Only 4 distinct fingerprints: instances collide on identity,
        // exactly what value-identical Weibulls do in a study batch.
        dist: DistId::Shared(k % 4),
        u_bits: (3600.0f64 + (k / 4) as f64).to_bits(),
        checkpoint_bits: 600.0f64.to_bits(),
        x_max: 256,
        lanes: ckpt_math::simd::LANES as u32,
        bucket: k % 37,
    };

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut lookups = 0u64;
                for round in 0..ROUNDS {
                    for i in 0..KEYS {
                        // Each thread sweeps the key space phase-shifted,
                        // so threads constantly race on the same keys.
                        let k = (i * (t + 1) + round * 7) % KEYS;
                        let key = key_of(k);
                        let got = cache.get_or_insert_with(key, || row_for(&key_of(k)));
                        assert_eq!(
                            got.as_ref(),
                            row_for(&key_of(k)).as_ref(),
                            "cache served a value that is not the pure function of its key"
                        );
                        lookups += 1;
                    }
                }
                lookups
            })
        })
        .collect();

    let total_lookups: u64 = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    assert_eq!(total_lookups, THREADS * ROUNDS * KEYS);

    let s = cache.stats();
    // `get_or_insert_with` counts exactly one hit or miss per call.
    assert_eq!(s.hits + s.misses, total_lookups, "every lookup counted exactly once");
    assert!(s.entries <= (SHARDS * CAP) as u64, "eviction must bound the resident set");
    // Every miss inserts (racing duplicates replace in place); each
    // inserted entry is either still resident or was evicted.
    assert!(s.entries + s.evictions <= s.misses, "insert/evict bookkeeping drifted");
    assert!(s.evictions > 0, "test must actually exercise eviction");
    assert!(s.hits > 0, "test must actually exercise sharing");
}

/// End-to-end contention: 8 threads simulate on ONE shared cache pair,
/// in pairs built from value-identical (same-fingerprint) Weibulls, so
/// plan and kernel-row entries are produced and consumed concurrently
/// across policy instances. Every thread's `RunStats` must be
/// bit-identical to a cold, private-cache baseline of its scenario.
#[test]
fn contended_shared_caches_match_cold_private_baseline() {
    const SCENARIOS: [(f64, f64, u64); 4] = [
        (0.7, 100_000.0, 11),
        (0.7, 100_000.0, 12), // same dist as above: fingerprints collide
        (1.1, 50_000.0, 13),
        (0.5, 250_000.0, 14),
    ];

    let run_scenario = |shape: f64, mtbf: f64, seed: u64, caches: DpCaches| -> RunStats {
        let dist = Weibull::from_mtbf(shape, mtbf);
        let traces = TraceSet::generate(
            &dist,
            2,
            Topology::per_processor(),
            1e9,
            0.0,
            SeedSequence::new(seed),
        );
        let spec = JobSpec { procs: 2, ..JobSpec::sequential(20_000.0, 300.0, 300.0, 60.0) };
        let cfg = DpNextFailureConfig { quanta: Some(30), ..Default::default() };
        let policy = DpNextFailure::with_caches(&spec, Box::new(dist), mtbf, cfg, caches);
        run(&policy, &spec, &traces)
    };

    // Cold baselines, each on its own fresh cache: nothing shared.
    let baselines: Vec<RunStats> = SCENARIOS
        .iter()
        .map(|&(shape, mtbf, seed)| run_scenario(shape, mtbf, seed, DpCaches::private()))
        .collect();

    // 8 threads (2 per scenario) race on one shared cache pair.
    let shared = DpCaches::private();
    let before = shared.stats();
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let caches = shared.clone();
            std::thread::spawn(move || {
                let (shape, mtbf, seed) = SCENARIOS[t % SCENARIOS.len()];
                (t % SCENARIOS.len(), run_scenario(shape, mtbf, seed, caches))
            })
        })
        .collect();

    for h in handles {
        let (idx, stats) = h.join().expect("sim worker");
        assert_eq!(
            stats, baselines[idx],
            "shared-cache run diverged from cold private baseline (scenario {idx})"
        );
    }

    let d = shared.stats().delta_since(&before);
    assert!(
        d.kernel_rows.hits + d.plans.hits > 0,
        "threads never actually shared an entry — the contention test tested nothing"
    );
}
