//! Discrete-event execution engine for checkpointed jobs.
//!
//! The engine executes a tightly-coupled job chunk by chunk against a
//! failure trace (§2.1/§3.1 semantics):
//!
//! * a chunk attempt occupies `ω + C(p)` seconds on all processors;
//! * a failure during compute, checkpoint, or recovery aborts the attempt;
//! * the failed processor serves a downtime `D` (failures cannot strike a
//!   processor during its own downtime, but *other* processors may fail,
//!   cascading the blockage — the effect that makes parallel `E[Trec]`
//!   intractable analytically, §3.2);
//! * recovery takes `R(p)` on all processors and is itself fault-prone;
//! * after a successful recovery the whole remaining chunk is retried.
//!
//! Two drivers share the accounting:
//!
//! * [`engine::simulate`] — trace-driven, failed-only rejuvenation (the
//!   paper's main model);
//! * [`rejuvenate::simulate_rejuvenate_all`] — the all-rejuvenation model
//!   (Appendix B comparison), where the platform renews wholesale after
//!   every failure and so is driven by sampled minima instead of traces.
//!
//! [`bounds::lower_bound_makespan`] implements the omniscient
//! `LowerBound` of §4.1: it knows every failure date in advance and
//! checkpoints exactly `C(p)` before each failure it cannot avoid.

pub mod bounds;
pub mod energy;
pub mod events;
pub mod engine;
pub mod rejuvenate;
pub mod replication;
pub mod stats;

pub use bounds::lower_bound_makespan;
pub use energy::PowerModel;
pub use engine::{simulate, simulate_logged, SimOptions};
pub use events::{Event, EventKind};
pub use rejuvenate::simulate_rejuvenate_all;
pub use replication::{
    simulate_replicated_independent, simulate_replicated_synchronized, ReplicationStats,
};
pub use stats::RunStats;
