//! Energy accounting — the §8 "makespan is not the only objective"
//! extension.
//!
//! The paper's closing discussion singles out energy as the crucial
//! companion objective for checkpointing strategies. The engine already
//! attributes every second of a run to a phase (compute, checkpoint I/O,
//! lost compute, downtime, recovery); a [`PowerModel`] converts that
//! breakdown into platform energy, letting any experiment report joules
//! next to seconds and exposing the makespan/energy trade-off (e.g. a
//! longer period wastes more re-computation — high-power — while a
//! shorter one spends more time in lower-power I/O).

use crate::stats::RunStats;
use serde::{Deserialize, Serialize};

/// Per-processor power draw by execution phase, watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// While computing (including compute later lost to a failure).
    pub compute_w: f64,
    /// While writing or reading a checkpoint (I/O-bound phases: the
    /// checkpoint itself and recoveries).
    pub io_w: f64,
    /// While blocked (downtime cascades: processors idle).
    pub idle_w: f64,
}

impl PowerModel {
    /// A representative HPC node profile: ~200 W busy, ~120 W during I/O,
    /// ~80 W idle.
    pub fn typical_hpc() -> Self {
        Self { compute_w: 200.0, io_w: 120.0, idle_w: 80.0 }
    }

    /// Total platform energy of a run, joules (`procs` processors drawing
    /// phase power for the engine's accounted phase durations).
    pub fn energy(&self, stats: &RunStats, procs: u64) -> f64 {
        assert!(procs >= 1);
        let per_proc = (stats.work_time + stats.lost_time) * self.compute_w
            + (stats.checkpoint_time + stats.recovery_time) * self.io_w
            + stats.downtime_time * self.idle_w;
        per_proc * procs as f64
    }

    /// Energy-delay product, J·s — a standard single-figure trade-off
    /// metric.
    pub fn energy_delay_product(&self, stats: &RunStats, procs: u64) -> f64 {
        self.energy(stats, procs) * stats.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RunStats {
        RunStats {
            makespan: 100.0,
            failures: 1,
            work_time: 60.0,
            checkpoint_time: 10.0,
            lost_time: 15.0,
            downtime_time: 5.0,
            recovery_time: 10.0,
            chunks_completed: 6,
            chunk_min: 10.0,
            chunk_max: 10.0,
            decisions: 7,
            past_horizon: false,
        }
    }

    #[test]
    fn energy_weights_phases() {
        let m = PowerModel { compute_w: 100.0, io_w: 50.0, idle_w: 10.0 };
        // (60+15)·100 + (10+10)·50 + 5·10 = 7500 + 1000 + 50 = 8550 J/proc.
        assert!((m.energy(&stats(), 1) - 8_550.0).abs() < 1e-9);
        assert!((m.energy(&stats(), 4) - 4.0 * 8_550.0).abs() < 1e-9);
    }

    #[test]
    fn edp_multiplies_makespan() {
        let m = PowerModel::typical_hpc();
        let s = stats();
        assert!((m.energy_delay_product(&s, 2) - m.energy(&s, 2) * 100.0).abs() < 1e-6);
    }

    #[test]
    fn typical_profile_ordering() {
        let m = PowerModel::typical_hpc();
        assert!(m.compute_w > m.io_w && m.io_w > m.idle_w);
    }

    #[test]
    fn wasted_compute_costs_full_power() {
        // Two runs with equal makespan: the one that lost more compute to
        // failures burns more energy.
        let m = PowerModel::typical_hpc();
        let mut wasteful = stats();
        wasteful.lost_time += 10.0;
        wasteful.downtime_time -= 10.0;
        assert!(m.energy(&wasteful, 1) > m.energy(&stats(), 1));
    }
}
