//! Trace-driven execution engine (failed-only rejuvenation — the paper's
//! main model).
//!
//! Unit state is kept *flat*: a dense `Vec<f64>` of last-failure dates
//! indexed by unit id (sentinel `NEG_INFINITY` = never failed) plus a
//! descending recency list that yields the policy's age snapshot in O(f)
//! without sorting. The event stream is consumed through the
//! structure-of-arrays [`PlatformEvents`] so the hot scan for the next
//! failure only touches the packed date array.

use ckpt_platform::{AgeView, PlatformEvents, TraceSet};
use ckpt_policies::PolicySession;
use ckpt_workload::JobSpec;

use crate::events::{EventKind, EventLog};
use crate::stats::RunStats;

/// Engine options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Safety cap on decision points; exceeded only by a pathological
    /// policy (e.g. returning the minimum chunk forever).
    pub max_decisions: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self { max_decisions: 50_000_000 }
    }
}

/// Execute a job under `session` against a pre-merged platform event
/// stream.
///
/// * `spec.procs` must be covered by the trace set that produced `events`;
/// * `procs_per_unit`/`start_time`/`horizon` come from the [`TraceSet`].
///
/// Prefer [`simulate_traceset`] unless you are re-using one merged stream
/// across many policies (as `PeriodLB` does).
pub fn simulate(
    spec: &JobSpec,
    session: &mut dyn PolicySession,
    events: &PlatformEvents,
    procs_per_unit: u32,
    start_time: f64,
    horizon: f64,
    options: SimOptions,
) -> RunStats {
    let mut log = EventLog::new(false);
    simulate_impl(spec, session, events, procs_per_unit, start_time, horizon, options, &mut log)
}

/// As [`simulate`], additionally returning the full event log.
#[allow(clippy::too_many_arguments)]
pub fn simulate_logged(
    spec: &JobSpec,
    session: &mut dyn PolicySession,
    events: &PlatformEvents,
    procs_per_unit: u32,
    start_time: f64,
    horizon: f64,
    options: SimOptions,
) -> (RunStats, Vec<crate::events::Event>) {
    let mut log = EventLog::new(true);
    let stats = simulate_impl(
        spec, session, events, procs_per_unit, start_time, horizon, options, &mut log,
    );
    (stats, log.into_events())
}

/// Dense per-unit failure state: last-failure date per unit (sentinel
/// `NEG_INFINITY` = never failed) and the same dates descending, so the
/// age snapshot is a subtraction per failed unit rather than a sort.
struct UnitState {
    last_failure: Vec<f64>,
    recency: Vec<f64>,
}

impl UnitState {
    /// Bulk-load the failures before `cursor` (pre-start history): the
    /// incremental path would be quadratic on failure-dense histories.
    fn preload(unit_count: usize, times: &[f64], units: &[u32], cursor: usize) -> Self {
        let mut last_failure = vec![f64::NEG_INFINITY; unit_count];
        for i in 0..cursor {
            // Events are time-ordered: the last write wins.
            last_failure[units[i] as usize] = times[i];
        }
        let mut recency: Vec<f64> =
            last_failure.iter().copied().filter(|t| t.is_finite()).collect();
        recency.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
        Self { last_failure, recency }
    }

    /// Whether the event `(t, unit)` falls inside the unit's own downtime
    /// (the paper forbids failures during a downtime).
    #[inline]
    fn shadowed(&self, t: f64, unit: u32, downtime: f64) -> bool {
        // Never-failed units have `t − (−∞) = ∞`, which is not shadowed.
        t - self.last_failure[unit as usize] < downtime
    }

    /// Record a counted failure of `unit` at time `t`.
    fn note_failure(&mut self, unit: u32, t: f64) {
        let old = std::mem::replace(&mut self.last_failure[unit as usize], t);
        if old.is_finite() {
            // Remove the unit's previous entry (rare: repeat failures).
            if let Some(pos) = self.recency.iter().position(|&x| x == old) {
                self.recency.remove(pos);
            }
        }
        // Failures are consumed in time order, so t is (weakly) the
        // largest time seen: it belongs at the front of the list.
        let pos = self.recency.partition_point(|&x| x > t);
        self.recency.insert(pos, t);
    }

    /// Build the age snapshot without sorting (recency is descending, so
    /// ages come out ascending as [`AgeView`] requires). `buf` is a recycled
    /// backing vector — the decision loop reclaims it from the previous
    /// snapshot via [`AgeView::into_failed`], so steady-state simulation
    /// allocates no per-decision memory.
    fn ages_into(&self, procs: u64, procs_per_unit: u32, now: f64, mut buf: Vec<(f64, u32)>) -> AgeView {
        buf.clear();
        buf.extend(self.recency.iter().map(|&t| (now - t, procs_per_unit)));
        let failed_procs = buf.len() as u64 * u64::from(procs_per_unit);
        let pristine = procs.saturating_sub(failed_procs);
        AgeView::from_sorted(buf, pristine, now)
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate_impl(
    spec: &JobSpec,
    session: &mut dyn PolicySession,
    events: &PlatformEvents,
    procs_per_unit: u32,
    start_time: f64,
    horizon: f64,
    options: SimOptions,
    log: &mut EventLog,
) -> RunStats {
    let mut stats = RunStats::new();
    let mut now = start_time;
    let mut remaining = spec.work;
    let times = events.times();
    let units = events.units();
    let mut cursor = events.first_at_or_after(now);
    // Dense state needs one slot per unit the spec or the trace mentions.
    let unit_floor = (spec.procs as usize).div_ceil(procs_per_unit.max(1) as usize);
    let unit_count =
        units.iter().map(|&u| u as usize + 1).max().unwrap_or(0).max(unit_floor);
    let mut state = UnitState::preload(unit_count, times, units, cursor);
    let mut decisions = 0u64;
    // Smallest work slice the engine tracks; below this the job is done.
    let eps = spec.work * 1e-12;
    // Recycled backing storage for the per-decision age snapshot.
    let mut age_buf: Vec<(f64, u32)> = Vec::new();

    // Pop the next event at or after `now`, skipping events shadowed by
    // their own unit's downtime.
    let pop_next = |cursor: &mut usize, state: &UnitState| -> Option<(f64, u32)> {
        while *cursor < times.len() {
            let (t, u) = (times[*cursor], units[*cursor]);
            if state.shadowed(t, u, spec.downtime) {
                *cursor += 1;
            } else {
                return Some((t, u));
            }
        }
        None
    };

    while remaining > eps {
        decisions += 1;
        assert!(
            decisions <= options.max_decisions,
            "simulate: exceeded {} decisions — policy is not making progress",
            options.max_decisions
        );
        let ages = if session.wants_ages() {
            state.ages_into(spec.procs, procs_per_unit, now, std::mem::take(&mut age_buf))
        } else {
            AgeView::all_pristine(spec.procs, now)
        };
        let chunk = sanitize_chunk(session.next_chunk(remaining, &ages, now - start_time), remaining);
        age_buf = ages.into_failed();
        stats.observe_chunk(chunk);
        let attempt = chunk + spec.checkpoint;
        log.push(now, EventKind::ChunkStart { work: chunk });
        match pop_next(&mut cursor, &state) {
            Some((tf, unit)) if tf < now + attempt => {
                // Failure during compute or checkpoint.
                stats.failures += 1;
                stats.lost_time += tf - now;
                cursor += 1;
                state.note_failure(unit, tf);
                session.on_failure();
                log.push(tf, EventKind::Failure { unit });
                now = tf;
                now = settle_downtime(spec, &mut stats, &mut cursor, &mut state, times, units, now);
                log.push(now, EventKind::PlatformReady);
                now = run_recovery(
                    spec, &mut stats, &mut cursor, &mut state, times, units, now, &pop_next,
                );
                log.push(now, EventKind::RecoveryDone);
            }
            _ => {
                // Success: chunk computed and checkpointed.
                now += attempt;
                remaining -= chunk;
                stats.work_time += chunk;
                stats.checkpoint_time += spec.checkpoint;
                stats.chunks_completed += 1;
                log.push(now, EventKind::ChunkCommitted { work: chunk });
            }
        }
    }
    log.push(now, EventKind::JobDone);
    stats.decisions = decisions;
    stats.makespan = now - start_time;
    stats.past_horizon = now > horizon;
    // Telemetry only — flushed once per run, after the result is final,
    // so recording can never perturb the simulation itself.
    if ckpt_obs::active() {
        ckpt_obs::counter_add("sim.runs", 1);
        ckpt_obs::counter_add("sim.decisions", decisions);
        ckpt_obs::counter_add("sim.failures", stats.failures);
        ckpt_obs::histogram_record("sim.decisions_per_run", decisions as f64);
        ckpt_obs::histogram_record("sim.failures_per_run", stats.failures as f64);
    }
    stats
}

/// Convenience wrapper over a [`TraceSet`].
pub fn simulate_traceset(
    spec: &JobSpec,
    session: &mut dyn PolicySession,
    traces: &TraceSet,
    options: SimOptions,
) -> RunStats {
    let events = traces.platform_events();
    simulate(
        spec,
        session,
        &events,
        traces.topology.procs_per_unit() as u32,
        traces.start_time,
        traces.horizon,
        options,
    )
}

fn sanitize_chunk(chunk: f64, remaining: f64) -> f64 {
    if !chunk.is_finite() || chunk <= 0.0 {
        remaining
    } else {
        chunk.min(remaining)
    }
}

/// Absorb the downtime of the failure at `now` plus any cascading failures
/// on other units that strike before the platform is whole again. Returns
/// the time at which all processors are up.
fn settle_downtime(
    spec: &JobSpec,
    stats: &mut RunStats,
    cursor: &mut usize,
    state: &mut UnitState,
    times: &[f64],
    units: &[u32],
    now: f64,
) -> f64 {
    let mut ready = now + spec.downtime;
    while *cursor < times.len() && times[*cursor] < ready {
        let (t, u) = (times[*cursor], units[*cursor]);
        *cursor += 1;
        if state.shadowed(t, u, spec.downtime) {
            continue; // own downtime
        }
        stats.failures += 1;
        state.note_failure(u, t);
        ready = ready.max(t + spec.downtime);
    }
    stats.downtime_time += ready - now;
    ready
}

/// Event-popping closure shared by the main loop and recovery.
type PopNext<'a> = dyn Fn(&mut usize, &UnitState) -> Option<(f64, u32)> + 'a;

/// Attempt recoveries (duration `R`, fault-prone) until one completes.
#[allow(clippy::too_many_arguments)]
fn run_recovery(
    spec: &JobSpec,
    stats: &mut RunStats,
    cursor: &mut usize,
    state: &mut UnitState,
    times: &[f64],
    units: &[u32],
    mut now: f64,
    pop_next: &PopNext<'_>,
) -> f64 {
    loop {
        match pop_next(cursor, state) {
            Some((tf, unit)) if tf < now + spec.recovery => {
                // Failure during recovery: abort, downtime, retry.
                stats.failures += 1;
                stats.recovery_time += tf - now;
                *cursor += 1;
                state.note_failure(unit, tf);
                now = settle_downtime(spec, stats, cursor, state, times, units, tf);
            }
            _ => {
                stats.recovery_time += spec.recovery;
                return now + spec.recovery;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_math::SeedSequence;
    use ckpt_dist::Exponential;
    use ckpt_platform::{FailureTrace, Topology};
    use ckpt_policies::{FixedPeriod, Policy};

    fn manual_traces(failures: Vec<Vec<f64>>, horizon: f64) -> TraceSet {
        TraceSet {
            units: failures.into_iter().map(|f| FailureTrace { failures: f }).collect(),
            topology: Topology::per_processor(),
            horizon,
            start_time: 0.0,
        }
    }

    #[test]
    fn failure_free_run_is_exact() {
        // W = 1000, C = 10, period 250 → 4 chunks → makespan 1040.
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let traces = manual_traces(vec![vec![]], 1e9);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_traceset(&spec, &mut *s, &traces, SimOptions::default());
        assert!((st.makespan - 1040.0).abs() < 1e-9);
        assert_eq!(st.failures, 0);
        assert_eq!(st.chunks_completed, 4);
        assert!((st.work_time - 1000.0).abs() < 1e-9);
        assert!((st.checkpoint_time - 40.0).abs() < 1e-9);
    }

    #[test]
    fn single_failure_replays_chunk() {
        // One failure at t = 100 during the first chunk (0..250+10).
        // Timeline: lose 100, downtime 5 → 105, recovery 20 → 125,
        // then 4 chunks of 260 each → 125 + 1040 = 1165.
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let traces = manual_traces(vec![vec![100.0]], 1e9);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_traceset(&spec, &mut *s, &traces, SimOptions::default());
        assert!((st.makespan - 1165.0).abs() < 1e-9, "makespan {}", st.makespan);
        assert_eq!(st.failures, 1);
        assert!((st.lost_time - 100.0).abs() < 1e-9);
        assert!((st.downtime_time - 5.0).abs() < 1e-9);
        assert!((st.recovery_time - 20.0).abs() < 1e-9);
    }

    #[test]
    fn failure_during_checkpoint_counts() {
        // Failure at t = 255, inside the checkpoint (250..260).
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let traces = manual_traces(vec![vec![255.0]], 1e9);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_traceset(&spec, &mut *s, &traces, SimOptions::default());
        // 255 lost + 5 D + 20 R + full 1040 = 1320.
        assert!((st.makespan - 1320.0).abs() < 1e-9, "makespan {}", st.makespan);
        assert_eq!(st.chunks_completed, 4);
    }

    #[test]
    fn failure_during_recovery_cascades() {
        // Failure at 100; recovery 105..125 is hit again at 110.
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let traces = manual_traces(vec![vec![100.0, 110.0]], 1e9);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_traceset(&spec, &mut *s, &traces, SimOptions::default());
        // 100 lost + D(5) → 105; recovery aborted at 110 (5 s) + D → 115;
        // recovery 20 → 135; + 1040 = 1175.
        assert!((st.makespan - 1175.0).abs() < 1e-9, "makespan {}", st.makespan);
        assert_eq!(st.failures, 2);
    }

    #[test]
    fn own_downtime_shadows_second_failure() {
        // Second failure of the same unit 2 s after the first (within
        // D = 5): must be ignored entirely.
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let traces = manual_traces(vec![vec![100.0, 102.0]], 1e9);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_traceset(&spec, &mut *s, &traces, SimOptions::default());
        assert_eq!(st.failures, 1);
        assert!((st.makespan - 1165.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_downtimes_cascade() {
        // Two units fail 2 s apart: platform is whole again at the later
        // failure + D.
        let spec = JobSpec { procs: 2, ..JobSpec::sequential(1000.0, 10.0, 20.0, 5.0) };
        let traces = manual_traces(vec![vec![100.0], vec![102.0]], 1e9);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_traceset(&spec, &mut *s, &traces, SimOptions::default());
        assert_eq!(st.failures, 2);
        // lost 100, blocked until 102 + 5 = 107, recovery → 127, + 1040.
        assert!((st.makespan - 1167.0).abs() < 1e-9, "makespan {}", st.makespan);
    }

    #[test]
    fn ages_reflect_failures() {
        // Probe the ages the engine hands to the policy.
        struct Probe {
            snapshots: Vec<(u64, f64)>,
        }
        impl PolicySession for Probe {
            fn next_chunk(&mut self, remaining: f64, ages: &AgeView, _now: f64) -> f64 {
                let (pristine, _) = ages.pristine();
                self.snapshots.push((pristine, ages.min_age()));
                remaining.min(250.0)
            }
        }
        let spec = JobSpec { procs: 3, ..JobSpec::sequential(500.0, 10.0, 20.0, 5.0) };
        let traces = manual_traces(vec![vec![100.0], vec![], vec![]], 1e9);
        let mut probe = Probe { snapshots: vec![] };
        simulate_traceset(&spec, &mut probe, &traces, SimOptions::default());
        // First decision: all pristine.
        assert_eq!(probe.snapshots[0].0, 3);
        // After the failure at 100: 2 pristine, failed unit age = 25
        // (D + R elapsed since the failure).
        assert_eq!(probe.snapshots[1].0, 2);
        assert!((probe.snapshots[1].1 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn accounting_adds_up_to_makespan() {
        let spec = JobSpec::sequential(20_000.0, 30.0, 60.0, 10.0);
        let dist = Exponential::from_mtbf(2_000.0);
        let traces = TraceSet::generate(
            &dist,
            1,
            Topology::per_processor(),
            1e7,
            0.0,
            SeedSequence::from_label("engine-accounting"),
        );
        let policy = FixedPeriod::new("p", 400.0);
        let mut s = policy.session();
        let st = simulate_traceset(&spec, &mut *s, &traces, SimOptions::default());
        assert!(st.failures > 0, "want at least one failure for this test");
        assert!(
            (st.accounted() - st.makespan).abs() < 1e-6 * st.makespan,
            "accounted {} vs makespan {}",
            st.accounted(),
            st.makespan
        );
    }

    #[test]
    fn more_failures_longer_makespan() {
        let spec = JobSpec::sequential(100_000.0, 60.0, 60.0, 10.0);
        let policy = FixedPeriod::new("p", 3_000.0);
        let mk = |mtbf: f64| {
            let dist = Exponential::from_mtbf(mtbf);
            let traces = TraceSet::generate(
                &dist,
                1,
                Topology::per_processor(),
                1e8,
                0.0,
                SeedSequence::from_label("engine-mtbf"),
            );
            let mut s = policy.session();
            simulate_traceset(&spec, &mut *s, &traces, SimOptions::default()).makespan
        };
        assert!(mk(5_000.0) > mk(500_000.0));
    }

    #[test]
    fn event_log_records_the_run() {
        let spec = JobSpec::sequential(500.0, 10.0, 20.0, 5.0);
        let traces = manual_traces(vec![vec![100.0]], 1e9);
        let events = traces.platform_events();
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let (stats, log) = crate::engine::simulate_logged(
            &spec,
            &mut *s,
            &events,
            1,
            0.0,
            1e9,
            SimOptions::default(),
        );
        use crate::events::EventKind;
        // One failure, two committed chunks, one job-done marker.
        let failures = log.iter().filter(|e| matches!(e.kind, EventKind::Failure { .. })).count();
        let commits = log
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ChunkCommitted { .. }))
            .count();
        assert_eq!(failures as u64, stats.failures);
        assert_eq!(commits as u64, stats.chunks_completed);
        assert!(matches!(log.last().expect("non-empty").kind, EventKind::JobDone));
        // Time-ordered.
        for w in log.windows(2) {
            assert!(w[0].time <= w[1].time + 1e-9);
        }
        // Committed work sums to the job's work.
        let committed: f64 = log
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::ChunkCommitted { work } => Some(work),
                _ => None,
            })
            .sum();
        assert!((committed - spec.work).abs() < 1e-9);
    }

    #[test]
    fn node_granularity_fails_whole_node() {
        // 4-proc nodes: one unit failure must leave p−4 pristine procs.
        struct Probe(Vec<u64>);
        impl PolicySession for Probe {
            fn next_chunk(&mut self, remaining: f64, ages: &AgeView, _now: f64) -> f64 {
                self.0.push(ages.pristine().0);
                remaining.min(300.0)
            }
        }
        let spec = JobSpec { procs: 8, ..JobSpec::sequential(600.0, 10.0, 20.0, 5.0) };
        let traces = TraceSet {
            units: vec![
                FailureTrace { failures: vec![50.0] },
                FailureTrace { failures: vec![] },
            ],
            topology: Topology::nodes_of(4),
            horizon: 1e9,
            start_time: 0.0,
        };
        let mut probe = Probe(vec![]);
        simulate_traceset(&spec, &mut probe, &traces, SimOptions::default());
        assert_eq!(probe.0[0], 8);
        assert_eq!(probe.0[1], 4);
    }
}
