//! Job replication across platform halves — the §8 "future directions"
//! experiment, made concrete.
//!
//! The paper closes by asking whether, in the presence of failures, it
//! pays to *replicate* a job on both halves of the platform (each half
//! running with `p/2` processors, hence slower failure-free but failing
//! half as often), either independently or synchronizing after each
//! checkpoint. This module implements both:
//!
//! * [`simulate_replicated_independent`] — the two replicas race to the
//!   end; the job completes when the first one does.
//! * [`simulate_replicated_synchronized`] — chunk-level synchronization:
//!   both replicas attempt the same chunk from the same global state; the
//!   chunk commits at the *earlier* of the two completion times (a
//!   checkpoint taken by either replica is shared), after which both
//!   resume from it.
//!
//! Both reuse the per-half failure semantics of the main engine
//! (downtime cascades, fault-prone recoveries, failed-only rejuvenation).

use ckpt_platform::{PlatformEvents, TraceSet};
use ckpt_policies::PolicySession;
use ckpt_workload::JobSpec;
use std::collections::HashMap;

use crate::engine::SimOptions;

/// Outcome of a replicated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationStats {
    /// Wall-clock to completion (first replica to finish / last chunk
    /// committed), seconds.
    pub makespan: f64,
    /// Failures witnessed by each replica.
    pub failures: [u64; 2],
    /// Chunks committed (synchronized mode) or chunks of the winning
    /// replica (independent mode).
    pub chunks_completed: u64,
    /// Which replica finished first (independent mode; 0 in synchronized
    /// mode where completion is joint).
    pub winner: usize,
}

/// Per-half failure bookkeeping shared by both modes.
struct Half<'a> {
    events: &'a PlatformEvents,
    cursor: usize,
    last_failure: HashMap<u32, f64>,
    failures: u64,
}

impl<'a> Half<'a> {
    fn new(events: &'a PlatformEvents, start: f64) -> Self {
        Self {
            events,
            cursor: events.first_at_or_after(start),
            last_failure: HashMap::new(),
            failures: 0,
        }
    }

    /// Next effective failure at or after `t` (skipping events inside
    /// their unit's own downtime), without consuming it.
    fn peek(&mut self, t: f64, downtime: f64) -> Option<(f64, u32)> {
        let times = self.events.times();
        // The cursor never moves backwards; catch it up to `t` first.
        while self.cursor < times.len() && times[self.cursor] < t {
            self.cursor += 1;
        }
        let mut i = self.cursor;
        while i < times.len() {
            let (time, unit) = self.events.get(i);
            match self.last_failure.get(&unit) {
                Some(&lf) if time - lf < downtime => i += 1,
                _ => return Some((time, unit)),
            }
        }
        None
    }

    /// Absorb one failure and the downtime/recovery chain it triggers;
    /// returns the time at which this half is running again.
    fn absorb_failure(&mut self, spec: &JobSpec, at: f64, unit: u32) -> f64 {
        self.failures += 1;
        self.last_failure.insert(unit, at);
        let mut ready = at + spec.downtime;
        // Cascading downtimes.
        loop {
            match self.peek(at, spec.downtime) {
                Some((t, u)) if t < ready => {
                    self.cursor += 1;
                    self.failures += 1;
                    self.last_failure.insert(u, t);
                    ready = ready.max(t + spec.downtime);
                }
                _ => break,
            }
        }
        // Fault-prone recovery attempts.
        loop {
            match self.peek(ready, spec.downtime) {
                Some((t, u)) if t < ready + spec.recovery => {
                    self.cursor += 1;
                    self.failures += 1;
                    self.last_failure.insert(u, t);
                    let mut r2 = t + spec.downtime;
                    loop {
                        match self.peek(t, spec.downtime) {
                            Some((t3, u3)) if t3 < r2 => {
                                self.cursor += 1;
                                self.failures += 1;
                                self.last_failure.insert(u3, t3);
                                r2 = r2.max(t3 + spec.downtime);
                            }
                            _ => break,
                        }
                    }
                    ready = r2;
                }
                _ => return ready + spec.recovery,
            }
        }
    }

    /// Completion time of one chunk attempt of `chunk + C` starting at
    /// `from`, retrying through failures until it commits.
    fn complete_chunk(&mut self, spec: &JobSpec, from: f64, chunk: f64, cap: u64) -> f64 {
        let mut now = from;
        let attempt = chunk + spec.checkpoint;
        for _ in 0..cap {
            match self.peek(now, spec.downtime) {
                Some((tf, unit)) if tf < now + attempt => {
                    self.cursor += 1;
                    now = self.absorb_failure(spec, tf, unit);
                }
                _ => return now + attempt,
            }
        }
        panic!("replicated chunk never completed within {cap} retries");
    }
}

/// Independent replication: both replicas run the full job on their own
/// half; the first to finish wins.
pub fn simulate_replicated_independent(
    spec_half: &JobSpec,
    sessions: [&mut dyn PolicySession; 2],
    halves: [&TraceSet; 2],
    options: SimOptions,
) -> ReplicationStats {
    let [sa, sb] = sessions;
    let run = |session: &mut dyn PolicySession, traces: &TraceSet| {
        let events = traces.platform_events();
        crate::engine::simulate(
            spec_half,
            session,
            &events,
            traces.topology.procs_per_unit() as u32,
            traces.start_time,
            traces.horizon,
            options,
        )
    };
    let a = run(sa, halves[0]);
    let b = run(sb, halves[1]);
    let winner = usize::from(b.makespan < a.makespan);
    let best = if winner == 0 { &a } else { &b };
    ReplicationStats {
        makespan: best.makespan,
        failures: [a.failures, b.failures],
        chunks_completed: best.chunks_completed,
        winner,
    }
}

/// Checkpoint-synchronized replication: each chunk commits at the earlier
/// of the two replicas' completion times.
pub fn simulate_replicated_synchronized(
    spec_half: &JobSpec,
    session: &mut dyn PolicySession,
    halves: [&TraceSet; 2],
    options: SimOptions,
) -> ReplicationStats {
    let events: [PlatformEvents; 2] = [halves[0].platform_events(), halves[1].platform_events()];
    let start = halves[0].start_time.max(halves[1].start_time);
    let mut h = [Half::new(&events[0], start), Half::new(&events[1], start)];
    let mut now = start;
    let mut remaining = spec_half.work;
    let mut chunks = 0u64;
    let eps = spec_half.work * 1e-12;
    let cap = options.max_decisions;
    while remaining > eps {
        // Ages across both halves would require merged bookkeeping; the
        // synchronized protocol is evaluated with periodic policies in
        // the §8 experiment, which ignore ages.
        let ages = ckpt_platform::AgeView::all_pristine(spec_half.procs * 2, now - start);
        let chunk = {
            let c = session.next_chunk(remaining, &ages, now - start);
            if !c.is_finite() || c <= 0.0 {
                remaining
            } else {
                c.min(remaining)
            }
        };
        let t0 = h[0].complete_chunk(spec_half, now, chunk, cap);
        let t1 = h[1].complete_chunk(spec_half, now, chunk, cap);
        now = t0.min(t1);
        remaining -= chunk;
        chunks += 1;
    }
    ReplicationStats {
        makespan: now - start,
        failures: [h[0].failures, h[1].failures],
        chunks_completed: chunks,
        winner: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_math::SeedSequence;
    use ckpt_dist::Exponential;
    use ckpt_platform::{FailureTrace, Topology};
    use ckpt_policies::{FixedPeriod, Policy};

    fn manual(failures: Vec<Vec<f64>>) -> TraceSet {
        TraceSet {
            units: failures.into_iter().map(|f| FailureTrace { failures: f }).collect(),
            topology: Topology::per_processor(),
            horizon: 1e12,
            start_time: 0.0,
        }
    }

    #[test]
    fn synchronized_takes_min_per_chunk() {
        // Half A fails during chunk 1; half B sails through: chunk commits
        // at B's time. W = 500, period 250, C = 10.
        let spec = JobSpec::sequential(500.0, 10.0, 20.0, 5.0);
        let a = manual(vec![vec![100.0]]);
        let b = manual(vec![vec![]]);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_replicated_synchronized(&spec, &mut *s, [&a, &b], SimOptions::default());
        // Both chunks commit failure-free on B: 2 × 260 = 520.
        assert!((st.makespan - 520.0).abs() < 1e-9, "makespan {}", st.makespan);
        assert_eq!(st.failures, [1, 0]);
        assert_eq!(st.chunks_completed, 2);
    }

    #[test]
    fn synchronized_slower_half_catches_up() {
        // Both halves fail alternately: each chunk still commits at the
        // healthy half's pace.
        let spec = JobSpec::sequential(500.0, 10.0, 20.0, 5.0);
        let a = manual(vec![vec![100.0]]); // fails in chunk 1
        let b = manual(vec![vec![300.0]]); // fails in chunk 2 (260..520)
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_replicated_synchronized(&spec, &mut *s, [&a, &b], SimOptions::default());
        // Chunk 1 commits on B at 260. Chunk 2: A runs 260..520 clean;
        // B fails at 300. Commit at A's 520.
        assert!((st.makespan - 520.0).abs() < 1e-9, "makespan {}", st.makespan);
        assert_eq!(st.failures, [1, 1]);
    }

    #[test]
    fn independent_picks_winner() {
        let spec = JobSpec::sequential(500.0, 10.0, 20.0, 5.0);
        let a = manual(vec![vec![100.0]]);
        let b = manual(vec![vec![]]);
        let policy = FixedPeriod::new("p", 250.0);
        let mut sa = policy.session();
        let mut sb = policy.session();
        let st = simulate_replicated_independent(
            &spec,
            [&mut *sa, &mut *sb],
            [&a, &b],
            SimOptions::default(),
        );
        assert_eq!(st.winner, 1);
        assert!((st.makespan - 520.0).abs() < 1e-9);
    }

    #[test]
    fn synchronized_beats_solo_on_average() {
        // Statistical check: chunk-level synchronization should on average
        // beat either replica running alone (per-trace dominance is not a
        // theorem — starting a chunk earlier can run it into a failure a
        // later start would have missed — but the mean advantage is the
        // §8 hypothesis).
        let spec = JobSpec::sequential(40_000.0, 30.0, 60.0, 10.0);
        let dist = Exponential::from_mtbf(4_000.0);
        let policy = FixedPeriod::new("p", 1_000.0);
        let runs = 30u64;
        let (mut sync_sum, mut solo_a, mut solo_b) = (0.0, 0.0, 0.0);
        for seed in 0..runs {
            let a = TraceSet::generate(
                &dist, 1, Topology::per_processor(), 1e8, 0.0,
                SeedSequence::new(seed),
            );
            let b = TraceSet::generate(
                &dist, 1, Topology::per_processor(), 1e8, 0.0,
                SeedSequence::new(seed + 1_000),
            );
            let mut s = policy.session();
            sync_sum += simulate_replicated_synchronized(
                &spec, &mut *s, [&a, &b], SimOptions::default(),
            )
            .makespan;
            let mut sa = policy.session();
            solo_a += crate::engine::simulate_traceset(&spec, &mut *sa, &a, SimOptions::default())
                .makespan;
            let mut sb = policy.session();
            solo_b += crate::engine::simulate_traceset(&spec, &mut *sb, &b, SimOptions::default())
                .makespan;
        }
        let n = runs as f64;
        assert!(
            sync_sum / n <= (solo_a / n).min(solo_b / n) * 1.01,
            "sync mean {} vs solo means {} / {}",
            sync_sum / n,
            solo_a / n,
            solo_b / n
        );
    }
}
