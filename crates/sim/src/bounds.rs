//! `LowerBound` — the omniscient algorithm of §4.1.
//!
//! Knowing every failure date in advance, it computes until exactly
//! `C(p)` before each unavoidable failure, checkpoints just in time (losing
//! no work, ever), then pays the downtime/recovery chain and resumes. Its
//! makespan is an absolute lower bound on any policy's makespan for the
//! same trace; it is unattainable in practice.

use ckpt_platform::TraceSet;
use ckpt_workload::JobSpec;

use crate::stats::RunStats;

/// Omniscient lower bound on the makespan achievable on this trace.
pub fn lower_bound_makespan(spec: &JobSpec, traces: &TraceSet) -> RunStats {
    let events = traces.platform_events();
    let mut stats = RunStats::new();
    let mut now = traces.start_time;
    let mut remaining = spec.work;
    let mut cursor = events.first_at_or_after(now);
    // Track per-unit last failures only to honour the no-failure-during-
    // own-downtime rule.
    let mut last_failure: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let eps = spec.work * 1e-12;

    while remaining > eps {
        // Next effective failure.
        let next = loop {
            if cursor >= events.len() {
                break None;
            }
            let (t, u) = events.get(cursor);
            match last_failure.get(&u) {
                Some(&lf) if t - lf < spec.downtime => cursor += 1,
                _ => break Some((t, u)),
            }
        };
        match next {
            // Everything fits before the next failure (one final
            // just-in-time checkpoint included).
            Some((tf, _)) if now + remaining + spec.checkpoint > tf => {
                // Compute until C before the failure, checkpoint, lose
                // nothing.
                let window = (tf - now - spec.checkpoint).max(0.0);
                let work = window.min(remaining);
                remaining -= work;
                stats.work_time += work;
                if work > 0.0 {
                    stats.checkpoint_time += spec.checkpoint;
                    stats.chunks_completed += 1;
                }
                stats.failures += 1;
                last_failure.insert(next.expect("some").1, tf);
                cursor += 1;
                // Downtime (with cascades) then one recovery; the oracle
                // also foresees recovery failures and absorbs them.
                now = tf;
                let mut ready = now + spec.downtime;
                loop {
                    match (cursor < events.len()).then(|| events.get(cursor)) {
                        Some((t, u)) if t < ready + spec.recovery => {
                            cursor += 1;
                            if let Some(&lf) = last_failure.get(&u) {
                                if t - lf < spec.downtime {
                                    continue;
                                }
                            }
                            if t < ready {
                                // Cascaded downtime.
                                stats.failures += 1;
                                last_failure.insert(u, t);
                                ready = ready.max(t + spec.downtime);
                            } else {
                                // Failure during recovery: abort, extend.
                                stats.failures += 1;
                                stats.recovery_time += t - ready;
                                last_failure.insert(u, t);
                                ready = t + spec.downtime;
                            }
                        }
                        _ => break,
                    }
                }
                stats.downtime_time += ready - now;
                stats.recovery_time += spec.recovery;
                now = ready + spec.recovery;
            }
            _ => {
                // Failure-free to the end: finish with one checkpoint.
                now += remaining + spec.checkpoint;
                stats.work_time += remaining;
                stats.checkpoint_time += spec.checkpoint;
                stats.chunks_completed += 1;
                remaining = 0.0;
            }
        }
    }
    stats.makespan = now - traces.start_time;
    stats.past_horizon = now > traces.horizon;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_math::SeedSequence;
    use ckpt_dist::Exponential;
    use ckpt_platform::{FailureTrace, Topology};
    use ckpt_policies::{FixedPeriod, Policy};

    fn manual(failures: Vec<Vec<f64>>) -> TraceSet {
        TraceSet {
            units: failures.into_iter().map(|f| FailureTrace { failures: f }).collect(),
            topology: Topology::per_processor(),
            horizon: 1e12,
            start_time: 0.0,
        }
    }

    #[test]
    fn failure_free_bound_is_w_plus_c() {
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let st = lower_bound_makespan(&spec, &manual(vec![vec![]]));
        assert!((st.makespan - 1010.0).abs() < 1e-9);
        assert_eq!(st.failures, 0);
    }

    #[test]
    fn one_failure_loses_nothing() {
        // Failure at 400: work 390 + C 10 checkpointed just in time, then
        // D 5 + R 20 (→ 425), then remaining 610 + C 10: total 1045.
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let st = lower_bound_makespan(&spec, &manual(vec![vec![400.0]]));
        assert!((st.makespan - 1045.0).abs() < 1e-9, "got {}", st.makespan);
        assert!((st.work_time - 1000.0).abs() < 1e-9);
        assert_eq!(st.failures, 1);
    }

    #[test]
    fn bound_never_exceeds_any_policy() {
        let spec = JobSpec::sequential(50_000.0, 60.0, 60.0, 10.0);
        let dist = Exponential::from_mtbf(3_000.0);
        for seed in 0..20u64 {
            let traces = ckpt_platform::TraceSet::generate(
                &dist,
                1,
                Topology::per_processor(),
                1e8,
                0.0,
                SeedSequence::new(seed),
            );
            let lb = lower_bound_makespan(&spec, &traces).makespan;
            for period in [500.0, 1_000.0, 2_000.0, 8_000.0] {
                let policy = FixedPeriod::new("p", period);
                let mut s = policy.session();
                let st = crate::engine::simulate_traceset(
                    &spec,
                    &mut *s,
                    &traces,
                    crate::SimOptions::default(),
                );
                assert!(
                    lb <= st.makespan + 1e-6,
                    "seed {seed} period {period}: LB {lb} > policy {}",
                    st.makespan
                );
            }
        }
    }

    #[test]
    fn dense_failures_still_terminate() {
        // Failures every 50 s for a while, then quiet.
        let fails: Vec<f64> = (1..200).map(|i| i as f64 * 50.0).collect();
        let spec = JobSpec::sequential(5_000.0, 10.0, 20.0, 5.0);
        let st = lower_bound_makespan(&spec, &manual(vec![fails]));
        assert!(st.makespan.is_finite());
        assert!((st.work_time - 5_000.0).abs() < 1e-6);
    }
}
