//! Optional per-run event log.
//!
//! When [`crate::SimOptions::record_events`] is set, the engine emits a
//! time-ordered trace of everything that happened — useful for debugging
//! policies, for visualising executions, and for auditing the phase
//! accounting that the energy model (§8 extension) builds on.

use serde::{Deserialize, Serialize};

/// One logged event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Absolute simulation time, seconds.
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Event kinds emitted by the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A chunk attempt began (`work` seconds + checkpoint).
    ChunkStart {
        /// Work content of the attempt, seconds.
        work: f64,
    },
    /// The running chunk and its checkpoint committed.
    ChunkCommitted {
        /// Work retired, seconds.
        work: f64,
    },
    /// A failure struck the given unit.
    Failure {
        /// Failing unit index.
        unit: u32,
    },
    /// All processors are up again after downtime cascades.
    PlatformReady,
    /// A recovery attempt completed successfully.
    RecoveryDone,
    /// The job completed.
    JobDone,
}

/// Growable event log; a no-op when disabled so the hot path pays one
/// branch.
#[derive(Debug, Default)]
pub struct EventLog {
    enabled: bool,
    events: Vec<Event>,
}

impl EventLog {
    /// An enabled or disabled log.
    pub fn new(enabled: bool) -> Self {
        Self { enabled, events: Vec::new() }
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn push(&mut self, time: f64, kind: EventKind) {
        if self.enabled {
            self.events.push(Event { time, kind });
        }
    }

    /// Consume into the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new(false);
        log.push(1.0, EventKind::PlatformReady);
        assert!(log.into_events().is_empty());
    }

    #[test]
    fn enabled_log_keeps_order() {
        let mut log = EventLog::new(true);
        log.push(1.0, EventKind::ChunkStart { work: 5.0 });
        log.push(6.0, EventKind::ChunkCommitted { work: 5.0 });
        log.push(6.0, EventKind::JobDone);
        let ev = log.into_events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].kind, EventKind::ChunkStart { work: 5.0 });
        assert_eq!(ev[2].kind, EventKind::JobDone);
    }
}
