//! Per-run accounting.

use serde::{Deserialize, Serialize};

/// Outcome of one simulated job execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Wall-clock from job start to completion, seconds.
    pub makespan: f64,
    /// Number of failures that struck during the execution (including
    /// failures during recoveries and cascaded downtimes).
    pub failures: u64,
    /// Productive compute time (work that ended up checkpointed), seconds.
    pub work_time: f64,
    /// Time spent writing checkpoints that completed, seconds.
    pub checkpoint_time: f64,
    /// Compute/checkpoint time thrown away by failures, seconds.
    pub lost_time: f64,
    /// Time blocked on downtimes (including cascades), seconds.
    pub downtime_time: f64,
    /// Time spent in recovery attempts (successful and aborted), seconds.
    pub recovery_time: f64,
    /// Number of chunks successfully executed and checkpointed.
    pub chunks_completed: u64,
    /// Decision points: chunks attempted, i.e. policy consultations
    /// (each either commits or is cut short by a failure).
    pub decisions: u64,
    /// Smallest and largest chunk the policy attempted, seconds.
    pub chunk_min: f64,
    /// Largest chunk attempted, seconds.
    pub chunk_max: f64,
    /// True when the execution ran past the trace horizon (no failure data
    /// beyond it; the engine treats the remainder as failure-free).
    pub past_horizon: bool,
}

impl RunStats {
    pub(crate) fn new() -> Self {
        Self {
            makespan: 0.0,
            failures: 0,
            work_time: 0.0,
            checkpoint_time: 0.0,
            lost_time: 0.0,
            downtime_time: 0.0,
            recovery_time: 0.0,
            chunks_completed: 0,
            decisions: 0,
            chunk_min: f64::INFINITY,
            chunk_max: 0.0,
            past_horizon: false,
        }
    }

    /// Total accounted time; equals the makespan up to floating error.
    pub fn accounted(&self) -> f64 {
        self.work_time
            + self.checkpoint_time
            + self.lost_time
            + self.downtime_time
            + self.recovery_time
    }

    pub(crate) fn observe_chunk(&mut self, chunk: f64) {
        self.chunk_min = self.chunk_min.min(chunk);
        self.chunk_max = self.chunk_max.max(chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounted_sums_categories() {
        let mut s = RunStats::new();
        s.work_time = 10.0;
        s.checkpoint_time = 2.0;
        s.lost_time = 3.0;
        s.downtime_time = 1.0;
        s.recovery_time = 4.0;
        assert_eq!(s.accounted(), 20.0);
    }

    #[test]
    fn chunk_extremes_track() {
        let mut s = RunStats::new();
        s.observe_chunk(5.0);
        s.observe_chunk(2.0);
        s.observe_chunk(9.0);
        assert_eq!(s.chunk_min, 2.0);
        assert_eq!(s.chunk_max, 9.0);
    }
}
