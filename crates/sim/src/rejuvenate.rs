//! All-processor rejuvenation driver (Appendix B's alternative model).
//!
//! Under rejuvenate-all, every failure resets every processor's lifetime,
//! so the platform renews wholesale and its failures are iid draws from
//! the *minimum-of-p* distribution (for Weibull processors:
//! `Weibull(λ/p^{1/k}, k)`, see [`ckpt_dist::Weibull::min_of`]). Instead of
//! pre-sampled traces the driver samples the next platform failure lazily
//! at each renewal point, and every processor always shares the same age.

use ckpt_dist::FailureDistribution;
use ckpt_platform::AgeView;
use ckpt_policies::PolicySession;
use ckpt_workload::JobSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::SimOptions;
use crate::stats::RunStats;

/// Execute a job under the rejuvenate-all model.
///
/// `platform_dist` must be the distribution of *platform* inter-failure
/// times after a full rejuvenation (minimum over the enrolled processors).
pub fn simulate_rejuvenate_all(
    spec: &JobSpec,
    session: &mut dyn PolicySession,
    platform_dist: &dyn FailureDistribution,
    seed: u64,
    options: SimOptions,
) -> RunStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunStats::new();
    let mut now = 0.0f64;
    let mut remaining = spec.work;
    // Last wholesale rejuvenation instant and the sampled failure date.
    let mut rejuv_at = 0.0f64;
    let mut next_failure = platform_dist.sample(&mut rng);
    let mut decisions = 0u64;
    let eps = spec.work * 1e-12;

    while remaining > eps {
        decisions += 1;
        assert!(
            decisions <= options.max_decisions,
            "simulate_rejuvenate_all: exceeded {} decisions",
            options.max_decisions
        );
        let ages = AgeView::all_pristine(spec.procs, now - rejuv_at);
        let chunk = {
            let c = session.next_chunk(remaining, &ages, now);
            if !c.is_finite() || c <= 0.0 {
                remaining
            } else {
                c.min(remaining)
            }
        };
        stats.observe_chunk(chunk);
        let attempt = chunk + spec.checkpoint;
        let fail_abs = rejuv_at + next_failure;
        if fail_abs < now + attempt {
            // Failure during compute/checkpoint.
            stats.failures += 1;
            stats.lost_time += fail_abs - now;
            session.on_failure();
            now = fail_abs;
            // Downtime rejuvenates everyone; failures cannot strike during
            // a downtime in this model (all processors are down together).
            now += spec.downtime;
            stats.downtime_time += spec.downtime;
            rejuv_at = now;
            next_failure = platform_dist.sample(&mut rng);
            // Fault-prone recovery attempts.
            loop {
                let fail_abs = rejuv_at + next_failure;
                if fail_abs < now + spec.recovery {
                    stats.failures += 1;
                    stats.recovery_time += fail_abs - now;
                    now = fail_abs + spec.downtime;
                    stats.downtime_time += spec.downtime;
                    rejuv_at = now;
                    next_failure = platform_dist.sample(&mut rng);
                } else {
                    stats.recovery_time += spec.recovery;
                    now += spec.recovery;
                    break;
                }
            }
        } else {
            now += attempt;
            remaining -= chunk;
            stats.work_time += chunk;
            stats.checkpoint_time += spec.checkpoint;
            stats.chunks_completed += 1;
        }
    }
    stats.makespan = now;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dist::{Exponential, Weibull};
    use ckpt_policies::{FixedPeriod, Policy};

    #[test]
    fn failure_free_limit() {
        // Platform MTBF astronomically larger than the job: exact result.
        let spec = JobSpec::sequential(1000.0, 10.0, 20.0, 5.0);
        let d = Exponential::from_mtbf(1e15);
        let policy = FixedPeriod::new("p", 250.0);
        let mut s = policy.session();
        let st = simulate_rejuvenate_all(&spec, &mut *s, &d, 1, SimOptions::default());
        assert!((st.makespan - 1040.0).abs() < 1e-9);
        assert_eq!(st.failures, 0);
    }

    #[test]
    fn ages_reset_after_failure() {
        struct Probe(Vec<f64>);
        impl PolicySession for Probe {
            fn next_chunk(&mut self, remaining: f64, ages: &AgeView, _now: f64) -> f64 {
                self.0.push(ages.min_age());
                remaining.min(100.0)
            }
        }
        // Deterministic-ish: small MTBF guarantees failures.
        let spec = JobSpec::sequential(2_000.0, 5.0, 10.0, 2.0);
        let d = Exponential::from_mtbf(300.0);
        let mut probe = Probe(vec![]);
        let st = simulate_rejuvenate_all(&spec, &mut probe, &d, 7, SimOptions::default());
        assert!(st.failures > 0);
        // Ages start at 0, grow, and reset below R + one attempt after
        // failures; specifically some later snapshot must be smaller than
        // its predecessor (the reset).
        let resets = probe.0.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(resets as u64 >= st.failures.min(1));
    }

    #[test]
    fn weibull_rejuvenation_hurts_at_scale() {
        // The §3.1 argument made operational: the same per-processor
        // Weibull at p = 4096 yields far more failures (per unit work)
        // under rejuvenate-all than failed-only, because the platform
        // renews into its high-hazard infancy after every failure.
        let p = 4_096u64;
        let year = 365.25 * 86_400.0;
        let proc = Weibull::from_mtbf(0.7, 125.0 * year);
        let plat = proc.min_of(p);
        let spec = JobSpec { procs: p, ..JobSpec::sequential(30.0 * 86_400.0, 600.0, 600.0, 60.0) };
        let policy = FixedPeriod::new("p", 20_000.0);
        let mut total_rejuv = 0u64;
        for seed in 0..5 {
            let mut s = policy.session();
            let st = simulate_rejuvenate_all(&spec, &mut *s, &plat, seed, SimOptions::default());
            total_rejuv += st.failures;
        }
        // Failed-only platform MTBF would be (125y + 60)/4096 ≈ 11 days:
        // ≈ 3 failures per 34-day run. Rejuvenate-all MTBF is
        // 125y/4096^{1/0.7} ≈ 0.9 days: dozens of failures per run.
        assert!(
            total_rejuv > 5 * 15,
            "expected heavy failure load under rejuvenate-all, got {total_rejuv}"
        );
    }

    #[test]
    fn accounting_adds_up() {
        let spec = JobSpec::sequential(5_000.0, 20.0, 40.0, 5.0);
        let d = Exponential::from_mtbf(700.0);
        let policy = FixedPeriod::new("p", 200.0);
        let mut s = policy.session();
        let st = simulate_rejuvenate_all(&spec, &mut *s, &d, 3, SimOptions::default());
        assert!((st.accounted() - st.makespan).abs() < 1e-6 * st.makespan);
    }
}
