//! Property-based invariants every failure distribution must satisfy.

use ckpt_dist::{
    Empirical, Exponential, FailureDistribution, GammaDist, LogNormal, MinOf, Mixture, Weibull,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All families at a parameter point derived from the inputs.
fn zoo(mean: f64, shape: f64) -> Vec<Box<dyn FailureDistribution>> {
    vec![
        Box::new(Exponential::from_mtbf(mean)),
        Box::new(Weibull::from_mtbf(shape, mean)),
        Box::new(GammaDist::from_mtbf(shape, mean)),
        Box::new(LogNormal::from_mtbf(1.0, mean)),
        Box::new(Mixture::new(vec![
            (0.4, Box::new(Exponential::from_mtbf(mean * 0.2)) as Box<dyn FailureDistribution>),
            (0.6, Box::new(Weibull::from_mtbf(shape, mean * 1.5))),
        ])),
        Box::new(MinOf::new(Box::new(Weibull::from_mtbf(shape, mean * 64.0)), 64)),
        Box::new(Empirical::from_durations(vec![
            mean * 0.1,
            mean * 0.5,
            mean,
            mean * 1.5,
            mean * 3.0,
        ])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn log_survival_contract(
        mean in 10.0..1e7f64,
        shape in 0.3..2.0f64,
        t in 0.0..1e7f64,
    ) {
        for d in zoo(mean, shape) {
            let ls = d.log_survival(t);
            prop_assert!(ls <= 1e-12, "{d:?}: ln S({t}) = {ls} > 0");
            prop_assert!(d.log_survival(0.0) == 0.0, "{d:?}: ln S(0) ≠ 0");
            prop_assert!(d.log_survival(-1.0) == 0.0, "{d:?}: ln S(-1) ≠ 0");
            // Monotone non-increasing.
            let ls2 = d.log_survival(t * 1.5 + 1.0);
            prop_assert!(ls2 <= ls + 1e-12, "{d:?}: survival increased");
        }
    }

    #[test]
    fn cdf_complements_survival(
        mean in 10.0..1e6f64,
        shape in 0.3..2.0f64,
        t in 0.0..1e6f64,
    ) {
        for d in zoo(mean, shape) {
            let s = d.survival(t) + d.cdf(t);
            prop_assert!((s - 1.0).abs() < 1e-9, "{d:?}: S + F = {s}");
        }
    }

    #[test]
    fn psuc_chains_multiplicatively(
        mean in 100.0..1e6f64,
        shape in 0.3..2.0f64,
        tau in 0.0..1e5f64,
        x1 in 1.0..1e5f64,
        x2 in 1.0..1e5f64,
    ) {
        // P(survive x1+x2 | τ) = P(x1 | τ) · P(x2 | τ+x1).
        for d in zoo(mean, shape) {
            let joint = d.psuc(x1 + x2, tau);
            let chained = d.psuc(x1, tau) * d.psuc(x2, tau + x1);
            prop_assert!(
                (joint - chained).abs() <= 1e-9 * joint.max(1e-12),
                "{d:?}: chain rule broken ({joint} vs {chained})"
            );
        }
    }

    #[test]
    fn inverse_survival_round_trip(
        mean in 100.0..1e6f64,
        shape in 0.3..2.0f64,
        s in 0.25..0.95f64,
    ) {
        // s stays above 1/n for the 5-point Empirical member, whose
        // smallest achievable survival is 0.2.
        for d in zoo(mean, shape) {
            let t = d.inverse_survival(s);
            prop_assert!(t >= 0.0 && t.is_finite(), "{d:?}: quantile {t}");
            // Survival at t is ≤ s (right-continuous step for Empirical).
            prop_assert!(
                d.survival(t) <= s + 1e-6,
                "{d:?}: S({t}) = {} > {s}", d.survival(t)
            );
        }
    }

    #[test]
    fn samples_respect_survival(
        mean in 100.0..10_000.0f64,
        shape in 0.4..1.5f64,
        seed in 0u64..100,
    ) {
        // Kolmogorov-style single-point check at the median.
        for d in zoo(mean, shape) {
            let med = d.inverse_survival(0.5);
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4_000;
            let above = (0..n).filter(|_| d.sample(&mut rng) >= med).count() as f64 / n as f64;
            let expect = d.survival(med);
            prop_assert!(
                (above - expect).abs() < 0.05,
                "{d:?}: {above} of samples above the median point, expected {expect}"
            );
        }
    }

    #[test]
    fn hazard_non_negative(
        mean in 100.0..1e6f64,
        shape in 0.3..2.0f64,
        t in 1.0..1e6f64,
    ) {
        for d in zoo(mean, shape) {
            if d.survival(t) <= 0.0 {
                // Past a bounded support the hazard is undefined.
                continue;
            }
            let h = d.hazard(t);
            prop_assert!(h >= -1e-9, "{d:?}: hazard {h} < 0 at {t}");
        }
    }

    #[test]
    fn expected_loss_consistent_with_mean_at_full_support(
        mean in 100.0..100_000.0f64,
        shape in 0.5..1.5f64,
    ) {
        // Conditioning on failure within a huge window ≈ unconditional:
        // E[Tlost] → E[X] for distributions with finite support coverage.
        let d = Weibull::from_mtbf(shape, mean);
        let e = d.expected_loss(mean * 200.0, 0.0);
        prop_assert!(
            (e - mean).abs() < 0.05 * mean,
            "loss {e} vs mean {mean}"
        );
    }
}
