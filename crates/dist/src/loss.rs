//! Conditional expected-loss quadrature (`E[Tlost(x|τ)]`, §2.3).
//!
//! For a failure that strikes while a chunk of duration `x` is running on a
//! processor of age `τ`, the expected amount of time already spent is
//!
//! ```text
//! E[X − τ | τ ≤ X < τ+x] = ∫₀ˣ (S(τ+s) − S(τ+x)) ds / (S(τ) − S(τ+x)).
//! ```
//!
//! With MTBFs of centuries and chunks of minutes both numerator and
//! denominator are differences of numbers within 1e−10 of each other, so we
//! rewrite them with `expm1` of log-survival differences:
//!
//! ```text
//! S(τ+s) − S(τ+x) = S(τ+x) · expm1(lsΔ(s)),   lsΔ(s) = lnS(τ+s) − lnS(τ+x) ≥ 0
//! S(τ)   − S(τ+x) = S(τ)   · (−expm1(Δ)),     Δ     = lnS(τ+x) − lnS(τ)   ≤ 0
//! ```
//!
//! giving `E = e^Δ · ∫₀ˣ expm1(lsΔ(s)) ds / (−expm1(Δ))`, every factor of
//! which is well-scaled.

use crate::FailureDistribution;

/// Generic well-conditioned evaluation of `E[Tlost(x|τ)]`.
///
/// Falls back to `x/2` when the conditioning event (a failure within `x`)
/// has vanishing probability — the value is then irrelevant to any policy
/// because it is always multiplied by that probability.
pub fn expected_loss<D: FailureDistribution + ?Sized>(dist: &D, x: f64, tau: f64) -> f64 {
    assert!(x >= 0.0, "expected_loss: x must be non-negative");
    if x == 0.0 { // lint: allow(float-eq) — exact zero fast path, not a tolerance check
        return 0.0;
    }
    let tau = tau.max(0.0);
    let ls_tau = dist.log_survival(tau);
    let ls_end = dist.log_survival(tau + x);
    if ls_tau == f64::NEG_INFINITY { // lint: allow(float-eq) — -inf log-survival sentinel is an exact bit pattern
        // Already past the support: the "loss" is immaterial.
        return 0.0;
    }
    let delta = ls_end - ls_tau; // ≤ 0
    let fail_prob = -delta.exp_m1(); // P(fail within x | age τ)
    if fail_prob < 1e-300 {
        return 0.5 * x;
    }
    if ls_end == f64::NEG_INFINITY || delta < -0.5 { // lint: allow(float-eq) — -inf log-survival sentinel is an exact bit pattern
        // Failure is (nearly) certain within x. Use the direct form
        //   E = ∫₀ˣ (S(τ+s) − S(τ+x)) / S(τ) ds / fail_prob:
        // the integrand lies in [0, 1], so the quadrature never chases the
        // astronomically peaked expm1 form that arises when −Δ is large.
        let s_end_rel = delta.exp(); // S(τ+x)/S(τ), may be 0
        let integral = ckpt_math::adaptive_simpson(
            |s| (dist.log_survival(tau + s) - ls_tau).exp() - s_end_rel,
            0.0,
            x,
            1e-9 * x,
        );
        return (integral / fail_prob).clamp(0.0, x);
    }
    // Rare-failure regime (|Δ| small): the expm1 form keeps full relative
    // precision where the direct form would cancel:
    //   E = e^Δ · ∫₀ˣ expm1(lnS(τ+s) − lnS(τ+x)) ds / (−expm1(Δ)).
    // The integrand is bounded by e^{−Δ} − 1 ≤ e^{0.5} − 1 here.
    let integral = ckpt_math::adaptive_simpson(
        |s| (dist.log_survival(tau + s) - ls_end).exp_m1(),
        0.0,
        x,
        1e-10 * x.max(1.0),
    );
    let e = delta.exp() * integral / fail_prob;
    e.clamp(0.0, x)
}

/// Tabulated evaluation of `E[Tlost(x|τ)]` from a precomputed cumulative
/// survival integral `I(t) = ∫₀ᵗ S(s) ds`:
///
/// ```text
/// E[Tlost(x|τ)] = (I(τ+x) − I(τ) − x·S(τ+x)) / (S(τ) − S(τ+x)),
/// ```
///
/// with the survival endpoints evaluated exactly (the caller passes the
/// distribution's own `survival`) so only the integral is interpolated.
/// This is the O(1) replacement for the per-query quadrature of
/// [`expected_loss`] inside the DP inner loops; it falls back to the
/// half-window `x/2` when the conditioning probability vanishes, exactly
/// like the quadrature form.
pub fn expected_loss_from_integral(
    integral: impl Fn(f64) -> f64,
    survival: impl Fn(f64) -> f64,
    x: f64,
    tau: f64,
) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    let s_tau = survival(tau);
    let s_end = survival(tau + x);
    let denom = s_tau - s_end;
    if denom <= 1e-12 * s_tau.max(1e-300) {
        return 0.5 * x;
    }
    let num = integral(tau + x) - integral(tau) - x * s_end;
    (num / denom).clamp(0.0, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, Weibull};

    #[test]
    fn matches_exponential_closed_form() {
        // Lemma 1: E[Tlost(ω)] = 1/λ − ω/(e^{λω} − 1).
        let lambda = 1.0 / 3600.0;
        let d = Exponential::new(lambda);
        for &x in &[60.0, 600.0, 3600.0, 36_000.0] {
            let closed = 1.0 / lambda - x / ((lambda * x).exp_m1());
            let generic = expected_loss(&d, x, 0.0);
            assert!(
                (generic - closed).abs() < 1e-6 * closed,
                "x = {x}: generic {generic} vs closed {closed}"
            );
        }
    }

    #[test]
    fn memoryless_age_invariance() {
        let d = Exponential::new(1e-4);
        let a = expected_loss(&d, 500.0, 0.0);
        let b = expected_loss(&d, 500.0, 123_456.0);
        assert!((a - b).abs() < 1e-6 * a);
    }

    #[test]
    fn tiny_failure_probability_is_half_window() {
        // MTBF of 125 years, 10-minute chunk: loss ≈ x/2 (near-uniform
        // conditional density), and must not blow up numerically.
        let mtbf = 125.0 * 365.25 * 86_400.0;
        let d = Exponential::new(1.0 / mtbf);
        let e = expected_loss(&d, 600.0, 0.0);
        assert!((e - 300.0).abs() < 0.1, "got {e}");
    }

    #[test]
    fn weibull_decreasing_hazard_biases_early() {
        // k < 1: failures concentrate early in the window when age is 0, so
        // the expected loss is below x/2.
        let d = Weibull::from_mtbf(0.7, 1000.0);
        let e = expected_loss(&d, 800.0, 0.0);
        assert!(e < 400.0, "expected below half-window, got {e}");
    }

    #[test]
    fn weibull_old_processor_loss_near_uniform() {
        // For an old processor (age ≫ window) with k < 1 the hazard is
        // locally flat, so the conditional loss approaches x/2 from below.
        let d = Weibull::from_mtbf(0.7, 1000.0);
        let e = expected_loss(&d, 10.0, 50_000.0);
        assert!((e - 5.0).abs() < 0.5, "got {e}");
    }

    #[test]
    fn bounded_by_window() {
        let d = Weibull::from_mtbf(0.5, 100.0);
        for &x in &[1.0, 10.0, 1000.0, 100_000.0] {
            let e = expected_loss(&d, x, 0.0);
            assert!((0.0..=x).contains(&e), "x = {x}: loss {e} out of range");
        }
    }

    #[test]
    fn zero_window_zero_loss() {
        let d = Exponential::new(1.0);
        assert_eq!(expected_loss(&d, 0.0, 5.0), 0.0);
    }
}
