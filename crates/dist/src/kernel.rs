//! Tabulated distribution kernels for the DP inner loops.
//!
//! The quantised DPs (`DPMakespan`, `DPNextFailure`) evaluate the same
//! distribution millions of times on a fixed time grid. A [`KernelTable`]
//! precomputes, once per `(distribution, grid)`:
//!
//! * `ln S(t)` on a uniform grid — answering interior queries by linear
//!   interpolation and **falling back to the exact distribution off the
//!   grid**, so no query is ever extrapolated;
//! * the cumulative survival integral `I(t) = ∫₀ᵗ S(s) ds` — giving the
//!   conditional expected loss `E[Tlost(x|τ)]` in O(1) via
//!   [`loss::expected_loss_from_integral`] instead of a per-query
//!   adaptive quadrature.
//!
//! Accuracy: grid points store exact samples (≤ 1e−9 relative trivially —
//! they are the same bits); between grid points the linear-interpolation
//! error is bounded by `step²·max|∂²ₜ ln S|/8`. For Exponential failures
//! `ln S` is linear and the table is exact everywhere in range; for the
//! paper's Weibull shapes the `kernel_interpolation_error_bound` test
//! pins the measured mid-cell error.

use crate::loss;
use crate::FailureDistribution;
use ckpt_math::UniformTable;

/// Precomputed log-survival and survival-integral tables for one
/// distribution on one uniform grid.
#[derive(Debug)]
pub struct KernelTable {
    dist: Box<dyn FailureDistribution>,
    log_surv: UniformTable,
    integral: UniformTable,
    /// Obs counter label: the wrapped distribution's fingerprint
    /// (`fp:…`) or `unfingerprinted`. Precomputed so the hot query path
    /// never formats.
    obs_label: String,
}

impl KernelTable {
    /// Build for `dist` over `[0, horizon]`. `resolution` is the smallest
    /// window the caller will query; the grid step is `resolution/8`,
    /// floored so the table never exceeds ~200k samples (the loss-table
    /// convention the `DPMakespan` tables have always used).
    pub fn build(dist: Box<dyn FailureDistribution>, horizon: f64, resolution: f64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(resolution > 0.0, "resolution must be positive");
        let step = (resolution / 8.0).max(horizon / 200_000.0);
        let obs_label = match dist.fingerprint() {
            Some(fp) => format!("fp:{fp:016x}"),
            None => "unfingerprinted".to_string(),
        };
        // Cold build path: one batched log-survival pass over the whole
        // grid (the family's vectorised override where one exists — a
        // single ln/exp sweep for Weibull, indexed counting for
        // Empirical) instead of a scalar transcendental per grid point.
        // The grid times are exactly the `k·step` points
        // `UniformTable::sample` would have used.
        let n = (horizon / step).ceil() as usize + 2;
        let ts: Vec<f64> = (0..n).map(|k| k as f64 * step).collect();
        let mut logs = vec![0.0f64; n];
        dist.log_survival_batch(&ts, &mut logs);
        if ckpt_obs::active() {
            ckpt_obs::counter_add_labeled(
                "kernel_table.cold_build_points",
                &obs_label,
                n as u64,
            );
        }
        let log_surv = UniformTable::from_parts(step, logs);
        // exp of the sampled log-survival is `dist.survival` at the same
        // points, evaluated through the shared vectorised exp kernel
        // (`−∞` sentinels flush to survival 0 exactly).
        let mut surv_vals = vec![0.0f64; n];
        ckpt_math::simd::exp_shifted(log_surv.values(), 0.0, &mut surv_vals);
        let surv = UniformTable::from_parts(step, surv_vals);
        let integral = UniformTable::cumulative_trapezoid(&surv);
        Self { dist, log_surv, integral, obs_label }
    }

    /// The wrapped distribution (exact fallback target).
    pub fn dist(&self) -> &dyn FailureDistribution {
        self.dist.as_ref()
    }

    /// Grid step in seconds.
    pub fn step(&self) -> f64 {
        self.log_surv.step()
    }

    /// Largest `t` served from the table.
    pub fn horizon(&self) -> f64 {
        self.log_surv.horizon()
    }

    /// `ln S(t)`: interpolated in range, exact off-grid.
    #[inline]
    pub fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match self.log_surv.interp_checked(t) {
            Some(v) => {
                if ckpt_obs::active() {
                    ckpt_obs::counter_add_labeled("kernel_table.interp_hits", &self.obs_label, 1);
                }
                v
            }
            None => {
                if ckpt_obs::active() {
                    ckpt_obs::counter_add_labeled(
                        "kernel_table.exact_fallbacks",
                        &self.obs_label,
                        1,
                    );
                }
                self.dist.log_survival(t)
            }
        }
    }

    /// `S(t)` through the tabulated log-survival.
    #[inline]
    pub fn survival(&self, t: f64) -> f64 {
        self.log_survival(t).exp() // lint: allow(naked-transcendental-in-hot-path) — exp of the tabulated log-survival is the table's sanctioned exit to linear domain
    }

    /// Conditional survival `Psuc(x|τ)` through the table (the trait's
    /// `exp(ln S(τ+x) − ln S(τ))` form, with tabulated log-survival).
    #[inline]
    pub fn psuc(&self, x: f64, tau: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        let ls_tau = self.log_survival(tau.max(0.0));
        if ls_tau == f64::NEG_INFINITY { // lint: allow(float-eq) — -inf log-survival sentinel is an exact bit pattern
            return 0.0;
        }
        (self.log_survival(tau.max(0.0) + x) - ls_tau).exp() // lint: allow(naked-transcendental-in-hot-path) — exp of a tabulated log-survival difference; the trait's canonical Psuc form
    }

    /// Hazard `−d/dt ln S(t)` from the table's cell slope; exact fallback
    /// off the grid.
    #[inline]
    pub fn hazard(&self, t: f64) -> f64 {
        match self.log_surv.slope_checked(t) {
            Some(slope) => {
                if ckpt_obs::active() {
                    ckpt_obs::counter_add_labeled("kernel_table.interp_hits", &self.obs_label, 1);
                }
                -slope
            }
            None => {
                if ckpt_obs::active() {
                    ckpt_obs::counter_add_labeled(
                        "kernel_table.exact_fallbacks",
                        &self.obs_label,
                        1,
                    );
                }
                self.dist.hazard(t)
            }
        }
    }

    /// Cumulative survival integral `I(t)`, saturating past the horizon
    /// (the correct limit of the converging integral).
    #[inline]
    pub fn survival_integral(&self, t: f64) -> f64 {
        self.integral.interp_clamped(t)
    }

    /// `E[Tlost(x|τ)]` in O(1): interpolated integral, exact survival
    /// endpoints (see [`loss::expected_loss_from_integral`]).
    pub fn expected_loss(&self, x: f64, tau: f64) -> f64 {
        loss::expected_loss_from_integral(
            |t| self.survival_integral(t),
            |t| self.dist.survival(t),
            x,
            tau,
        )
    }

    /// Batch-evaluate `ln S(τ + tᵢ)` for a slice of offsets — the DP
    /// grid-fill shape — through the table.
    pub fn fill_log_survival(&self, tau: f64, offsets: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.reserve(offsets.len());
        for &t in offsets {
            out.push(self.log_survival(tau + t));
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{Exponential, Weibull};

    fn weibull_kernel() -> (Weibull, KernelTable) {
        let d = Weibull::from_mtbf(0.7, 100_000.0);
        let k = KernelTable::build(Box::new(d), 500_000.0, 800.0);
        (d, k)
    }

    #[test]
    fn on_grid_queries_are_exact_within_1e9_relative() {
        let (d, k) = weibull_kernel();
        let step = k.step();
        for i in [1usize, 7, 100, 1000, 4000] {
            let t = i as f64 * step;
            let exact = d.log_survival(t);
            let table = k.log_survival(t);
            let rel = (table - exact).abs() / exact.abs().max(1e-300);
            assert!(rel <= 1e-9, "t = {t}: table {table} vs exact {exact} (rel {rel})");
        }
    }

    #[test]
    fn kernel_interpolation_error_bound() {
        // Off-grid (mid-cell) error: bounded by step²·max|∂²ₜ ln S|/8.
        // For Weibull(k, λ), ∂²ₜ ln S = −k(k−1)t^{k−2}/λ^k, monotone for
        // k < 1, so the bound at the cell's left edge dominates the cell.
        let (d, k) = weibull_kernel();
        let step = k.step();
        let shape = d.shape();
        let scale = d.scale();
        for i in [1usize, 5, 50, 500, 2500] {
            let t_left = i as f64 * step;
            let t = t_left + 0.5 * step;
            let err = (k.log_survival(t) - d.log_survival(t)).abs();
            let curv = (shape * (shape - 1.0)).abs() * t_left.powf(shape - 2.0)
                / scale.powf(shape);
            let bound = step * step * curv / 8.0;
            assert!(
                err <= bound * 1.0001 + 1e-15,
                "cell {i}: err {err} vs bound {bound}"
            );
        }
    }

    #[test]
    fn off_grid_falls_back_to_exact() {
        let (d, k) = weibull_kernel();
        let t = k.horizon() * 3.0;
        assert_eq!(k.log_survival(t), d.log_survival(t));
        assert_eq!(k.hazard(t), d.hazard(t));
    }

    #[test]
    fn exponential_table_is_exact_in_range() {
        // ln S is linear: linear interpolation reproduces it to rounding.
        let d = Exponential::from_mtbf(5_000.0);
        let k = KernelTable::build(Box::new(d), 100_000.0, 100.0);
        for &t in &[13.7, 999.1, 54_321.0, 99_000.5] {
            let rel = (k.log_survival(t) - d.log_survival(t)).abs()
                / d.log_survival(t).abs();
            assert!(rel < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn expected_loss_matches_closed_form_exponential() {
        let d = Exponential::from_mtbf(1_000.0);
        let k = KernelTable::build(Box::new(d), 20_000.0, 400.0);
        for &(x, tau) in &[(100.0, 0.0), (500.0, 200.0), (2_000.0, 0.0)] {
            let got = k.expected_loss(x, tau);
            let expect = d.expected_loss(x, tau);
            assert!(
                (got - expect).abs() < 0.02 * expect.max(1.0),
                "x={x} τ={tau}: table {got} vs closed {expect}"
            );
        }
    }

    #[test]
    fn psuc_tracks_trait_default() {
        let (d, k) = weibull_kernel();
        for &(x, tau) in &[(600.0, 0.0), (3_000.0, 10_000.0), (50.0, 400_000.0)] {
            let got = k.psuc(x, tau);
            let expect = d.psuc(x, tau);
            assert!(
                (got - expect).abs() < 1e-6,
                "x={x} τ={tau}: table {got} vs exact {expect}"
            );
        }
    }

    #[test]
    fn batch_fill_matches_scalar_queries() {
        let (_, k) = weibull_kernel();
        let offsets: Vec<f64> = (0..64).map(|i| i as f64 * 37.5).collect();
        let mut out = Vec::new();
        k.fill_log_survival(1_234.0, &offsets, &mut out);
        assert_eq!(out.len(), offsets.len());
        for (i, &t) in offsets.iter().enumerate() {
            assert_eq!(out[i], k.log_survival(1_234.0 + t));
        }
    }

    fn empirical_kernel() -> (crate::Empirical, KernelTable) {
        // A synthetic availability log shaped like the LANL traces:
        // sub-hour to multi-week uptimes, heavy low-end mass.
        let durs: Vec<f64> =
            (1..=500).map(|i| 600.0 + (i as f64 * 7919.0) % 1_209_600.0).collect();
        let e = crate::Empirical::from_durations(durs);
        let k = KernelTable::build(Box::new(e.clone()), 2_000_000.0, 3_600.0);
        (e, k)
    }

    #[test]
    fn empirical_on_grid_queries_are_exact_within_1e9_relative() {
        // The Empirical batch path is bit-identical to its scalar
        // log-survival, so grid points hold the exact step-function
        // values and on-grid queries reproduce them.
        let (e, k) = empirical_kernel();
        let step = k.step();
        for i in [1usize, 7, 100, 1000, 4000] {
            let t = i as f64 * step;
            let exact = e.log_survival(t);
            let table = k.log_survival(t);
            if exact == f64::NEG_INFINITY {
                assert_eq!(table, f64::NEG_INFINITY, "t = {t}");
            } else {
                let rel = (table - exact).abs() / exact.abs().max(1e-300);
                assert!(rel <= 1e-9, "t = {t}: table {table} vs exact {exact} (rel {rel})");
            }
        }
    }

    #[test]
    fn empirical_off_grid_falls_back_to_exact() {
        let (e, k) = empirical_kernel();
        let t = k.horizon() * 3.0;
        assert_eq!(k.log_survival(t), e.log_survival(t));
        // Past the support both are the −∞ sentinel; inside the horizon
        // but past the largest duration the table interpolates into −∞
        // and survival flushes to exactly 0.
        let past_support = e.max_duration() + 2.0 * k.step();
        assert!(past_support < k.horizon());
        assert_eq!(k.log_survival(past_support), f64::NEG_INFINITY);
        assert_eq!(k.survival(past_support), 0.0);
    }

    #[test]
    fn empirical_expected_loss_tracks_closed_form() {
        // The table's trapezoid integral approximates the exact
        // prefix-sum form within the grid-resolution error.
        let (e, k) = empirical_kernel();
        for &(x, tau) in &[(3_600.0, 0.0), (86_400.0, 7_200.0), (604_800.0, 86_400.0)] {
            let got = k.expected_loss(x, tau);
            let expect = e.expected_loss(x, tau);
            assert!(
                (got - expect).abs() < 0.02 * expect.max(1.0) + k.step(),
                "x={x} τ={tau}: table {got} vs closed {expect}"
            );
        }
    }

    #[test]
    fn fingerprints_identify_value_identical_instances() {
        let a = Weibull::from_mtbf(0.7, 1_000.0);
        let b = Weibull::from_mtbf(0.7, 1_000.0);
        let c = Weibull::from_mtbf(0.5, 1_000.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        let e = Exponential::from_mtbf(1_000.0);
        assert_ne!(a.fingerprint(), e.fingerprint());
        // MinOf composes; non-fingerprintable inners poison the chain.
        let m1 = crate::MinOf::new(Box::new(a), 64);
        let m2 = crate::MinOf::new(Box::new(b), 64);
        let m3 = crate::MinOf::new(Box::new(b), 32);
        assert_eq!(m1.fingerprint(), m2.fingerprint());
        assert_ne!(m1.fingerprint(), m3.fingerprint());
    }
}
