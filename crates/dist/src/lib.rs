//! Failure inter-arrival time distributions.
//!
//! Every checkpointing policy in the paper consumes failures through a small
//! probabilistic interface:
//!
//! * `Psuc(x|τ) = P(X ≥ τ+x | X ≥ τ)` — probability of surviving the next
//!   `x` seconds given the last failure was `τ` seconds ago (§2.2);
//! * `E[Tlost(x|τ)]` — expected compute time lost to a failure that strikes
//!   within the next `x` seconds (§2.3);
//! * quantiles — the reference ages of the compressed parallel
//!   `DPNextFailure` state (§3.3);
//! * sampling — synthetic trace generation (§4.3).
//!
//! The primitive everything is derived from is **log-survival**
//! `ln S(t) = ln P(X ≥ t)`. The paper's platforms have processor MTBFs of
//! 125–1250 *years* while chunks last minutes, so the failure probability of
//! a chunk is ~1e−6; computing it as `S(τ) − S(τ+x)` in linear space loses
//! all precision. Working with `exp`/`expm1` of log-survival differences
//! keeps every quantity fully conditioned (see [`loss`]).

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod empirical;
pub mod error;
pub mod exponential;
pub mod fitting;
pub mod gamma_dist;
pub mod kernel;
pub mod lognormal;
pub mod loss;
pub mod min_of;
pub mod mixture;
pub mod weibull;

pub use empirical::Empirical;
pub use error::DistError;
pub use exponential::Exponential;
pub use fitting::{fit_exponential, fit_weibull_mle};
pub use gamma_dist::GammaDist;
pub use kernel::KernelTable;
pub use lognormal::LogNormal;
pub use min_of::MinOf;
pub use mixture::Mixture;
pub use weibull::Weibull;

use rand::RngCore;

/// A failure inter-arrival time distribution.
///
/// Implementors provide [`log_survival`](FailureDistribution::log_survival),
/// [`mean`](FailureDistribution::mean) and
/// [`sample`](FailureDistribution::sample); everything else has accurate
/// defaults that may be overridden with closed forms.
pub trait FailureDistribution: Send + Sync + std::fmt::Debug {
    /// `ln P(X ≥ t)`. Must be 0 at `t ≤ 0`, non-increasing, and may reach
    /// `−∞` (a bounded support, e.g. empirical distributions).
    fn log_survival(&self, t: f64) -> f64;

    /// Batch `ln P(X ≥ tᵢ)` — the DP kernel-row and table-build shape.
    ///
    /// The default is the scalar loop, bit-identical to per-element
    /// [`log_survival`](Self::log_survival) calls. Families with a
    /// cheaper batched evaluation (Weibull's single-`ln`/single-`exp`
    /// log-domain pass, Empirical's indexed counting) override it; an
    /// override may differ from the scalar path at the ~ulp level (the
    /// trait contract is ≤1e−12 relative agreement, pinned per family
    /// by tests), and any such family must say so in its
    /// [`fingerprint`](Self::fingerprint) docs since cached rows mix
    /// the two paths' outputs.
    fn log_survival_batch(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(ts.len(), out.len(), "log_survival_batch: length mismatch");
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = self.log_survival(t);
        }
    }

    /// Mean inter-arrival time `E[X]`.
    fn mean(&self) -> f64;

    /// Draw one inter-arrival time.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// Survival function `P(X ≥ t)`.
    fn survival(&self, t: f64) -> f64 {
        self.log_survival(t).exp()
    }

    /// Cumulative distribution `P(X < t)`.
    fn cdf(&self, t: f64) -> f64 {
        -self.log_survival(t).exp_m1()
    }

    /// Conditional survival `Psuc(x|τ) = P(X ≥ τ+x | X ≥ τ)` (§2.2).
    ///
    /// Computed as `exp(ln S(τ+x) − ln S(τ))`, exact even when both
    /// survivals are within 1e−12 of 1.
    fn psuc(&self, x: f64, tau: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        let ls_tau = self.log_survival(tau.max(0.0));
        if ls_tau == f64::NEG_INFINITY { // lint: allow(float-eq) — -inf log-survival sentinel is an exact bit pattern
            // Conditioning on a zero-probability event: treat as immediate
            // failure, the conservative choice for a policy.
            return 0.0;
        }
        (self.log_survival(tau.max(0.0) + x) - ls_tau).exp()
    }

    /// Hazard rate `h(t) = f(t)/S(t) = −d/dt ln S(t)`.
    ///
    /// Default is a symmetric finite difference of log-survival; override
    /// with the closed form where one exists (the Liu policy integrates the
    /// square root of this).
    fn hazard(&self, t: f64) -> f64 {
        let h = (t.abs() * 1e-6).max(1e-9);
        let lo = (t - h).max(0.0);
        let hi = t + h;
        -(self.log_survival(hi) - self.log_survival(lo)) / (hi - lo)
    }

    /// Inverse survival: smallest `t` with `P(X ≥ t) ≤ s`, for `s ∈ (0, 1]`.
    ///
    /// This is the `quantile(X, ·)` of §3.3 used to build the reference ages
    /// of the compressed parallel state.
    fn inverse_survival(&self, s: f64) -> f64 {
        assert!(s > 0.0 && s <= 1.0, "inverse_survival: s ∈ (0,1], got {s}");
        if s >= 1.0 {
            return 0.0;
        }
        let target = s.ln();
        // Bracket by doubling from the mean.
        let mut hi = self.mean().max(1e-9);
        let mut lo = 0.0;
        for _ in 0..1100 {
            if self.log_survival(hi) <= target {
                break;
            }
            lo = hi;
            hi *= 2.0;
        }
        ckpt_math::brent(
            |t| self.log_survival(t) - target,
            lo,
            hi,
            1e-9 * hi.max(1.0),
        )
    }

    /// Expected time computed before an interrupting failure:
    /// `E[X − τ | τ ≤ X < τ + x]` (the `E[Tlost(x|τ)]` of §2.3).
    ///
    /// Default is the well-conditioned quadrature of [`loss::expected_loss`];
    /// the Exponential overrides it with Lemma 1's closed form.
    fn expected_loss(&self, x: f64, tau: f64) -> f64 {
        loss::expected_loss(self, x, tau)
    }

    /// Clone into a boxed trait object.
    fn clone_box(&self) -> Box<dyn FailureDistribution>;

    /// A stable 64-bit identity of this distribution's *values*: two
    /// instances with the same fingerprint are guaranteed to return
    /// bit-identical `log_survival` everywhere, so cross-instance caches
    /// (the shared DP plan cache) may pool their results. `None` (the
    /// default) means "no such guarantee" — callers must fall back to
    /// per-instance identity. Implemented for the closed-form families
    /// whose log-survival is a pure function of their parameter bits.
    fn fingerprint(&self) -> Option<u64> {
        None
    }
}

/// Chain parameter bits into a family-tagged fingerprint (SplitMix64
/// mixing — the same primitive as the deterministic seed hierarchy).
pub fn combine_fingerprint(family_tag: u64, parts: &[u64]) -> u64 {
    let mut h = ckpt_math::mix_seed(family_tag ^ 0xF1_6E_12);
    for &p in parts {
        h = ckpt_math::mix_seed(h ^ p);
    }
    h
}

impl Clone for Box<dyn FailureDistribution> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    /// A minimal distribution exercising only the trait defaults:
    /// uniform on [0, 2].
    #[derive(Debug, Clone)]
    struct Uniform2;

    impl FailureDistribution for Uniform2 {
        fn log_survival(&self, t: f64) -> f64 {
            if t <= 0.0 {
                0.0
            } else if t >= 2.0 {
                f64::NEG_INFINITY
            } else {
                (1.0 - t / 2.0).ln()
            }
        }
        fn mean(&self) -> f64 {
            1.0
        }
        fn sample(&self, rng: &mut dyn RngCore) -> f64 {
            use rand::Rng;
            rng.gen_range(0.0..2.0)
        }
        fn clone_box(&self) -> Box<dyn FailureDistribution> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn default_cdf_complements_survival() {
        let d = Uniform2;
        for &t in &[0.0, 0.5, 1.0, 1.5, 1.99] {
            assert!((d.cdf(t) + d.survival(t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn default_psuc_uniform() {
        let d = Uniform2;
        // P(X ≥ 1.5 | X ≥ 1) = S(1.5)/S(1) = 0.25/0.5 = 0.5.
        assert!((d.psuc(0.5, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.psuc(0.0, 1.0), 1.0);
        // Beyond the support survival is 0.
        assert_eq!(d.psuc(3.0, 0.0), 0.0);
    }

    #[test]
    fn default_hazard_uniform() {
        let d = Uniform2;
        // h(t) = f/S = (1/2)/(1 − t/2) → h(1) = 1.
        assert!((d.hazard(1.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn default_inverse_survival_uniform() {
        let d = Uniform2;
        // S(t) = 1 − t/2 → S⁻¹(0.25) = 1.5.
        assert!((d.inverse_survival(0.25) - 1.5).abs() < 1e-6);
        assert_eq!(d.inverse_survival(1.0), 0.0);
    }

    #[test]
    fn default_expected_loss_uniform() {
        let d = Uniform2;
        // X | 0 ≤ X < 2 is Uniform(0,2): E = 1.
        assert!((d.expected_loss(2.0, 0.0) - 1.0).abs() < 1e-6);
        // X | 0 ≤ X < 1 is Uniform(0,1): E = 0.5.
        assert!((d.expected_loss(1.0, 0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn boxed_clone_works() {
        let d: Box<dyn FailureDistribution> = Box::new(Uniform2);
        let d2 = d.clone();
        assert_eq!(d2.mean(), 1.0);
    }
}
