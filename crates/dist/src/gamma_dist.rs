//! Gamma distribution — an extension distribution for the policy matrix.
//!
//! A shape < 1 Gamma has decreasing hazard like a sub-exponential Weibull,
//! giving a third family to cross-validate the distribution-agnostic DP
//! policies. Survival uses the regularized upper incomplete gamma
//! `Q(k, t/θ)` (series + continued-fraction evaluation, Numerical-Recipes
//! style); sampling uses Marsaglia–Tsang.

use crate::FailureDistribution;
use ckpt_math::ln_gamma;
use rand::RngCore;

/// Gamma inter-arrival times with shape `k` and scale `θ` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaDist {
    shape: f64,
    scale: f64,
}

impl GammaDist {
    /// From shape `k > 0` and scale `θ > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self { shape, scale }
    }

    /// From shape `k` and a target mean (`θ = MTBF / k`).
    pub fn from_mtbf(shape: f64, mtbf: f64) -> Self {
        assert!(mtbf > 0.0);
        Self::new(shape, mtbf / shape)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// Regularized lower incomplete gamma `P(a, x)` by series expansion
/// (converges fast for `x < a + 1`).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` by Lentz continued fraction
/// (converges fast for `x ≥ a + 1`).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized upper incomplete gamma `Q(a, x) = Γ(a, x)/Γ(a)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 { // lint: allow(float-eq) — exact zero fast path, not a tolerance check
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

impl FailureDistribution for GammaDist {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let q = gamma_q(self.shape, t / self.scale);
        if q <= 0.0 {
            f64::NEG_INFINITY
        } else {
            q.ln()
        }
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * sample_standard_gamma(self.shape, rng)
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(*self)
    }
}

/// Marsaglia–Tsang sampler for Gamma(shape, 1). Shapes below 1 use the
/// boosting identity `Γ(a) = Γ(a+1) · U^{1/a}`.
fn sample_standard_gamma(shape: f64, rng: &mut dyn RngCore) -> f64 {
    use rand::Rng;
    if shape < 1.0 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        return sample_standard_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = 1.0 - rng.gen::<f64>();
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_one_is_exponential() {
        let g = GammaDist::new(1.0, 100.0);
        let e = crate::Exponential::new(0.01);
        for &t in &[1.0, 50.0, 500.0, 2000.0] {
            assert!(
                (g.log_survival(t) - e.log_survival(t)).abs() < 1e-10,
                "t = {t}"
            );
        }
    }

    #[test]
    fn gamma_q_boundaries() {
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert!(gamma_q(2.0, 100.0) < 1e-30);
    }

    #[test]
    fn gamma_q_integer_shape_closed_form() {
        // Q(2, x) = (1 + x) e^{−x}.
        for &x in &[0.1f64, 1.0, 3.0, 10.0] {
            let expect = (1.0 + x) * (-x).exp();
            assert!((gamma_q(2.0, x) - expect).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn mean_matches() {
        let g = GammaDist::from_mtbf(0.5, 777.0);
        assert!((g.mean() - 777.0).abs() < 1e-9);
    }

    #[test]
    fn sample_mean_converges() {
        let g = GammaDist::from_mtbf(0.5, 100.0);
        let mut rng = StdRng::seed_from_u64(13);
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.5, "sample mean {mean}");
    }

    #[test]
    fn sub_one_shape_decreasing_hazard() {
        let g = GammaDist::from_mtbf(0.5, 1000.0);
        assert!(g.hazard(10.0) > g.hazard(1000.0));
        // Conditional survival improves with age.
        assert!(g.psuc(100.0, 10_000.0) > g.psuc(100.0, 0.0));
    }

    #[test]
    fn samples_positive() {
        let g = GammaDist::new(0.3, 10.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            let x = g.sample(&mut rng);
            assert!(x > 0.0 && x.is_finite());
        }
    }
}
