//! Distribution fitting — the inference side of §4.3/§6.
//!
//! The paper's log-based pipeline needs two fits:
//!
//! * the MTBF-only heuristics "pretend the underlying distribution is
//!   Exponential with the same MTBF as the empirical MTBF computed from
//!   the log" — [`fit_exponential`];
//! * Liu's policy (and the studies the synthetic logs are matched to —
//!   Schroeder & Gibson report shapes 0.33–0.49) fit a **Weibull** to the
//!   availability durations — [`fit_weibull_mle`], maximum likelihood via
//!   Newton iteration on the profile-likelihood shape equation.
//!
//! For Weibull MLE, with observations `x₁…x_n`, the shape `k` solves
//!
//! ```text
//! g(k) = Σ xᵢᵏ ln xᵢ / Σ xᵢᵏ − 1/k − (1/n) Σ ln xᵢ = 0,
//! ```
//!
//! and the scale follows as `λ = (Σ xᵢᵏ / n)^{1/k}`.

use crate::{Exponential, Weibull};

/// Fit an Exponential by the method of moments (= MLE): `λ = 1/mean`.
///
/// # Panics
/// Panics on an empty or non-positive sample.
pub fn fit_exponential(samples: &[f64]) -> Exponential {
    assert!(!samples.is_empty(), "fit_exponential: empty sample");
    assert!(
        samples.iter().all(|&x| x > 0.0 && x.is_finite()),
        "fit_exponential: samples must be positive"
    );
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Exponential::from_mtbf(mean)
}

/// Maximum-likelihood Weibull fit.
///
/// Returns the fitted distribution; Newton iteration on the shape
/// equation with a bisection fallback guarantees convergence for any
/// non-degenerate positive sample.
///
/// # Panics
/// Panics on an empty, non-positive, or constant sample.
pub fn fit_weibull_mle(samples: &[f64]) -> Weibull {
    assert!(samples.len() >= 2, "fit_weibull_mle: need at least 2 samples");
    assert!(
        samples.iter().all(|&x| x > 0.0 && x.is_finite()),
        "fit_weibull_mle: samples must be positive"
    );
    let n = samples.len() as f64;
    let mean_ln: f64 = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
    assert!(
        samples.iter().any(|&x| (x.ln() - mean_ln).abs() > 1e-12),
        "fit_weibull_mle: constant sample has no Weibull MLE"
    );

    // Work with scaled logs for numerical stability: replacing xᵢ by
    // xᵢ/s rescales λ by s and leaves k invariant.
    let scale0 = samples.iter().copied().fold(0.0f64, f64::max);
    let logs: Vec<f64> = samples.iter().map(|&x| (x / scale0).ln()).collect();
    let mean_log: f64 = logs.iter().sum::<f64>() / n;

    // g(k) as above, on the scaled sample (all logs ≤ 0 keeps xᵢᵏ ≤ 1).
    let g = |k: f64| -> f64 {
        let mut sum_pow = 0.0;
        let mut sum_pow_ln = 0.0;
        for &l in &logs {
            let p = (k * l).exp();
            sum_pow += p;
            sum_pow_ln += p * l;
        }
        sum_pow_ln / sum_pow - 1.0 / k - mean_log
    };

    // Bracket: g is increasing in k; start from the moment-style guess.
    let var_log: f64 = logs.iter().map(|&l| (l - mean_log) * (l - mean_log)).sum::<f64>() / n;
    let mut k = (std::f64::consts::PI / (6.0 * var_log).sqrt()).clamp(0.02, 50.0);
    // Expand a bracket around the guess.
    let (mut lo, mut hi) = (k, k);
    for _ in 0..200 {
        if g(lo) < 0.0 {
            break;
        }
        lo /= 1.5;
    }
    for _ in 0..200 {
        if g(hi) > 0.0 {
            break;
        }
        hi *= 1.5;
    }
    k = ckpt_math::brent(g, lo, hi, 1e-12 * hi);

    let sum_pow: f64 = logs.iter().map(|&l| (k * l).exp()).sum();
    let lambda = scale0 * (sum_pow / n).powf(1.0 / k);
    Weibull::new(k, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailureDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(dist: &dyn FailureDistribution, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_mean() {
        let d = Exponential::from_mtbf(1_234.0);
        let s = sample(&d, 100_000, 1);
        let fit = fit_exponential(&s);
        assert!((fit.mean() - 1_234.0).abs() < 20.0, "fit mean {}", fit.mean());
    }

    #[test]
    fn weibull_mle_recovers_parameters() {
        for &(k, lam) in &[(0.5, 1_000.0), (0.7, 50.0), (1.0, 500.0), (2.0, 10.0)] {
            let d = Weibull::new(k, lam);
            let s = sample(&d, 60_000, 7);
            let fit = fit_weibull_mle(&s);
            assert!(
                (fit.shape() - k).abs() < 0.02 * k.max(1.0),
                "k = {k}: fitted {}",
                fit.shape()
            );
            assert!(
                (fit.scale() - lam).abs() < 0.05 * lam,
                "λ = {lam}: fitted {}",
                fit.scale()
            );
        }
    }

    #[test]
    fn weibull_mle_on_exponential_data_finds_shape_one() {
        let d = Exponential::from_mtbf(300.0);
        let s = sample(&d, 60_000, 3);
        let fit = fit_weibull_mle(&s);
        assert!((fit.shape() - 1.0).abs() < 0.02, "shape {}", fit.shape());
    }

    #[test]
    fn mle_handles_widely_scaled_samples() {
        // Seconds-scale availability data spanning 8 orders of magnitude
        // (the LANL-like spike + heavy tail situation).
        let spike = Weibull::from_mtbf(0.6, 600.0);
        let bulk = Weibull::from_mtbf(0.45, 1.5e7);
        let mut s = sample(&spike, 5_000, 11);
        s.extend(sample(&bulk, 20_000, 12));
        let fit = fit_weibull_mle(&s);
        // A mixture is not a Weibull; the fit must still land on a small
        // shape (< 0.6) reflecting the heavy tail.
        assert!(fit.shape() < 0.6, "shape {}", fit.shape());
        assert!(fit.scale().is_finite() && fit.scale() > 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_constant_sample() {
        fit_weibull_mle(&[5.0, 5.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        fit_exponential(&[]);
    }
}
