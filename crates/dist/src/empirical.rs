//! Empirical distribution built from logged availability intervals (§4.3).
//!
//! The paper constructs the log-based failure model as: *"the conditional
//! probability `P(X ≥ t | X ≥ τ)` that a node stays up for a duration `t`,
//! knowing that it had been up for a duration `τ`, is set equal to the ratio
//! of the number of availability durations in S greater than or equal to
//! `t`, over the number of availability durations in S greater than or
//! equal to `τ`."* That is exactly the survival-ratio definition the
//! [`FailureDistribution`] trait derives from `log_survival`, so this type
//! only needs to expose the counting survival function over the sorted
//! sample — plus the precomputed index structures that make the DP
//! kernels cheap:
//!
//! * `log_tail[i] = ln((n−i)/n)` — log-survival by sorted index, so a
//!   query is one rank lookup instead of a `ln` call;
//! * `prefix[i] = Σ_{k<i} dₖ` — exact survival integral
//!   `I(t) = ∫₀ᵗ S = (prefix[rank] + (n−rank)·t)/n`, giving
//!   `E[Tlost(x|τ)]` in O(log n) instead of adaptive quadrature;
//! * a uniform value-grid of rank *anchors* narrowing each rank search
//!   to a couple of bisection steps in the common case;
//! * a stored value fingerprint (over the sorted duration bits), so the
//!   shared DP plan/kernel-row caches pool results across every
//!   instance built from the same log.

use crate::{loss, DistError, FailureDistribution};
use rand::RngCore;

/// Anchor buckets per logged duration — the value grid is `2n` cells.
const ANCHORS_PER_DURATION: usize = 2;

/// Discrete empirical failure distribution over a log's availability
/// durations.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// Sorted ascending availability durations.
    durations: Vec<f64>,
    mean: f64,
    /// `ln((n−i)/n)` for `i = 0..n`; `rank = n` is the −∞ sentinel.
    log_tail: Vec<f64>,
    /// `prefix[i] = Σ_{k<i} durations[k]` (length `n + 1`).
    prefix: Vec<f64>,
    /// `anchors[j] = rank(d₀ + j·anchor_step)`: rank bounds per value
    /// cell, so a rank query bisects a short slice instead of the log.
    anchors: Vec<u32>,
    /// Reciprocal of the anchor cell width (0 for a degenerate support).
    anchor_inv_step: f64,
    /// Value identity over the sorted duration bits.
    fingerprint: u64,
}

impl Empirical {
    /// Build from a set of availability durations (seconds).
    ///
    /// # Panics
    /// Panics on an empty set or non-finite/negative durations; the
    /// fallible form is [`Empirical::try_from_durations`].
    pub fn from_durations(durations: Vec<f64>) -> Self {
        match Self::try_from_durations(durations) {
            Ok(e) => e,
            Err(e) => panic!("Empirical: {e}"),
        }
    }

    /// Build from a set of availability durations (seconds), reporting a
    /// typed [`DistError`] on an empty set or a non-finite/non-positive
    /// duration.
    pub fn try_from_durations(mut durations: Vec<f64>) -> Result<Self, DistError> {
        if durations.is_empty() {
            return Err(DistError::EmptySample);
        }
        if let Some((index, &value)) =
            durations.iter().enumerate().find(|(_, d)| !(d.is_finite() && **d > 0.0))
        {
            return Err(DistError::InvalidDuration { index, value });
        }
        // All finite by the check above, so total order == partial order.
        durations.sort_by(|a, b| a.total_cmp(b));
        let n = durations.len();
        let mean = durations.iter().copied().collect::<ckpt_math::KahanSum>().value()
            / n as f64;
        // log_tail[i] must reproduce the historical `(c/n).ln()` bits so
        // precomputing it is invisible to every cached result.
        let log_tail: Vec<f64> =
            (0..n).map(|i| ((n - i) as f64 / n as f64).ln()).collect();
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        let mut acc = 0.0f64;
        for &d in &durations {
            acc += d;
            prefix.push(acc);
        }
        let lo = durations[0];
        let hi = durations[n - 1];
        let cells = n * ANCHORS_PER_DURATION;
        let (anchors, anchor_inv_step) = if hi > lo {
            let step = (hi - lo) / cells as f64;
            let mut anchors: Vec<u32> = (0..=cells as u64)
                .map(|j| {
                    let threshold = lo + j as f64 * step;
                    durations.partition_point(|&d| d < threshold) as u32
                })
                .collect();
            // The last threshold may round below `hi`; `n` is the one
            // always-safe upper bound for the final cell.
            anchors[cells] = n as u32;
            (anchors, 1.0 / step)
        } else {
            (vec![0, n as u32], 0.0)
        };
        let bits: Vec<u64> = durations.iter().map(|d| d.to_bits()).collect();
        let fingerprint = crate::combine_fingerprint(4, &bits);
        Ok(Self { durations, mean, log_tail, prefix, anchors, anchor_inv_step, fingerprint })
    }

    /// Number of logged durations.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// True when the log holds no durations (never after construction).
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Rank of `t`: number of logged durations `< t` (the
    /// `partition_point` the survival count is defined by), answered
    /// through the anchor grid. The anchors only *narrow* the bisection
    /// range — widened one cell each way to absorb the float rounding in
    /// the cell computation — so the result is exactly the full
    /// `partition_point`.
    #[inline]
    fn rank(&self, t: f64) -> usize {
        let n = self.durations.len();
        if t <= self.durations[0] {
            return 0;
        }
        if t > self.durations[n - 1] {
            return n;
        }
        let cells = self.anchors.len() - 1;
        let j = ((t - self.durations[0]) * self.anchor_inv_step) as usize;
        let lo = self.anchors[j.saturating_sub(1).min(cells)] as usize;
        let hi = self.anchors[(j + 2).min(cells)] as usize;
        debug_assert!(
            {
                let exact = self.durations.partition_point(|&d| d < t);
                (lo..=hi).contains(&exact)
            },
            "anchor cell misses the true rank"
        );
        lo + self.durations[lo..hi].partition_point(|&d| d < t)
    }

    /// Count of durations `≥ t` (the numerator/denominator of §4.3).
    pub fn count_at_least(&self, t: f64) -> usize {
        self.durations.len() - self.rank(t)
    }

    /// Largest logged duration — the support's upper edge.
    pub fn max_duration(&self) -> f64 {
        // Construction guarantees at least one duration.
        self.durations[self.durations.len() - 1]
    }

    /// Exact survival integral `I(t) = ∫₀ᵗ S(s) ds = E[min(D, t)]`:
    /// `(Σ_{d<t} d + #{d ≥ t}·t) / n` straight off the prefix sums.
    pub fn survival_integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let n = self.durations.len();
        let r = self.rank(t);
        (self.prefix[r] + (n - r) as f64 * t) / n as f64
    }
}

impl FailureDistribution for Empirical {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let r = self.rank(t);
        if r == self.durations.len() {
            f64::NEG_INFINITY
        } else {
            self.log_tail[r]
        }
    }

    fn log_survival_batch(&self, ts: &[f64], out: &mut [f64]) {
        assert_eq!(ts.len(), out.len(), "log_survival_batch: length mismatch");
        let n = self.durations.len();
        for (o, &t) in out.iter_mut().zip(ts) {
            *o = if t <= 0.0 {
                0.0
            } else {
                let r = self.rank(t);
                if r == n { f64::NEG_INFINITY } else { self.log_tail[r] }
            };
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        self.durations[rng.gen_range(0..self.durations.len())]
    }

    fn inverse_survival(&self, s: f64) -> f64 {
        assert!(s > 0.0 && s <= 1.0);
        // Smallest t with count_at_least(t)/n ≤ s: step to the next order
        // statistic. Survival at the i-th sorted value (0-based) is
        // (n − i)/n, so we need i ≥ n(1 − s).
        let n = self.durations.len();
        let i = ((n as f64) * (1.0 - s)).ceil() as usize;
        self.durations[i.min(n - 1)]
    }

    fn expected_loss(&self, x: f64, tau: f64) -> f64 {
        // Closed form over the prefix sums — replaces the generic
        // adaptive quadrature (which pays a rank search per integrand
        // evaluation) with two rank searches total.
        loss::expected_loss_from_integral(
            |t| self.survival_integral(t),
            |t| self.survival(t),
            x,
            tau.max(0.0),
        )
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(self.clone())
    }

    fn fingerprint(&self) -> Option<u64> {
        // log_survival is a pure function of the sorted duration bits;
        // precomputed at construction (hashing the log once), so the
        // shared DP caches pool plans across instances of the same log.
        Some(self.fingerprint)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_log() -> Empirical {
        Empirical::from_durations(vec![10.0, 20.0, 30.0, 40.0, 50.0])
    }

    #[test]
    fn counting_survival() {
        let e = sample_log();
        assert_eq!(e.count_at_least(0.0), 5);
        assert_eq!(e.count_at_least(10.0), 5);
        assert_eq!(e.count_at_least(10.1), 4);
        assert_eq!(e.count_at_least(50.0), 1);
        assert_eq!(e.count_at_least(50.1), 0);
        assert!((e.survival(25.0) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn anchored_rank_matches_partition_point_everywhere() {
        // Clustered + outlier values stress the uniform value grid: most
        // anchors collapse onto the dense region and the widened cell
        // lookup must still reproduce the exact rank.
        let mut durations: Vec<f64> = (0..400).map(|i| 100.0 + (i % 37) as f64 * 0.25).collect();
        durations.extend([1e6, 2e6, 5e7]);
        let e = Empirical::from_durations(durations.clone());
        durations.sort_by(|a, b| a.total_cmp(b));
        let mut probes: Vec<f64> = durations.clone();
        probes.extend(durations.iter().map(|d| d + 1e-9));
        probes.extend(durations.iter().map(|d| d - 1e-9));
        probes.extend([0.0, 99.0, 1e8, 3.3e6]);
        for t in probes {
            let got = e.count_at_least(t);
            let want = durations.iter().filter(|&&d| d >= t).count();
            assert_eq!(got, want, "t = {t}");
        }
    }

    #[test]
    fn log_survival_batch_matches_scalar_bits() {
        let e = sample_log();
        let ts: Vec<f64> = vec![-5.0, 0.0, 5.0, 10.0, 25.0, 50.0, 51.0, 1e9];
        let mut out = vec![f64::NAN; ts.len()];
        e.log_survival_batch(&ts, &mut out);
        for (i, &t) in ts.iter().enumerate() {
            assert_eq!(out[i].to_bits(), e.log_survival(t).to_bits(), "t = {t}");
        }
    }

    #[test]
    fn paper_conditional_ratio() {
        // §4.3: P(X ≥ t | X ≥ τ) = #{d ≥ t} / #{d ≥ τ}.
        let e = sample_log();
        // P(X ≥ 40 | X ≥ 20) = 2/4.
        assert!((e.psuc(20.0, 20.0) - 0.5).abs() < 1e-12);
        // P(X ≥ 45 | X ≥ 15) = 1/4.
        assert!((e.psuc(30.0, 15.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn beyond_support_survival_zero() {
        let e = sample_log();
        assert_eq!(e.survival(60.0), 0.0);
        assert_eq!(e.psuc(100.0, 0.0), 0.0);
        // Conditioning past the support: conservative 0.
        assert_eq!(e.psuc(1.0, 60.0), 0.0);
    }

    #[test]
    fn mean_is_sample_mean() {
        let e = sample_log();
        assert!((e.mean() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_draws_logged_values() {
        let e = sample_log();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = e.sample(&mut rng);
            assert!([10.0, 20.0, 30.0, 40.0, 50.0].contains(&v));
        }
    }

    #[test]
    fn sampling_is_uniform_over_log() {
        let e = sample_log();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let tens = (0..n).filter(|_| e.sample(&mut rng) == 10.0).count();
        let frac = tens as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn inverse_survival_steps_through_order_statistics() {
        let e = sample_log();
        assert_eq!(e.inverse_survival(1.0), 10.0);
        // Survival(30) = 3/5 = 0.6 → inverse at 0.6 is 30.
        assert_eq!(e.inverse_survival(0.6), 30.0);
        assert_eq!(e.inverse_survival(0.2), 50.0);
        // Below the smallest achievable survival: max duration.
        assert_eq!(e.inverse_survival(0.05), 50.0);
    }

    #[test]
    fn survival_integral_is_expected_min() {
        let e = sample_log();
        // I(t) = E[min(D, t)]: exact piecewise values.
        assert_eq!(e.survival_integral(0.0), 0.0);
        assert_eq!(e.survival_integral(10.0), 10.0); // all d ≥ 10
        // t = 25: d<25 → {10, 20}, 3 at least: (30 + 3·25)/5 = 21.
        assert!((e.survival_integral(25.0) - 21.0).abs() < 1e-12);
        // Past the support: E[D] = mean.
        assert!((e.survival_integral(1e9) - e.mean()).abs() < 1e-9);
    }

    #[test]
    fn expected_loss_within_window() {
        let e = sample_log();
        let loss = e.expected_loss(35.0, 0.0);
        assert!(loss > 0.0 && loss < 35.0, "got {loss}");
    }

    #[test]
    fn expected_loss_matches_discrete_mean() {
        // E[X − τ | τ ≤ X < τ+x] over a discrete sample is the plain mean
        // of (d − τ) across the logged durations inside the window — the
        // prefix-sum closed form must reproduce it exactly. (The generic
        // quadrature is NOT the oracle here: adaptive Simpson can place a
        // step discontinuity a whole cell off, several percent of x on
        // a sparse window.)
        let durs: Vec<f64> = (1..200).map(|i| (i as f64 * 13.7) % 977.0 + 1.0).collect();
        let e = Empirical::from_durations(durs.clone());
        for &(x, tau) in &[(50.0, 0.0), (200.0, 100.0), (900.0, 30.0), (30.0, 800.0)] {
            let fast = e.expected_loss(x, tau);
            let window: Vec<f64> =
                durs.iter().copied().filter(|&d| d >= tau && d < tau + x).collect();
            let exact = if window.is_empty() {
                0.5 * x
            } else {
                window.iter().map(|d| d - tau).sum::<f64>() / window.len() as f64
            };
            assert!(
                (fast - exact).abs() <= 1e-9 * x,
                "x={x} τ={tau}: closed {fast} vs discrete mean {exact}"
            );
        }
    }

    #[test]
    fn fingerprint_pools_same_log_instances() {
        let a = sample_log();
        let b = sample_log();
        let c = Empirical::from_durations(vec![10.0, 20.0, 30.0, 40.0, 50.5]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(a.fingerprint().is_some());
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Empirical::from_durations(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive() {
        Empirical::from_durations(vec![1.0, 0.0]);
    }

    #[test]
    fn try_constructor_reports_typed_errors() {
        use crate::DistError;
        assert!(matches!(
            Empirical::try_from_durations(vec![]),
            Err(DistError::EmptySample)
        ));
        match Empirical::try_from_durations(vec![1.0, f64::NAN, 2.0]) {
            Err(DistError::InvalidDuration { index: 1, value }) => assert!(value.is_nan()),
            other => panic!("expected InvalidDuration at #1, got {other:?}"),
        }
        assert!(Empirical::try_from_durations(vec![3.0, 1.0]).is_ok());
    }
}
