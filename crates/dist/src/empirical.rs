//! Empirical distribution built from logged availability intervals (§4.3).
//!
//! The paper constructs the log-based failure model as: *"the conditional
//! probability `P(X ≥ t | X ≥ τ)` that a node stays up for a duration `t`,
//! knowing that it had been up for a duration `τ`, is set equal to the ratio
//! of the number of availability durations in S greater than or equal to
//! `t`, over the number of availability durations in S greater than or
//! equal to `τ`."* That is exactly the survival-ratio definition the
//! [`FailureDistribution`] trait derives from `log_survival`, so this type
//! only needs to expose the counting survival function over the sorted
//! sample.

use crate::{DistError, FailureDistribution};
use rand::RngCore;

/// Discrete empirical failure distribution over a log's availability
/// durations.
#[derive(Debug, Clone)]
pub struct Empirical {
    /// Sorted ascending availability durations.
    durations: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// Build from a set of availability durations (seconds).
    ///
    /// # Panics
    /// Panics on an empty set or non-finite/negative durations; the
    /// fallible form is [`Empirical::try_from_durations`].
    pub fn from_durations(durations: Vec<f64>) -> Self {
        match Self::try_from_durations(durations) {
            Ok(e) => e,
            Err(e) => panic!("Empirical: {e}"),
        }
    }

    /// Build from a set of availability durations (seconds), reporting a
    /// typed [`DistError`] on an empty set or a non-finite/non-positive
    /// duration.
    pub fn try_from_durations(mut durations: Vec<f64>) -> Result<Self, DistError> {
        if durations.is_empty() {
            return Err(DistError::EmptySample);
        }
        if let Some((index, &value)) =
            durations.iter().enumerate().find(|(_, d)| !(d.is_finite() && **d > 0.0))
        {
            return Err(DistError::InvalidDuration { index, value });
        }
        // All finite by the check above, so total order == partial order.
        durations.sort_by(|a, b| a.total_cmp(b));
        let mean =
            durations.iter().copied().collect::<ckpt_math::KahanSum>().value()
                / durations.len() as f64;
        Ok(Self { durations, mean })
    }

    /// Number of logged durations.
    pub fn len(&self) -> usize {
        self.durations.len()
    }

    /// True when the log holds no durations (never after construction).
    pub fn is_empty(&self) -> bool {
        self.durations.is_empty()
    }

    /// Count of durations `≥ t` (the numerator/denominator of §4.3).
    pub fn count_at_least(&self, t: f64) -> usize {
        // First index with duration ≥ t.
        let idx = self.durations.partition_point(|&d| d < t);
        self.durations.len() - idx
    }

    /// Largest logged duration — the support's upper edge.
    pub fn max_duration(&self) -> f64 {
        // Construction guarantees at least one duration.
        self.durations[self.durations.len() - 1]
    }
}

impl FailureDistribution for Empirical {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let c = self.count_at_least(t);
        if c == 0 {
            f64::NEG_INFINITY
        } else {
            (c as f64 / self.durations.len() as f64).ln()
        }
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        self.durations[rng.gen_range(0..self.durations.len())]
    }

    fn inverse_survival(&self, s: f64) -> f64 {
        assert!(s > 0.0 && s <= 1.0);
        // Smallest t with count_at_least(t)/n ≤ s: step to the next order
        // statistic. Survival at the i-th sorted value (0-based) is
        // (n − i)/n, so we need i ≥ n(1 − s).
        let n = self.durations.len();
        let i = ((n as f64) * (1.0 - s)).ceil() as usize;
        self.durations[i.min(n - 1)]
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_log() -> Empirical {
        Empirical::from_durations(vec![10.0, 20.0, 30.0, 40.0, 50.0])
    }

    #[test]
    fn counting_survival() {
        let e = sample_log();
        assert_eq!(e.count_at_least(0.0), 5);
        assert_eq!(e.count_at_least(10.0), 5);
        assert_eq!(e.count_at_least(10.1), 4);
        assert_eq!(e.count_at_least(50.0), 1);
        assert_eq!(e.count_at_least(50.1), 0);
        assert!((e.survival(25.0) - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn paper_conditional_ratio() {
        // §4.3: P(X ≥ t | X ≥ τ) = #{d ≥ t} / #{d ≥ τ}.
        let e = sample_log();
        // P(X ≥ 40 | X ≥ 20) = 2/4.
        assert!((e.psuc(20.0, 20.0) - 0.5).abs() < 1e-12);
        // P(X ≥ 45 | X ≥ 15) = 1/4.
        assert!((e.psuc(30.0, 15.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn beyond_support_survival_zero() {
        let e = sample_log();
        assert_eq!(e.survival(60.0), 0.0);
        assert_eq!(e.psuc(100.0, 0.0), 0.0);
        // Conditioning past the support: conservative 0.
        assert_eq!(e.psuc(1.0, 60.0), 0.0);
    }

    #[test]
    fn mean_is_sample_mean() {
        let e = sample_log();
        assert!((e.mean() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_draws_logged_values() {
        let e = sample_log();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = e.sample(&mut rng);
            assert!([10.0, 20.0, 30.0, 40.0, 50.0].contains(&v));
        }
    }

    #[test]
    fn sampling_is_uniform_over_log() {
        let e = sample_log();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let tens = (0..n).filter(|_| e.sample(&mut rng) == 10.0).count();
        let frac = tens as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn inverse_survival_steps_through_order_statistics() {
        let e = sample_log();
        assert_eq!(e.inverse_survival(1.0), 10.0);
        // Survival(30) = 3/5 = 0.6 → inverse at 0.6 is 30.
        assert_eq!(e.inverse_survival(0.6), 30.0);
        assert_eq!(e.inverse_survival(0.2), 50.0);
        // Below the smallest achievable survival: max duration.
        assert_eq!(e.inverse_survival(0.05), 50.0);
    }

    #[test]
    fn expected_loss_within_window() {
        let e = sample_log();
        let loss = e.expected_loss(35.0, 0.0);
        assert!(loss > 0.0 && loss < 35.0, "got {loss}");
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Empirical::from_durations(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive() {
        Empirical::from_durations(vec![1.0, 0.0]);
    }

    #[test]
    fn try_constructor_reports_typed_errors() {
        use crate::DistError;
        assert!(matches!(
            Empirical::try_from_durations(vec![]),
            Err(DistError::EmptySample)
        ));
        match Empirical::try_from_durations(vec![1.0, f64::NAN, 2.0]) {
            Err(DistError::InvalidDuration { index: 1, value }) => assert!(value.is_nan()),
            other => panic!("expected InvalidDuration at #1, got {other:?}"),
        }
        assert!(Empirical::try_from_durations(vec![3.0, 1.0]).is_ok());
    }
}
