//! Weibull distribution — the paper's model of real-world failures.
//!
//! Cumulative distribution `F(t) = 1 − e^{−(t/λ)^k}` with scale `λ` and
//! shape `k`; mean `μ = λ Γ(1 + 1/k)`. Field studies cited by the paper
//! measure shapes well below 1 (0.7/0.78 in Heath et al., 0.51 in Liu et
//! al., 0.33–0.49 in Schroeder & Gibson), i.e. *decreasing hazard*: a
//! processor is less likely to fail the longer it has been up — the
//! property that makes rejuvenate-all harmful (Figure 1) and periodic
//! policies suboptimal (Figure 4).

use crate::FailureDistribution;
use rand::RngCore;

/// Weibull failure inter-arrival times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// From shape `k > 0` and scale `λ > 0`.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self { shape, scale }
    }

    /// From shape `k` and a target mean: `λ = MTBF / Γ(1 + 1/k)` (§4.3).
    pub fn from_mtbf(shape: f64, mtbf: f64) -> Self {
        assert!(mtbf > 0.0, "MTBF must be positive");
        let scale = mtbf / ckpt_math::gamma(1.0 + 1.0 / shape);
        Self::new(shape, scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The distribution of the *minimum* of `p` iid copies — platform
    /// failures under the rejuvenate-all model (§3.1): Weibull with scale
    /// `λ / p^{1/k}` and the same shape.
    pub fn min_of(&self, p: u64) -> Self {
        assert!(p >= 1);
        Self::new(self.shape, self.scale / (p as f64).powf(1.0 / self.shape))
    }
}

impl FailureDistribution for Weibull {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -(t / self.scale).powf(self.shape)
        }
    }

    // `log_survival_batch` deliberately stays on the trait default (one
    // scalar `powf` per element, bit-identical to `log_survival`): glibc's
    // table-driven `pow` measures ~14 ns/element here, while the batched
    // ln→exp composition (`ckpt_math::simd::weibull_log_survival`) lands
    // at ~20 ns/element on the SSE2 baseline — the benched alternative is
    // kept (and micro-benched in `ckpt-bench`) so the comparison is
    // re-runnable on wider targets, but the hot cold-row path keeps the
    // faster, divergence-free form.

    fn mean(&self) -> f64 {
        self.scale * ckpt_math::gamma(1.0 + 1.0 / self.shape)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    fn hazard(&self, t: f64) -> f64 {
        // h(t) = (k/λ)(t/λ)^{k−1}; diverges at 0 for k < 1.
        let t = t.max(f64::MIN_POSITIVE);
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }

    fn inverse_survival(&self, s: f64) -> f64 {
        assert!(s > 0.0 && s <= 1.0);
        self.scale * (-s.ln()).powf(1.0 / self.shape)
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(*self)
    }

    fn fingerprint(&self) -> Option<u64> {
        // log_survival is a pure function of (shape, scale) bits.
        Some(crate::combine_fingerprint(
            1,
            &[self.shape.to_bits(), self.scale.to_bits()],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 100.0);
        let e = crate::Exponential::new(0.01);
        for &t in &[0.0, 1.0, 50.0, 500.0] {
            assert!((w.log_survival(t) - e.log_survival(t)).abs() < 1e-12);
        }
        assert!((w.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn from_mtbf_hits_target_mean() {
        for &k in &[0.33, 0.5, 0.7, 1.0, 1.5] {
            let w = Weibull::from_mtbf(k, 125.0 * 365.25 * 86_400.0);
            let target = 125.0 * 365.25 * 86_400.0;
            assert!(
                (w.mean() - target).abs() < 1e-3 * target,
                "k = {k}: mean {}",
                w.mean()
            );
        }
    }

    #[test]
    fn decreasing_hazard_below_one() {
        let w = Weibull::from_mtbf(0.7, 1000.0);
        assert!(w.hazard(10.0) > w.hazard(100.0));
        assert!(w.hazard(100.0) > w.hazard(1000.0));
    }

    #[test]
    fn increasing_hazard_above_one() {
        let w = Weibull::new(2.0, 1000.0);
        assert!(w.hazard(10.0) < w.hazard(100.0));
    }

    #[test]
    fn conditional_survival_improves_with_age_when_k_below_one() {
        // §3.1: P(X > t+x | X > t) strictly increases with t for k < 1.
        let w = Weibull::from_mtbf(0.7, 1000.0);
        let p0 = w.psuc(100.0, 0.0);
        let p1 = w.psuc(100.0, 1000.0);
        let p2 = w.psuc(100.0, 100_000.0);
        assert!(p0 < p1 && p1 < p2, "{p0} {p1} {p2}");
    }

    #[test]
    fn conditional_survival_constant_at_k_one() {
        let w = Weibull::new(1.0, 1000.0);
        let p0 = w.psuc(100.0, 0.0);
        let p1 = w.psuc(100.0, 99_999.0);
        assert!((p0 - p1).abs() < 1e-12);
    }

    #[test]
    fn min_of_platform_scaling() {
        // Scale divides by p^{1/k}; mean divides likewise.
        let w = Weibull::from_mtbf(0.7, 125.0);
        let plat = w.min_of(45_208);
        let expect = 125.0 / (45_208f64).powf(1.0 / 0.7);
        assert!((plat.mean() - expect).abs() < 1e-9 * expect);
    }

    #[test]
    fn min_of_is_distribution_of_minimum() {
        // P(min of p ≥ t) = S(t)^p must equal the min_of survival.
        let w = Weibull::new(0.7, 500.0);
        let p = 16u64;
        let m = w.min_of(p);
        for &t in &[1.0, 10.0, 100.0, 1000.0] {
            let lhs = p as f64 * w.log_survival(t);
            let rhs = m.log_survival(t);
            assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
        }
    }

    #[test]
    fn batch_log_survival_tracks_scalar_within_1e12() {
        // The batched log-domain path is the sanctioned FP divergence
        // from scalar `powf`; pin how far apart they may drift, across
        // remainder-lane lengths and the t ≤ 0 early return.
        for &(shape, mtbf) in &[(0.5, 1_000.0), (0.7, 125.0 * 365.25 * 86_400.0), (1.3, 50.0)] {
            let w = Weibull::from_mtbf(shape, mtbf);
            for len in [1usize, 3, 4, 7, 256] {
                let ts: Vec<f64> =
                    (0..len).map(|i| (i as f64 - 1.0) * mtbf / 17.0).collect();
                let mut out = vec![f64::NAN; len];
                w.log_survival_batch(&ts, &mut out);
                for (i, &t) in ts.iter().enumerate() {
                    let exact = w.log_survival(t);
                    let err = (out[i] - exact).abs() / exact.abs().max(1e-300);
                    assert!(
                        err <= 1e-12 || out[i] == exact,
                        "shape {shape} len {len} t {t}: batch {} vs scalar {exact}",
                        out[i]
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_survival_round_trip() {
        let w = Weibull::from_mtbf(0.5, 333.0);
        for &s in &[0.999, 0.9, 0.5, 0.1, 1e-3] {
            let t = w.inverse_survival(s);
            assert!((w.survival(t) - s).abs() < 1e-10, "s = {s}");
        }
    }

    #[test]
    fn sample_mean_converges() {
        let w = Weibull::from_mtbf(0.7, 200.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 3.0, "sample mean {mean}");
    }

    #[test]
    fn sample_survival_matches_analytic() {
        let w = Weibull::from_mtbf(0.7, 100.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let t0 = 50.0;
        let frac = (0..n).filter(|_| w.sample(&mut rng) >= t0).count() as f64 / n as f64;
        assert!((frac - w.survival(t0)).abs() < 5e-3);
    }
}
