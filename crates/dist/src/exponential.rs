//! Exponential distribution — the memoryless baseline of §2.3.1.

use crate::FailureDistribution;
use rand::RngCore;

/// Exponential failure inter-arrival times with rate `λ` (density
/// `λ e^{−λt}`), i.e. mean `1/λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// From rate `λ > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "λ must be positive");
        Self { lambda }
    }

    /// From mean time between failures (`λ = 1/MTBF`).
    pub fn from_mtbf(mtbf: f64) -> Self {
        assert!(mtbf > 0.0 && mtbf.is_finite(), "MTBF must be positive");
        Self::new(1.0 / mtbf)
    }

    /// Rate parameter `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Lemma 1 closed form: `E[Tlost(ω)] = 1/λ − ω/(e^{λω} − 1)`.
    pub fn expected_loss_closed_form(&self, x: f64) -> f64 {
        assert!(x >= 0.0);
        if x == 0.0 { // lint: allow(float-eq) — exact zero fast path, not a tolerance check
            return 0.0;
        }
        let lx = self.lambda * x;
        if lx < 1e-8 {
            // Series: 1/λ − ω/(λω + (λω)²/2 + …) → ω/2 − λω²/12 + …
            return 0.5 * x - lx * x / 12.0;
        }
        1.0 / self.lambda - x / lx.exp_m1()
    }
}

impl FailureDistribution for Exponential {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            -self.lambda * t
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        // Inverse CDF on (0, 1]: −ln(U)/λ; `gen` yields [0,1), use 1−U.
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.lambda
    }

    fn hazard(&self, _t: f64) -> f64 {
        self.lambda
    }

    fn inverse_survival(&self, s: f64) -> f64 {
        assert!(s > 0.0 && s <= 1.0);
        -s.ln() / self.lambda
    }

    fn expected_loss(&self, x: f64, _tau: f64) -> f64 {
        // Memoryless: age is irrelevant; use Lemma 1.
        self.expected_loss_closed_form(x)
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(*self)
    }

    fn fingerprint(&self) -> Option<u64> {
        // log_survival is a pure function of the rate bits.
        Some(crate::combine_fingerprint(2, &[self.lambda.to_bits()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn survival_and_cdf() {
        let d = Exponential::new(0.5);
        assert!((d.survival(2.0) - (-1.0f64).exp()).abs() < 1e-15);
        assert!((d.cdf(0.0)).abs() < 1e-15);
        assert_eq!(d.survival(-1.0), 1.0);
    }

    #[test]
    fn memoryless_psuc() {
        let d = Exponential::new(1e-3);
        for &tau in &[0.0, 100.0, 1e6] {
            let p = d.psuc(500.0, tau);
            assert!((p - (-0.5f64).exp()).abs() < 1e-12, "τ = {tau}");
        }
    }

    #[test]
    fn inverse_survival_closed_form() {
        let d = Exponential::new(2.0);
        assert!((d.inverse_survival(0.5) - 0.5f64.ln().abs() / 2.0).abs() < 1e-12);
        assert_eq!(d.inverse_survival(1.0), 0.0);
    }

    #[test]
    fn constant_hazard() {
        let d = Exponential::new(3.5);
        assert_eq!(d.hazard(0.0), 3.5);
        assert_eq!(d.hazard(1e9), 3.5);
    }

    #[test]
    fn sample_mean_converges() {
        let d = Exponential::from_mtbf(250.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 3.0, "sample mean {mean}");
    }

    #[test]
    fn loss_closed_form_small_argument_series() {
        let d = Exponential::new(1e-9);
        // λx = 1e-7: naive formula cancels; the series path must give ≈ x/2.
        let e = d.expected_loss_closed_form(100.0);
        assert!((e - 50.0).abs() < 1e-4, "got {e}");
    }

    #[test]
    fn loss_saturates_at_mean() {
        let d = Exponential::new(0.01);
        // As the window → ∞, E[Tlost] → 1/λ.
        let e = d.expected_loss(1e6, 0.0);
        assert!((e - 100.0).abs() < 1e-6, "got {e}");
    }

    #[test]
    fn samples_are_positive_and_finite() {
        let d = Exponential::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!(x > 0.0 && x.is_finite());
        }
    }
}
