//! Minimum-of-`n` wrapper: the platform failure distribution under the
//! all-rejuvenation model, for *any* per-processor distribution.
//!
//! `P(min of n iid X ≥ t) = S(t)ⁿ`, i.e. log-survival scales by `n`. For
//! Weibull this has the closed form `Weibull(λ/n^{1/k}, k)`
//! ([`crate::Weibull::min_of`]); this wrapper covers every other family so
//! that rejuvenation-assuming policies (Bouguerra, parallel DPMakespan)
//! stay distribution-agnostic.

use crate::FailureDistribution;
use rand::RngCore;

/// The distribution of the minimum of `n` iid copies of `inner`.
#[derive(Debug, Clone)]
pub struct MinOf {
    inner: Box<dyn FailureDistribution>,
    n: f64,
}

impl MinOf {
    /// Wrap `inner` as a minimum over `n ≥ 1` copies.
    pub fn new(inner: Box<dyn FailureDistribution>, n: u64) -> Self {
        assert!(n >= 1);
        Self { inner, n: n as f64 }
    }

    /// Number of copies.
    pub fn copies(&self) -> f64 {
        self.n
    }
}

impl FailureDistribution for MinOf {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            self.n * self.inner.log_survival(t)
        }
    }

    fn log_survival_batch(&self, ts: &[f64], out: &mut [f64]) {
        // Delegate the batch to the inner family (Weibull's log-domain
        // pass, Empirical's indexed counting), then apply the `n×`
        // scaling — the same multiply the scalar path performs, so this
        // wrapper adds no FP divergence of its own. `t ≤ 0` entries come
        // back 0 from the inner batch and stay 0 under the scale.
        self.inner.log_survival_batch(ts, out);
        for v in out.iter_mut() {
            *v *= self.n;
        }
    }

    fn mean(&self) -> f64 {
        // E[min] = ∫₀^∞ S(t)ⁿ dt; truncate where S(t)ⁿ < 1e−14.
        let tail = (1e-14f64).ln() / self.n; // target inner log-survival
        let upper = self.inner.inverse_survival(tail.exp().max(f64::MIN_POSITIVE));
        ckpt_math::adaptive_simpson(
            |t| (self.n * self.inner.log_survival(t)).exp(),
            0.0,
            upper.max(1e-12),
            1e-10 * upper.max(1.0),
        )
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        // S(t)ⁿ = u  ⇔  ln S(t) = ln u / n.
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.inner.inverse_survival((u.ln() / self.n).exp())
    }

    fn inverse_survival(&self, s: f64) -> f64 {
        assert!(s > 0.0 && s <= 1.0);
        self.inner.inverse_survival((s.ln() / self.n).exp())
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(self.clone())
    }

    fn fingerprint(&self) -> Option<u64> {
        // Pure scaling of the inner log-survival: fingerprintable exactly
        // when the inner distribution is.
        self.inner
            .fingerprint()
            .map(|inner| crate::combine_fingerprint(3, &[inner, self.n.to_bits()]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, LogNormal, Weibull};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_min_is_rate_scaled() {
        let m = MinOf::new(Box::new(Exponential::new(0.001)), 50);
        let e = Exponential::new(0.05);
        for &t in &[1.0, 10.0, 100.0] {
            assert!((m.log_survival(t) - e.log_survival(t)).abs() < 1e-12);
        }
        assert!((m.mean() - 20.0).abs() < 1e-6, "mean {}", m.mean());
    }

    #[test]
    fn weibull_min_matches_closed_form() {
        let w = Weibull::from_mtbf(0.7, 1_000.0);
        let closed = w.min_of(64);
        let generic = MinOf::new(Box::new(w), 64);
        for &t in &[0.1, 1.0, 10.0, 100.0] {
            assert!(
                (generic.log_survival(t) - closed.log_survival(t)).abs() < 1e-9,
                "t = {t}"
            );
        }
        let rel = (generic.mean() - closed.mean()).abs() / closed.mean();
        assert!(rel < 1e-4, "means {} vs {}", generic.mean(), closed.mean());
    }

    #[test]
    fn sampling_matches_survival() {
        let m = MinOf::new(Box::new(LogNormal::from_mtbf(1.0, 1_000.0)), 16);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let t0 = m.inverse_survival(0.5);
        let frac = (0..n).filter(|_| m.sample(&mut rng) >= t0).count() as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn more_copies_smaller_mean() {
        let base: Box<dyn FailureDistribution> = Box::new(Weibull::from_mtbf(0.7, 1_000.0));
        let m4 = MinOf::new(base.clone(), 4).mean();
        let m64 = MinOf::new(base, 64).mean();
        assert!(m4 > m64);
    }

    #[test]
    fn single_copy_is_identity() {
        let w = Weibull::from_mtbf(0.7, 500.0);
        let m = MinOf::new(Box::new(w), 1);
        assert!((m.mean() - 500.0).abs() < 0.5);
    }
}
