//! Typed errors for distribution construction.
//!
//! Library paths in this crate report failures as [`DistError`] values
//! instead of panicking, so the experiment pipeline can capture a bad
//! input (an empty availability log, a NaN duration) as data and keep
//! running every other cell.

/// Why a distribution could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A sample-based distribution was given no samples.
    EmptySample,
    /// A duration was non-finite or non-positive.
    InvalidDuration {
        /// Index of the offending value in the input.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A named parameter was outside its domain.
    InvalidParameter {
        /// Parameter name.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptySample => write!(f, "empty sample set"),
            Self::InvalidDuration { index, value } => {
                write!(f, "duration #{index} is not positive and finite: {value}")
            }
            Self::InvalidParameter { what, value } => {
                write!(f, "parameter {what} out of domain: {value}")
            }
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DistError::InvalidDuration { index: 3, value: f64::NAN };
        let s = e.to_string();
        assert!(s.contains("#3") && s.contains("NaN"), "{s}");
        assert_eq!(DistError::EmptySample.to_string(), "empty sample set");
    }
}
