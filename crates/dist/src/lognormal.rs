//! LogNormal distribution — an extension distribution.
//!
//! Schroeder & Gibson's follow-up analyses often fit LogNormal alongside
//! Weibull; we include it so the policy comparison can be run against a
//! second heavy-tailed family (the DP policies are distribution-agnostic).

use crate::FailureDistribution;
use rand::RngCore;

/// LogNormal inter-arrival times: `ln X ~ N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From log-space mean `μ` and log-space standard deviation `σ > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "μ must be finite");
        assert!(sigma > 0.0 && sigma.is_finite(), "σ must be positive");
        Self { mu, sigma }
    }

    /// From a target mean and a shape-controlling `σ`:
    /// `μ = ln(mean) − σ²/2`.
    pub fn from_mtbf(sigma: f64, mtbf: f64) -> Self {
        assert!(mtbf > 0.0);
        Self::new(mtbf.ln() - 0.5 * sigma * sigma, sigma)
    }

    /// Log-space location `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

/// Complementary error function via the Abramowitz–Stegun 7.1.26-style
/// rational approximation refined with one extra term; |ε| < 1.2e−7,
/// plenty below the simulation noise floor.
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
        .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal survival `P(Z ≥ z)`.
fn normal_survival(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

impl FailureDistribution for LogNormal {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let z = (t.ln() - self.mu) / self.sigma;
        let s = normal_survival(z);
        if s <= 0.0 {
            f64::NEG_INFINITY
        } else {
            s.ln()
        }
    }

    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        // Box–Muller.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erfc_reference_points() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_792_949_715).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(3.0, 0.8);
        let med = d.inverse_survival(0.5);
        assert!((med - 3.0f64.exp()).abs() < 1e-3 * med);
    }

    #[test]
    fn from_mtbf_hits_target_mean() {
        let d = LogNormal::from_mtbf(1.5, 1000.0);
        assert!((d.mean() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn sample_mean_converges() {
        let d = LogNormal::from_mtbf(1.0, 50.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "sample mean {mean}");
    }

    #[test]
    fn survival_monotone() {
        let d = LogNormal::new(0.0, 1.0);
        let mut prev = 1.0;
        for i in 1..100 {
            let s = d.survival(i as f64 * 0.2);
            assert!(s <= prev + 1e-12);
            prev = s;
        }
    }

    #[test]
    fn heavy_tail_decreasing_conditional_hazard() {
        // LogNormal hazard eventually decreases: survival of old processors
        // improves, like Weibull k<1 — the regime where DP policies win.
        let d = LogNormal::from_mtbf(1.5, 1000.0);
        let young = d.psuc(100.0, 10.0);
        let old = d.psuc(100.0, 50_000.0);
        assert!(old > young, "old {old} young {young}");
    }
}
