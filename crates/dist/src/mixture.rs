//! Finite mixtures of failure distributions.
//!
//! The synthetic LANL-like logs (`ckpt-traces`) are drawn from a mixture of
//! a short-interval Weibull spike and a heavy long-interval component,
//! mirroring the bimodal availability-duration histograms reported for
//! production clusters.

use crate::FailureDistribution;
use rand::RngCore;

/// A weighted mixture `Σ wᵢ · Dᵢ` of failure distributions.
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<(f64, Box<dyn FailureDistribution>)>,
}

impl Mixture {
    /// Build from `(weight, distribution)` pairs; weights are normalised.
    ///
    /// # Panics
    /// Panics if empty or any weight is non-positive.
    pub fn new(components: Vec<(f64, Box<dyn FailureDistribution>)>) -> Self {
        assert!(!components.is_empty(), "Mixture: no components");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            components.iter().all(|(w, _)| *w > 0.0) && total > 0.0,
            "Mixture: weights must be positive"
        );
        let components = components
            .into_iter()
            .map(|(w, d)| (w / total, d))
            .collect();
        Self { components }
    }

    /// Component count.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mixture has no components (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl FailureDistribution for Mixture {
    fn log_survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        // log Σ wᵢ e^{lsᵢ} via log-sum-exp.
        let terms: Vec<f64> = self
            .components
            .iter()
            .map(|(w, d)| w.ln() + d.log_survival(t))
            .collect();
        let m = terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if m == f64::NEG_INFINITY { // lint: allow(float-eq) — -inf log-survival sentinel is an exact bit pattern
            return f64::NEG_INFINITY;
        }
        m + terms.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
    }

    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, d)| w * d.mean()).sum()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        use rand::Rng;
        let mut u: f64 = rng.gen();
        // Rounding fallthrough lands on the last component (construction
        // guarantees at least one).
        let mut pick = self.components.len() - 1;
        for (i, (w, _)) in self.components.iter().enumerate() {
            if u < *w {
                pick = i;
                break;
            }
            u -= w;
        }
        self.components[pick].1.sample(rng)
    }

    fn clone_box(&self) -> Box<dyn FailureDistribution> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{Exponential, Weibull};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_component() -> Mixture {
        Mixture::new(vec![
            (0.3, Box::new(Exponential::new(0.1)) as Box<dyn FailureDistribution>),
            (0.7, Box::new(Exponential::new(0.001))),
        ])
    }

    #[test]
    fn mean_is_weighted() {
        let m = two_component();
        assert!((m.mean() - (0.3 * 10.0 + 0.7 * 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn survival_is_weighted() {
        let m = two_component();
        let t = 100.0;
        let expect = 0.3 * (-10.0f64).exp() + 0.7 * (-0.1f64).exp();
        assert!((m.survival(t) - expect).abs() < 1e-12);
    }

    #[test]
    fn weights_normalise() {
        let m = Mixture::new(vec![
            (3.0, Box::new(Exponential::new(1.0)) as Box<dyn FailureDistribution>),
            (1.0, Box::new(Exponential::new(1.0))),
        ]);
        // Identical components: behaves like a single Exponential(1).
        assert!((m.mean() - 1.0).abs() < 1e-12);
        assert!((m.survival(1.0) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn sample_mean_converges() {
        let m = two_component();
        let mut rng = StdRng::seed_from_u64(19);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - m.mean()).abs() < 0.01 * m.mean(), "got {mean}");
    }

    #[test]
    fn weibull_spike_plus_tail_has_decreasing_conditional_hazard() {
        let m = Mixture::new(vec![
            (0.5, Box::new(Weibull::from_mtbf(0.6, 60.0)) as Box<dyn FailureDistribution>),
            (0.5, Box::new(Weibull::from_mtbf(0.6, 50_000.0))),
        ]);
        // Survivors of the spike are mostly long-interval draws.
        assert!(m.psuc(100.0, 5_000.0) > m.psuc(100.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Mixture::new(vec![]);
    }
}
