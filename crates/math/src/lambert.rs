//! Real branches of the Lambert W function, `W(z) e^{W(z)} = z`.
//!
//! Theorem 1 of the paper needs `W0(−e^{−λC−1})`. The argument always lies
//! in `(−1/e, 0)`, where both real branches exist; the theorem's derivation
//! (`y = λW/K0 − 1` with `y ∈ (−1, 0)`) selects the principal branch `W0`.
//! We also provide `W−1` because the same equation shows up in other
//! checkpointing derivations (e.g. Daly-style period analyses).

/// `1/e`, the branch point abscissa of the Lambert W function is at `−1/e`.
const INV_E: f64 = 1.0 / std::f64::consts::E;

/// Principal branch `W0(z)` for `z ≥ −1/e`.
///
/// Accurate to near machine precision via Halley iteration from a
/// branch-aware initial guess.
///
/// # Panics
/// Panics if `z < −1/e` (no real solution) or `z` is NaN.
pub fn lambert_w0(z: f64) -> f64 {
    assert!(!z.is_nan(), "lambert_w0: NaN argument");
    assert!(
        z >= -INV_E - 1e-12,
        "lambert_w0: argument {z} below branch point -1/e"
    );
    if z == 0.0 { // lint: allow(float-eq) — exact zero fast path, not a tolerance check
        return 0.0;
    }
    // Clamp tiny numerical undershoot of the branch point.
    let z = z.max(-INV_E);
    let w0 = initial_guess_w0(z);
    halley(z, w0)
}

/// Secondary real branch `W−1(z)` for `z ∈ [−1/e, 0)`; returns values ≤ −1.
///
/// # Panics
/// Panics if `z` is outside `[−1/e, 0)` or NaN.
pub fn lambert_wm1(z: f64) -> f64 {
    assert!(!z.is_nan(), "lambert_wm1: NaN argument");
    assert!(
        (-INV_E - 1e-12..0.0).contains(&z),
        "lambert_wm1: argument {z} outside [-1/e, 0)"
    );
    let z = z.max(-INV_E);
    if (z + INV_E).abs() < 1e-300 {
        return -1.0;
    }
    // Series about the branch point for z near −1/e; asymptotic
    // ln(−z) − ln(−ln(−z)) expansion otherwise.
    let w0 = if z > -0.27 {
        let l1 = (-z).ln();
        let l2 = (-l1).ln();
        l1 - l2 + l2 / l1
    } else {
        let p = -(2.0 * (1.0 + std::f64::consts::E * z)).sqrt();
        -1.0 + p - p * p / 3.0 + 11.0 / 72.0 * p * p * p
    };
    halley(z, w0)
}

fn initial_guess_w0(z: f64) -> f64 {
    if z < -0.25 {
        // Series about the branch point: W0 ≈ −1 + p − p²/3 + 11p³/72,
        // p = +sqrt(2(1 + e·z)).
        let p = (2.0 * (1.0 + std::f64::consts::E * z)).sqrt();
        -1.0 + p - p * p / 3.0 + 11.0 / 72.0 * p * p * p
    } else {
        // ln(1 + z) tracks W0 well enough over [−1/4, ∞) for Halley to
        // converge quadratically (exact at z = 0, right asymptotic slope).
        z.ln_1p()
    }
}

/// Halley iteration on `f(w) = w e^w − z`.
fn halley(z: f64, mut w: f64) -> f64 {
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - z;
        if f == 0.0 { // lint: allow(float-eq) — exact-root early exit
            break;
        }
        let wp1 = w + 1.0;
        let denom = ew * wp1 - (w + 2.0) * f / (2.0 * wp1);
        let dw = f / denom;
        w -= dw;
        if dw.abs() <= 1e-15 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_inverse(w: f64, z: f64) {
        let back = w * w.exp();
        assert!(
            (back - z).abs() <= 1e-12 * (1.0 + z.abs()),
            "w e^w = {back}, expected {z} (w = {w})"
        );
    }

    #[test]
    fn w0_known_values() {
        assert!((lambert_w0(0.0)).abs() < 1e-15);
        // W0(e) = 1.
        assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-12);
        // W0(1) = Ω ≈ 0.5671432904097838.
        assert!((lambert_w0(1.0) - 0.567_143_290_409_783_8).abs() < 1e-12);
    }

    #[test]
    fn w0_round_trips_across_domain() {
        for &z in &[-0.367, -0.3, -0.1, -1e-6, 1e-6, 0.5, 1.0, 10.0, 1e6] {
            check_inverse(lambert_w0(z), z);
        }
    }

    #[test]
    fn w0_at_branch_point() {
        let w = lambert_w0(-INV_E);
        assert!((w + 1.0).abs() < 1e-6, "W0(-1/e) = {w}, expected -1");
    }

    #[test]
    fn wm1_round_trips() {
        for &z in &[-0.3678, -0.36, -0.3, -0.2, -0.1, -0.01, -1e-4, -1e-8] {
            let w = lambert_wm1(z);
            assert!(w <= -1.0, "W-1({z}) = {w} must be <= -1");
            check_inverse(w, z);
        }
    }

    #[test]
    fn wm1_known_value() {
        // W−1(−1/4) ≈ −2.153292364110349.
        assert!((lambert_wm1(-0.25) + 2.153_292_364_110_349).abs() < 1e-10);
    }

    #[test]
    fn branches_agree_only_at_branch_point() {
        let z = -0.2;
        assert!(lambert_w0(z) > lambert_wm1(z));
    }

    #[test]
    fn theorem1_argument_range() {
        // For any λ, C > 0 the Theorem-1 argument −e^{−λC−1} ∈ (−1/e, 0):
        // W0 of it must lie in (−1, 0).
        for &lc in &[1e-6, 1e-3, 0.1, 1.0, 10.0] {
            let z = -(-lc - 1.0f64).exp();
            let w = lambert_w0(z);
            assert!(w > -1.0 && w < 0.0, "W0({z}) = {w} out of (-1, 0)");
        }
    }

    #[test]
    #[should_panic]
    fn w0_rejects_below_branch_point() {
        lambert_w0(-0.5);
    }

    #[test]
    #[should_panic]
    fn wm1_rejects_positive() {
        lambert_wm1(0.1);
    }
}
