//! Adaptive Simpson quadrature.
//!
//! Used to evaluate `∫ S(t) dt` terms in the generic conditional expected
//! loss `E[Tlost(x|τ)]` (survival functions are smooth and monotone, a
//! friendly target for Simpson with local error control).

/// Integrate `f` over `[a, b]` with absolute tolerance `tol`.
///
/// Handles `a > b` by sign flip and `a == b` as zero. Recursion depth is
/// bounded; on hitting the bound the current (already quite refined)
/// estimate is accepted, which keeps the routine total even for slightly
/// kinked integrands like empirical survival curves.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(a.is_finite() && b.is_finite(), "integration bounds must be finite");
    assert!(tol > 0.0, "tolerance must be positive");
    if a == b {
        return 0.0;
    }
    if a > b {
        return -adaptive_simpson(f, b, a, tol);
    }
    let m = 0.5 * (a + b);
    let fa = f(a);
    let fm = f(m);
    let fb = f(b);
    let whole = simpson(a, b, fa, fm, fb);
    // Depth 30 bounds worst-case work while leaving ample refinement for
    // smooth survival-curve integrands (interval width shrinks by 2^30).
    recurse(&f, a, b, fa, fm, fb, whole, tol, 30)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn recurse<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        // Richardson extrapolation term.
        return left + right + delta / 15.0;
    }
    recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
        + recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_is_exact() {
        // Simpson is exact for cubics.
        let v = adaptive_simpson(|x| x * x * x - 2.0 * x + 1.0, 0.0, 2.0, 1e-12);
        // ∫ = x⁴/4 − x² + x over [0,2] = 4 − 4 + 2 = 2.
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_survival() {
        // ∫₀^∞-ish e^{−t} over [0, 50] ≈ 1.
        let v = adaptive_simpson(|t| (-t).exp(), 0.0, 50.0, 1e-10);
        assert!((v - 1.0).abs() < 1e-8, "got {v}");
    }

    #[test]
    fn weibull_survival_mean() {
        // For Weibull(λ=1, k=0.7), ∫₀^∞ S(t)dt = Γ(1 + 1/0.7) ≈ 1.2658219.
        let k = 0.7;
        let v = adaptive_simpson(|t: f64| (-(t.powf(k))).exp(), 0.0, 2000.0, 1e-9);
        assert!((v - 1.265_821_889_8).abs() < 1e-5, "got {v}");
    }

    #[test]
    fn reversed_bounds_negate() {
        let a = adaptive_simpson(|x| x.sin(), 0.0, 1.0, 1e-12);
        let b = adaptive_simpson(|x| x.sin(), 1.0, 0.0, 1e-12);
        assert!((a + b).abs() < 1e-14);
    }

    #[test]
    fn empty_interval_is_zero() {
        assert_eq!(adaptive_simpson(|x| x, 3.0, 3.0, 1e-9), 0.0);
    }
}
