//! Compensated summation and summary statistics.
//!
//! The degradation tables (Tables 2–4) report averages and standard
//! deviations over 600 per-trace ratios; Kahan compensation keeps those
//! stable when the harness fans out to hundreds of thousands of samples.

/// Kahan–Babuška compensated accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// Fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    pub fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

/// Summary statistics over a sample: count, mean, standard deviation,
/// min/max, and arbitrary percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    std_dev: f64,
}

impl Summary {
    /// Build from a sample (NaNs are rejected).
    ///
    /// # Panics
    /// Panics on an empty sample or any NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "Summary: empty sample");
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "Summary: NaN in sample"
        );
        let n = samples.len() as f64;
        let mean = samples.iter().copied().collect::<KahanSum>().value() / n;
        let var = samples
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .collect::<KahanSum>()
            .value()
            / n;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self { sorted, mean, std_dev: var.max(0.0).sqrt() }
    }

    /// Sample size.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (as the paper's tables report).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Linear-interpolated percentile, `q ∈ [0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile: q ∈ [0,1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_pathological_sum() {
        let mut k = KahanSum::new();
        k.add(1e16);
        for _ in 0..10_000 {
            k.add(1.0);
        }
        k.add(-1e16);
        assert_eq!(k.value(), 10_000.0);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-15);
        assert!((s.std_dev() - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-15);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_samples(&[0.0, 10.0]);
        assert!((s.percentile(0.25) - 2.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(1.0), 10.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.percentile(0.3), 7.0);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        Summary::from_samples(&[1.0, f64::NAN]);
    }
}
