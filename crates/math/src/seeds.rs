//! Deterministic seed derivation.
//!
//! §4.3 of the paper requires coherent trace sets: the traces used for a
//! `p`-processor experiment must be the first `p` traces of the
//! `b`-processor set. We get this by deriving every per-processor,
//! per-trace RNG seed from a stable `(label, trace, processor)` triple via
//! SplitMix64 mixing — independent of thread scheduling or iteration order.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn mix_seed(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stable, order-independent seed hierarchy.
///
/// ```
/// use ckpt_math::SeedSequence;
/// let root = SeedSequence::from_label("table2");
/// let trace7 = root.child(7);
/// let proc3 = trace7.child(3);
/// assert_ne!(trace7.seed(), proc3.seed());
/// // Deterministic: rebuilding the hierarchy gives the same seeds.
/// assert_eq!(proc3.seed(), SeedSequence::from_label("table2").child(7).child(3).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Root sequence from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: mix_seed(seed) }
    }

    /// Root sequence from a human-readable experiment label (FNV-1a hash).
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::new(h)
    }

    /// Derive the `i`-th child sequence.
    #[must_use]
    pub fn child(&self, i: u64) -> Self {
        Self { state: mix_seed(self.state ^ mix_seed(i.wrapping_add(0x51_7c_c1_b7_27_22_0a_95))) }
    }

    /// The seed value to hand to an RNG.
    pub fn seed(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mixing_is_bijective_sample() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix_seed(i)), "collision at {i}");
        }
    }

    #[test]
    fn children_are_distinct() {
        let root = SeedSequence::from_label("x");
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(root.child(i).seed()));
        }
    }

    #[test]
    fn labels_differ() {
        assert_ne!(
            SeedSequence::from_label("table2").seed(),
            SeedSequence::from_label("table3").seed()
        );
    }

    #[test]
    fn hierarchy_is_stable() {
        let a = SeedSequence::from_label("fig4").child(10).child(2).seed();
        let b = SeedSequence::from_label("fig4").child(10).child(2).seed();
        assert_eq!(a, b);
    }

    #[test]
    fn sibling_order_does_not_matter() {
        let root = SeedSequence::new(42);
        let c5_then_c9 = (root.child(5).seed(), root.child(9).seed());
        let c9_then_c5 = (root.child(9).seed(), root.child(5).seed());
        assert_eq!(c5_then_c9.0, c9_then_c5.1);
        assert_eq!(c5_then_c9.1, c9_then_c5.0);
    }
}
