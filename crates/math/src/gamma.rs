//! Gamma function via the Lanczos approximation.
//!
//! The workspace needs `Γ(1 + 1/k)` to convert a target processor MTBF into
//! the Weibull scale parameter (§4.3 of the paper: `λ = MTBF / Γ(1 + 1/k)`),
//! and `ln Γ` for log-space density evaluations of the Gamma and LogNormal
//! extension distributions.

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
/// Kept at published precision even where it exceeds f64 (rounding is the
/// compiler's job, not the transcriber's).
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the Gamma function for `x > 0`.
///
/// # Panics
/// Panics if `x ≤ 0` or `x` is NaN.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0 && !x.is_nan(), "ln_gamma: x must be positive, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The Gamma function for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_factorials() {
        for n in 1u32..=15 {
            let fact: f64 = (1..n).map(f64::from).product();
            let g = gamma(f64::from(n));
            assert!(
                (g - fact).abs() <= 1e-10 * fact,
                "Γ({n}) = {g}, expected {fact}"
            );
        }
    }

    #[test]
    fn half_integer() {
        // Γ(1/2) = √π.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((gamma(0.5) - sqrt_pi).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        assert!((gamma(1.5) - sqrt_pi / 2.0).abs() < 1e-12);
    }

    #[test]
    fn recurrence_holds() {
        for &x in &[0.1, 0.25, 0.7, 1.3, 2.5, 7.9, 20.0] {
            let lhs = gamma(x + 1.0);
            let rhs = x * gamma(x);
            assert!(
                (lhs - rhs).abs() <= 1e-11 * rhs.abs().max(1.0),
                "Γ(x+1) = xΓ(x) violated at x = {x}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn weibull_mean_factors() {
        // Values the experiments rely on: Γ(1 + 1/k) for the paper's shapes.
        // Γ(1 + 1/0.7) = Γ(2.428571…) ≈ 1.2658235060572833.
        assert!((gamma(1.0 + 1.0 / 0.7) - 1.265_823_506_057_283_3).abs() < 1e-10);
        // k = 1 (Exponential): Γ(2) = 1.
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        // k = 0.5: Γ(3) = 2.
        assert!((gamma(3.0) - 2.0).abs() < 1e-11);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
