//! Scalar root finding: bisection and Brent's method.
//!
//! Used for numeric quantiles (`P(X ≥ q) = s` for distributions without
//! closed-form inverses) and for locating period-sweep optima.

/// Find a root of `f` in `[a, b]` by plain bisection.
///
/// Requires `f(a)` and `f(b)` to have opposite signs (a zero endpoint is
/// returned immediately). Runs until the bracket is narrower than `tol` or
/// 200 iterations elapse.
pub fn bisect<F: Fn(f64) -> f64>(f: F, mut a: f64, mut b: f64, tol: f64) -> f64 {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 { // lint: allow(float-eq) — exact-root early exit
        return a;
    }
    if fb == 0.0 { // lint: allow(float-eq) — exact-root early exit
        return b;
    }
    assert!(
        fa.signum() != fb.signum(),
        "bisect: f(a) and f(b) must bracket a root (f({a}) = {fa}, f({b}) = {fb})"
    );
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < tol { // lint: allow(float-eq) — exact-root early exit
            return m;
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    0.5 * (a + b)
}

/// Brent's method: bisection safety with inverse-quadratic acceleration.
///
/// Same bracketing contract as [`bisect`]; converges superlinearly on
/// smooth functions.
pub fn brent<F: Fn(f64) -> f64>(f: F, a0: f64, b0: f64, tol: f64) -> f64 {
    let (mut a, mut b) = (a0, b0);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 { // lint: allow(float-eq) — exact-root early exit
        return a;
    }
    if fb == 0.0 { // lint: allow(float-eq) — exact-root early exit
        return b;
    }
    assert!(
        fa.signum() != fb.signum(),
        "brent: f(a) and f(b) must bracket a root"
    );
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let (mut c, mut fc) = (a, fa);
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..200 {
        if fb == 0.0 || (b - a).abs() < tol { // lint: allow(float-eq) — exact-root early exit
            return b;
        }
        let s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let between = {
            let lo = (3.0 * a + b) / 4.0;
            let (lo, hi) = if lo < b { (lo, b) } else { (b, lo) };
            s > lo && s < hi
        };
        let use_bisection = !between
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && (c - d).abs() < tol);
        let s = if use_bisection { 0.5 * (a + b) } else { s };
        mflag = use_bisection;
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_sqrt2() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn brent_transcendental() {
        // Root of cos(x) − x ≈ 0.7390851332151607.
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14);
        assert!((r - 0.739_085_133_215_160_7).abs() < 1e-12);
    }

    #[test]
    fn endpoint_root_short_circuits() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12), 1.0);
    }

    #[test]
    fn brent_weibull_quantile_shape() {
        // P(X ≥ q) = 0.5 for Weibull(λ=100, k=0.7): q = 100·(ln 2)^{1/0.7}.
        let k: f64 = 0.7;
        let lam = 100.0;
        let target = 0.5f64;
        let f = |q: f64| (-(q / lam).powf(k)).exp() - target;
        let r = brent(f, 1e-9, 1e6, 1e-9);
        let expect = lam * (2.0f64.ln()).powf(1.0 / k);
        assert!((r - expect).abs() < 1e-4 * expect);
    }

    #[test]
    #[should_panic]
    fn bisect_rejects_unbracketed() {
        bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9);
    }
}
