//! Uniform-grid function tables: the shared substrate of the tabulated
//! distribution kernels (`ckpt-dist::kernel`).
//!
//! A [`UniformTable`] stores `f(k·step)` for `k = 0..n` and answers
//! interior queries by linear interpolation. Two query flavours cover the
//! two callers the DP kernels need:
//!
//! * [`interp_checked`](UniformTable::interp_checked) returns `None`
//!   beyond the sampled horizon so the caller can fall back to the exact
//!   function — the "exactness fallback for off-grid queries" contract;
//! * [`interp_clamped`](UniformTable::interp_clamped) saturates at the
//!   table ends — the cumulative-integral convention inherited from the
//!   `DPMakespan` loss table, where saturation is the correct limit.
//!
//! The linear-interpolation error on a C² function is bounded by
//! `step²·max|f''|/8` over the sampled range; on the grid points the
//! stored values are the exact samples, so on-grid queries are exact up
//! to one rounding in the `frac == 0` blend.

/// Samples of a scalar function on a uniform grid `t = k·step`.
#[derive(Debug, Clone)]
pub struct UniformTable {
    step: f64,
    values: Vec<f64>,
}

impl UniformTable {
    /// Sample `f` on `[0, horizon]` at spacing `step` (two extra points of
    /// head-room past the horizon, mirroring the loss-table convention).
    pub fn sample(f: impl Fn(f64) -> f64, horizon: f64, step: f64) -> Self {
        assert!(step > 0.0 && step.is_finite(), "step must be positive");
        assert!(horizon > 0.0, "horizon must be positive");
        let n = (horizon / step).ceil() as usize + 2;
        let mut values = Vec::with_capacity(n);
        for k in 0..n {
            values.push(f(k as f64 * step));
        }
        Self { step, values }
    }

    /// Wrap precomputed samples (spacing `step`, `values[k] = f(k·step)`).
    pub fn from_parts(step: f64, values: Vec<f64>) -> Self {
        assert!(step > 0.0 && step.is_finite(), "step must be positive");
        assert!(!values.is_empty(), "need at least one sample");
        Self { step, values }
    }

    /// Running trapezoid integral of `of`: `I(k·step) = ∫₀^{k·step} f`,
    /// accumulated incrementally (`I₀ = 0`,
    /// `Iₖ = Iₖ₋₁ + (fₖ₋₁ + fₖ)·step/2`).
    pub fn cumulative_trapezoid(of: &UniformTable) -> Self {
        let mut values = Vec::with_capacity(of.values.len());
        values.push(0.0);
        let mut acc = 0.0;
        for pair in of.values.windows(2) {
            acc += 0.5 * (pair[0] + pair[1]) * of.step;
            values.push(acc);
        }
        Self { step: of.step, values }
    }

    /// Grid spacing.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds no samples (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Largest `t` answerable without extrapolation.
    pub fn horizon(&self) -> f64 {
        (self.values.len() - 1) as f64 * self.step
    }

    /// The raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Linear interpolation; `None` when `t` lies past the last sample
    /// (the caller falls back to the exact function). `t ≤ 0` returns the
    /// first sample.
    #[inline]
    pub fn interp_checked(&self, t: f64) -> Option<f64> {
        if t <= 0.0 {
            return Some(self.values[0]);
        }
        let pos = t / self.step;
        let k = pos.floor() as usize;
        if k + 1 >= self.values.len() {
            return None;
        }
        let frac = pos - k as f64;
        if frac == 0.0 { // lint: allow(float-eq) — exact on-grid hit; the blend below would turn a −∞ right-neighbour into NaN via −∞·0
            return Some(self.values[k]);
        }
        Some(self.values[k] * (1.0 - frac) + self.values[k + 1] * frac)
    }

    /// Linear interpolation saturating at the table ends (the cumulative
    /// integral convention: beyond the horizon the last value is the
    /// correct limit of a converging integral).
    #[inline]
    pub fn interp_clamped(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return self.values[0];
        }
        let pos = t / self.step;
        let k = pos.floor() as usize;
        if k + 1 >= self.values.len() {
            return *self.values.last().unwrap_or(&0.0);
        }
        let frac = pos - k as f64;
        if frac == 0.0 { // lint: allow(float-eq) — exact on-grid hit; the blend below would turn a −∞ right-neighbour into NaN via −∞·0
            return self.values[k];
        }
        self.values[k] * (1.0 - frac) + self.values[k + 1] * frac
    }

    /// Slope of the interpolant at `t` (the cell's finite difference);
    /// `None` past the last sample.
    #[inline]
    pub fn slope_checked(&self, t: f64) -> Option<f64> {
        let pos = (t.max(0.0)) / self.step;
        let k = pos.floor() as usize;
        if k + 1 >= self.values.len() {
            return None;
        }
        Some((self.values[k + 1] - self.values[k]) / self.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_grid_points_are_exact_samples() {
        let t = UniformTable::sample(|x| x * x, 10.0, 0.5);
        // the final sample has no right neighbour, so it is served by the
        // exactness fallback rather than the interpolant
        for k in 0..t.len() - 1 {
            let x = k as f64 * 0.5;
            let got = t.interp_checked(x).expect("on grid");
            assert_eq!(got, x * x, "k = {k}");
        }
    }

    #[test]
    fn linear_functions_interpolate_exactly() {
        let t = UniformTable::sample(|x| 3.0 * x - 1.0, 5.0, 0.25);
        for &x in &[0.1, 0.33, 1.7, 4.99] {
            let got = t.interp_checked(x).expect("in range");
            assert!((got - (3.0 * x - 1.0)).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn quadratic_error_matches_second_order_bound() {
        // |err| ≤ step²·max|f''|/8 = 0.01·2/8 for f = x².
        let t = UniformTable::sample(|x| x * x, 4.0, 0.1);
        for &x in &[0.05, 1.15, 2.55, 3.95] {
            let err = (t.interp_checked(x).expect("in range") - x * x).abs();
            assert!(err <= 0.1f64.powi(2) * 2.0 / 8.0 + 1e-12, "x = {x}: {err}");
        }
    }

    #[test]
    fn off_grid_is_none_clamped_saturates() {
        let t = UniformTable::sample(|x| x, 1.0, 0.5);
        let horizon = t.horizon();
        assert!(t.interp_checked(horizon + 1.0).is_none());
        assert_eq!(t.interp_clamped(horizon + 1.0), *t.values().last().expect("non-empty"));
        assert_eq!(t.interp_checked(-3.0), Some(0.0));
    }

    #[test]
    fn cumulative_trapezoid_integrates_linear_exactly() {
        // ∫₀ᵗ 2x dx = t²; trapezoid is exact on linear integrands.
        let f = UniformTable::sample(|x| 2.0 * x, 3.0, 0.25);
        let i = UniformTable::cumulative_trapezoid(&f);
        for k in 0..i.len() {
            let x = k as f64 * 0.25;
            assert!((i.values()[k] - x * x).abs() < 1e-12, "k = {k}");
        }
    }

    #[test]
    fn on_grid_hit_with_neg_infinite_neighbour_is_exact() {
        // Empirical log-survival tables carry −∞ past the support's edge;
        // an on-grid query one cell to the left must not synthesise NaN
        // out of the −∞·0 blend term.
        let t = UniformTable::from_parts(1.0, vec![0.0, -1.0, f64::NEG_INFINITY]);
        assert_eq!(t.interp_checked(1.0), Some(-1.0));
        assert_eq!(t.interp_clamped(1.0), -1.0);
        // Strictly between, saturating at −∞ is the correct limit.
        assert_eq!(t.interp_checked(1.5), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn slope_matches_cell_difference() {
        let t = UniformTable::sample(|x| 5.0 * x, 2.0, 0.5);
        assert!((t.slope_checked(0.6).expect("in range") - 5.0).abs() < 1e-12);
        assert!(t.slope_checked(1e9).is_none());
    }
}
