//! Hand-rolled 4-lane f64 kernels for the DP hot loops.
//!
//! The workspace is dependency-lean, so instead of `wide`/`std::simd`
//! this module carries its own [`F64x4`] — a `#[repr(align(32))]`
//! wrapper over `[f64; 4]` whose lane-wise arithmetic is written as
//! branch-free straight-line code that LLVM reliably lowers to vector
//! instructions on every tier-1 target (and to plain scalar code
//! elsewhere, with identical results).
//!
//! Three guarantees every caller leans on:
//!
//! * **Lane/scalar bit-identity** — [`exp4`]/[`ln4`] apply the *same*
//!   core polynomial per lane as the scalar [`exp1`]/[`ln1`], so a
//!   vectorised pass over `len/4` lanes plus a scalar tail produces the
//!   same bits as an all-scalar loop. The slice helpers below are
//!   structured exactly that way, and a proptest pins it.
//! * **No FMA contraction** — all arithmetic is plain `*`/`+`; Rust
//!   never fuses those into `mul_add`, so results do not depend on the
//!   host's FMA units. (Do not "optimise" these kernels with
//!   `f64::mul_add`: it would change bits per-target.)
//! * **IEEE specials survive** — `exp(−∞) = 0`, `exp(+∞) = ∞`, NaNs
//!   propagate, and ±0/subnormal inputs take the same value paths in
//!   vector and scalar form.
//!
//! Accuracy: both [`exp1`] and [`ln1`] are within ~2 ulp of the
//! correctly-rounded result (Cody–Waite reduction + a Horner
//! polynomial); the composed Weibull log-survival built on them lands
//! within ~1e−14 relative of the `powf` form it replaces, far inside
//! every tolerance the kernels are consumed under. They are *not*
//! bit-identical to libm's `exp`/`ln` — switching a call site onto this
//! module is an FP-order change and rides the sanctioned re-golden
//! path (ROADMAP "determinism & goldens").

/// Lane width every batched kernel in this workspace commits to. Cache
/// keys that memoise batched results include this constant so a future
/// width change can never alias entries computed under a different
/// evaluation order.
pub const LANES: usize = 4;

/// Four f64 lanes. Plain `[f64; 4]` arithmetic, aligned for vector loads.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(32))]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Load lanes from the first four elements of `s`.
    #[inline(always)]
    pub fn from_slice(s: &[f64]) -> Self {
        Self([s[0], s[1], s[2], s[3]])
    }

    /// Store lanes into the first four elements of `s`.
    #[inline(always)]
    pub fn write_to(self, s: &mut [f64]) {
        s[0] = self.0[0];
        s[1] = self.0[1];
        s[2] = self.0[2];
        s[3] = self.0[3];
    }

    /// Lane-wise map — the building block of [`exp4`]/[`ln4`]; kept
    /// `inline(always)` so the closure fuses into one vector body.
    #[inline(always)]
    fn map(self, f: impl Fn(f64) -> f64) -> Self {
        Self([f(self.0[0]), f(self.0[1]), f(self.0[2]), f(self.0[3])])
    }
}

impl std::ops::Add for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }
}

impl std::ops::Sub for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }
}

impl std::ops::Mul for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }
}

impl std::ops::Neg for F64x4 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

// ---------------------------------------------------------------------
// exp
// ---------------------------------------------------------------------

/// `ln 2` split so `n·LN2_HI` is exact for |n| < 2^26 (Cody–Waite).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Below this `exp` underflows to +0 even through the subnormal range.
const EXP_UNDERFLOW: f64 = -745.2;
/// Above this `exp` overflows to +∞.
const EXP_OVERFLOW: f64 = 709.8;

/// Shared per-lane body of [`exp1`]/[`exp4`]: Cody–Waite reduction
/// `x = n·ln2 + r`, |r| ≤ ln2/2, a degree-13 Taylor/Horner evaluation of
/// `e^r`, and two-step `2^n` bit scaling (so the subnormal range is
/// reached without the single-shift trick overflowing its exponent
/// field). Straight-line and branch-poor on purpose: every `if` below
/// is a lane-local select LLVM if-converts, keeping the 4-wide caller
/// vectorisable.
#[inline(always)]
fn exp_core(x: f64) -> f64 {
    // Clamp only feeds the reduction; the true argument decides the
    // overflow/underflow patches below, and NaN propagates through
    // `clamp` and the polynomial untouched.
    let xx = x.clamp(EXP_UNDERFLOW - 1.0, EXP_OVERFLOW + 1.0);
    let n = (xx * std::f64::consts::LOG2_E).round();
    let r = (xx - n * LN2_HI) - n * LN2_LO;
    // e^r = Σ rᵏ/k!, k ≤ 13: truncation < 2^-53 for |r| ≤ ln2/2.
    let mut p = 1.0 / 6_227_020_800.0; // 1/13!
    p = p * r + 1.0 / 479_001_600.0; // 1/12!
    p = p * r + 1.0 / 39_916_800.0; // 1/11!
    p = p * r + 1.0 / 3_628_800.0; // 1/10!
    p = p * r + 1.0 / 362_880.0; // 1/9!
    p = p * r + 1.0 / 40_320.0; // 1/8!
    p = p * r + 1.0 / 5_040.0; // 1/7!
    p = p * r + 1.0 / 720.0; // 1/6!
    p = p * r + 1.0 / 120.0; // 1/5!
    p = p * r + 1.0 / 24.0; // 1/4!
    p = p * r + 1.0 / 6.0; // 1/3!
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2^n in two factors so n down to −1074 stays in normal exponents.
    // NaN reaches here with n = 0 (saturating cast) — scale is 1.
    let n = n as i64;
    let n1 = n / 2;
    let n2 = n - n1;
    let s1 = f64::from_bits(((n1 + 1023) << 52) as u64);
    let s2 = f64::from_bits(((n2 + 1023) << 52) as u64);
    let mut y = p * s1 * s2;
    y = if x < EXP_UNDERFLOW { 0.0 } else { y };
    y = if x > EXP_OVERFLOW { f64::INFINITY } else { y };
    y
}

/// Scalar `e^x` with this module's evaluation order — the tail-loop twin
/// of [`exp4`]; bit-identical per element by construction.
#[inline(always)]
pub fn exp1(x: f64) -> f64 {
    exp_core(x)
}

/// Lane-wise `e^x`.
#[inline(always)]
pub fn exp4(x: F64x4) -> F64x4 {
    x.map(exp_core)
}

// ---------------------------------------------------------------------
// ln
// ---------------------------------------------------------------------

const SQRT_2: f64 = std::f64::consts::SQRT_2;
/// Smallest positive normal f64.
const MIN_NORMAL: f64 = 2.225_073_858_507_201_4e-308;
/// 2^54 — subnormal pre-scale so the exponent bit-field read is valid.
const TWO_54: f64 = 18_014_398_509_481_984.0;
const LN_TWO_54: f64 = 54.0;

/// Shared per-lane body of [`ln1`]/[`ln4`]: bit-field frexp to
/// `x = m·2^e` with `m ∈ [√0.5, √2)`, then `ln m = 2·atanh(s)` for
/// `s = (m−1)/(m+1)` via its odd Taylor series (|s| ≤ 0.1716, truncation
/// below 2^-53 at the s²¹ term), recombined as
/// `e·LN2_HI + (2s·P(s²) + e·LN2_LO)`. Subnormals are pre-scaled by
/// 2^54; zero and negative inputs are patched to −∞/NaN at the end —
/// all lane-local selects, so the 4-wide caller stays vectorisable.
#[inline(always)]
fn ln_core(x: f64) -> f64 {
    let tiny = x < MIN_NORMAL;
    let xs = if tiny { x * TWO_54 } else { x };
    let bits = xs.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m >= SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    // P(z) = 1 + z/3 + z²/5 + … + z¹⁰/21.
    let mut p = 1.0 / 21.0;
    p = p * z + 1.0 / 19.0;
    p = p * z + 1.0 / 17.0;
    p = p * z + 1.0 / 15.0;
    p = p * z + 1.0 / 13.0;
    p = p * z + 1.0 / 11.0;
    p = p * z + 1.0 / 9.0;
    p = p * z + 1.0 / 7.0;
    p = p * z + 1.0 / 5.0;
    p = p * z + 1.0 / 3.0;
    p = p * z + 1.0;
    let e = e as f64 - if tiny { LN_TWO_54 } else { 0.0 };
    let mut y = e * LN2_HI + (2.0 * s * p + e * LN2_LO);
    // Specials: ln 0 = −∞, ln(negative) = NaN, ln ∞ = ∞. NaN must be
    // re-patched: the exponent bit-field of a NaN reads like ∞'s, so the
    // arithmetic above would hand back a finite garbage value.
    y = if x == 0.0 { f64::NEG_INFINITY } else { y }; // lint: allow(float-eq) — IEEE special: ln(±0) is exactly −∞
    y = if x < 0.0 { f64::NAN } else { y };
    y = if x == f64::INFINITY { f64::INFINITY } else { y }; // lint: allow(float-eq) — IEEE special: ln(∞) is exactly ∞, an exact bit pattern

    y = if x.is_nan() { x } else { y };
    y
}

/// Scalar `ln x` with this module's evaluation order — the tail-loop
/// twin of [`ln4`]; bit-identical per element by construction.
#[inline(always)]
pub fn ln1(x: f64) -> f64 {
    ln_core(x)
}

/// Lane-wise `ln x`.
#[inline(always)]
pub fn ln4(x: F64x4) -> F64x4 {
    x.map(ln_core)
}

// ---------------------------------------------------------------------
// Slice kernels
// ---------------------------------------------------------------------

/// `dst[i] = exp(src[i] − shift)` — the log→linear grid conversion of
/// the DP solver, with the numerically load-bearing offset applied in
/// the same pass. Vector body + scalar tail share [`exp_core`], so the
/// result is independent of where the 4-lane boundary falls.
pub fn exp_shifted(src: &[f64], shift: f64, dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "exp_shifted: length mismatch");
    let k = F64x4::splat(shift);
    let lanes = src.len() / LANES * LANES;
    let mut i = 0;
    while i < lanes {
        let v = exp4(F64x4::from_slice(&src[i..]) - k);
        v.write_to(&mut dst[i..]);
        i += LANES;
    }
    for j in lanes..src.len() {
        dst[j] = exp_core(src[j] - shift);
    }
}

/// `out[i] = −exp(shape · ln(ts[i] / scale))` for `ts[i] > 0`, else 0 —
/// the batched log-domain Weibull log-survival `−(t/λ)ᵏ`. One `ln`
/// pass, one fused shape multiply, one `exp` pass, all 4-wide with a
/// bit-identical scalar tail.
pub fn weibull_log_survival(ts: &[f64], shape: f64, scale: f64, out: &mut [f64]) {
    assert_eq!(ts.len(), out.len(), "weibull_log_survival: length mismatch");
    // ln pass: `out[i] = k·ln(tᵢ/λ)` through libm's table-driven `ln` —
    // measurably faster here than a polynomial lane `ln` (the exponent
    // extraction and the long atanh Horner don't auto-vectorise on the
    // SSE2 baseline, while glibc's `ln` is ~3× quicker per element than
    // that scalar fallback). The pass stays "one ln, one fused shape
    // multiply" exactly as the row-build contract states.
    for (o, &t) in out.iter_mut().zip(ts) {
        *o = shape * (t / scale).ln(); // lint: allow(naked-transcendental-in-hot-path) — the batch kernel's own ln pass
    }
    // exp pass, 4-wide with a scalar tail sharing `exp_core` — identical
    // per-element operations, so the lane boundary never shows in bits.
    let lanes = ts.len() / LANES * LANES;
    let mut i = 0;
    while i < lanes {
        let x = F64x4::from_slice(&out[i..]);
        let y = -x.map(exp_core);
        // t ≤ 0 ⇒ ln S = 0 (the scalar definition's early return; the ln
        // pass left −∞/NaN there).
        let patched = F64x4([
            if ts[i] <= 0.0 { 0.0 } else { y.0[0] },
            if ts[i + 1] <= 0.0 { 0.0 } else { y.0[1] },
            if ts[i + 2] <= 0.0 { 0.0 } else { y.0[2] },
            if ts[i + 3] <= 0.0 { 0.0 } else { y.0[3] },
        ]);
        patched.write_to(&mut out[i..]);
        i += LANES;
    }
    for j in lanes..ts.len() {
        let y = -exp_core(out[j]);
        out[j] = if ts[j] <= 0.0 { 0.0 } else { y };
    }
}

/// Fused multiply-accumulate sweep: `acc[i] += Σⱼ coef(j)·row(j)[i]`,
/// rows added in index order per element — the same per-element
/// addition sequence as one scalar pass per row, so widening the fusion
/// (pairs → quads) never changes bits. Up to four rows per call; the DP
/// solver feeds it row quadruples so one read-modify-write sweep of the
/// accumulator covers four kernel rows.
///
/// Panics if any row's length differs from `acc`'s or `rows` is empty
/// or longer than [`LANES`].
pub fn accumulate_scaled_rows(acc: &mut [f64], rows: &[(&[f64], f64)]) {
    assert!(!rows.is_empty() && rows.len() <= LANES, "1..=LANES rows per sweep");
    for (row, _) in rows {
        assert_eq!(row.len(), acc.len(), "row/accumulator shape mismatch");
    }
    let n = acc.len();
    let lanes = n / LANES * LANES;
    macro_rules! sweep {
        ($($idx:literal),+) => {{
            let mut i = 0;
            while i < lanes {
                let mut g = F64x4::from_slice(&acc[i..]);
                $(
                    g = g + F64x4::splat(rows[$idx].1) * F64x4::from_slice(&rows[$idx].0[i..]);
                )+
                g.write_to(&mut acc[i..]);
                i += LANES;
            }
            for j in lanes..n {
                let mut g = acc[j];
                $(
                    g += rows[$idx].1 * rows[$idx].0[j];
                )+
                acc[j] = g;
            }
        }};
    }
    match rows.len() {
        1 => sweep!(0),
        2 => sweep!(0, 1),
        3 => sweep!(0, 1, 2),
        _ => sweep!(0, 1, 2, 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_diff(a: f64, b: f64) -> u64 {
        if a == b {
            return 0;
        }
        (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
    }

    #[test]
    fn exp_matches_libm_to_a_few_ulp() {
        let mut worst = 0u64;
        for i in -4000..4000 {
            let x = i as f64 * 0.173;
            let got = exp1(x);
            let want = x.exp();
            if want.is_finite() && want > 0.0 && !want.is_subnormal() {
                worst = worst.max(ulp_diff(got, want));
            }
        }
        assert!(worst <= 4, "worst exp ulp error {worst}");
    }

    #[test]
    fn exp_specials() {
        assert_eq!(exp1(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp1(f64::INFINITY), f64::INFINITY);
        assert!(exp1(f64::NAN).is_nan());
        assert_eq!(exp1(0.0), 1.0);
        assert_eq!(exp1(-1000.0), 0.0);
        assert_eq!(exp1(1000.0), f64::INFINITY);
        // Subnormal results keep a meaningful value.
        let sub = exp1(-720.0);
        assert!(sub > 0.0 && sub.is_subnormal(), "exp(-720) = {sub:e}");
    }

    #[test]
    fn ln_matches_libm_to_a_few_ulp() {
        let mut worst = 0u64;
        for i in 1..60_000 {
            let x = i as f64 * 0.037 + 1e-9;
            let got = ln1(x);
            let want = x.ln();
            worst = worst.max(ulp_diff(got, want));
        }
        // Tiny/huge magnitudes through the exponent recombination.
        for &x in &[1e-300, 3.7e-120, 2.2e-308 / 4.0, 8.9e250, f64::MAX] {
            let rel = (ln1(x) - x.ln()).abs() / x.ln().abs();
            assert!(rel < 1e-14, "x = {x:e}: {} vs {}", ln1(x), x.ln());
        }
        assert!(worst <= 4, "worst ln ulp error {worst}");
    }

    #[test]
    fn ln_specials() {
        assert_eq!(ln1(0.0), f64::NEG_INFINITY);
        assert!(ln1(-1.0).is_nan());
        assert!(ln1(f64::NAN).is_nan());
        assert_eq!(ln1(f64::INFINITY), f64::INFINITY);
        assert_eq!(ln1(1.0), 0.0);
    }

    #[test]
    fn exp_shifted_matches_scalar_tail_at_any_length() {
        for len in 0..23usize {
            let src: Vec<f64> = (0..len).map(|i| -3.0 + i as f64 * 0.61).collect();
            let mut dst = vec![0.0; len];
            exp_shifted(&src, 0.75, &mut dst);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(dst[i], exp_core(s - 0.75), "len {len} idx {i}");
            }
        }
    }

    #[test]
    fn weibull_batch_matches_powf_closely() {
        let (shape, scale) = (0.7, 123_456.0);
        let ts: Vec<f64> = (0..1000).map(|i| i as f64 * 731.0).collect();
        let mut out = vec![0.0; ts.len()];
        weibull_log_survival(&ts, shape, scale, &mut out);
        for (i, &t) in ts.iter().enumerate() {
            let want = if t <= 0.0 { 0.0 } else { -(t / scale).powf(shape) };
            let err = (out[i] - want).abs() / want.abs().max(1e-300);
            assert!(
                err < 1e-13 || want == 0.0,
                "t = {t}: batch {} vs powf {want} (rel {err})",
                out[i]
            );
        }
        assert_eq!(out[0], 0.0, "t = 0 keeps the scalar early-return value");
    }

    #[test]
    fn accumulate_matches_sequential_scalar_passes() {
        let n = 37;
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|r| (0..n).map(|i| ((r * n + i) as f64).sin() * 3.0).collect())
            .collect();
        let coefs = [2.0, 5.0, 0.25, 11.0];
        for take in 1..=4usize {
            let mut fused = vec![0.125f64; n];
            let refs: Vec<(&[f64], f64)> =
                rows.iter().take(take).zip(coefs).map(|(r, c)| (r.as_slice(), c)).collect();
            accumulate_scaled_rows(&mut fused, &refs);
            let mut scalar = vec![0.125f64; n];
            for i in 0..n {
                let mut g = scalar[i];
                for (row, c) in &refs {
                    g += c * row[i];
                }
                scalar[i] = g;
            }
            assert_eq!(fused, scalar, "take = {take}");
        }
    }

    #[test]
    fn accumulate_propagates_neg_infinity() {
        let mut acc = vec![0.0f64; 9];
        let row = vec![f64::NEG_INFINITY; 9];
        accumulate_scaled_rows(&mut acc, &[(&row, 3.0)]);
        assert!(acc.iter().all(|v| *v == f64::NEG_INFINITY));
    }
}
