//! Numerical substrate for the checkpointing-strategies workspace.
//!
//! Everything the paper's formulas need and nothing more, implemented in-repo
//! so results are auditable without external numerical crates:
//!
//! * [`lambert`] — the Lambert W function (both real branches), used by
//!   Theorem 1 / Proposition 5 to compute the optimal chunk count
//!   `K0 = λW / (1 + W0(−e^{−λC−1}))`.
//! * [`gamma`] — `ln Γ` and `Γ` (Lanczos approximation), used to convert a
//!   target MTBF into a Weibull scale parameter (`λ = MTBF / Γ(1 + 1/k)`).
//! * [`integrate`] — adaptive Simpson quadrature, used for the generic
//!   conditional expected-loss `E[Tlost(x|τ)]` of non-memoryless
//!   distributions.
//! * [`roots`] — Brent root bracketing/refinement, used for numeric
//!   quantiles and period optimisation.
//! * [`stats`] — compensated summation and summary statistics for the
//!   degradation-from-best tables.
//! * [`seeds`] — SplitMix64-based deterministic seed derivation so that
//!   every `(experiment, trace)` pair is reproducible regardless of thread
//!   scheduling.
//! * [`table`] — uniform-grid function tables (sampling, trapezoid
//!   cumulative integrals, checked/clamped linear interpolation), the
//!   substrate of the tabulated distribution kernels.
//! * [`simd`] — hand-rolled 4-lane f64 `exp`/`ln` and fused
//!   multiply-accumulate sweeps for the batched DP kernels, with
//!   bit-identical scalar tails.

pub mod gamma;
pub mod integrate;
pub mod lambert;
pub mod roots;
pub mod seeds;
pub mod simd;
pub mod stats;
pub mod table;

pub use gamma::{gamma, ln_gamma};
pub use integrate::adaptive_simpson;
pub use lambert::{lambert_w0, lambert_wm1};
pub use roots::{bisect, brent};
pub use seeds::{mix_seed, SeedSequence};
pub use stats::{KahanSum, Summary};
pub use table::UniformTable;
