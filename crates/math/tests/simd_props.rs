//! The lane kernels' one load-bearing promise, property-tested: a
//! 4-wide pass plus scalar tail produces the SAME BITS as an all-scalar
//! loop, for every length (so every remainder-lane split) and for the
//! sentinel values the DP solver actually feeds them — exact zeros,
//! subnormals, and the `−∞` log-survival marker. Comparisons are on
//! `to_bits()`: "close" is a miss here, and NaN outcomes (e.g. a
//! `0 · −∞` coefficient hit) must agree bit-for-bit too.

use ckpt_math::simd::{self, F64x4, LANES};
use proptest::prelude::*;

/// Values the DP grids contain: ordinary magnitudes across many
/// octaves, exact ±0, subnormals, and the −∞ sentinel rows. (The
/// vendored proptest has no `prop_oneof`; a selector + `prop_map`
/// does the same mixing.)
fn grid_value() -> impl Strategy<Value = f64> {
    (0u32..15, -700.0..700.0f64).prop_map(|(sel, v)| match sel {
        0..=7 => v,
        8 | 9 => v * 1.0e-6,
        10 => 0.0,
        11 => -0.0,
        12 => f64::MIN_POSITIVE / 4.0, // subnormal
        13 => -f64::MIN_POSITIVE / 4.0,
        _ => f64::NEG_INFINITY,
    })
}

/// Quantum timestamps for the Weibull batch: positive grid times, the
/// occasional negative/zero input (the early-return patch), and a
/// subnormal.
fn weibull_t() -> impl Strategy<Value = f64> {
    (0u32..9, 0.0..1.0e9f64).prop_map(|(sel, v)| match sel {
        0..=5 => v,
        6 => -v * 1.0e-8,
        7 => 0.0,
        _ => f64::MIN_POSITIVE / 4.0,
    })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `accumulate_scaled_rows` (the fused near-row sweep) must equal
    /// one scalar pass per element with rows added in index order —
    /// independent of where the lane boundary falls (`len % 4`) and of
    /// how many rows are fused (1..=LANES).
    #[test]
    fn fused_sweep_is_bit_identical_to_scalar_passes(
        len in 0usize..67,
        take in 1usize..=LANES,
        seed_vals in proptest::collection::vec(grid_value(), 5 * 67),
        coefs in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let rows: Vec<Vec<f64>> = (0..take)
            .map(|r| seed_vals[r * len..(r + 1) * len].to_vec())
            .collect();
        let init = seed_vals[4 * 67..4 * 67 + len].to_vec();

        let refs: Vec<(&[f64], f64)> = rows
            .iter()
            .zip(&coefs)
            .map(|(r, &c)| (r.as_slice(), c))
            .collect();
        let mut fused = init.clone();
        simd::accumulate_scaled_rows(&mut fused, &refs);

        let mut scalar = init;
        for (i, g) in scalar.iter_mut().enumerate() {
            for (row, c) in &refs {
                *g += c * row[i];
            }
        }
        prop_assert_eq!(bits(&fused), bits(&scalar));
    }

    /// `exp_shifted` (the egrid log→linear fill) must not care where the
    /// lane boundary falls: every element equals the scalar-tail form
    /// `exp1(src − shift)` exactly, including the −∞ → 0 sentinel.
    #[test]
    fn exp_shifted_is_bit_identical_to_scalar_loop(
        src in proptest::collection::vec(grid_value(), 0..67),
        shift in -50.0..50.0f64,
    ) {
        let mut dst = vec![f64::NAN; src.len()];
        simd::exp_shifted(&src, shift, &mut dst);
        let scalar: Vec<f64> = src.iter().map(|&x| simd::exp1(x - shift)).collect();
        prop_assert_eq!(bits(&dst), bits(&scalar));
    }

    /// The batched Weibull log-survival: lane boundary invisible, and
    /// the `t ≤ 0` early-return patch matches the scalar definition.
    #[test]
    fn weibull_batch_is_bit_identical_to_its_scalar_tail(
        ts in proptest::collection::vec(weibull_t(), 0..67),
        shape in 0.3..1.5f64,
        scale in 1.0..1e8f64,
    ) {
        let mut out = vec![f64::NAN; ts.len()];
        simd::weibull_log_survival(&ts, shape, scale, &mut out);
        let scalar: Vec<f64> = ts
            .iter()
            .map(|&t| {
                let x = shape * (t / scale).ln();
                let y = -simd::exp1(x);
                if t <= 0.0 { 0.0 } else { y }
            })
            .collect();
        prop_assert_eq!(bits(&out), bits(&scalar));
    }

    /// The lane primitives themselves: `exp4`/`ln4` are per-lane twins
    /// of `exp1`/`ln1` by construction — pin it against reordering.
    #[test]
    fn lane_ops_match_scalar_twins(vals in proptest::collection::vec(grid_value(), 4)) {
        let v = F64x4::from_slice(&vals);
        let e4 = simd::exp4(v);
        let l4 = simd::ln4(v);
        for (i, &x) in vals.iter().enumerate().take(LANES) {
            prop_assert_eq!(e4.0[i].to_bits(), simd::exp1(x).to_bits());
            prop_assert_eq!(l4.0[i].to_bits(), simd::ln1(x).to_bits());
        }
    }
}
