//! Liu et al. 2008 — non-periodic checkpoint placement from a
//! checkpointing-frequency function (§4.1's `Liu` heuristic).
//!
//! Liu's model (following the variational-calculus line of Ling et al.)
//! places checkpoints with instantaneous frequency proportional to the
//! square root of the failure hazard rate. On a platform of `p`
//! processors with iid per-processor hazard `h(t)`, the aggregate hazard
//! is `p·h(t)`:
//!
//! ```text
//! n(t) = √(p·h(t) / 2C),     N(t) = ∫₀ᵗ n(s) ds,     dates: N(t_j) = j.
//! ```
//!
//! For a Weibull hazard `h(t) = (k/λ)(t/λ)^{k−1}` the cumulative count has
//! a closed form, so the j-th checkpoint date is
//!
//! ```text
//! t_j = [ j · (k+1)/2 · √(2C/(p·k)) · λ^{k/2} ]^{2/(k+1)}.
//! ```
//!
//! For `k < 1` the hazard diverges at `t → 0`, making the first intervals
//! arbitrarily small — smaller than the checkpoint duration `C` itself on
//! large platforms. The paper flags those placements as nonsensical and
//! plots no result (footnote 2); we reproduce that behaviour by returning
//! an error from the constructor. (The exact validity boundary depends on
//! constant conventions in [17], which the paper itself suspects of an
//! error; this re-derivation fails for small shapes and large platforms,
//! matching the reported shape up to a boundary shift — see DESIGN.md.)

use crate::{clamp_chunk, AgeView, Policy, PolicySession};
use ckpt_dist::Weibull;
use ckpt_workload::JobSpec;

/// Liu's non-periodic policy. Holds the precomputed sequence of
/// inter-checkpoint intervals (work seconds), restarted from the top of
/// the schedule after each failure (the hazard clock resets with the
/// platform's renewal).
#[derive(Debug, Clone)]
pub struct Liu {
    intervals: Vec<f64>,
}

impl Liu {
    /// Build Liu's schedule for a job and the per-processor Weibull fit,
    /// aggregated over `spec.procs` processors.
    ///
    /// # Errors
    /// Returns the offending interval when any inter-checkpoint interval is
    /// smaller than the checkpoint duration `C` (the paper's nonsensical
    /// case) or when the schedule fails to make progress.
    pub fn new(spec: &JobSpec, proc_weibull: &Weibull) -> Result<Self, String> {
        let k = proc_weibull.shape();
        let lam = proc_weibull.scale();
        let p = spec.procs as f64;
        let c = spec.checkpoint;
        assert!(c > 0.0, "Liu needs a positive checkpoint cost");

        // t_j = [ j · (k+1)/2 · √(2C/(p·k)) · λ^{k/2} ]^{2/(k+1)}
        let base = (k + 1.0) / 2.0 * (2.0 * c / (p * k)).sqrt() * lam.powf(k / 2.0);
        let date = |j: f64| (j * base).powf(2.0 / (k + 1.0));

        let mut intervals = Vec::new();
        let mut covered = 0.0;
        let mut j = 1u64;
        let mut prev = 0.0;
        while covered < spec.work {
            let t = date(j as f64);
            let interval = t - prev;
            if interval < c {
                return Err(format!(
                    "Liu interval {j} = {interval:.1}s is smaller than the checkpoint \
                     duration C = {c:.1}s (nonsensical placement)"
                ));
            }
            if !interval.is_finite() || interval <= 0.0 {
                return Err(format!("Liu schedule does not progress at j = {j}"));
            }
            intervals.push(interval);
            covered += interval;
            prev = t;
            j += 1;
            if j > 10_000_000 {
                return Err("Liu schedule needs more than 1e7 checkpoints".to_string());
            }
        }
        Ok(Self { intervals })
    }

    /// The inter-checkpoint intervals (work seconds) in schedule order.
    pub fn intervals(&self) -> &[f64] {
        &self.intervals
    }
}

impl Policy for Liu {
    fn name(&self) -> &str {
        "Liu"
    }

    fn session(&self) -> Box<dyn PolicySession + '_> {
        Box::new(LiuSession { intervals: &self.intervals, pos: 0 })
    }
}

struct LiuSession<'a> {
    intervals: &'a [f64],
    pos: usize,
}

impl PolicySession for LiuSession<'_> {
    fn next_chunk(&mut self, remaining: f64, _ages: &AgeView, _now: f64) -> f64 {
        let interval = self
            .intervals
            .get(self.pos)
            .copied()
            .unwrap_or_else(|| *self.intervals.last().expect("non-empty schedule"));
        self.pos += 1;
        clamp_chunk(interval, remaining)
    }

    fn on_failure(&mut self) {
        // The hazard clock renews at a failure: restart the schedule.
        self.pos = 0;
    }

    fn wants_ages(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.25 * DAY;

    #[test]
    fn intervals_increase_for_sub_one_shape() {
        // Decreasing hazard → stretching intervals.
        let spec = JobSpec::table1_single_processor();
        let w = Weibull::from_mtbf(0.7, 7.0 * DAY);
        let liu = Liu::new(&spec, &w).expect("valid for large MTBF");
        let iv = liu.intervals();
        assert!(iv.len() > 2);
        for pair in iv.windows(2) {
            assert!(pair[0] < pair[1], "intervals must increase: {pair:?}");
        }
    }

    #[test]
    fn shape_one_is_periodic_young_like() {
        // k = 1: constant hazard h = 1/λ, so n(t) = √(1/(2Cλ)) constant and
        // the intervals equal √(2Cλ) — Young's period.
        let spec = JobSpec::table1_single_processor();
        let w = Weibull::from_mtbf(1.0, DAY);
        let liu = Liu::new(&spec, &w).unwrap();
        let iv = liu.intervals();
        let young = (2.0f64 * 600.0 * DAY).sqrt();
        for &i in &iv[..iv.len() - 1] {
            assert!((i - young).abs() < 1e-6 * young, "interval {i} vs {young}");
        }
    }

    #[test]
    fn large_platform_small_shape_rejected_as_in_footnote2() {
        // At Petascale with k = 0.5 the first Liu interval falls below
        // C = 600 s → must be rejected (the paper's nonsensical case).
        let spec = JobSpec::table1_petascale(45_208);
        let w = Weibull::from_mtbf(0.5, 125.0 * YEAR);
        let r = Liu::new(&spec, &w);
        assert!(r.is_err(), "expected nonsensical-placement error");
    }

    #[test]
    fn exascale_rejected_even_at_paper_shape() {
        // 2^20 processors, k = 0.7, 1250-year MTBF: first interval < C.
        let spec = JobSpec::table1_exascale(1 << 20);
        let w = Weibull::from_mtbf(0.7, 1_250.0 * YEAR);
        assert!(Liu::new(&spec, &w).is_err());
    }

    #[test]
    fn small_shape_rejected_at_moderate_scale() {
        // Figure 5's mechanism: the smaller k, the earlier the hazard
        // spike, the smaller the first interval.
        let spec = JobSpec::table1_petascale(4_096);
        let w = Weibull::from_mtbf(0.3, 125.0 * YEAR);
        assert!(Liu::new(&spec, &w).is_err());
    }

    #[test]
    fn schedule_covers_the_work() {
        let spec = JobSpec::table1_single_processor();
        let w = Weibull::from_mtbf(0.7, DAY);
        let liu = Liu::new(&spec, &w).unwrap();
        let total: f64 = liu.intervals().iter().sum();
        assert!(total >= spec.work);
    }

    #[test]
    fn session_replays_from_start_after_failure() {
        let spec = JobSpec::table1_single_processor();
        let w = Weibull::from_mtbf(0.7, DAY);
        let liu = Liu::new(&spec, &w).unwrap();
        let ages = AgeView::single(0.0);
        let mut s = liu.session();
        let first = s.next_chunk(spec.work, &ages, 0.0);
        let second = s.next_chunk(spec.work, &ages, 0.0);
        assert!(second > first);
        s.on_failure();
        let replay = s.next_chunk(spec.work, &ages, 0.0);
        assert_eq!(replay, first);
    }

    #[test]
    fn session_past_schedule_end_repeats_last_interval() {
        let spec = JobSpec::sequential(1000.0, 10.0, 10.0, 1.0);
        let w = Weibull::from_mtbf(0.9, 100_000.0);
        let liu = Liu::new(&spec, &w).unwrap();
        let ages = AgeView::single(0.0);
        let mut s = liu.session();
        for _ in 0..liu.intervals().len() + 3 {
            let c = s.next_chunk(1000.0, &ages, 0.0);
            assert!(c > 0.0);
        }
    }
}
