//! Shared, sharded caches for the DP planners.
//!
//! A study batch runs the same `(distribution, job spec)` cell over dozens
//! of traces and several policies; before this module every
//! [`DpNextFailure`](crate::DpNextFailure) instance owned a private plan
//! memo, so each trace re-solved the identical `O(x_max²)` DP from
//! scratch. [`DpCaches`] lifts two memo layers into process-shared state:
//!
//! * **plans** — the chunk schedule for one quantised planning state,
//!   keyed by [`PlanKey`] (distribution identity, exact quantum and
//!   checkpoint bits, work truncation, and the geometric age buckets).
//!   A plan is a pure function of its key, so any instance on any thread
//!   may reuse any cached plan.
//! * **kernel rows** — per-age-bucket log-survival rows on the DP's
//!   `(a, m)` triangle, keyed by [`KernelRowKey`]. Rows are exact `ln S`
//!   samples (no interpolation), so sharing and eviction can never change
//!   a solve's result; they turn the grid fill from
//!   `O(cells × near ages)` `powf` calls into one cached row per bucket
//!   plus contiguous multiply-adds.
//!
//! Distribution identity comes from
//! [`FailureDistribution::fingerprint`](ckpt_dist::FailureDistribution::fingerprint):
//! value-identical distributions share cache entries across instances,
//! while unfingerprintable families fall back to a per-instance id —
//! still cached, never shared, never wrong.
//!
//! Both caches use FIFO eviction with per-shard caps (replacing the old
//! silent `len() < 100_000` insert drop) and export hit/miss/eviction
//! counters that the experiment pipeline surfaces in its perf summary.

use ckpt_dist::FailureDistribution;
use parking_lot::RwLock;
use std::collections::hash_map::RandomState;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

/// Identity of a distribution for cache keying.
///
/// `Shared` ids come from [`FailureDistribution::fingerprint`] and are
/// equal exactly when `log_survival` is guaranteed bit-identical, so
/// entries may be shared across policy instances (and across the whole
/// process). `Instance` ids are unique per policy instance — correct for
/// any distribution, shared with none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistId {
    /// Value fingerprint: safe to share across instances.
    Shared(u64),
    /// Per-instance fallback for unfingerprintable distributions.
    Instance(u64),
}

impl DistId {
    /// Identity for `dist`: fingerprint when available, else a fresh
    /// process-unique instance id.
    pub fn of(dist: &dyn FailureDistribution) -> Self {
        static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);
        match dist.fingerprint() {
            Some(fp) => DistId::Shared(fp),
            None => DistId::Instance(NEXT_INSTANCE.fetch_add(1, Relaxed)),
        }
    }

    /// Stable observability label: the fingerprint in hex for shared
    /// identities (`fp:…`), the instance id for private ones (`inst:…`).
    pub fn obs_label(&self) -> String {
        match self {
            DistId::Shared(fp) => format!("fp:{fp:016x}"),
            DistId::Instance(id) => format!("inst:{id}"),
        }
    }
}

/// Cache key of one memoised DP plan (see
/// [`DpNextFailure::plan`](crate::DpNextFailure::plan)).
///
/// The quantum and checkpoint enter by exact bit pattern: two states
/// produce the same key only when the solve they would trigger is the
/// same pure computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Distribution identity.
    pub dist: DistId,
    /// Exact bits of the quantum `u = w_trunc / x_max`.
    pub u_bits: u64,
    /// Exact bits of the checkpoint cost.
    pub checkpoint_bits: u64,
    /// Quantum count of the DP.
    pub x_max: u32,
    /// Whether the planning window truncated the remaining work (controls
    /// half-schedule retention, so it must split the key).
    pub truncated: bool,
    /// Whether the policy keeps only the first half of truncated plans.
    pub half_schedule: bool,
    /// SIMD lane width of the solver build (`ckpt_math::simd::LANES`).
    /// The vectorised row/exp kernels are pinned per lane width; keying
    /// it keeps any future width change from mixing FP paths in shared
    /// cache entries.
    pub lanes: u32,
    /// Quantised age state: `(geometric bucket id, processor count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Cache key of one log-survival kernel row: the exact values
/// `ln S(τ_bucket + a·u + m·C)` over the DP triangle for a single age
/// bucket. Everything that shapes the row is in the key, so a cached row
/// is bit-identical to a recomputed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelRowKey {
    /// Distribution identity.
    pub dist: DistId,
    /// Exact bits of the quantum.
    pub u_bits: u64,
    /// Exact bits of the checkpoint cost.
    pub checkpoint_bits: u64,
    /// Quantum count (fixes the triangle extent).
    pub x_max: u32,
    /// SIMD lane width of the batched row build (see [`PlanKey::lanes`]).
    pub lanes: u32,
    /// Geometric age bucket id.
    pub bucket: u64,
}

/// Counter snapshot of one [`ShardedCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries dropped by FIFO eviction.
    pub evictions: u64,
    /// Entries resident at snapshot time.
    pub entries: u64,
}

impl CacheStats {
    /// Counters accumulated since `earlier` (entries stays absolute — it
    /// is a level, not a flow).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
        }
    }
}

struct Shard<K, V> {
    map: HashMap<K, V>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<K>,
}

/// Observability hookup of one [`ShardedCache`]: counter names plus a
/// key → label projection (the DP caches label by distribution
/// fingerprint). Only consulted while an obs session is recording, so
/// unwired caches and disabled builds pay nothing.
struct CacheObs<K> {
    hit: &'static str,
    miss: &'static str,
    evict: &'static str,
    label: fn(&K) -> String,
}

/// A concurrent map split into lock-sharded FIFO segments.
///
/// Lookups take one shard read lock; inserts take one shard write lock
/// and evict the shard's oldest entries beyond `cap_per_shard`. Values
/// are cheap clones (the callers store `Arc` slices). Hit/miss/eviction
/// counters are relaxed atomics — diagnostics, not synchronisation.
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<Shard<K, V>>>,
    hasher: RandomState,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    obs: Option<CacheObs<K>>,
}

impl<K, V> std::fmt::Debug for ShardedCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("cap_per_shard", &self.cap_per_shard)
            .field("hits", &self.hits.load(Relaxed))
            .field("misses", &self.misses.load(Relaxed))
            .field("evictions", &self.evictions.load(Relaxed))
            .finish()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// `shards` lock-sharded segments of at most `cap_per_shard` entries.
    pub fn new(shards: usize, cap_per_shard: usize) -> Self {
        assert!(shards >= 1 && cap_per_shard >= 1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    RwLock::new(Shard { map: HashMap::new(), order: VecDeque::new() })
                })
                .collect(),
            hasher: RandomState::new(),
            cap_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            obs: None,
        }
    }

    /// Wire the cache into the obs registry: `hit`/`miss`/`evict` are the
    /// counter names, `label` projects each key onto its counter cell
    /// (the DP caches use the distribution fingerprint). Counters are
    /// only emitted while a `ckpt-obs` session records, and never affect
    /// cache contents.
    fn with_obs(
        mut self,
        hit: &'static str,
        miss: &'static str,
        evict: &'static str,
        label: fn(&K) -> String,
    ) -> Self {
        self.obs = Some(CacheObs { hit, miss, evict, label });
        self
    }

    fn shard_of(&self, key: &K) -> &RwLock<Shard<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Clone of the cached value, counting the hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = self.shard_of(key).read().map.get(key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Relaxed),
            None => self.misses.fetch_add(1, Relaxed),
        };
        if ckpt_obs::active() {
            if let Some(obs) = &self.obs {
                let name = if found.is_some() { obs.hit } else { obs.miss };
                ckpt_obs::counter_add_labeled(name, &(obs.label)(key), 1);
            }
        }
        found
    }

    /// Insert, evicting the shard's oldest entries beyond its cap.
    pub fn insert(&self, key: K, value: V) {
        let shard_lock = self.shard_of(&key);
        let mut shard = shard_lock.write();
        if shard.map.insert(key.clone(), value).is_none() {
            shard.order.push_back(key);
            while shard.map.len() > self.cap_per_shard {
                match shard.order.pop_front() {
                    Some(oldest) => {
                        shard.map.remove(&oldest);
                        self.evictions.fetch_add(1, Relaxed);
                        if ckpt_obs::active() {
                            if let Some(obs) = &self.obs {
                                ckpt_obs::counter_add_labeled(
                                    obs.evict,
                                    &(obs.label)(&oldest),
                                    1,
                                );
                            }
                        }
                    }
                    None => break,
                }
            }
        }
    }

    /// Cached value, or `compute()` inserted under `key`. The computation
    /// runs outside any lock; racing threads may compute the same value
    /// twice, which is harmless because cached values are pure functions
    /// of their key.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Total resident entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (entries is measured now, not accumulated).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            entries: self.len() as u64,
        }
    }
}

/// Shards per cache: enough to keep 8–16 rayon workers off each other's
/// locks without bloating the struct.
const CACHE_SHARDS: usize = 16;
/// Plans are short `Arc<[f64]>` schedules (tens of bytes): keep many.
const PLAN_SHARD_CAP: usize = 4096;
/// Kernel rows span the whole DP triangle (~260 kB at `x_max = 256`):
/// cap the resident set at ~1k rows.
const ROW_SHARD_CAP: usize = 64;

/// The two shared memo layers of the DP planners. Cheap to clone (both
/// layers are `Arc`ed); policies hold a clone, the pipeline snapshots
/// [`stats`](DpCaches::stats) around its stages.
#[derive(Debug, Clone)]
pub struct DpCaches {
    /// Memoised chunk schedules.
    pub plans: Arc<ShardedCache<PlanKey, Arc<[f64]>>>,
    /// Memoised log-survival triangle rows.
    pub kernel_rows: Arc<ShardedCache<KernelRowKey, Arc<[f64]>>>,
}

impl DpCaches {
    /// The process-wide shared caches — what production policies use.
    pub fn global() -> &'static DpCaches {
        static GLOBAL: OnceLock<DpCaches> = OnceLock::new();
        GLOBAL.get_or_init(DpCaches::private)
    }

    /// A fresh, unshared cache pair (tests and isolation studies).
    pub fn private() -> DpCaches {
        DpCaches {
            plans: Arc::new(ShardedCache::new(CACHE_SHARDS, PLAN_SHARD_CAP).with_obs(
                "plan_cache.plans.hits",
                "plan_cache.plans.misses",
                "plan_cache.plans.evictions",
                |k: &PlanKey| k.dist.obs_label(),
            )),
            kernel_rows: Arc::new(ShardedCache::new(CACHE_SHARDS, ROW_SHARD_CAP).with_obs(
                "plan_cache.kernel_rows.hits",
                "plan_cache.kernel_rows.misses",
                "plan_cache.kernel_rows.evictions",
                |k: &KernelRowKey| k.dist.obs_label(),
            )),
        }
    }

    /// Snapshot of both layers' counters.
    pub fn stats(&self) -> DpCacheStats {
        DpCacheStats { plans: self.plans.stats(), kernel_rows: self.kernel_rows.stats() }
    }
}

/// Paired counter snapshot of [`DpCaches`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpCacheStats {
    /// Plan-layer counters.
    pub plans: CacheStats,
    /// Kernel-row-layer counters.
    pub kernel_rows: CacheStats,
}

impl DpCacheStats {
    /// Counters accumulated since `earlier` (entry counts stay absolute).
    pub fn delta_since(&self, earlier: &DpCacheStats) -> DpCacheStats {
        DpCacheStats {
            plans: self.plans.delta_since(&earlier.plans),
            kernel_rows: self.kernel_rows.delta_since(&earlier.kernel_rows),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn get_counts_hits_and_misses() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(4, 8);
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&2), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn fifo_eviction_is_bounded_and_counted() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(1, 4);
        for k in 0..10 {
            c.insert(k, k);
        }
        let s = c.stats();
        assert_eq!(s.entries, 4, "cap enforced");
        assert_eq!(s.evictions, 6, "evictions counted");
        // The newest entries survive.
        assert_eq!(c.get(&9), Some(9));
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn reinsert_replaces_without_duplicating_order() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(1, 2);
        c.insert(1, 10);
        c.insert(1, 11);
        c.insert(2, 20);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn get_or_insert_with_computes_only_on_miss() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(2, 8);
        let mut calls = 0;
        let v = c.get_or_insert_with(7, || {
            calls += 1;
            70
        });
        assert_eq!((v, calls), (70, 1));
        let v = c.get_or_insert_with(7, || {
            calls += 1;
            71
        });
        assert_eq!((v, calls), (70, 1), "second call must hit");
    }

    #[test]
    fn stats_delta_subtracts_flows_keeps_levels() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(2, 8);
        c.insert(1, 1);
        let before = c.stats();
        let _ = c.get(&1);
        let _ = c.get(&2);
        let d = c.stats().delta_since(&before);
        assert_eq!((d.hits, d.misses), (1, 1));
        assert_eq!(d.entries, 1, "entries is a level");
    }

    #[test]
    fn dist_ids_share_by_fingerprint_only() {
        use ckpt_dist::{LogNormal, Weibull};
        let a = Weibull::from_mtbf(0.7, 1000.0);
        let b = Weibull::from_mtbf(0.7, 1000.0);
        assert_eq!(DistId::of(&a), DistId::of(&b));
        // LogNormal has no fingerprint: every query mints a fresh id.
        let l = LogNormal::from_mtbf(1.0, 1000.0);
        assert_ne!(DistId::of(&l), DistId::of(&l));
        assert!(matches!(DistId::of(&l), DistId::Instance(_)));
    }

    #[test]
    fn global_caches_are_one_instance() {
        let a = DpCaches::global();
        let b = DpCaches::global();
        assert!(Arc::ptr_eq(&a.plans, &b.plans));
        assert!(Arc::ptr_eq(&a.kernel_rows, &b.kernel_rows));
    }
}
