//! `OptExp` — the provably optimal periodic policy for Exponential
//! failures (Theorem 1, extended to parallel jobs by Proposition 5).
//!
//! For `p` processors with iid Exponential(λ) failures, the macro-processor
//! argument gives a platform rate `λ' = pλ`; the optimal strategy splits
//! the parallel work `W(p)` into
//!
//! ```text
//! K* ∈ {max(1, ⌊K0⌋), ⌈K0⌉},   K0 = λ'W(p) / (1 + W0(−e^{−λ'C(p)−1}))
//! ```
//!
//! equal chunks, whichever minimises `ψ(K) = K(e^{λ'(W(p)/K + C(p))} − 1)`,
//! and the optimal expected makespan (sequential closed form) is
//! `E[T*] = K*·e^{λR}(1/λ + D)·(e^{λ(W/K* + C)} − 1)`.

use crate::periodic::FixedPeriod;
use ckpt_math::lambert_w0;
use ckpt_workload::JobSpec;

/// Theorem 1 / Proposition 5 machinery plus the resulting periodic policy.
#[derive(Debug, Clone)]
pub struct OptExp {
    policy: FixedPeriod,
    chunks: u64,
    platform_rate: f64,
}

impl OptExp {
    /// Build for a job spec and per-processor failure rate `λ`.
    pub fn new(spec: &JobSpec, lambda_proc: f64) -> Self {
        assert!(lambda_proc > 0.0 && lambda_proc.is_finite());
        let lambda = lambda_proc * spec.procs as f64;
        let k = optimal_chunk_count(spec.work, spec.checkpoint, lambda);
        let mut policy = FixedPeriod::new("OptExp", spec.work / k as f64);
        // Rename without the factor suffix machinery.
        policy = FixedPeriod::new("OptExp", policy.period());
        Self { policy, chunks: k, platform_rate: lambda }
    }

    /// Convenience: from a per-processor MTBF instead of a rate.
    pub fn from_mtbf(spec: &JobSpec, proc_mtbf: f64) -> Self {
        Self::new(spec, 1.0 / proc_mtbf)
    }

    /// The optimal number of equal chunks `K*`.
    pub fn chunk_count(&self) -> u64 {
        self.chunks
    }

    /// The chunk size `W(p)/K*` (the policy's period).
    pub fn period(&self) -> f64 {
        self.policy.period()
    }

    /// The aggregated platform failure rate `λ' = pλ`.
    pub fn platform_rate(&self) -> f64 {
        self.platform_rate
    }

    /// The underlying periodic policy (e.g. to scale for `PeriodLB`).
    pub fn as_fixed_period(&self) -> &FixedPeriod {
        &self.policy
    }
}

impl crate::Policy for OptExp {
    fn name(&self) -> &str {
        "OptExp"
    }

    fn session(&self) -> Box<dyn crate::PolicySession + '_> {
        self.policy.session()
    }
}

/// `ln ψ(K)` where `ψ(K) = K(e^{λ(W/K + C)} − 1)`, computed in log space so
/// that enormous exponents (tiny K) compare correctly instead of both
/// overflowing to `+∞`.
fn ln_psi(k: f64, work: f64, checkpoint: f64, lambda: f64) -> f64 {
    let expo = lambda * (work / k + checkpoint);
    if expo > 30.0 {
        // e^x − 1 ≈ e^x: ln ψ = ln K + x.
        k.ln() + expo
    } else {
        k.ln() + expo.exp_m1().ln()
    }
}

/// The continuous optimum `K0 = λW / (1 + W0(−e^{−λC−1}))` of Theorem 1.
pub fn continuous_chunk_count(work: f64, checkpoint: f64, lambda: f64) -> f64 {
    assert!(work > 0.0 && checkpoint >= 0.0 && lambda > 0.0);
    // Argument −e^{−λC−1} ∈ (−1/e, 0); W0 of it ∈ (−1, 0).
    let z = -(-lambda * checkpoint - 1.0).exp();
    lambda * work / (1.0 + lambert_w0(z))
}

/// The integer optimum `K*` of Theorem 1: the better of `⌊K0⌋` and `⌈K0⌉`
/// (floored at one chunk).
pub fn optimal_chunk_count(work: f64, checkpoint: f64, lambda: f64) -> u64 {
    let k0 = continuous_chunk_count(work, checkpoint, lambda);
    let lo = (k0.floor().max(1.0)) as u64;
    let hi = (k0.ceil().max(1.0)) as u64;
    if lo == hi {
        return lo;
    }
    let psi_lo = ln_psi(lo as f64, work, checkpoint, lambda);
    let psi_hi = ln_psi(hi as f64, work, checkpoint, lambda);
    if psi_lo <= psi_hi {
        lo
    } else {
        hi
    }
}

/// Theorem 1's optimal expected makespan for a **sequential** job:
/// `E[T*] = K*·e^{λR}(1/λ + D)·(e^{λ(W/K* + C)} − 1)`.
pub fn optimal_expected_makespan_sequential(spec: &JobSpec, lambda: f64) -> f64 {
    assert_eq!(spec.procs, 1, "closed form is for sequential jobs");
    let k = optimal_chunk_count(spec.work, spec.checkpoint, lambda) as f64;
    k * (lambda * spec.recovery).exp()
        * (1.0 / lambda + spec.downtime)
        * (lambda * (spec.work / k + spec.checkpoint)).exp_m1()
}

/// Expected makespan of an arbitrary `K`-equal-chunk periodic strategy on a
/// sequential job (the `ρ* = (1/λ + E[Trec]) Σ (e^{λ(ωᵢ+C)} − 1)` form from
/// the proof of Theorem 1) — used to verify K* beats its neighbours.
pub fn expected_makespan_k_chunks(spec: &JobSpec, lambda: f64, k: u64) -> f64 {
    assert_eq!(spec.procs, 1);
    assert!(k >= 1);
    let kf = k as f64;
    // E[Trec] = D + R + (1 − e^{−λR})/e^{−λR} · (D + E[Tlost(R)]),
    // E[Tlost(R)] = 1/λ − R/(e^{λR} − 1) (Lemma 1).
    let e_lost_r = 1.0 / lambda - spec.recovery / (lambda * spec.recovery).exp_m1();
    let e_rec = spec.downtime
        + spec.recovery
        + (lambda * spec.recovery).exp_m1() * (spec.downtime + e_lost_r);
    (1.0 / lambda + e_rec) * kf * (lambda * (spec.work / kf + spec.checkpoint)).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;

    const DAY: f64 = 86_400.0;

    #[test]
    fn k0_matches_stationarity_condition() {
        // ψ'(K0) = e^{λ(W/K0 + C)}(1 − λW/K0) − 1 = 0 (Equation 4).
        let (w, c, lambda) = (20.0 * DAY, 600.0, 1.0 / DAY);
        let k0 = continuous_chunk_count(w, c, lambda);
        let resid = (lambda * (w / k0 + c)).exp() * (1.0 - lambda * w / k0) - 1.0;
        assert!(resid.abs() < 1e-9, "ψ'(K0) = {resid}");
    }

    #[test]
    fn integer_optimum_beats_neighbours() {
        let (w, c, lambda) = (20.0 * DAY, 600.0, 1.0 / (6.0 * 3_600.0));
        let k = optimal_chunk_count(w, c, lambda);
        let spec = JobSpec::sequential(w, c, 600.0, 60.0);
        let at = |kk: u64| expected_makespan_k_chunks(&spec, lambda, kk);
        assert!(at(k) <= at(k + 1) + 1e-9);
        if k > 1 {
            assert!(at(k) <= at(k - 1) + 1e-9);
        }
    }

    #[test]
    fn closed_form_agrees_with_rho_star() {
        // Theorem 1's E[T*] expression equals the ρ* form at K = K*.
        let lambda = 1.0 / DAY;
        let spec = JobSpec::table1_single_processor();
        let k = optimal_chunk_count(spec.work, spec.checkpoint, lambda);
        let a = optimal_expected_makespan_sequential(&spec, lambda);
        let b = expected_makespan_k_chunks(&spec, lambda, k);
        // They differ only in E[Trec] algebra: e^{λR}(1/λ + D) vs
        // 1/λ + E[Trec]; check identity numerically.
        assert!(
            (a - b).abs() < 1e-6 * a,
            "closed form {a} vs ρ* {b}"
        );
    }

    #[test]
    fn period_approaches_young_for_rare_failures() {
        // λ(W/K + C) small → optimal period ≈ √(2C/λ) (Young's regime).
        let year = 365.25 * DAY;
        let spec = JobSpec::table1_petascale(45_208);
        let opt = OptExp::from_mtbf(&spec, 125.0 * year);
        let lambda_plat = 45_208.0 / (125.0 * year);
        let yg = (2.0 * spec.checkpoint / lambda_plat).sqrt();
        let rel = (opt.period() - yg).abs() / yg;
        assert!(rel < 0.1, "OptExp {} vs Young-limit {yg}", opt.period());
    }

    #[test]
    fn single_chunk_when_checkpoint_dominates() {
        // Tiny work, huge checkpoint cost, rare failures → one chunk.
        let spec = JobSpec::sequential(100.0, 10_000.0, 10.0, 1.0);
        let opt = OptExp::new(&spec, 1e-9);
        assert_eq!(opt.chunk_count(), 1);
        assert_eq!(opt.period(), spec.work);
    }

    #[test]
    fn more_failures_mean_more_chunks() {
        let spec = JobSpec::table1_single_processor();
        let k_hour = OptExp::new(&spec, 1.0 / 3_600.0).chunk_count();
        let k_day = OptExp::new(&spec, 1.0 / DAY).chunk_count();
        let k_week = OptExp::new(&spec, 1.0 / (7.0 * DAY)).chunk_count();
        assert!(k_hour > k_day && k_day > k_week, "{k_hour} {k_day} {k_week}");
    }

    #[test]
    fn proposition5_macro_processor_scaling() {
        // p processors at rate λ behave as one at pλ: OptExp on the
        // parallel spec equals Theorem 1 on the macro spec.
        let year = 365.25 * DAY;
        let p = 1 << 12;
        let spec = JobSpec::table1_petascale(p);
        let opt_parallel = OptExp::from_mtbf(&spec, 125.0 * year);
        let macro_spec = JobSpec::sequential(spec.work, spec.checkpoint, spec.recovery, spec.downtime);
        let opt_macro = OptExp::new(&macro_spec, p as f64 / (125.0 * year));
        assert_eq!(opt_parallel.chunk_count(), opt_macro.chunk_count());
    }

    #[test]
    fn ln_psi_handles_huge_exponents() {
        // K = 1 with large λW must not overflow to ∞ == ∞ comparisons.
        let a = ln_psi(1.0, 1e9, 600.0, 1e-3);
        let b = ln_psi(2.0, 1e9, 600.0, 1e-3);
        assert!(a.is_finite() && b.is_finite() && a > b);
    }

    #[test]
    fn policy_interface_yields_period() {
        let spec = JobSpec::table1_single_processor();
        let opt = OptExp::new(&spec, 1.0 / DAY);
        let mut s = opt.session();
        let ages = ckpt_platform::AgeView::single(0.0);
        let chunk = s.next_chunk(spec.work, &ages, 0.0);
        assert!((chunk - opt.period()).abs() < 1e-9);
    }
}
