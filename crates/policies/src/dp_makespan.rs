//! `DPMakespan` — Algorithm 1: quantised dynamic programming for the
//! `Makespan` problem under arbitrary failure distributions.
//!
//! With a time quantum `u` and `x` remaining work quanta, the expected
//! optimal makespan from processor age `τ` satisfies (Proposition 1):
//!
//! ```text
//! V(x, τ) = min_{1 ≤ i ≤ x} [ Psuc(iu+C|τ)·(iu + C + V(x−i, τ+iu+C))
//!            + (1 − Psuc(iu+C|τ))·(E[Tlost(iu+C|τ)] + E[Trec] + V(x, R)) ]
//! ```
//!
//! The failure branch re-enters the *post-failure state* `(x, R)` — at that
//! state the equation is self-referential. Each candidate chunk `i` there
//! gives an affine one-step equation `V = aᵢ + bᵢ·V` with `bᵢ = 1 − Psucᵢ ∈
//! (0,1)`, whose optimal fixed point is `V = minᵢ aᵢ/(1 − bᵢ)` (the
//! standard single-self-loop MDP solution). We therefore compute the
//! post-failure backbone `V(·, R)` bottom-up in `x` first, then memoise all
//! other `(x, τ)` states lazily with `τ` quantised to the grid.
//!
//! `E[Trec]` comes from Proposition 1:
//! `E[Trec] = D + R + (1−Psuc(R|0))/Psuc(R|0) · (D + E[Tlost(R|0)])`.
//!
//! For **parallel** jobs the paper notes the exact extension is
//! exponential in `p`; `DPMakespan` is then run on the *rejuvenated
//! platform* distribution (the "false assumption that all processors are
//! rejuvenated after each failure", §4.1) — pass `weibull.min_of(p)` or the
//! `pλ` Exponential as `dist`.

use crate::{clamp_chunk, AgeView, Policy, PolicySession};
use ckpt_dist::{FailureDistribution, KernelTable};
use ckpt_workload::JobSpec;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Tunables of the Makespan DP.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DpMakespanConfig {
    /// Number of quanta the job's work is divided into (`u = W / quanta`).
    /// `None` sizes the quantum from the distribution's mean so the
    /// expected optimal chunk `√(2CM)` spans several quanta — see
    /// [`auto_makespan_quanta`].
    pub quanta: Option<usize>,
    /// Collapse the age dimension (valid — and fast — for memoryless
    /// distributions, where `Psuc` and `E[Tlost]` ignore `τ`).
    pub assume_memoryless: bool,
}

/// Auto-sized quantum count for the Makespan DP: `≈ 6·W/√(2CM)` (six
/// quanta per expected optimal chunk), clamped to `[100, 4000]` for
/// memoryless distributions (whose age dimension collapses, keeping the
/// table linear in the count) and `[100, 1200]` otherwise (the general
/// table is quadratic in the count). Near the flat optimum even 1–2
/// quanta per chunk costs little; what must never happen is a quantum
/// several times the MTBF.
pub fn auto_makespan_quanta(work: f64, checkpoint: f64, mean: f64, memoryless: bool) -> usize {
    let chunk_est = (2.0 * checkpoint.max(1.0) * mean).sqrt();
    let q = (6.0 * work / chunk_est).ceil() as usize;
    if memoryless {
        q.clamp(100, 4000)
    } else {
        q.clamp(100, 1200)
    }
}

/// The `DPMakespan` policy.
pub struct DpMakespan {
    dist: Box<dyn FailureDistribution>,
    spec: JobSpec,
    config: DpMakespanConfig,
    u: f64,
    e_rec: f64,
    /// Tabulated log-survival / survival-integral kernels (`ckpt-dist`):
    /// `Psuc` and `E[Tlost]` in the DP's inner loops are table lookups
    /// with exact off-grid fallback instead of per-point `powf` calls.
    kernel: KernelTable,
    /// Post-failure backbone `V(x, R)` and its chunk choice, indexed by x.
    backbone: Vec<(f64, u32)>,
    /// Memoryless fast path: with the age dimension collapsed, `V` depends
    /// on `x` alone, so the whole table is one dense vector filled
    /// bottom-up at construction — no mutex, no hashing per decision.
    flat: Vec<(f64, u32)>,
    /// Lazy memo for general (age-dependent) states, keyed by
    /// `(x, τ/u rounded)`.
    memo: Mutex<HashMap<(u32, u64), (f64, u32)>>,
}

impl std::fmt::Debug for DpMakespan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpMakespan")
            .field("spec", &self.spec)
            .field("config", &self.config)
            .field("u", &self.u)
            .field("e_rec", &self.e_rec)
            .finish_non_exhaustive()
    }
}

impl DpMakespan {
    /// Build for a job spec and the **platform-level** failure distribution
    /// (the per-processor distribution itself when `spec.procs == 1`).
    pub fn new(
        spec: &JobSpec,
        dist: Box<dyn FailureDistribution>,
        config: DpMakespanConfig,
    ) -> Self {
        let quanta = match config.quanta {
            Some(q) => {
                assert!(q >= 2);
                q
            }
            None => auto_makespan_quanta(
                spec.work,
                spec.checkpoint,
                dist.mean(),
                config.assume_memoryless,
            ),
        };
        let config = DpMakespanConfig { quanta: Some(quanta), ..config };
        let u = spec.work / quanta as f64;
        // Horizon the loss table must cover: full job + all checkpoints +
        // recovery, with margin. The grid must resolve the *smallest*
        // window the DP will query — one quantum, one checkpoint, or the
        // recovery duration, whichever is least.
        let horizon = spec.work + (quanta as f64 + 2.0) * spec.checkpoint + spec.recovery;
        let resolution = u
            .min(spec.recovery.max(1.0))
            .min(spec.checkpoint.max(1.0));
        let kernel = KernelTable::build(
            dist.clone_box(),
            horizon.max(spec.recovery * 4.0),
            resolution,
        );
        // E[Trec] via Proposition 1. For memoryless distributions the
        // trait's closed-form expected loss (Lemma 1) is exact; otherwise
        // the kernel's interpolation is accurate at `resolution` scale.
        let psuc_r = dist.psuc(spec.recovery, 0.0);
        let lost_r = if config.assume_memoryless {
            dist.expected_loss(spec.recovery, 0.0)
        } else {
            kernel.expected_loss(spec.recovery, 0.0)
        };
        let e_rec = if psuc_r <= 0.0 {
            // Recovery can never succeed — pathological spec; make the
            // penalty enormous but finite so the DP stays well-defined.
            f64::MAX / 1e6
        } else {
            spec.downtime + spec.recovery + (1.0 - psuc_r) / psuc_r * (spec.downtime + lost_r)
        };
        let mut this = Self {
            dist,
            spec: *spec,
            config,
            u,
            e_rec,
            kernel,
            backbone: Vec::new(),
            flat: Vec::new(),
            memo: Mutex::new(HashMap::new()),
        };
        this.compute_backbone();
        this
    }

    /// The work quantum `u`, seconds.
    pub fn quantum(&self) -> f64 {
        self.u
    }

    /// The quantum count in effect (after auto-selection).
    pub fn quanta(&self) -> usize {
        self.config.quanta.expect("resolved at construction")
    }

    /// `E[Trec]` (Proposition 1), seconds.
    pub fn expected_recovery(&self) -> f64 {
        self.e_rec
    }

    /// Post-failure backbone `V(·, R)`: solve the affine self-loop fixed
    /// point for each `x` ascending, pushing each entry before computing
    /// the next — the successor values `V(x−i, R+attempt)` are evaluated
    /// through the general memo, whose own failure branches only consult
    /// backbone entries at indices `< x`, which are already in place.
    fn compute_backbone(&mut self) {
        let n = self.quanta();
        let r = self.spec.recovery;
        let c = self.spec.checkpoint;
        let memoryless = self.config.assume_memoryless;
        // `Psuc` and `E[Tlost]` of an attempt depend on its length and the
        // fixed post-recovery age alone, never on `x` — hoist them into
        // O(n) ladders instead of querying the distribution O(n²) times
        // inside the Bellman loops. (Memoryless mode forces τ = 0
        // everywhere, so the same ladders serve the flat-table pass too —
        // the values the old inner loops recomputed were identical.)
        let mut psuc_r = vec![0.0f64; n + 1];
        let mut lost_r = vec![0.0f64; n + 1];
        for i in 1..=n {
            let attempt = i as f64 * self.u + c;
            psuc_r[i] = self.psuc(attempt, r);
            lost_r[i] = self.tlost(attempt, r);
        }
        self.backbone.push((0.0, 0));
        if memoryless {
            self.flat.push((0.0, 0));
        }
        for x in 1..=n {
            let mut best = f64::INFINITY;
            let mut best_i = 1u32;
            for i in 1..=x {
                let attempt = i as f64 * self.u + c;
                let psuc = psuc_r[i];
                if psuc <= 0.0 {
                    continue;
                }
                let succ = if x - i == 0 {
                    0.0
                } else if memoryless {
                    self.flat[x - i].0
                } else {
                    self.value_bounded(x - i, r + attempt, x)
                };
                let lost = lost_r[i];
                let a_i = psuc * (attempt + succ) + (1.0 - psuc) * (lost + self.e_rec);
                let cand = a_i / psuc; // fixed point of V = a + (1−psuc)·V
                if cand < best {
                    best = cand;
                    best_i = i as u32;
                }
            }
            self.backbone.push((best, best_i));
            if memoryless {
                // With age collapsed, the general Bellman step at `x` reads
                // only `flat[< x]` and `backbone[x]` — both in place, so the
                // dense table fills in the same ascending pass.
                let fail_v = best;
                let mut bv = f64::INFINITY;
                let mut bi = 1u32;
                for i in 1..=x {
                    let attempt = i as f64 * self.u + c;
                    let psuc = psuc_r[i];
                    let succ = if x - i == 0 { 0.0 } else { self.flat[x - i].0 };
                    let lost = lost_r[i];
                    let cur = psuc * (attempt + succ) + (1.0 - psuc) * (lost + self.e_rec + fail_v);
                    if cur < bv {
                        bv = cur;
                        bi = i as u32;
                    }
                }
                self.flat.push((bv, bi));
            }
        }
    }

    /// `Psuc(x|τ)`: exact (typically closed-form) for memoryless
    /// distributions, tabulated log-survival otherwise.
    fn psuc(&self, x: f64, tau: f64) -> f64 {
        if self.config.assume_memoryless {
            self.dist.psuc(x, 0.0)
        } else {
            self.kernel.psuc(x, tau)
        }
    }

    /// `E[Tlost(x|τ)]`: closed form for memoryless distributions, kernel
    /// interpolation otherwise.
    fn tlost(&self, x: f64, tau: f64) -> f64 {
        if self.config.assume_memoryless {
            self.dist.expected_loss(x, 0.0)
        } else {
            self.kernel.expected_loss(x, tau)
        }
    }

    /// Memoised `V(x, τ)` for states reachable only with `x < bound` ...
    /// recursion strictly decreases `x`, so `bound` documents the
    /// invariant; it is debug-asserted.
    fn value_bounded(&self, x: usize, tau: f64, bound: usize) -> f64 {
        debug_assert!(x < bound);
        self.value(x, tau)
    }

    /// Memoised `V(x, τ)`; the failure branch uses the precomputed
    /// backbone, so recursion strictly decreases `x` and terminates.
    pub fn value(&self, x: usize, tau: f64) -> f64 {
        self.state(x, tau).0
    }

    /// Optimal chunk (in quanta) at `(x, τ)`.
    pub fn chunk_quanta(&self, x: usize, tau: f64) -> u32 {
        self.state(x, tau).1
    }

    fn tau_key(&self, tau: f64) -> u64 {
        if self.config.assume_memoryless {
            0
        } else {
            (tau / self.u).round() as u64
        }
    }

    fn state(&self, x: usize, tau: f64) -> (f64, u32) {
        if x == 0 {
            return (0.0, 0);
        }
        // Memoryless: the dense bottom-up table answers directly.
        if let Some(&s) = self.flat.get(x) {
            return s;
        }
        // Post-failure states hit the backbone exactly.
        if !self.config.assume_memoryless && (tau - self.spec.recovery).abs() < 1e-9 {
            return self.backbone[x];
        }
        let key = (x as u32, self.tau_key(tau));
        if let Some(&v) = self.memo.lock().get(&key) {
            return v;
        }
        // Evaluate at the key's *representative* age, not the incoming
        // exact one: the memoised value is then a pure function of the key,
        // so concurrent sessions agree on it no matter which thread fills
        // the memo first.
        let tau_rep = key.1 as f64 * self.u;
        let c = self.spec.checkpoint;
        let fail_v = self.backbone[x].0;
        let mut best = f64::INFINITY;
        let mut best_i = 1u32;
        for i in 1..=x {
            let attempt = i as f64 * self.u + c;
            let psuc = self.psuc(attempt, tau_rep);
            let succ = if x - i == 0 { 0.0 } else { self.value(x - i, tau_rep + attempt) };
            let lost = self.tlost(attempt, tau_rep);
            let cur = psuc * (attempt + succ) + (1.0 - psuc) * (lost + self.e_rec + fail_v);
            if cur < best {
                best = cur;
                best_i = i as u32;
            }
        }
        self.memo.lock().insert(key, (best, best_i));
        (best, best_i)
    }

    /// The policy function `f(ω|τ)`: chunk size in seconds.
    pub fn chunk_for(&self, remaining: f64, tau: f64) -> f64 {
        let x = ((remaining / self.u).round() as usize).clamp(1, self.quanta());
        let i = self.chunk_quanta(x, tau);
        (f64::from(i) * self.u).min(remaining)
    }
}

impl Policy for DpMakespan {
    fn name(&self) -> &str {
        "DPMakespan"
    }

    fn session(&self) -> Box<dyn PolicySession + '_> {
        Box::new(DpMsSession { policy: self })
    }
}

struct DpMsSession<'a> {
    policy: &'a DpMakespan,
}

impl PolicySession for DpMsSession<'_> {
    fn next_chunk(&mut self, remaining: f64, ages: &AgeView, _now: f64) -> f64 {
        // DPMakespan tracks a single (macro-)processor age: under the
        // rejuvenation assumption all processors share it; sequentially it
        // is the true age.
        let tau = ages.min_age();
        clamp_chunk(self.policy.chunk_for(remaining, tau), remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dist::{Exponential, Weibull};

    const DAY: f64 = 86_400.0;
    const HOUR: f64 = 3_600.0;

    fn exp_dp(mtbf: f64, quanta: usize) -> (JobSpec, DpMakespan) {
        let spec = JobSpec::table1_single_processor();
        let dp = DpMakespan::new(
            &spec,
            Box::new(Exponential::from_mtbf(mtbf)),
            DpMakespanConfig { quanta: Some(quanta), assume_memoryless: true },
        );
        (spec, dp)
    }

    #[test]
    fn expected_recovery_matches_lemma1_closed_form() {
        let (spec, dp) = exp_dp(HOUR, 20);
        let lambda = 1.0 / HOUR;
        let e_lost_r = 1.0 / lambda - spec.recovery / (lambda * spec.recovery).exp_m1();
        let expect = spec.downtime
            + spec.recovery
            + (lambda * spec.recovery).exp_m1() * (spec.downtime + e_lost_r);
        let rel = (dp.expected_recovery() - expect).abs() / expect;
        assert!(rel < 1e-3, "E[Trec] {} vs closed form {expect}", dp.expected_recovery());
    }

    #[test]
    fn exponential_dp_value_matches_theorem1() {
        // The DP's root value must approach Theorem 1's optimal expected
        // makespan as the quantum shrinks. The quantum must resolve the
        // optimal chunk (K* ≈ 177 at a 1-day MTBF → ~4 quanta per chunk
        // at 700 quanta).
        let mtbf = DAY;
        let (spec, dp) = exp_dp(mtbf, 700);
        let dp_value = dp.value(700, 0.0);
        let opt = crate::optexp::optimal_expected_makespan_sequential(&spec, 1.0 / mtbf);
        let rel = (dp_value - opt).abs() / opt;
        assert!(rel < 0.03, "DP {dp_value} vs Theorem-1 {opt} (rel {rel})");
        // And the DP can never beat the true optimum by more than
        // quantisation noise.
        assert!(dp_value > 0.95 * opt);
    }

    #[test]
    fn exponential_dp_chunk_matches_optexp_period() {
        let mtbf = DAY;
        let (spec, dp) = exp_dp(mtbf, 700);
        let chunk = dp.chunk_for(spec.work, 0.0);
        let period = crate::OptExp::new(&spec, 1.0 / mtbf).period();
        let rel = (chunk - period).abs() / period;
        assert!(rel < 0.15, "DP chunk {chunk} vs OptExp {period}");
    }

    #[test]
    fn backbone_is_monotone_in_work() {
        let (_, dp) = exp_dp(HOUR, 60);
        for x in 1..60 {
            assert!(
                dp.backbone[x].0 < dp.backbone[x + 1].0,
                "V({x}, R) ≥ V({}, R)",
                x + 1
            );
        }
    }

    #[test]
    fn memoryless_flat_table_is_self_consistent() {
        // Under memorylessness the post-failure state and the fresh state
        // coincide, so the dense table must agree with the backbone's
        // per-chunk fixed points at every x.
        let (_, dp) = exp_dp(HOUR, 80);
        assert_eq!(dp.flat.len(), 81);
        for x in 1..=80 {
            let (v, i) = dp.flat[x];
            let b = dp.backbone[x].0;
            assert!(
                (v - b).abs() <= 1e-9 * b,
                "x={x}: flat {v} vs backbone {b}"
            );
            assert!(i >= 1 && i as usize <= x);
        }
        // And the public accessors route through it regardless of τ.
        assert_eq!(dp.value(40, 0.0), dp.flat[40].0);
        assert_eq!(dp.value(40, 12345.0), dp.flat[40].0);
    }

    #[test]
    fn value_exceeds_failure_free_time() {
        let (_, dp) = exp_dp(HOUR, 40);
        // Expected makespan ≥ work + minimum checkpointing time.
        let v = dp.value(40, 0.0);
        let w = 40.0 * dp.quantum();
        assert!(v > w, "V = {v} ≤ failure-free work {w}");
    }

    #[test]
    fn weibull_dp_age_sensitivity() {
        // k < 1: an old processor is safer, so the DP schedules a larger
        // (or equal) first chunk from an old age than right after recovery.
        let spec = JobSpec::table1_single_processor();
        let dp = DpMakespan::new(
            &spec,
            Box::new(Weibull::from_mtbf(0.7, DAY)),
            DpMakespanConfig { quanta: Some(80), assume_memoryless: false },
        );
        let young_chunk = dp.chunk_for(spec.work, spec.recovery);
        let old_chunk = dp.chunk_for(spec.work, 10.0 * DAY);
        assert!(
            old_chunk >= young_chunk,
            "old {old_chunk} < young {young_chunk}"
        );
    }

    #[test]
    fn weibull_value_finite_and_positive() {
        let spec = JobSpec::table1_single_processor();
        let dp = DpMakespan::new(
            &spec,
            Box::new(Weibull::from_mtbf(0.7, HOUR)),
            DpMakespanConfig { quanta: Some(50), assume_memoryless: false },
        );
        let v = dp.value(50, 0.0);
        assert!(v.is_finite() && v > spec.work);
    }

    #[test]
    fn session_returns_valid_chunks() {
        let (spec, dp) = exp_dp(DAY, 60);
        let mut s = dp.session();
        let ages = AgeView::single(0.0);
        let mut remaining = spec.work;
        for _ in 0..5 {
            let c = s.next_chunk(remaining, &ages, 0.0);
            assert!(c > 0.0 && c <= remaining + 1e-9);
            remaining -= c;
        }
    }

    #[test]
    fn kernel_loss_matches_exponential_closed_form() {
        // The DP's tlost path (kernel expected_loss) against Lemma 1.
        let d = Exponential::from_mtbf(1000.0);
        let table = KernelTable::build(Box::new(d), 20_000.0, 400.0);
        for &(x, tau) in &[(100.0, 0.0), (500.0, 200.0), (2_000.0, 0.0)] {
            let got = table.expected_loss(x, tau);
            let expect = d.expected_loss(x, tau);
            assert!(
                (got - expect).abs() < 0.02 * expect.max(1.0),
                "x={x} τ={tau}: table {got} vs closed {expect}"
            );
        }
    }
}
