//! Periodic checkpointing: equal-size chunks of a fixed period.
//!
//! All the closed-form heuristics (Young, Daly, OptExp, Bouguerra) reduce
//! to this once their period is computed; `PeriodVariation` /`PeriodLB`
//! scale the period of an existing policy by a factor (Appendix A/B
//! sweeps, §4.1 numeric lower bound).

use crate::{clamp_chunk, AgeView, Policy, PolicySession};

/// Checkpoint every `period` seconds of work.
#[derive(Debug, Clone)]
pub struct FixedPeriod {
    name: String,
    period: f64,
}

impl FixedPeriod {
    /// A named fixed-period policy.
    ///
    /// # Panics
    /// Panics unless `period` is positive and finite.
    pub fn new(name: impl Into<String>, period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "period must be positive and finite, got {period}"
        );
        Self { name: name.into(), period }
    }

    /// The work period between checkpoints, seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The same policy with its period multiplied by `factor` — the
    /// `PeriodVariation` construction of Appendix A/B and the candidate
    /// generator of `PeriodLB` (§4.1).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0);
        Self {
            name: format!("{}*{factor:.4}", self.name),
            period: self.period * factor,
        }
    }
}

impl Policy for FixedPeriod {
    fn name(&self) -> &str {
        &self.name
    }

    fn session(&self) -> Box<dyn PolicySession + '_> {
        Box::new(FixedPeriodSession { period: self.period })
    }
}

struct FixedPeriodSession {
    period: f64,
}

impl PolicySession for FixedPeriodSession {
    fn next_chunk(&mut self, remaining: f64, _ages: &AgeView, _now: f64) -> f64 {
        clamp_chunk(self.period, remaining)
    }

    fn wants_ages(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_period_until_tail() {
        let p = FixedPeriod::new("p", 100.0);
        let mut s = p.session();
        let ages = AgeView::single(0.0);
        assert_eq!(s.next_chunk(1000.0, &ages, 0.0), 100.0);
        assert_eq!(s.next_chunk(250.0, &ages, 0.0), 100.0);
        // Tail chunk shrinks to the remaining work.
        assert_eq!(s.next_chunk(40.0, &ages, 0.0), 40.0);
    }

    #[test]
    fn scaling_multiplies_period() {
        let p = FixedPeriod::new("p", 100.0).scaled(1.5);
        assert!((p.period() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn sessions_are_independent() {
        let p = FixedPeriod::new("p", 10.0);
        let mut a = p.session();
        let mut b = p.session();
        let ages = AgeView::single(0.0);
        assert_eq!(a.next_chunk(100.0, &ages, 0.0), 10.0);
        assert_eq!(b.next_chunk(5.0, &ages, 0.0), 5.0);
        assert_eq!(a.next_chunk(100.0, &ages, 0.0), 10.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_period() {
        FixedPeriod::new("bad", 0.0);
    }
}
