//! Checkpointing strategies — the paper's contribution and every comparator.
//!
//! A policy answers one question, at every decision point (job start, after
//! each checkpoint, after each recovery): *how much work should the next
//! chunk contain before we checkpoint again?*
//!
//! | Policy | Kind | Source |
//! |---|---|---|
//! | [`young`] | periodic | Young 1974 first-order approximation |
//! | [`daly_low`] | periodic | Daly 2004 lower-order estimate |
//! | [`daly_high`] | periodic | Daly 2004 higher-order estimate |
//! | [`OptExp`](optexp::OptExp) | periodic | **Theorem 1 / Proposition 5** (optimal for Exponential) |
//! | [`Bouguerra`](bouguerra::Bouguerra) | periodic | Bouguerra et al. 2010 (all-rejuvenation assumption) |
//! | [`Liu`](liu::Liu) | non-periodic | Liu et al. 2008 hazard-frequency placement |
//! | [`DpMakespan`](dp_makespan::DpMakespan) | dynamic | **Algorithm 1** (quantised optimal Makespan) |
//! | [`DpNextFailure`](dp_next_failure::DpNextFailure) | dynamic | **Algorithm 2 + §3.3** (maximise work before next failure) |
//!
//! The omniscient `LowerBound` and the searched `PeriodLB` are not policies
//! in this sense — they need the whole failure trace — and live in
//! `ckpt-sim` / `ckpt-exp` respectively.

pub mod bouguerra;
pub mod daly;
pub mod dp_makespan;
pub mod dp_next_failure;
pub mod liu;
pub mod optexp;
pub mod periodic;
pub mod plan_cache;

pub use bouguerra::Bouguerra;
pub use daly::{daly_high, daly_low, young};
pub use dp_makespan::{DpMakespan, DpMakespanConfig};
pub use dp_next_failure::{DpNextFailure, DpNextFailureConfig, StateCompression};
pub use plan_cache::{CacheStats, DistId, DpCacheStats, DpCaches, ShardedCache};
pub use liu::Liu;
pub use optexp::OptExp;
pub use periodic::FixedPeriod;

use ckpt_platform::AgeView;

/// A checkpointing strategy. Thread-safe and reusable: each simulated trace
/// gets its own [`PolicySession`] so traces can run in parallel.
pub trait Policy: Send + Sync {
    /// Display name used in tables and figures.
    fn name(&self) -> &str;

    /// Start a fresh per-run session.
    fn session(&self) -> Box<dyn PolicySession + '_>;
}

/// Per-run mutable state of a policy.
pub trait PolicySession {
    /// Size (seconds of work) of the next chunk to execute before
    /// checkpointing, given `remaining` work, the processor-age snapshot
    /// and the elapsed time since job start. Must return a value in
    /// `(0, remaining]`; the simulator clamps defensively.
    fn next_chunk(&mut self, remaining: f64, ages: &AgeView, now: f64) -> f64;

    /// Called when a failure interrupted the current chunk (before the
    /// next `next_chunk` call) so schedule-holding sessions can replan.
    fn on_failure(&mut self) {}

    /// Whether this session reads the [`AgeView`]. Periodic policies
    /// return `false`, letting the simulator skip building the snapshot —
    /// a measurable saving on failure-dense runs with many candidate
    /// periods.
    fn wants_ages(&self) -> bool {
        true
    }
}

/// Smallest chunk any policy is allowed to schedule, seconds. Guards
/// against degenerate zero-size chunks that would live-lock the simulator.
pub const MIN_CHUNK: f64 = 1e-6;

/// Clamp a proposed chunk into `(0, remaining]`.
pub(crate) fn clamp_chunk(chunk: f64, remaining: f64) -> f64 {
    if !chunk.is_finite() || chunk <= 0.0 {
        remaining.min(MIN_CHUNK.max(remaining))
    } else {
        chunk.min(remaining).max(MIN_CHUNK.min(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_rejects_nonsense() {
        assert_eq!(clamp_chunk(f64::NAN, 100.0), 100.0);
        assert_eq!(clamp_chunk(-5.0, 100.0), 100.0);
        assert_eq!(clamp_chunk(0.0, 100.0), 100.0);
    }

    #[test]
    fn clamp_caps_at_remaining() {
        assert_eq!(clamp_chunk(500.0, 100.0), 100.0);
        assert_eq!(clamp_chunk(50.0, 100.0), 50.0);
    }

    #[test]
    fn clamp_floors_tiny_chunks() {
        assert_eq!(clamp_chunk(1e-12, 100.0), MIN_CHUNK);
        // But never above remaining.
        assert_eq!(clamp_chunk(1e-12, 1e-9), 1e-9);
    }
}
