//! Young's and Daly's periodic approximations (§4.1).
//!
//! All three compute their period from the *platform* MTBF `M = MTBF/p`
//! (processor MTBF over processor count), embodying the implicit assumption
//! that failures are exponentially distributed; the paper nevertheless
//! applies them verbatim to Weibull and log-based failures, which is
//! exactly what makes them degrade at scale (Figures 4–7).

use crate::periodic::FixedPeriod;
use ckpt_workload::JobSpec;

/// Young 1974: period `√(2 · C(p) · MTBF/p)`.
pub fn young(spec: &JobSpec, proc_mtbf: f64) -> FixedPeriod {
    assert!(proc_mtbf > 0.0);
    let m = proc_mtbf / spec.procs as f64;
    FixedPeriod::new("Young", (2.0 * spec.checkpoint * m).sqrt())
}

/// Daly 2004 lower-order estimate: period
/// `√(2 · C(p) · (MTBF/p + D + R(p)))` — Young with the recovery chain
/// folded into the failure-free interval.
pub fn daly_low(spec: &JobSpec, proc_mtbf: f64) -> FixedPeriod {
    assert!(proc_mtbf > 0.0);
    let m = proc_mtbf / spec.procs as f64 + spec.downtime + spec.recovery;
    FixedPeriod::new("DalyLow", (2.0 * spec.checkpoint * m).sqrt())
}

/// Daly 2004 higher-order estimate:
///
/// ```text
/// period = √(2CM) · [1 + ⅓√(C/2M) + (1/9)(C/2M)] − C   if C < 2M,
/// period = M                                            otherwise,
/// ```
///
/// with `M = MTBF/p`.
pub fn daly_high(spec: &JobSpec, proc_mtbf: f64) -> FixedPeriod {
    assert!(proc_mtbf > 0.0);
    let m = proc_mtbf / spec.procs as f64;
    let c = spec.checkpoint;
    let period = if c < 2.0 * m {
        let r = c / (2.0 * m);
        (2.0 * c * m).sqrt() * (1.0 + r.sqrt() / 3.0 + r / 9.0) - c
    } else {
        m
    };
    // The −C correction can push the period non-positive when C ≈ 2M;
    // floor at the checkpoint cost itself.
    FixedPeriod::new("DalyHigh", period.max(c.min(m)).max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;

    const DAY: f64 = 86_400.0;

    fn spec() -> JobSpec {
        JobSpec::table1_single_processor()
    }

    #[test]
    fn young_formula() {
        let p = young(&spec(), DAY);
        assert!((p.period() - (2.0f64 * 600.0 * DAY).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn daly_low_adds_recovery_chain() {
        let p = daly_low(&spec(), DAY);
        let expect = (2.0f64 * 600.0 * (DAY + 60.0 + 600.0)).sqrt();
        assert!((p.period() - expect).abs() < 1e-9);
        assert!(p.period() > young(&spec(), DAY).period());
    }

    #[test]
    fn daly_high_is_near_young_for_large_mtbf() {
        // C ≪ M: the correction terms vanish and DalyHigh ≈ Young − C.
        let week = 7.0 * DAY;
        let y = young(&spec(), week).period();
        let h = daly_high(&spec(), week).period();
        assert!((h - y).abs() < 0.1 * y, "young {y} dalyhigh {h}");
    }

    #[test]
    fn daly_high_saturates_at_mtbf_when_checkpoint_dominates() {
        // C ≥ 2M → period = M.
        let s = JobSpec::sequential(1e6, 900.0, 900.0, 60.0);
        let p = daly_high(&s, 400.0);
        assert!((p.period() - 400.0).abs() < 1e-9, "got {}", p.period());
    }

    #[test]
    fn platform_scaling_divides_mtbf() {
        // 4× the processors → half the period (√ scaling).
        let year = 365.25 * DAY;
        let s1 = JobSpec::table1_petascale(1 << 10);
        let s4 = JobSpec::table1_petascale(1 << 12);
        let p1 = young(&s1, 125.0 * year).period();
        let p4 = young(&s4, 125.0 * year).period();
        assert!((p1 / p4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(young(&spec(), DAY).name(), "Young");
        assert_eq!(daly_low(&spec(), DAY).name(), "DalyLow");
        assert_eq!(daly_high(&spec(), DAY).name(), "DalyHigh");
    }

    #[test]
    fn petascale_period_magnitude_sanity() {
        // 45,208 procs, 125-year MTBF, C = 600 s: platform MTBF ≈ 87,250 s,
        // Young ≈ √(2·600·87250) ≈ 10,233 s.
        let year = 365.25 * DAY;
        let s = JobSpec::table1_petascale(45_208);
        let p = young(&s, 125.0 * year).period();
        assert!((9_000.0..12_000.0).contains(&p), "period {p}");
    }
}
