//! `DPNextFailure` — Algorithm 2 and its §3.3 parallel extension.
//!
//! The policy maximises the expected amount of work completed before the
//! next platform failure (Proposition 3):
//!
//! ```text
//! E[W] = Σᵢ ωᵢ · Πⱼ≤ᵢ Psuc(ωⱼ + C | tⱼ),   tⱼ = elapsed age when chunk j starts.
//! ```
//!
//! With a time quantum `u` the value function over states `(x, n)` —
//! `x` remaining quanta, `n` chunks already completed since planning —
//! satisfies
//!
//! ```text
//! V(x, n) = max_{1 ≤ i ≤ x}  Psuc(iu + C | δ(x, n)) · (iu + V(x − i, n + 1)),
//! δ(x, n) = (x_max − x)·u + n·C          (elapsed time since planning),
//! ```
//!
//! which we solve bottom-up in `O(x_max² · avg i)` after precomputing the
//! platform log-survival `G(a, m) = Σⱼ ln S(τⱼ + a·u + m·C)` on the
//! `(a, m)` grid, so each transition's `ln Psuc = G(a', m') − G(a, m)` is
//! O(1). The per-processor ages `τⱼ` enter only through `G`.
//!
//! The two §3.3 scalability devices are implemented faithfully:
//!
//! * **work truncation** — the DP is invoked on
//!   `min(ω, 2 × MTBF/p)` work and only the first **half** of the produced
//!   chunk schedule is used before replanning;
//! * **state compression** — optionally approximate all but the `n_exact`
//!   smallest processor ages by `n_approx` reference quantiles
//!   ([`StateCompression::Approximate`]); our [`AgeView`] already collapses
//!   never-failed processors, so [`StateCompression::Exact`] is itself
//!   cheap and serves as the precision baseline of the paper's ≤0.2 %
//!   error study (reproduced in the `ablation_state_compression` bench).

use crate::plan_cache::{DistId, DpCaches, KernelRowKey, PlanKey};
use crate::{clamp_chunk, AgeView, Policy, PolicySession};
use ckpt_dist::FailureDistribution;
use ckpt_workload::JobSpec;
use std::sync::Arc;

/// How the processor-age multiset is summarised before planning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StateCompression {
    /// Exact ages while the distinct-age set stays small (≤ 128 entries),
    /// the paper's (10, 100) scheme beyond — failure-dense platforms
    /// (the log-based runs of §6) would otherwise pay O(#failures) per
    /// grid point.
    Auto,
    /// Use every distinct age with its exact multiplicity.
    Exact,
    /// §3.3's scheme: keep the `n_exact` smallest ages exact, map the rest
    /// onto `n_approx` survival-quantile reference values.
    Approximate {
        /// Number of smallest ages kept exactly (paper: 10).
        n_exact: usize,
        /// Number of reference values (paper: 100).
        n_approx: usize,
    },
}

impl StateCompression {
    /// The paper's configuration: `n_exact = 10`, `n_approx = 100`.
    pub fn paper() -> Self {
        Self::Approximate { n_exact: 10, n_approx: 100 }
    }
}

/// Tunables of the DP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpNextFailureConfig {
    /// Number of quanta the (truncated) work is divided into; the quantum
    /// is `u = W_trunc / quanta`. More quanta = finer chunks, higher cost.
    /// `None` picks a resolution automatically so that the expected
    /// optimal chunk (Young's order of magnitude, `√(2CM)`) spans
    /// [`QUANTA_PER_CHUNK`] quanta — see [`auto_quanta`].
    pub quanta: Option<usize>,
    /// Work truncation in platform-MTBF multiples (paper: 2).
    pub truncation_mtbf_multiple: f64,
    /// Use only the first half of each planned schedule (paper: yes).
    pub use_half_schedule: bool,
    /// Age-state compression mode.
    pub compression: StateCompression,
}

impl Default for DpNextFailureConfig {
    fn default() -> Self {
        Self {
            quanta: None,
            truncation_mtbf_multiple: 2.0,
            use_half_schedule: true,
            compression: StateCompression::Auto,
        }
    }
}

/// Maximum chunks a single plan looks ahead. Beyond ~32 chunks the tail
/// of a schedule is almost never reached before a failure or a replan, so
/// the planning window is capped at `32·√(2CM)` even when `2M` (the
/// paper's truncation) is larger — this keeps the quantum fine relative
/// to the chunk size on small platforms whose MTBF is enormous.
pub const MAX_PLAN_CHUNKS: f64 = 32.0;

/// Quanta per estimated chunk in the auto configuration.
pub const QUANTA_PER_CHUNK: f64 = 8.0;

/// Planning window for one DP invocation: `min(k·M, 32·√(2CM))`.
pub fn planning_window(checkpoint: f64, platform_mtbf: f64, mtbf_multiple: f64) -> f64 {
    let c = checkpoint.max(1.0);
    let chunk_est = (2.0 * c * platform_mtbf).sqrt();
    (mtbf_multiple * platform_mtbf).min(MAX_PLAN_CHUNKS * chunk_est)
}

/// Auto-sized quantum count: ~8 quanta per estimated chunk `√(2CM)`
/// across the planning window, clamped to `[40, 256]` (DP cost grows
/// cubically in the count).
pub fn auto_quanta(checkpoint: f64, platform_mtbf: f64) -> usize {
    let c = checkpoint.max(1.0);
    let chunk_est = (2.0 * c * platform_mtbf).sqrt();
    let window = planning_window(checkpoint, platform_mtbf, 2.0);
    let q = QUANTA_PER_CHUNK * window / chunk_est;
    (q as usize).clamp(40, 256)
}

/// The `DPNextFailure` policy.
pub struct DpNextFailure {
    dist: Box<dyn FailureDistribution>,
    dist_id: DistId,
    spec: JobSpec,
    platform_mtbf: f64,
    config: DpNextFailureConfig,
    x_max: usize,
    /// Shared plan/kernel-row memo layers (see [`crate::plan_cache`]).
    /// Plans are keyed by the full quantised planning state — distribution
    /// identity, exact quantum bits, truncation, age buckets — so every
    /// instance with the same state reuses the same solve; post-failure
    /// states recur with identical keys (the age is `D + R` plus small
    /// cascades), so the hit rate is high even for age-dependent
    /// distributions, and a Study batch shares solves across all its
    /// traces and cells.
    caches: DpCaches,
    plans_total: std::sync::atomic::AtomicU64,
    plans_cold: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for DpNextFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpNextFailure")
            .field("spec", &self.spec)
            .field("config", &self.config)
            .field("x_max", &self.x_max)
            .finish_non_exhaustive()
    }
}

impl DpNextFailure {
    /// Build for a job spec, the per-processor failure distribution, and
    /// the per-processor MTBF (used for work truncation; the paper's
    /// `min(ω, 2·MTBF/p)`). Plans and kernel rows are memoised in the
    /// process-wide [`DpCaches::global`] pair.
    pub fn new(
        spec: &JobSpec,
        dist: Box<dyn FailureDistribution>,
        proc_mtbf: f64,
        config: DpNextFailureConfig,
    ) -> Self {
        Self::with_caches(spec, dist, proc_mtbf, config, DpCaches::global().clone())
    }

    /// [`new`](Self::new) with an explicit cache pair — isolation for
    /// tests and cache-sensitivity studies.
    pub fn with_caches(
        spec: &JobSpec,
        dist: Box<dyn FailureDistribution>,
        proc_mtbf: f64,
        config: DpNextFailureConfig,
        caches: DpCaches,
    ) -> Self {
        assert!(proc_mtbf > 0.0);
        assert!(config.truncation_mtbf_multiple > 0.0);
        let platform_mtbf = proc_mtbf / spec.procs as f64;
        let x_max = match config.quanta {
            Some(q) => {
                assert!(q >= 2, "need at least 2 quanta");
                q
            }
            None => auto_quanta(spec.checkpoint, platform_mtbf),
        };
        let dist_id = DistId::of(dist.as_ref());
        Self {
            dist,
            dist_id,
            spec: *spec,
            platform_mtbf,
            config,
            x_max,
            caches,
            plans_total: std::sync::atomic::AtomicU64::new(0),
            plans_cold: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The quantum count in effect (after auto-selection).
    pub fn quanta(&self) -> usize {
        self.x_max
    }

    /// `(total plan calls, cache misses)` since construction — cheap
    /// relaxed counters for perf diagnostics.
    pub fn plan_stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering::Relaxed;
        (self.plans_total.load(Relaxed), self.plans_cold.load(Relaxed))
    }

    /// Plan a chunk schedule for `remaining` work given the age snapshot.
    /// Public so the solver can be unit-tested and benchmarked directly.
    ///
    /// The plan is computed from the *quantised* state (ages mapped onto a
    /// geometric bucket grid, [`quantise_age`]) and memoised under that
    /// key in the shared [`DpCaches`] plan layer, so any execution order —
    /// and any other policy instance with the same distribution identity —
    /// reproduces the identical plan for the same key; replans after a
    /// failure or at schedule exhaustion mostly hit the cache instead of
    /// re-running the `O(x_max²)` solve. The returned `Arc` slice is
    /// shared with the cache: consuming a plan allocates nothing.
    pub fn plan(&self, remaining: f64, ages: &AgeView) -> Arc<[f64]> {
        let window = planning_window(
            self.spec.checkpoint,
            self.platform_mtbf,
            self.config.truncation_mtbf_multiple,
        );
        let w_full = remaining.min(window);
        let truncated = w_full < remaining - 1e-9;
        let x_max = self.x_max;
        let u = w_full / x_max as f64;
        let compressed = compress_ages(ages, self.dist.as_ref(), self.config.compression);
        // Quantised state: bucket ids on the geometric age grid, counts
        // merged per bucket. The exact quantum bits key the truncated work
        // (`window/x_max` when the full window applies, proportionally
        // smaller in the endgame) so unequal-work states can never
        // collide.
        let mut buckets: Vec<(u64, u64)> = Vec::with_capacity(compressed.len());
        for &(age, count) in &compressed {
            let id = quantise_age(age, u);
            let count = count.round() as u64;
            if count == 0 {
                continue;
            }
            match buckets.last_mut() {
                Some(last) if last.0 == id => last.1 += count,
                _ => buckets.push((id, count)),
            }
        }
        let key = PlanKey {
            dist: self.dist_id,
            u_bits: u.to_bits(),
            checkpoint_bits: self.spec.checkpoint.to_bits(),
            x_max: x_max as u32,
            truncated,
            half_schedule: self.config.use_half_schedule,
            lanes: ckpt_math::simd::LANES as u32,
            buckets,
        };
        self.plans_total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if let Some(hit) = self.caches.plans.get(&key) {
            return hit;
        }
        self.plans_cold.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Solve on the representative state reconstructed from the key —
        // a pure function of the key, so concurrent sessions agree on the
        // cached plan no matter which one computes it first. The kernel
        // rows (exact per-bucket log-survival over the DP triangle) come
        // from the shared row layer: a bucket seen by any earlier solve on
        // the same grid costs one memoised lookup instead of a triangle of
        // `powf` calls.
        let representative: Vec<(f64, f64)> = key
            .buckets
            .iter()
            .map(|&(id, count)| (representative_age(id, u), count as f64))
            .collect();
        let checkpoint = self.spec.checkpoint;
        let row_for = |age_index: usize| -> Arc<[f64]> {
            let (bucket, _) = key.buckets[age_index];
            let row_key = KernelRowKey {
                dist: self.dist_id,
                u_bits: key.u_bits,
                checkpoint_bits: key.checkpoint_bits,
                x_max: key.x_max,
                lanes: ckpt_math::simd::LANES as u32,
                bucket,
            };
            self.caches.kernel_rows.get_or_insert_with(row_key, || {
                compute_row(
                    self.dist.as_ref(),
                    representative_age(bucket, u),
                    x_max,
                    u,
                    checkpoint,
                )
            })
        };
        let chunks = solve_with_rows(
            self.dist.as_ref(),
            &representative,
            x_max,
            u,
            checkpoint,
            Some(&row_for),
        );
        // §3.3: when the work was truncated, keep only the first half of
        // the chunks to avoid end-of-horizon artefacts.
        let chunks: Arc<[f64]> = if self.config.use_half_schedule && truncated && chunks.len() > 1
        {
            let keep = chunks.len().div_ceil(2);
            chunks[..keep].into()
        } else {
            chunks.into()
        };
        self.caches.plans.insert(key, chunks.clone());
        chunks
    }
}

/// Buckets per doubling of `1 + age/u` on the geometric age grid.
const AGE_BUCKETS_PER_OCTAVE: f64 = 16.0;

/// Map an age onto the geometric bucket grid: sub-quantum ages resolve at
/// ~`u/16` (the post-failure states the hazard is most sensitive to),
/// ages of many quanta at ~4% relative — still comfortably inside the
/// fidelity band of the §3.3 reference-value compression (100 quantile
/// reps over the whole age distribution), while halving the distinct
/// kernel rows a study builds and sweeps relative to the previous
/// 32-per-octave grid.
fn quantise_age(age: f64, u: f64) -> u64 {
    (AGE_BUCKETS_PER_OCTAVE * (1.0 + age / u).log2()).round() as u64 // lint: allow(naked-transcendental-in-hot-path) — per-plan age-bucket mapping, not a row build
}

/// Centre age of a bucket — the representative the plan is computed from.
fn representative_age(id: u64, u: f64) -> f64 {
    u * ((id as f64 / AGE_BUCKETS_PER_OCTAVE).exp2() - 1.0) // lint: allow(naked-transcendental-in-hot-path) — per-plan age-bucket mapping, not a row build
}

impl Policy for DpNextFailure {
    fn name(&self) -> &str {
        "DPNextFailure"
    }

    fn session(&self) -> Box<dyn PolicySession + '_> {
        Box::new(DpNfSession { policy: self, plan: Vec::new().into(), pos: 0 })
    }
}

/// Walks a cached plan by index — the session shares the `Arc` slice with
/// the plan cache, so consuming a schedule performs no per-decision
/// allocation (the old `VecDeque` clone-and-drain did one clone per plan).
struct DpNfSession<'a> {
    policy: &'a DpNextFailure,
    plan: Arc<[f64]>,
    pos: usize,
}

impl PolicySession for DpNfSession<'_> {
    fn next_chunk(&mut self, remaining: f64, ages: &AgeView, _now: f64) -> f64 {
        if self.pos >= self.plan.len() {
            self.plan = self.policy.plan(remaining, ages);
            self.pos = 0;
        }
        let chunk = match self.plan.get(self.pos) {
            Some(&c) => {
                self.pos += 1;
                c
            }
            None => remaining,
        };
        clamp_chunk(chunk, remaining)
    }

    fn on_failure(&mut self) {
        // Invalidate the walked plan; the next decision replans (and
        // usually re-hits the cache for the recurring post-failure state).
        self.pos = self.plan.len();
    }
}

/// Collapse an [`AgeView`] into `(age, processor-count)` pairs according to
/// the compression mode. Counts are `f64` so reference buckets can hold
/// large populations.
pub fn compress_ages(
    ages: &AgeView,
    dist: &dyn FailureDistribution,
    mode: StateCompression,
) -> Vec<(f64, f64)> {
    let mut exact: Vec<(f64, f64)> = ages
        .failed_ages()
        .iter()
        .map(|&(a, n)| (a, f64::from(n)))
        .collect();
    let (pristine_n, pristine_age) = ages.pristine();
    if pristine_n > 0 {
        exact.push((pristine_age, pristine_n as f64));
    }
    exact.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));

    let (n_exact, n_approx) = match mode {
        StateCompression::Exact => return exact,
        StateCompression::Auto => {
            if exact.len() <= 128 {
                return exact;
            }
            let StateCompression::Approximate { n_exact, n_approx } = StateCompression::paper()
            else {
                unreachable!("paper() is Approximate")
            };
            (n_exact, n_approx)
        }
        StateCompression::Approximate { n_exact, n_approx } => (n_exact, n_approx),
    };

    // Split off the n_exact smallest individual processor ages.
    let mut kept: Vec<(f64, f64)> = Vec::new();
    let mut rest: Vec<(f64, f64)> = Vec::new();
    let mut budget = n_exact as f64;
    for (age, count) in exact {
        if budget > 0.0 {
            let take = count.min(budget);
            kept.push((age, take));
            budget -= take;
            if count > take {
                rest.push((age, count - take));
            }
        } else {
            rest.push((age, count));
        }
    }
    if rest.is_empty() {
        return kept;
    }
    let lo = rest.first().expect("non-empty").0;
    let hi = rest.last().expect("non-empty").0;
    let n_approx = n_approx.max(2);
    if hi - lo < 1e-9 || n_approx <= 2 {
        // Degenerate spread: everything lands on the endpoints.
        kept.extend(bucket_onto(&rest, &[lo, hi]));
        return kept;
    }
    // Reference values: endpoints are the extreme remaining ages; interior
    // values are survival-interpolated quantiles (§3.3).
    let s_lo = dist.survival(lo);
    let s_hi = dist.survival(hi);
    let mut refs = Vec::with_capacity(n_approx);
    refs.push(lo);
    for i in 2..n_approx {
        let w_hi = (i - 1) as f64 / (n_approx - 1) as f64;
        let s = (1.0 - w_hi) * s_lo + w_hi * s_hi;
        let s = s.clamp(f64::MIN_POSITIVE, 1.0);
        refs.push(dist.inverse_survival(s));
    }
    refs.push(hi);
    refs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    kept.extend(bucket_onto(&rest, &refs));
    kept.retain(|&(_, c)| c > 0.0);
    kept
}

/// Assign each `(age, count)` to the nearest reference value.
fn bucket_onto(ages: &[(f64, f64)], refs: &[f64]) -> Vec<(f64, f64)> {
    let mut counts = vec![0.0f64; refs.len()];
    for &(age, count) in ages {
        let idx = match refs.binary_search_by(|r| r.partial_cmp(&age).expect("no NaN")) {
            Ok(i) => i,
            Err(i) => {
                if i == 0 {
                    0
                } else if i >= refs.len() {
                    refs.len() - 1
                } else if (refs[i] - age).abs() < (age - refs[i - 1]).abs() {
                    i
                } else {
                    i - 1
                }
            }
        };
        counts[idx] += count;
    }
    refs.iter().copied().zip(counts).filter(|&(_, c)| c > 0.0).collect()
}

/// Ages at least this many grid time-spans old are folded into the
/// combined Chebyshev interpolant instead of being evaluated exactly at
/// every grid cell — see [`FarFit`].
const FAR_AGE_SPANS: f64 = 2.0;

/// Chebyshev-Gauss interpolation points (degree `CHEB_POINTS − 1`).
const CHEB_POINTS: usize = 8;

/// Combined log-survival of all "far" age groups, `Σⱼ cⱼ·ln S(τⱼ + t)`,
/// as one degree-7 Chebyshev interpolant over `t ∈ [0, t_span]`.
///
/// For `τ ≥ 2·t_span` the nearest singularity of `ln S(τ + ·)` (at
/// `t = −τ`) maps to `s ≤ −5` on the fit's `[−1, 1]` axis, a Bernstein
/// radius `ρ = 5 + √24 ≈ 9.9`, so the degree-7 interpolation error is
/// ~`ρ⁻⁸ ≈ 1e-8` of the per-processor log-survival — orders of
/// magnitude under the §3.3 state-compression error the policy already
/// tolerates. For Exponential failures `ln S` is linear in `t` and the
/// fit is exact. Summing the node values *before* taking coefficients
/// collapses any number of far groups into a single polynomial, making
/// the grid fill O(near ages + 1) per cell.
struct FarFit {
    coef: [f64; CHEB_POINTS],
    t_span: f64,
}

impl FarFit {
    /// Fit the combined far-age log-survival. Returns `None` when no age
    /// qualifies (all near, or a node value is non-finite). `near`
    /// receives the entries that must stay exact, tagged with their index
    /// into `ages` so the caller can fetch each one's cached kernel row.
    fn build(
        dist: &dyn FailureDistribution,
        ages: &[(f64, f64)],
        t_span: f64,
        near: &mut Vec<(usize, f64, f64)>,
    ) -> Option<FarFit> {
        let n = CHEB_POINTS;
        // Chebyshev-Gauss nodes mapped onto [0, t_span].
        let mut nodes = [0.0f64; CHEB_POINTS];
        for (k, node) in nodes.iter_mut().enumerate() {
            let theta = std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
            *node = 0.5 * t_span * (1.0 + theta.cos());
        }
        let mut sums = [0.0f64; CHEB_POINTS];
        let mut have_far = false;
        for (idx, &(tau, c)) in ages.iter().enumerate() {
            if tau < FAR_AGE_SPANS * t_span {
                near.push((idx, tau, c));
                continue;
            }
            let mut vals = [0.0f64; CHEB_POINTS];
            let mut finite = true;
            for (v, &t) in vals.iter_mut().zip(&nodes) {
                *v = dist.log_survival(tau + t);
                finite &= v.is_finite();
            }
            if !finite {
                near.push((idx, tau, c));
                continue;
            }
            for (s, v) in sums.iter_mut().zip(&vals) {
                *s += c * v;
            }
            have_far = true;
        }
        if !have_far {
            return None;
        }
        // coef[j] = (2 − δⱼ₀)/n · Σₖ f(tₖ)·cos(j·θₖ).
        let mut coef = [0.0f64; CHEB_POINTS];
        for (j, cj) in coef.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &fk) in sums.iter().enumerate() {
                let theta = std::f64::consts::PI * (k as f64 + 0.5) / n as f64;
                acc += fk * (j as f64 * theta).cos();
            }
            *cj = acc * if j == 0 { 1.0 } else { 2.0 } / n as f64;
        }
        Some(FarFit { coef, t_span })
    }

    /// Lane-wise Clenshaw: four grid cells per call, each lane running
    /// exactly the scalar [`eval`](Self::eval) operation sequence (no
    /// cross-lane reassociation), so the chunked triangle fill below is
    /// bit-identical to a cell-at-a-time loop while the recurrence runs
    /// 4-wide.
    #[inline]
    fn eval4(&self, t: ckpt_math::simd::F64x4) -> ckpt_math::simd::F64x4 {
        use ckpt_math::simd::F64x4;
        // Same per-lane expression as `eval`: `(2·t)/span − 1`, not a
        // reciprocal multiply — the bits must match the scalar tail.
        let s = F64x4([
            2.0 * t.0[0] / self.t_span - 1.0,
            2.0 * t.0[1] / self.t_span - 1.0,
            2.0 * t.0[2] / self.t_span - 1.0,
            2.0 * t.0[3] / self.t_span - 1.0,
        ]);
        let s2 = F64x4::splat(2.0) * s;
        let mut b1 = F64x4::splat(0.0);
        let mut b2 = F64x4::splat(0.0);
        for j in (1..CHEB_POINTS).rev() {
            let b0 = F64x4::splat(self.coef[j]) + s2 * b1 - b2;
            b2 = b1;
            b1 = b0;
        }
        F64x4::splat(self.coef[0]) + s * b1 - b2
    }

    /// Clenshaw evaluation at `t ∈ [0, t_span]`.
    #[inline]
    fn eval(&self, t: f64) -> f64 {
        let s = 2.0 * t / self.t_span - 1.0;
        let s2 = 2.0 * s;
        let mut b1 = 0.0f64;
        let mut b2 = 0.0f64;
        for j in (1..CHEB_POINTS).rev() {
            let b0 = self.coef[j] + s2 * b1 - b2;
            b2 = b1;
            b1 = b0;
        }
        self.coef[0] + s * b1 - b2
    }
}

/// Chunk-depth cap of the value recursion: `V(·, n) ≡ 0` for
/// `n ≥ value_chunk_cap(x_max)`, and the `G`/`E` triangles stop at
/// `m = value_chunk_cap`. The quantum is sized so optimal chunks span
/// ~[`QUANTA_PER_CHUNK`] quanta, and measured plan depths stay below
/// `0.4·x_max` across the repo's cells (Weibull petascale: ≤ 78 chunks
/// at `x_max = 256`; LANL log-based: ≤ 21 at `x_max = 55` — see the
/// `dp.plan_chunks` histogram), so `max(x_max/2, 32)` keeps ≥ 1.5×
/// headroom while cutting the triangle, the kernel rows, the `E` grid,
/// and the DP table by ~25% on large windows. A plan that would walk
/// past the cap flushes its remaining quanta as one final chunk
/// (`dp.plan_cap_flushes`, zero on every cell we run).
fn value_chunk_cap(x_max: usize) -> usize {
    (x_max / 2).max(32)
}

/// Length of the packed `(a, m)` triangle for a given `x_max`: row `a`
/// holds `m = 0..=min(a+1, cap)`, rows concatenated in ascending `a`,
/// with `cap = value_chunk_cap(x_max)`.
fn triangle_len(x_max: usize) -> usize {
    let cap = value_chunk_cap(x_max);
    if x_max < cap {
        (x_max + 1) * (x_max + 4) / 2
    } else {
        // Rows `a < cap` are full (`a + 2` cells); rows `a ≥ cap` hold
        // `cap + 1` cells each.
        cap * (cap + 3) / 2 + (x_max + 1 - cap) * (cap + 1)
    }
}

/// Start offset of packed-triangle row `a` (see [`triangle_len`]).
#[inline]
fn tri_row_start(a: usize, cap: usize) -> usize {
    if a <= cap {
        a * (a + 3) / 2
    } else {
        cap * (cap + 3) / 2 + (a - cap) * (cap + 1)
    }
}

/// One age bucket's exact log-survival over the DP triangle, in packed
/// triangle order: `row[·] = ln S(τ + a·u + m·C)` for `a = 0..=x_max`,
/// `m = 0..=min(a+1, cap)`. The arithmetic (`t = a·u + m·C` first, then
/// `τ + t`) matches the inline grid fill exactly, and both paths evaluate
/// through [`FailureDistribution::log_survival_batch`], so accumulating
/// cached rows is bit-identical to evaluating in place.
fn compute_row(
    dist: &dyn FailureDistribution,
    tau: f64,
    x_max: usize,
    u: f64,
    checkpoint: f64,
) -> Arc<[f64]> {
    let len = triangle_len(x_max);
    let mut ts = Vec::with_capacity(len);
    fill_triangle_times(&mut ts, tau, x_max, u, checkpoint);
    let mut row = vec![0.0f64; len];
    dist.log_survival_batch(&ts, &mut row);
    if ckpt_obs::active() {
        ckpt_obs::counter_add("dp.cold_row_batch_cells", len as u64);
    }
    row.into()
}

/// Fill `ts` with the triangle's absolute query times `τ + a·u + m·C` in
/// packed order — the one shared construction both the cached row build
/// and the inline sweep use, so their inputs are the same bits.
fn fill_triangle_times(ts: &mut Vec<f64>, tau: f64, x_max: usize, u: f64, checkpoint: f64) {
    let cap = value_chunk_cap(x_max);
    ts.clear();
    ts.reserve(triangle_len(x_max));
    for a in 0..=x_max {
        let au = a as f64 * u;
        for m in 0..=(a + 1).min(cap) {
            let t = au + m as f64 * checkpoint;
            ts.push(tau + t);
        }
    }
}

/// Bottom-up DP solve. Returns the chunk sizes (work seconds) in execution
/// order for the full truncated work `x_max · u`.
#[cfg_attr(not(test), allow(dead_code))]
fn solve(
    dist: &dyn FailureDistribution,
    ages: &[(f64, f64)],
    x_max: usize,
    u: f64,
    checkpoint: f64,
) -> Vec<f64> {
    solve_with_rows(dist, ages, x_max, u, checkpoint, None)
}

/// [`solve`] with an optional kernel-row source: `rows(i)` returns the
/// packed-triangle log-survival row of `ages[i]` (see [`compute_row`]).
/// Supplied rows must be exact — the cached-path and inline-path cell
/// arithmetic is identical, so both produce the same bits.
// lint: allow(panicking-index-in-kernel) — every `[]` below is affine in loop
// bounds sized from `x_max` and `ages.len()`; bounds re-audited with this PR.
fn solve_with_rows(
    dist: &dyn FailureDistribution,
    ages: &[(f64, f64)],
    x_max: usize,
    u: f64,
    checkpoint: f64,
    rows: Option<&dyn Fn(usize) -> Arc<[f64]>>,
) -> Vec<f64> {
    assert!(u > 0.0, "quantum must be positive");
    // G(a, m) = Σⱼ countⱼ · ln S(τⱼ + a·u + m·C); m ranges one past x_max
    // because the final chunk still pays its checkpoint. Reachable states
    // have n ≤ x_max − x = a and transitions read (a, n) and (a+i, n+1)
    // with i ≥ 1, so only the triangular region m ≤ a + 1 is ever
    // consulted — the upper half of the grid is never filled — and the
    // value recursion is truncated at `m_cap` chunks (see
    // [`value_chunk_cap`]), bounding `m` at `m_cap` too.
    // Both grids are stored m-major (`[m][a]`) so the DP inner loop below,
    // which scans `i` at fixed `n`, touches consecutive memory instead of
    // striding a cache line per iteration.
    let m_cap = value_chunk_cap(x_max);
    let m_top = (x_max + 1).min(m_cap);
    let t_span = x_max as f64 * u + (m_top + 1) as f64 * checkpoint;
    let mut near: Vec<(usize, f64, f64)> = Vec::with_capacity(ages.len());
    let far = FarFit::build(dist, ages, t_span, &mut near);
    // The triangle is accumulated in a packed scratch first — far-fit
    // values, then one contiguous multiply-add pass per near age (cached
    // row when available, in-place evaluation otherwise) — and scattered
    // into the m-major grids at the end. Per cell this performs the same
    // float operations in the same order as a cell-at-a-time fill.
    SOLVE_SCRATCH.with(|cell| {
    let mut scratch = cell.borrow_mut();
    let SolveScratch { tri, etri, ts, row, egrid, value, choice, hull } = &mut *scratch;
    // Solver-internals telemetry: plain locals on the solve path (flushed
    // once per solve, only while an obs session records), so the float
    // work and its ordering are untouched.
    let scratch_reused = tri.capacity() >= triangle_len(x_max);
    let mut hull_lines: u64 = 0;
    let mut hull_advances: u64 = 0;
    let mut log_domain_states: u64 = 0;
    let mut sweep_groups: u64 = 0;
    tri.clear();
    tri.resize(triangle_len(x_max), 0.0);
    if let Some(fit) = &far {
        // 4 cells per Clenshaw call ([`FarFit::eval4`]); the tail of each
        // triangle row falls back to the scalar `eval`, whose per-element
        // operations the lane version reproduces exactly.
        const LANES: usize = ckpt_math::simd::LANES;
        let mut i = 0usize;
        for a in 0..=x_max {
            let au = a as f64 * u;
            let len = (a + 2).min(m_cap + 1);
            let mut m = 0usize;
            while m + LANES <= len {
                let t = ckpt_math::simd::F64x4([
                    au + m as f64 * checkpoint,
                    au + (m + 1) as f64 * checkpoint,
                    au + (m + 2) as f64 * checkpoint,
                    au + (m + 3) as f64 * checkpoint,
                ]);
                fit.eval4(t).write_to(&mut tri[i..]);
                m += LANES;
                i += LANES;
            }
            while m < len {
                tri[i] = fit.eval(au + m as f64 * checkpoint);
                m += 1;
                i += 1;
            }
        }
    }
    match rows {
        Some(rows) => {
            // Fused lane-width groups: one read-modify-write sweep of the
            // triangle covers up to LANES cached rows through the
            // explicit `f64x4` kernel. Per element the additions happen
            // in row-index order — the same order as sequential
            // single-row passes, so grouping is bit-invariant — but the
            // triangle's memory traffic drops by the group width, which
            // is what bounds this loop (rows and triangle far exceed L2).
            const LANES: usize = ckpt_math::simd::LANES;
            let mut k = 0usize;
            while k < near.len() {
                let g = (near.len() - k).min(LANES);
                let mut held: [Option<Arc<[f64]>>; LANES] = [const { None }; LANES];
                for (slot, h) in held.iter_mut().enumerate().take(g) {
                    *h = Some(rows(near[k + slot].0));
                }
                let mut group: [(&[f64], f64); LANES] = [(&[], 0.0); LANES];
                for (slot, entry) in group.iter_mut().enumerate().take(g) {
                    let row: &[f64] = held[slot].as_deref().unwrap_or(&[]);
                    debug_assert_eq!(row.len(), tri.len(), "row/triangle shape mismatch");
                    *entry = (row, near[k + slot].2);
                }
                ckpt_math::simd::accumulate_scaled_rows(tri, &group[..g]);
                sweep_groups += 1;
                k += g;
            }
        }
        None => {
            // Inline build: materialise each near row with the same
            // batched evaluation the cached path uses (same query times,
            // same family batch kernel), then accumulate through the same
            // sweep kernel — so supplying cached rows or none produces
            // identical bits.
            for &(_, tau, c) in &near {
                fill_triangle_times(ts, tau, x_max, u, checkpoint);
                row.resize(ts.len(), 0.0);
                dist.log_survival_batch(ts, row);
                ckpt_math::simd::accumulate_scaled_rows(tri, &[(row, c)]);
                sweep_groups += 1;
            }
        }
    }
    // `G` stays in the packed triangle (`gg` below indexes it directly);
    // only the exponentials get the m-major layout the DP scans. Cells
    // outside the triangle are never read, so stale scratch is harmless.
    //
    // The exponentials are taken relative to `G(0, 0) = tri[0]`, the
    // triangle's maximum (`ln S` is non-increasing and counts are
    // positive): `E = exp(G − G(0,0))`. The DP only ever consumes ratios
    // `E(a', m')/E(a, m)` — one transposed-row read over one division —
    // so the common factor cancels, while the offset keeps `E` in
    // (0, 1] even when `exp(G)` itself underflows. Massively-parallel
    // platforms (p ≈ 4096 LANL cells: G ≈ −8000 nats) previously
    // underflowed *every* state into the scalar log-domain fallback;
    // with the offset they ride the hull path. The fallback remains for
    // windows whose G drops more than ~745 nats below G(0,0).
    let g_off = if tri[0].is_finite() { tri[0] } else { 0.0 };
    egrid.resize((m_top + 1) * (x_max + 1), 0.0);
    etri.resize(tri.len(), 0.0);
    ckpt_math::simd::exp_shifted(tri, g_off, etri);
    {
        let mut i = 0usize;
        for a in 0..=x_max {
            for m in 0..=(a + 1).min(m_cap) {
                egrid[m * (x_max + 1) + a] = etri[i];
                i += 1;
            }
        }
    }
    // Packed-triangle row `a` starts at [`tri_row_start`].
    let gg = |a: usize, m: usize| {
        debug_assert!(m <= (a + 1).min(m_cap), "G({a}, {m}) outside the filled triangle");
        tri[tri_row_start(a, m_cap) + m]
    };
    let ee = |a: usize, m: usize| {
        debug_assert!(m <= (a + 1).min(m_cap), "E({a}, {m}) outside the filled triangle");
        egrid[m * (x_max + 1) + a]
    };

    // value[x][n] for n ≤ x_max − x (each chunk consumes ≥ 1 quantum).
    //
    // The transition value is `exp(G(a+i, n+1) − G(a, n)) · (i·u + succ)`.
    // The denominator `exp(G(a, n))` is constant across the inner loop, so
    // the argmax equals that of `T(i) = E(a+i, n+1)·(i·u + succ)` — no
    // exponentials inside the loop, one division per state; the common
    // `exp(−G(0,0))` offset factor in `E` cancels in the division. When
    // `E(a, n)` still underflows (the state's G more than ~745 nats
    // below G(0,0)) the ratio form stays meaningful, so a log-domain
    // fallback loop handles those states exactly from the unoffset
    // triangle.
    // `value`/`choice` are n-major (`[n][x]`) for the same contiguity
    // reason: the hull below reads `value[n+1][j]` with ascending `j`.
    //
    // Inner maximisation via the monotone convex-hull trick: substituting
    // `j = x − i` (quanta left after the chunk) the transition value is
    //
    //   E(x_max−j, n+1)·((x−j)·u + V(j, n+1)) = Q(j) + R(j)·z,
    //   R(j) = E(x_max−j, n+1),  Q(j) = R(j)·(V(j, n+1) − j·u),  z = x·u.
    //
    // Within a column `n` the lines depend only on column n+1 and slopes
    // `R(j)` increase with `j` (an older platform survives less), so an
    // incremental upper hull answers every state cheaply — the DP drops
    // from O(x_max³) to ~O(x_max²). Ties prefer the earlier hull line
    // (smaller `j` = bigger chunk), matching the direct loop's
    // tie-to-larger-`i` rule.
    let stride = x_max + 1;
    // Chunk depths `n ≥ n_cap` are truncated: the deepest computed
    // column reads `V(·, n_cap) = 0`, which the zeroed resize provides.
    let n_cap = x_max.min(m_cap);
    // Column 0 of every row is the V(0, ·) = 0 base case and the row at
    // `n_cap` is read before any write reaches it, so the whole buffer
    // is re-zeroed on reuse. `choice` is only ever read at states the
    // backward pass wrote this solve, so its stale contents don't
    // matter.
    value.clear();
    value.resize((n_cap + 1) * stride, 0.0);
    choice.resize((n_cap + 1) * stride, 0);
    // (slope, intercept, j) lines of the current column's hull.
    hull.clear();
    for n in (0..n_cap).rev() {
        let x_hi = x_max - n;
        let erow = &egrid[(n + 1) * stride..(n + 2) * stride];
        // Rows n (written) and n+1 (read) are disjoint.
        let (vcur, vnext) = value.split_at_mut((n + 1) * stride);
        let vrow = &vnext[..stride];
        hull.clear();
        // Within a column the query point `z = x·u` increases with `x`
        // and hull slopes increase with insertion order, so the winning
        // line's index never moves left: a pointer that only advances
        // (clamped when pops shorten the hull) lands on the same earliest
        // peak the binary search found, in amortised O(1).
        let mut best = 0usize;
        for x in 1..=x_hi {
            // Line j = x − 1 becomes a valid transition target at this x.
            let j = x - 1;
            let r = erow[x_max - j];
            let q = r * (vrow[j] - j as f64 * u);
            // Equal slopes: keep the better intercept; ties keep the
            // earlier (smaller-j) line.
            let mut push = true;
            if let Some(&(tr, tq, _)) = hull.last() {
                if r == tr {
                    if q > tq {
                        hull.pop();
                    } else {
                        push = false;
                    }
                }
            }
            if push {
                hull_lines += 1;
                // Pop lines that never win once the new one exists: with
                // A below B on the stack and C new, B is useless when C
                // overtakes B no later than B overtakes A.
                while hull.len() >= 2 {
                    let (ar, aq, _) = hull[hull.len() - 2];
                    let (br, bq, _) = hull[hull.len() - 1];
                    // z_BC ≤ z_AB ⟺ (bq − q)(br − ar) ≤ (aq − bq)(r − br)
                    if (bq - q) * (br - ar) <= (aq - bq) * (r - br) {
                        hull.pop();
                    } else {
                        break;
                    }
                }
                hull.push((r, q, j as u32));
            }
            let z = x as f64 * u;
            let a = x_max - x;
            let e_base = ee(a, n);
            if e_base > 0.0 {
                // Hull values at fixed `z` rise to a single peak and then
                // fall (consecutive differences change sign once); strict
                // `>` lands on the earliest peak line on exact ties.
                if best >= hull.len() {
                    best = hull.len() - 1;
                }
                while best + 1 < hull.len() {
                    let (r0, q0, _) = hull[best];
                    let (r1, q1, _) = hull[best + 1];
                    if q1 + r1 * z > q0 + r0 * z {
                        best += 1;
                        hull_advances += 1;
                    } else {
                        break;
                    }
                }
                let (r0, q0, j0) = hull[best];
                vcur[n * stride + x] = (q0 + r0 * z) / e_base;
                choice[n * stride + x] = x as u32 - j0;
            } else {
                // exp(G(a, n) − G(0,0)) underflowed (state survival more
                // than ~745 nats below the window's start): fall back to
                // the exact log-domain ratio form on the unoffset G.
                log_domain_states += 1;
                let base = gg(a, n);
                let mut best = f64::NEG_INFINITY;
                let mut best_i = x as u32;
                for i in 1..=x {
                    // ln Psuc of executing i quanta + checkpoint.
                    let lp = gg(a + i, n + 1) - base;
                    let succ = if x - i >= 1 { vrow[x - i] } else { 0.0 };
                    let cur = lp.exp() * (i as f64 * u + succ); // lint: allow(naked-transcendental-in-hot-path) — audited log→linear conversion of an exact G row
                    // `>=` so ties (all-zero survival) prefer big chunks.
                    if cur >= best {
                        best = cur;
                        best_i = i as u32;
                    }
                }
                vcur[n * stride + x] = best;
                choice[n * stride + x] = best_i;
            }
        }
    }

    // Walk the optimal schedule from (x_max, 0).
    let mut chunks = Vec::new();
    let mut x = x_max;
    let mut n = 0usize;
    let mut cap_flushes: u64 = 0;
    while x > 0 {
        if n >= n_cap {
            // Past the truncated value recursion (no plan on our cells
            // gets here — the cap keeps ≥1.5× headroom over measured
            // depths): flush the remainder as one final chunk.
            cap_flushes += 1;
            chunks.push(x as f64 * u);
            break;
        }
        let i = choice[n * stride + x] as usize;
        chunks.push(i as f64 * u);
        x -= i;
        n += 1;
    }
    if ckpt_obs::active() {
        ckpt_obs::counter_add("dp.solves", 1);
        ckpt_obs::counter_add("dp.near_row_sweeps", near.len() as u64);
        ckpt_obs::counter_add("dp.sweep_groups", sweep_groups);
        ckpt_obs::counter_add("dp.far_fits", u64::from(far.is_some()));
        ckpt_obs::counter_add("dp.hull_lines", hull_lines);
        ckpt_obs::counter_add("dp.hull_advances", hull_advances);
        ckpt_obs::counter_add("dp.log_domain_states", log_domain_states);
        ckpt_obs::counter_add("dp.plan_cap_flushes", cap_flushes);
        ckpt_obs::counter_add("dp.scratch_reuses", u64::from(scratch_reused));
        ckpt_obs::histogram_record("dp.x_max", x_max as f64);
        ckpt_obs::histogram_record("dp.plan_chunks", chunks.len() as f64);
    }
    chunks
    })
}

/// Reusable backing storage for [`solve_with_rows`]. One solve touches a
/// few MB of triangle/grid/DP-table scratch; allocating (and kernel-
/// zeroing) that per solve dominated the solve's own arithmetic, so each
/// thread keeps one set of buffers warm across solves.
#[derive(Default)]
struct SolveScratch {
    tri: Vec<f64>,
    /// `exp(tri − G(0,0))` in packed triangle order, before the m-major
    /// scatter.
    etri: Vec<f64>,
    /// Triangle query times of the inline (row-less) build.
    ts: Vec<f64>,
    /// One materialised log-survival row of the inline build.
    row: Vec<f64>,
    egrid: Vec<f64>,
    value: Vec<f64>,
    choice: Vec<u32>,
    hull: Vec<(f64, f64, u32)>,
}

thread_local! {
    static SOLVE_SCRATCH: std::cell::RefCell<SolveScratch> =
        std::cell::RefCell::new(SolveScratch::default());
}

/// The expected work completed by a given schedule (Proposition 3's
/// objective) — exposed for tests and the ablation benches.
pub fn expected_work_of_schedule(
    dist: &dyn FailureDistribution,
    ages: &[(f64, f64)],
    schedule: &[f64],
    checkpoint: f64,
) -> f64 {
    let mut elapsed = 0.0;
    let mut total = 0.0;
    let g = |t: f64| -> f64 {
        ages.iter().map(|&(tau, c)| c * dist.log_survival(tau + t)).sum::<f64>()
    };
    let g0 = g(0.0);
    for &w in schedule {
        elapsed += w + checkpoint;
        let log_p = g(elapsed) - g0;
        total += w * log_p.exp(); // lint: allow(naked-transcendental-in-hot-path) — audited log→linear conversion of an exact G row
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dist::{Exponential, Weibull};

    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.25 * DAY;

    fn small_config(quanta: usize) -> DpNextFailureConfig {
        DpNextFailureConfig { quanta: Some(quanta), ..Default::default() }
    }

    #[test]
    fn auto_quanta_scales_with_mtbf_over_checkpoint() {
        assert!(auto_quanta(600.0, 3_600.0) < auto_quanta(600.0, 7.0 * 86_400.0));
        // Clamped to the [40, 700] band.
        assert_eq!(auto_quanta(600.0, 1.0), 40);
        assert_eq!(auto_quanta(1.0, 1e12), 256);
    }

    #[test]
    fn plan_cache_hits_identical_states() {
        let spec = JobSpec::table1_single_processor();
        let dp = DpNextFailure::new(
            &spec,
            Box::new(Weibull::from_mtbf(0.7, DAY)),
            DAY,
            small_config(50),
        );
        let ages = AgeView::single(660.0);
        let a = dp.plan(spec.work, &ages);
        let b = dp.plan(spec.work, &ages);
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_covers_truncated_work() {
        let spec = JobSpec::table1_single_processor();
        let dp = DpNextFailure::new(
            &spec,
            Box::new(Exponential::from_mtbf(DAY)),
            DAY,
            DpNextFailureConfig { use_half_schedule: false, ..small_config(60) },
        );
        let ages = AgeView::single(0.0);
        let plan = dp.plan(spec.work, &ages);
        let total: f64 = plan.iter().sum();
        let expect = (2.0 * DAY).min(spec.work);
        assert!((total - expect).abs() < 1e-6, "planned {total}, expected {expect}");
    }

    #[test]
    fn half_schedule_keeps_half_when_truncated() {
        let spec = JobSpec::table1_single_processor();
        let full = DpNextFailure::new(
            &spec,
            Box::new(Exponential::from_mtbf(DAY)),
            DAY,
            DpNextFailureConfig { use_half_schedule: false, ..small_config(60) },
        );
        let half = DpNextFailure::new(
            &spec,
            Box::new(Exponential::from_mtbf(DAY)),
            DAY,
            small_config(60),
        );
        let ages = AgeView::single(0.0);
        let f = full.plan(spec.work, &ages);
        let h = half.plan(spec.work, &ages);
        assert_eq!(h.len(), f.len().div_ceil(2));
        assert_eq!(&f[..h.len()], &h[..]);
    }

    #[test]
    fn exponential_chunks_near_optexp_period() {
        // For Exponential failures the retained (half-schedule) chunks sit
        // near the Theorem-1 period. (The full NextFailure schedule tapers
        // towards the window end — locking in small wins costs nothing in
        // that objective — which is exactly why the paper discards the
        // second half, §3.3.)
        let spec = JobSpec::table1_single_processor();
        let mtbf = DAY;
        let dp = DpNextFailure::new(
            &spec,
            Box::new(Exponential::from_mtbf(mtbf)),
            mtbf,
            small_config(120),
        );
        let ages = AgeView::single(0.0);
        let plan = dp.plan(spec.work, &ages);
        let opt = crate::OptExp::new(&spec, 1.0 / mtbf).period();
        for &c in plan.iter() {
            assert!(
                (0.5 * opt..2.0 * opt).contains(&c),
                "chunk {c} far from OptExp period {opt}"
            );
        }
    }

    #[test]
    fn full_schedule_tapers_half_schedule_does_not() {
        let spec = JobSpec::table1_single_processor();
        let mtbf = DAY;
        let mk = |half: bool| {
            let dp = DpNextFailure::new(
                &spec,
                Box::new(Exponential::from_mtbf(mtbf)),
                mtbf,
                DpNextFailureConfig { use_half_schedule: half, ..small_config(120) },
            );
            dp.plan(spec.work, &AgeView::single(0.0))
        };
        let full = mk(false);
        let half = mk(true);
        // The discarded tail contains the smallest chunks.
        let min_full = full.iter().copied().fold(f64::INFINITY, f64::min);
        let min_half = half.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min_half > min_full, "half {min_half} vs full {min_full}");
    }

    #[test]
    fn weibull_young_platform_schedules_growing_chunks() {
        // Fresh platform, k < 1: hazard decays, so later chunks can be
        // longer — §5.2.2 reports DPNextFailure growing its intervals.
        let spec = JobSpec::table1_petascale(45_208);
        let proc = Weibull::from_mtbf(0.7, 125.0 * YEAR);
        let dp = DpNextFailure::new(
            &spec,
            Box::new(proc),
            125.0 * YEAR,
            DpNextFailureConfig { use_half_schedule: false, ..small_config(120) },
        );
        let ages = AgeView::all_pristine(45_208, 60.0);
        let plan = dp.plan(spec.work, &ages);
        assert!(plan.len() >= 3, "plan too short: {plan:?}");
        let first = plan[0];
        let last = plan[plan.len() - 2];
        assert!(last >= first, "chunks should not shrink: {first} → {last}");
    }

    #[test]
    fn dp_beats_fixed_period_on_objective() {
        // The DP schedule's expected-work must dominate any equal-chunk
        // schedule of the same total (it is optimal up to quantisation).
        let spec = JobSpec::table1_single_processor();
        let mtbf = 6.0 * 3_600.0;
        let dist = Weibull::from_mtbf(0.7, mtbf);
        let dp = DpNextFailure::new(
            &spec,
            Box::new(dist),
            mtbf,
            DpNextFailureConfig { use_half_schedule: false, ..small_config(100) },
        );
        let ages = AgeView::single(0.0);
        let plan = dp.plan(spec.work, &ages);
        let total: f64 = plan.iter().sum();
        let aged = compress_ages(&ages, &dist, StateCompression::Exact);
        let dp_value = expected_work_of_schedule(&dist, &aged, &plan, spec.checkpoint);
        for k in [2usize, 5, 10, 20, 50] {
            let uniform: Vec<f64> = vec![total / k as f64; k];
            let v = expected_work_of_schedule(&dist, &aged, &uniform, spec.checkpoint);
            assert!(
                dp_value >= v - 1e-9 * dp_value.abs().max(1.0),
                "uniform K={k} schedule beats DP: {v} > {dp_value}"
            );
        }
    }

    #[test]
    fn session_replans_after_failure() {
        let spec = JobSpec::table1_single_processor();
        let dp = DpNextFailure::new(
            &spec,
            Box::new(Weibull::from_mtbf(0.7, DAY)),
            DAY,
            small_config(40),
        );
        let mut s = dp.session();
        let fresh = AgeView::single(0.0);
        let c1 = s.next_chunk(spec.work, &fresh, 0.0);
        assert!(c1 > 0.0);
        s.on_failure();
        // After a failure the age is small again; a fresh plan is made
        // (exercise the path; exact equality is not required).
        let after = AgeView::single(spec.recovery);
        let c2 = s.next_chunk(spec.work - c1, &after, 5_000.0);
        assert!(c2 > 0.0);
    }

    #[test]
    fn compression_exact_round_trips_ageview() {
        let dist = Weibull::from_mtbf(0.7, 1000.0);
        let view = AgeView::new(vec![(5.0, 2), (80.0, 1)], 7, 500.0);
        let c = compress_ages(&view, &dist, StateCompression::Exact);
        let total: f64 = c.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 10.0);
        assert_eq!(c[0], (5.0, 2.0));
        assert_eq!(c.last().copied(), Some((500.0, 7.0)));
    }

    #[test]
    fn compression_keeps_smallest_exact() {
        let dist = Weibull::from_mtbf(0.7, 1000.0);
        let failed: Vec<(f64, u32)> = (0..50).map(|i| (10.0 + i as f64 * 7.0, 1)).collect();
        let view = AgeView::new(failed, 1000, 5_000.0);
        let c = compress_ages(
            &view,
            &dist,
            StateCompression::Approximate { n_exact: 10, n_approx: 20 },
        );
        // The ten smallest ages survive exactly.
        for i in 0..10 {
            assert!(c.iter().any(|&(a, _)| (a - (10.0 + i as f64 * 7.0)).abs() < 1e-9));
        }
        // Total processor count is conserved.
        let total: f64 = c.iter().map(|&(_, n)| n).sum();
        assert!((total - 1050.0).abs() < 1e-9);
        // And the state is genuinely compressed.
        assert!(c.len() <= 10 + 20);
    }

    #[test]
    fn compression_error_is_small_paper_claim() {
        // §3.3: worst relative error of the approximated success
        // probability below 0.2 % for chunks up to the platform MTBF.
        let proc_mtbf = 125.0 * YEAR;
        let dist = Weibull::from_mtbf(0.7, proc_mtbf);
        let p = 45_208u64;
        // A plausible mid-execution state: 40 failed processors.
        let failed: Vec<(f64, u32)> =
            (0..40).map(|i| ((i as f64 + 1.0) * 20_000.0, 1)).collect();
        let view = AgeView::new(failed, p - 40, 2.0 * YEAR);
        let exact = compress_ages(&view, &dist, StateCompression::Exact);
        let approx = compress_ages(&view, &dist, StateCompression::paper());
        let platform_mtbf = proc_mtbf / p as f64;
        for i in 0..=6u32 {
            let x = platform_mtbf / f64::from(1u32 << i);
            let lp = |ages: &[(f64, f64)]| -> f64 {
                ages.iter()
                    .map(|&(tau, c)| {
                        c * (dist.log_survival(tau + x) - dist.log_survival(tau))
                    })
                    .sum()
            };
            let pe = lp(&exact).exp();
            let pa = lp(&approx).exp();
            let rel = (pa - pe).abs() / pe;
            assert!(rel < 2e-3, "chunk MTBF/2^{i}: rel error {rel}");
        }
    }

    /// Direct O(x_max³) log-domain reference of the DP recurrence, kept
    /// deliberately naive: no grid transposition, no hull trick, no
    /// far-age interpolant.
    fn solve_reference(
        dist: &dyn FailureDistribution,
        ages: &[(f64, f64)],
        x_max: usize,
        u: f64,
        checkpoint: f64,
    ) -> Vec<f64> {
        let g = |a: usize, m: usize| -> f64 {
            let t = a as f64 * u + m as f64 * checkpoint;
            ages.iter().map(|&(tau, c)| c * dist.log_survival(tau + t)).sum()
        };
        let stride = x_max + 1;
        let mut value = vec![0.0f64; stride * stride];
        let mut choice = vec![0u32; stride * stride];
        for x in 1..=x_max {
            for n in 0..=(x_max - x) {
                let a = x_max - x;
                let base = g(a, n);
                let mut best = f64::NEG_INFINITY;
                let mut best_i = x as u32;
                for i in 1..=x {
                    let lp = g(a + i, n + 1) - base;
                    let succ = if x - i >= 1 { value[(x - i) * stride + n + 1] } else { 0.0 };
                    let cur = lp.exp() * (i as f64 * u + succ);
                    if cur >= best {
                        best = cur;
                        best_i = i as u32;
                    }
                }
                value[x * stride + n] = best;
                choice[x * stride + n] = best_i;
            }
        }
        let mut chunks = Vec::new();
        let (mut x, mut n) = (x_max, 0usize);
        while x > 0 {
            let i = choice[x * stride + n] as usize;
            chunks.push(i as f64 * u);
            x -= i;
            n += 1;
        }
        chunks
    }

    #[test]
    fn hull_solver_matches_direct_reference() {
        // The optimised solver (hull trick + far-age interpolant +
        // transposed grids) must produce schedules of the same objective
        // value as the naive recurrence, across shapes and age states.
        for &shape in &[0.5, 0.7, 1.0, 1.3] {
            for &mtbf in &[20_000.0, 200_000.0] {
                let dist = Weibull::from_mtbf(shape, mtbf);
                let age_sets: Vec<Vec<(f64, f64)>> = vec![
                    vec![(0.0, 1.0)],
                    vec![(500.0, 2.0), (90_000.0, 5.0)],
                    // Mix of near and far ages relative to the window.
                    vec![(100.0, 1.0), (5.0e6, 30.0), (9.0e7, 100.0)],
                ];
                for ages in &age_sets {
                    for &x_max in &[12usize, 25, 40] {
                        let u = 40_000.0 / x_max as f64;
                        let fast = solve(&dist, ages, x_max, u, 600.0);
                        let slow = solve_reference(&dist, ages, x_max, u, 600.0);
                        let vf = expected_work_of_schedule(&dist, ages, &fast, 600.0);
                        let vs = expected_work_of_schedule(&dist, ages, &slow, 600.0);
                        assert!(
                            (vf - vs).abs() <= 1e-9 * vs.abs().max(1.0),
                            "shape {shape} mtbf {mtbf} x_max {x_max} ages {ages:?}: \
                             fast {vf} vs reference {vs}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn expected_work_monotone_in_success() {
        // Sanity of the objective helper: a schedule with zero checkpoint
        // cost completes more expected work than with a large one.
        let dist = Exponential::from_mtbf(1000.0);
        let ages = [(0.0, 1.0)];
        let sched = [100.0, 100.0, 100.0];
        let cheap = expected_work_of_schedule(&dist, &ages, &sched, 0.0);
        let costly = expected_work_of_schedule(&dist, &ages, &sched, 300.0);
        assert!(cheap > costly);
    }
}
