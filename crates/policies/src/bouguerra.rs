//! Bouguerra et al. 2010 — optimal periodic policy **under the
//! all-processor-rejuvenation assumption** (§4.1's `Bouguerra`).
//!
//! Bouguerra et al. prove that with constant checkpoint/recovery overheads
//! and Exponential *or* Weibull failures the optimal policy is periodic,
//! and give formulas for the period — but, as §7 of our reference paper
//! points out, "their results rely on the unstated assumption that all
//! processors are rejuvenated after each failure and after each
//! checkpoint". Under that assumption every attempt starts from platform
//! age 0 and platform failures are iid minima of `p` processor lifetimes:
//! for Weibull(λ, k) processors that is Weibull(λ/p^{1/k}, k).
//!
//! We implement the policy as the period `ω` maximising the steady-state
//! efficiency of the induced renewal process (each attempt statistically
//! independent and age-zero by the rejuvenation assumption):
//!
//! ```text
//! eff(ω) = ω · s(ω) / E[cycle(ω)],
//! E[cycle] = (ω + C)·s(ω) + (1 − s(ω))·(E[Tlost(ω+C|0)] + D + R),
//! s(ω) = S_platform(ω + C | age 0).
//! ```
//!
//! For `k = 1` this recovers (essentially) the OptExp period; for `k < 1`
//! the rejuvenated platform's minimum-of-`p` survival is catastrophically
//! pessimistic (`p^{1/k} ≫ p`), which is exactly why the real policy
//! underperforms at scale (Figure 4, Figure 5) — the behaviour this
//! implementation reproduces.

use crate::periodic::FixedPeriod;
use crate::{Policy, PolicySession};
use ckpt_dist::FailureDistribution;
use ckpt_workload::JobSpec;

/// Bouguerra's periodic policy.
#[derive(Debug, Clone)]
pub struct Bouguerra {
    policy: FixedPeriod,
}

impl Bouguerra {
    /// Build from the job spec and the **rejuvenated-platform** failure
    /// distribution (minimum over the enrolled processors, age zero at
    /// every attempt). For Weibull processors pass
    /// `weibull.min_of(spec.procs)`.
    pub fn new(spec: &JobSpec, platform_dist: &dyn FailureDistribution) -> Self {
        let period = optimal_period(spec, platform_dist);
        Self { policy: FixedPeriod::new("Bouguerra", period) }
    }

    /// The computed period, seconds of work.
    pub fn period(&self) -> f64 {
        self.policy.period()
    }
}

impl Policy for Bouguerra {
    fn name(&self) -> &str {
        "Bouguerra"
    }

    fn session(&self) -> Box<dyn PolicySession + '_> {
        self.policy.session()
    }
}

/// Steady-state efficiency of period `ω` under the rejuvenation assumption.
fn efficiency(spec: &JobSpec, dist: &dyn FailureDistribution, omega: f64) -> f64 {
    let attempt = omega + spec.checkpoint;
    let s = dist.survival(attempt);
    let lost = dist.expected_loss(attempt, 0.0);
    let cycle = attempt * s + (1.0 - s) * (lost + spec.downtime + spec.recovery);
    if cycle <= 0.0 {
        return 0.0;
    }
    omega * s / cycle
}

/// Golden-section maximisation of the (unimodal in practice) efficiency
/// over `ω ∈ [C, W]`, refined from a coarse log-spaced scan so that flat
/// or multi-modal shapes (small k) still land on the global optimum.
fn optimal_period(spec: &JobSpec, dist: &dyn FailureDistribution) -> f64 {
    let lo = spec.checkpoint.max(1.0);
    let hi = spec.work.max(lo * (1.0 + 1e-9));
    // Coarse scan.
    let n = 256;
    let (mut best_x, mut best_v) = (lo, f64::NEG_INFINITY);
    for i in 0..=n {
        let x = lo * (hi / lo).powf(i as f64 / n as f64);
        let v = efficiency(spec, dist, x);
        if v > best_v {
            best_v = v;
            best_x = x;
        }
    }
    // Golden-section refinement around the scan winner.
    let gr = (5f64.sqrt() - 1.0) / 2.0;
    let mut a = (best_x / (hi / lo).powf(1.0 / n as f64)).max(lo);
    let mut b = (best_x * (hi / lo).powf(1.0 / n as f64)).min(hi);
    for _ in 0..80 {
        let c = b - gr * (b - a);
        let d = a + gr * (b - a);
        if efficiency(spec, dist, c) < efficiency(spec, dist, d) {
            a = c;
        } else {
            b = d;
        }
    }
    0.5 * (a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_dist::{Exponential, Weibull};

    const DAY: f64 = 86_400.0;
    const YEAR: f64 = 365.25 * DAY;

    #[test]
    fn exponential_period_close_to_optexp() {
        let spec = JobSpec::table1_single_processor();
        let d = Exponential::from_mtbf(DAY);
        let b = Bouguerra::new(&spec, &d);
        let opt = crate::OptExp::new(&spec, 1.0 / DAY);
        let rel = (b.period() - opt.period()).abs() / opt.period();
        assert!(rel < 0.25, "Bouguerra {} vs OptExp {}", b.period(), opt.period());
    }

    #[test]
    fn rejuvenation_assumption_shrinks_period_for_weibull() {
        // With k = 0.7 at Petascale, the rejuvenated platform distribution
        // has a far smaller MTBF than the real (failed-only) platform, so
        // Bouguerra checkpoints much more often than OptExp/Young.
        let spec = JobSpec::table1_petascale(45_208);
        let proc = Weibull::from_mtbf(0.7, 125.0 * YEAR);
        let plat = proc.min_of(45_208);
        let b = Bouguerra::new(&spec, &plat);
        let young = crate::young(&spec, 125.0 * YEAR);
        assert!(
            b.period() < 0.7 * young.period(),
            "Bouguerra {} should be well below Young {}",
            b.period(),
            young.period()
        );
    }

    #[test]
    fn harm_grows_as_shape_shrinks() {
        // Figure 5's mechanism: smaller k → smaller rejuvenated platform
        // MTBF → shorter Bouguerra period relative to the true optimum.
        let spec = JobSpec::table1_petascale(45_208);
        let ratio = |k: f64| {
            let plat = Weibull::from_mtbf(k, 125.0 * YEAR).min_of(45_208);
            Bouguerra::new(&spec, &plat).period()
        };
        let p07 = ratio(0.7);
        let p05 = ratio(0.5);
        assert!(p05 < p07, "k=0.5 period {p05} should be below k=0.7 {p07}");
    }

    #[test]
    fn efficiency_is_zero_at_degenerate_period() {
        let spec = JobSpec::table1_single_processor();
        let d = Exponential::from_mtbf(DAY);
        // ω → 0: efficiency → 0 (all checkpoint, no work).
        assert!(efficiency(&spec, &d, 1e-9) < 1e-6);
    }

    #[test]
    fn period_within_bounds() {
        let spec = JobSpec::table1_single_processor();
        let d = Weibull::from_mtbf(0.7, 3_600.0);
        let b = Bouguerra::new(&spec, &d);
        assert!(b.period() >= spec.checkpoint);
        assert!(b.period() <= spec.work);
    }
}
