//! Property-based tests over the policy implementations.

use ckpt_platform::AgeView;
use ckpt_policies::{
    daly_high, daly_low, young, Bouguerra, DpMakespan, DpMakespanConfig, DpNextFailure,
    DpNextFailureConfig, FixedPeriod, Liu, OptExp, Policy, StateCompression,
};
use ckpt_dist::{Exponential, Weibull};
use ckpt_workload::JobSpec;
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = JobSpec> {
    (
        10_000.0..5_000_000.0f64,
        10.0..2_000.0f64,
        10.0..2_000.0f64,
        0.0..200.0f64,
    )
        .prop_map(|(w, c, r, d)| JobSpec::sequential(w, c, r, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn periodic_sessions_stay_in_bounds(
        spec in spec_strategy(),
        period in 1.0..1e6f64,
        remaining in 1.0..5e6f64,
    ) {
        let _ = &spec;
        let p = FixedPeriod::new("p", period);
        let mut s = p.session();
        let chunk = s.next_chunk(remaining, &AgeView::single(0.0), 0.0);
        prop_assert!(chunk > 0.0 && chunk <= remaining);
    }

    #[test]
    fn young_daly_ordering(spec in spec_strategy(), mtbf in 1_000.0..1e9f64) {
        // DalyLow's period strictly exceeds Young's (it adds D + R under
        // the square root).
        let y = young(&spec, mtbf).period();
        let dl = daly_low(&spec, mtbf).period();
        prop_assert!(dl > y);
        // DalyHigh stays within sane bounds of Young.
        let dh = daly_high(&spec, mtbf).period();
        prop_assert!(dh > 0.0 && dh < 4.0 * y + mtbf);
    }

    #[test]
    fn optexp_chunks_tile_the_work(spec in spec_strategy(), mtbf in 1_000.0..1e8f64) {
        let opt = OptExp::from_mtbf(&spec, mtbf);
        let k = opt.chunk_count();
        prop_assert!(k >= 1);
        prop_assert!((opt.period() * k as f64 - spec.work).abs() < 1e-6 * spec.work);
    }

    #[test]
    fn optexp_more_failures_shorter_period(spec in spec_strategy()) {
        let fast = OptExp::from_mtbf(&spec, 3_600.0).period();
        let slow = OptExp::from_mtbf(&spec, 3_600_000.0).period();
        prop_assert!(fast <= slow + 1e-9);
    }

    #[test]
    fn bouguerra_period_in_bounds(
        spec in spec_strategy(),
        mtbf in 1_000.0..1e7f64,
        shape in 0.3..1.5f64,
    ) {
        let plat = Weibull::from_mtbf(shape, mtbf);
        let b = Bouguerra::new(&spec, &plat);
        prop_assert!(b.period() >= spec.checkpoint.max(1.0) * 0.99);
        prop_assert!(b.period() <= spec.work * 1.01);
    }

    #[test]
    fn liu_valid_schedules_respect_constraints(
        spec in spec_strategy(),
        mtbf in 10_000.0..1e8f64,
        shape in 0.5..1.2f64,
    ) {
        let plat = Weibull::from_mtbf(shape, mtbf);
        match Liu::new(&spec, &plat) {
            Ok(liu) => {
                let total: f64 = liu.intervals().iter().sum();
                prop_assert!(total >= spec.work);
                for &iv in liu.intervals() {
                    prop_assert!(iv >= spec.checkpoint);
                }
            }
            Err(msg) => prop_assert!(!msg.is_empty()),
        }
    }

    #[test]
    fn dp_makespan_chunk_within_remaining(
        remaining_frac in 0.05..1.0f64,
        tau in 0.0..1e6f64,
    ) {
        let spec = JobSpec::sequential(500_000.0, 300.0, 300.0, 30.0);
        let dp = DpMakespan::new(
            &spec,
            Box::new(Weibull::from_mtbf(0.7, 50_000.0)),
            DpMakespanConfig { quanta: Some(25), assume_memoryless: false },
        );
        let remaining = spec.work * remaining_frac;
        let chunk = dp.chunk_for(remaining, tau);
        prop_assert!(chunk > 0.0 && chunk <= remaining + 1e-9);
    }

    #[test]
    fn dp_next_failure_monotone_value(
        mtbf in 5_000.0..500_000.0f64,
    ) {
        // More work to schedule can only increase the expected work
        // completed before the next failure.
        let spec = JobSpec::sequential(1_000_000.0, 300.0, 300.0, 30.0);
        let dist = Exponential::from_mtbf(mtbf);
        let dp = DpNextFailure::new(
            &spec,
            Box::new(dist),
            mtbf,
            DpNextFailureConfig {
                quanta: Some(30),
                use_half_schedule: false,
                ..Default::default()
            },
        );
        let ages = AgeView::single(0.0);
        let small = dp.plan(mtbf * 0.5, &ages);
        let large = dp.plan(mtbf * 2.0, &ages);
        let val = |plan: &[f64]| {
            ckpt_policies::dp_next_failure::expected_work_of_schedule(
                &Exponential::from_mtbf(mtbf),
                &[(0.0, 1.0)],
                plan,
                spec.checkpoint,
            )
        };
        prop_assert!(val(&large) >= val(&small) - 1e-9);
    }

    #[test]
    fn compress_ages_invariant_under_permutation(
        raw in proptest::collection::vec((1.0..5e6f64, 1u32..60), 1..40),
        pristine in 0u64..5_000,
        rotate in 0usize..40,
        shape in 0.5..1.2f64,
    ) {
        // The (10, 100) compression must depend only on the age
        // *multiset*, not on how the input pairs are ordered or grouped.
        let dist = Weibull::from_mtbf(shape, 100_000.0);
        let mode = StateCompression::Approximate { n_exact: 10, n_approx: 100 };
        let now = 1e7;
        let view = AgeView::new(raw.clone(), pristine, now);
        let base = ckpt_policies::dp_next_failure::compress_ages(&view, &dist, mode);

        // Same multiset, re-expressed: rotate the pair list and split
        // every multi-processor entry into two pieces.
        let mut alt: Vec<(f64, u32)> = Vec::new();
        let k = rotate % raw.len();
        for &(a, n) in raw[k..].iter().chain(raw[..k].iter()).rev() {
            if n >= 2 {
                alt.push((a, n - 1));
                alt.push((a, 1));
            } else {
                alt.push((a, n));
            }
        }
        let view2 = AgeView::new(alt, pristine, now);
        let other = ckpt_policies::dp_next_failure::compress_ages(&view2, &dist, mode);

        // Compare as canonical (age → total count) maps: grouping may
        // legitimately differ, the weighted multiset may not.
        let canon = |pairs: &[(f64, f64)]| -> Vec<(f64, f64)> {
            let mut merged: Vec<(f64, f64)> = Vec::new();
            for &(a, c) in pairs {
                match merged.last_mut() {
                    Some(last) if last.0 == a => last.1 += c,
                    _ => merged.push((a, c)),
                }
            }
            merged
        };
        let (ca, cb) = (canon(&base), canon(&other));
        prop_assert_eq!(ca.len(), cb.len());
        for (&(a1, c1), &(a2, c2)) in ca.iter().zip(cb.iter()) {
            prop_assert!((a1 - a2).abs() <= 1e-9 * a1.abs().max(1.0), "ages {a1} vs {a2}");
            prop_assert!((c1 - c2).abs() <= 1e-9 * c1.max(1.0), "counts {c1} vs {c2}");
        }
    }
}
