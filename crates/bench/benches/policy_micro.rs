//! Micro-benches of the numerical and algorithmic hot paths.

use ckpt_core::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn lambert_w(c: &mut Criterion) {
    c.bench_function("lambert_w0_theorem1_arg", |b| {
        let z = -(-1e-4f64 - 1.0).exp();
        b.iter(|| std::hint::black_box(ckpt_core::math::lambert_w0(std::hint::black_box(z))))
    });
}

fn optexp_construction(c: &mut Criterion) {
    let spec = JobSpec::table1_petascale(45_208);
    c.bench_function("optexp_period_jaguar", |b| {
        b.iter(|| std::hint::black_box(OptExp::from_mtbf(&spec, 125.0 * YEAR).period()))
    });
}

fn weibull_expected_loss(c: &mut Criterion) {
    let d = Weibull::from_mtbf(0.7, 125.0 * YEAR);
    c.bench_function("weibull_expected_loss_quadrature", |b| {
        b.iter(|| std::hint::black_box(d.expected_loss(3_600.0, 50_000.0)))
    });
}

fn registry_policy_build(c: &mut Criterion) {
    // End-to-end policy instantiation through the experiment registry —
    // the same path the runner and CLI take per scenario.
    let sc = ckpt_bench::bench_scenario_peta_weibull();
    c.bench_function("registry_build_optexp_peta", |b| {
        b.iter(|| std::hint::black_box(ckpt_bench::bench_policy("OptExp", &sc).name().len()))
    });
}

fn dp_next_failure_plan(c: &mut Criterion) {
    let spec = JobSpec::table1_petascale(1 << 12);
    let mtbf = 125.0 * YEAR;
    let dp = DpNextFailure::new(
        &spec,
        Box::new(Weibull::from_mtbf(0.7, mtbf)),
        mtbf,
        DpNextFailureConfig { quanta: Some(120), ..Default::default() },
    );
    c.bench_function("dp_next_failure_plan_120q", |b| {
        b.iter(|| {
            // Vary the age to defeat the plan cache — we measure the solve.
            static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let k = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let ages = AgeView::all_pristine(spec.procs, 60.0 + k as f64 * 4_099.0);
            std::hint::black_box(dp.plan(spec.work, &ages).len())
        })
    });
}

fn dp_next_failure_plan_cache_hit(c: &mut Criterion) {
    // Counterpart of `dp_next_failure_plan_120q`: same solve, but the
    // age snapshot is fixed so every call after the first is served by
    // the shared plan cache. The gap between the two benches is the
    // per-decision saving the shared cache buys inside a trace wave.
    let spec = JobSpec::table1_petascale(1 << 12);
    let mtbf = 125.0 * YEAR;
    let dp = DpNextFailure::new(
        &spec,
        Box::new(Weibull::from_mtbf(0.7, mtbf)),
        mtbf,
        DpNextFailureConfig { quanta: Some(120), ..Default::default() },
    );
    let ages = AgeView::all_pristine(spec.procs, 60.0);
    let _ = dp.plan(spec.work, &ages); // warm the cache
    c.bench_function("dp_next_failure_plan_120q_cache_hit", |b| {
        b.iter(|| std::hint::black_box(dp.plan(spec.work, &ages).len()))
    });
}

fn kernel_table_vs_direct(c: &mut Criterion) {
    // The DP inner loops used to call `Weibull::log_survival` (a powf)
    // per grid point; they now read a precomputed kernel table. Keep both
    // costs visible so regressions in either path show up.
    let d = Weibull::from_mtbf(0.7, 125.0 * YEAR);
    let horizon = 2.0e9;
    let table = KernelTable::build(Box::new(d), horizon, 40_000.0);
    let queries: Vec<f64> = (0..64).map(|i| 1.0e4 + i as f64 * 2.7e7).collect();
    c.bench_function("kernel_table_log_survival_64pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &queries {
                acc += table.log_survival(std::hint::black_box(t));
            }
            std::hint::black_box(acc)
        })
    });
    let d = Weibull::from_mtbf(0.7, 125.0 * YEAR);
    c.bench_function("weibull_log_survival_direct_64pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &t in &queries {
                acc += d.log_survival(std::hint::black_box(t));
            }
            std::hint::black_box(acc)
        })
    });
}

fn cold_row_batched_vs_scalar(c: &mut Criterion) {
    // A cold kernel row is one `log_survival` per grid point. Two ways
    // to fill it: the trait-default scalar loop (glibc `powf` per
    // element — what `Weibull` ships) and the batched ln→exp
    // composition in `ckpt_math::simd::weibull_log_survival`. On the
    // SSE2 baseline the scalar `powf` wins (~14 vs ~20 ns/element),
    // which is why `Weibull` has no `log_survival_batch` override; this
    // pair keeps that trade-off measured so the call can be revisited
    // on wider targets.
    let d = Weibull::from_mtbf(0.7, 125.0 * YEAR);
    let (shape, scale) = (d.shape(), d.scale());
    let ts: Vec<f64> = (0..256).map(|i| 1.0e4 + i as f64 * 2.7e7).collect();
    let mut out = vec![0.0f64; ts.len()];
    c.bench_function("cold_row_scalar_powf_256pts", |b| {
        b.iter(|| {
            d.log_survival_batch(std::hint::black_box(&ts), &mut out);
            std::hint::black_box(out[0])
        })
    });
    c.bench_function("cold_row_batched_ln_exp_256pts", |b| {
        b.iter(|| {
            ckpt_core::math::simd::weibull_log_survival(
                std::hint::black_box(&ts),
                shape,
                scale,
                &mut out,
            );
            std::hint::black_box(out[0])
        })
    });
}

fn dp_makespan_build(c: &mut Criterion) {
    let spec = JobSpec::table1_single_processor();
    c.bench_function("dp_makespan_build_60q_weibull", |b| {
        b.iter(|| {
            let dp = DpMakespan::new(
                &spec,
                Box::new(Weibull::from_mtbf(0.7, DAY)),
                DpMakespanConfig { quanta: Some(60), assume_memoryless: false },
            );
            std::hint::black_box(dp.value(60, 0.0))
        })
    });
}

fn engine_throughput(c: &mut Criterion) {
    let spec = JobSpec::table1_single_processor();
    let dist = Exponential::from_mtbf(6.0 * HOUR);
    let traces = TraceSet::generate(
        &dist,
        1,
        Topology::per_processor(),
        2.0 * YEAR,
        0.0,
        SeedSequence::from_label("micro-engine"),
    );
    let events = traces.platform_events();
    let policy = young(&spec, 6.0 * HOUR);
    c.bench_function("engine_one_trace_seq", |b| {
        b.iter(|| {
            let mut s = policy.session();
            std::hint::black_box(
                simulate(&spec, &mut *s, &events, 1, 0.0, traces.horizon, SimOptions::default())
                    .makespan,
            )
        })
    });
}

fn trace_generation(c: &mut Criterion) {
    let dist = Weibull::from_mtbf(0.7, 125.0 * YEAR);
    c.bench_function("trace_generation_4096_procs", |b| {
        b.iter(|| {
            let t = TraceSet::generate(
                &dist,
                4_096,
                Topology::per_processor(),
                11.0 * YEAR,
                YEAR,
                SeedSequence::from_label("micro-gen"),
            );
            std::hint::black_box(t.platform_events().len())
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = lambert_w, optexp_construction, weibull_expected_loss,
              registry_policy_build, dp_next_failure_plan,
              dp_next_failure_plan_cache_hit, kernel_table_vs_direct,
              cold_row_batched_vs_scalar, dp_makespan_build,
              engine_throughput, trace_generation
}
criterion_main!(micro);
