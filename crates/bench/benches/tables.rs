//! Benches regenerating the paper's tables (reduced trace counts).
//!
//! Each bench runs one full degradation-from-best comparison and prints
//! the resulting rows once, so `cargo bench` both measures the harness
//! and reproduces the table shapes.

use ckpt_core::exp::experiments as ex;
use ckpt_core::exp::output::markdown_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::sync::Once;

const TRACES: usize = 4;
/// Per-iteration trace count (the measured body).
const ITER_TRACES: usize = 2;

fn table2_seq_exp(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        for (label, r) in ex::table23(false, TRACES) {
            println!("Table 2 (MTBF {label}):\n{}", markdown_table(&r));
        }
    });
    c.bench_function("table2_seq_exp", |b| {
        b.iter(|| {
            let rows = ex::table23(false, ITER_TRACES);
            std::hint::black_box(rows.len())
        })
    });
}

fn table3_seq_weibull(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        for (label, r) in ex::table23(true, TRACES) {
            println!("Table 3 (MTBF {label}):\n{}", markdown_table(&r));
        }
    });
    c.bench_function("table3_seq_weibull", |b| {
        b.iter(|| {
            let rows = ex::table23(true, ITER_TRACES);
            std::hint::black_box(rows.len())
        })
    });
}

fn table4_peta_weibull(c: &mut Criterion) {
    // Full-Jaguar cell at a bench-friendly trace count.
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let r = ex::table4(3);
        println!("Table 4 (p = 45,208, 3 traces):\n{}", markdown_table(&r));
    });
    c.bench_function("table4_peta_weibull", |b| {
        b.iter(|| {
            let r = ex::table4(1);
            std::hint::black_box(r.outcomes.len())
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = table2_seq_exp, table3_seq_weibull, table4_peta_weibull
}
criterion_main!(tables);
