//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_quantum` — DP time-quantum `u` (solution quality vs cost);
//! * `ablation_state_compression` — §3.3's (n_exact, n_approx)
//!   approximation vs the exact age multiset;
//! * `ablation_truncation` — the `min(ω, k·MTBF/p)` work truncation;
//! * `ablation_rejuvenation` — failed-only vs rejuvenate-all execution
//!   (the Appendix-B footnote comparison, Exponential failures).

use ckpt_core::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use std::sync::Once;

fn weibull_cell() -> (JobSpec, Weibull, f64) {
    let mtbf = 125.0 * YEAR;
    let spec = JobSpec::table1_petascale(1 << 12);
    (spec, Weibull::from_mtbf(0.7, mtbf), mtbf)
}

/// The NextFailure objective value of a DP plan (bigger is better).
fn plan_value(spec: &JobSpec, dist: &Weibull, mtbf: f64, cfg: DpNextFailureConfig) -> f64 {
    let dp = DpNextFailure::new(spec, Box::new(*dist), mtbf, cfg);
    let ages = AgeView::all_pristine(spec.procs, 60.0);
    let plan = dp.plan(spec.work, &ages);
    let compressed = ckpt_core::policies::dp_next_failure::compress_ages(
        &ages,
        dist,
        StateCompression::Exact,
    );
    ckpt_core::policies::dp_next_failure::expected_work_of_schedule(
        dist,
        &compressed,
        &plan,
        spec.checkpoint,
    )
}

fn ablation_quantum(c: &mut Criterion) {
    let (spec, dist, mtbf) = weibull_cell();
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("ablation_quantum — NextFailure objective vs quantum count:");
        for quanta in [25usize, 50, 100, 200, 400] {
            let v = plan_value(
                &spec,
                &dist,
                mtbf,
                DpNextFailureConfig {
                    quanta: Some(quanta),
                    use_half_schedule: false,
                    ..Default::default()
                },
            );
            println!("  quanta = {quanta:>4}: E[work before failure] = {v:.1} s");
        }
    });
    let mut g = c.benchmark_group("ablation_quantum");
    for quanta in [50usize, 100, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(quanta), &quanta, |b, &q| {
            b.iter(|| {
                std::hint::black_box(plan_value(
                    &spec,
                    &dist,
                    mtbf,
                    DpNextFailureConfig {
                        quanta: Some(q),
                        use_half_schedule: false,
                        ..Default::default()
                    },
                ))
            })
        });
    }
    g.finish();
}

fn ablation_state_compression(c: &mut Criterion) {
    let (spec, dist, _) = weibull_cell();
    // A mid-execution age population: 48 failed units.
    let failed: Vec<(f64, u32)> = (0..48).map(|i| ((i as f64 + 1.0) * 15_000.0, 1)).collect();
    let ages = AgeView::new(failed, spec.procs - 48, 1.5 * YEAR);
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        use ckpt_core::policies::dp_next_failure::compress_ages;
        let exact = compress_ages(&ages, &dist, StateCompression::Exact);
        let approx = compress_ages(&ages, &dist, StateCompression::paper());
        let lp = |set: &[(f64, f64)], x: f64| -> f64 {
            set.iter()
                .map(|&(t, n)| n * (dist.log_survival(t + x) - dist.log_survival(t)))
                .sum::<f64>()
                .exp()
        };
        println!("ablation_state_compression — Psuc relative error (paper claims ≤ 0.2 %):");
        for i in 0..=6u32 {
            let x = 87_000.0 / f64::from(1u32 << i);
            let pe = lp(&exact, x);
            let pa = lp(&approx, x);
            println!(
                "  chunk = MTBF/2^{i}: exact {pe:.6}, approx {pa:.6}, rel err {:.3e}",
                (pa - pe).abs() / pe
            );
        }
    });
    c.bench_function("ablation_state_compression_paper", |b| {
        b.iter(|| {
            std::hint::black_box(ckpt_core::policies::dp_next_failure::compress_ages(
                &ages,
                &dist,
                StateCompression::paper(),
            ))
        })
    });
}

fn ablation_truncation(c: &mut Criterion) {
    let (spec, dist, mtbf) = weibull_cell();
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        println!("ablation_truncation — plan length vs truncation multiple:");
        for mult in [0.5f64, 1.0, 2.0, 4.0] {
            let dp = DpNextFailure::new(
                &spec,
                Box::new(dist),
                mtbf,
                DpNextFailureConfig {
                    truncation_mtbf_multiple: mult,
                    ..Default::default()
                },
            );
            let plan = dp.plan(spec.work, &AgeView::all_pristine(spec.procs, 60.0));
            let total: f64 = plan.iter().sum();
            println!(
                "  {mult:>3}×MTBF/p: {} chunks, {:.0} s of work scheduled",
                plan.len(),
                total
            );
        }
    });
    let mut g = c.benchmark_group("ablation_truncation");
    for mult in [1.0f64, 2.0, 4.0] {
        g.bench_with_input(BenchmarkId::from_parameter(mult), &mult, |b, &m| {
            let dp = DpNextFailure::new(
                &spec,
                Box::new(dist),
                mtbf,
                DpNextFailureConfig { truncation_mtbf_multiple: m, ..Default::default() },
            );
            b.iter(|| {
                // Distinct age per iteration to defeat the plan cache: we
                // are measuring the solve.
                static COUNTER: std::sync::atomic::AtomicU64 =
                    std::sync::atomic::AtomicU64::new(0);
                let k = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let ages = AgeView::all_pristine(spec.procs, 60.0 + k as f64 * 7_919.0);
                std::hint::black_box(dp.plan(spec.work, &ages).len())
            })
        });
    }
    g.finish();
}

fn ablation_rejuvenation(c: &mut Criterion) {
    // Exponential failures: both rejuvenation options should agree
    // (memorylessness) — the Appendix-B footnote check.
    let p = 1u64 << 10;
    let mtbf = 125.0 * YEAR;
    let spec = JobSpec::table1_petascale(p);
    let proc = Exponential::from_mtbf(mtbf);
    let plat = Exponential::from_mtbf(mtbf / p as f64);
    let policy = young(&spec, mtbf);
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let runs = 24;
        let mut failed_only = 0.0;
        for i in 0..runs {
            let traces = TraceSet::generate(
                &proc,
                p as usize,
                Topology::per_processor(),
                11.0 * YEAR,
                YEAR,
                SeedSequence::from_label("ablation-rejuv").child(i),
            );
            let mut s = policy.session();
            failed_only += simulate(
                &spec,
                &mut *s,
                &traces.platform_events(),
                1,
                traces.start_time,
                traces.horizon,
                SimOptions::default(),
            )
            .makespan;
        }
        let mut rejuv_all = 0.0;
        for i in 0..runs {
            let mut s = policy.session();
            rejuv_all +=
                simulate_rejuvenate_all(&spec, &mut *s, &plat, i, SimOptions::default()).makespan;
        }
        println!(
            "ablation_rejuvenation (Exponential, p = {p}): failed-only {:.3} d, \
             rejuvenate-all {:.3} d (should be close — memorylessness)",
            failed_only / runs as f64 / DAY,
            rejuv_all / runs as f64 / DAY
        );
    });
    c.bench_function("ablation_rejuvenation_all_model", |b| {
        b.iter(|| {
            let mut s = policy.session();
            std::hint::black_box(
                simulate_rejuvenate_all(&spec, &mut *s, &plat, 42, SimOptions::default())
                    .makespan,
            )
        })
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = ablation_quantum, ablation_state_compression, ablation_truncation,
              ablation_rejuvenation
}
criterion_main!(ablations);
