//! Benches regenerating the log-based figures (7 and 100) from the
//! synthetic LANL-like availability logs.
//!
//! Log-based platforms are extremely failure-dense (§6: platform MTBF
//! ≈ 1,297 s at full scale), so the bench cells run a proportionally
//! shortened job — degradation is a ratio, so the who-wins shape is
//! unchanged while the wall-clock stays bench-sized. The `ckpt-exp`
//! binary runs the full-length jobs.

use ckpt_core::exp::output::{csv_series, CSV_HEADER};
use ckpt_core::exp::{run_scenario, DistSpec, PolicyKind, RunnerOptions, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::sync::Once;

const TRACES: usize = 2;
/// Job-shortening divisor for bench cells.
const WORK_DIVISOR: f64 = 20.0;

fn log_cell(cluster: u32, procs: u64, traces: usize) -> ckpt_core::exp::ScenarioResult {
    let mut sc = Scenario::petascale(DistSpec::LanlLog { cluster }, procs, traces);
    sc.total_work /= WORK_DIVISOR;
    sc.label = format!("bench-{}", sc.label);
    run_scenario(
        &sc,
        &PolicyKind::log_based_roster(),
        &RunnerOptions::default(),
    )
}

fn fig7_logbased(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut csv = String::from(CSV_HEADER);
        for p in [1u64 << 12, 1 << 14] {
            csv.push_str(&csv_series(p as f64, &log_cell(19, p, TRACES)));
        }
        println!("Figure 7 series (LANL cluster 19, shortened job):\n{csv}");
    });
    c.bench_function("fig7_logbased_cell", |b| {
        b.iter(|| std::hint::black_box(log_cell(19, 1 << 12, 1).outcomes.len()))
    });
}

fn fig100_both_clusters(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        for cluster in [18u32, 19] {
            let mut csv = String::from(CSV_HEADER);
            for p in [1u64 << 12, 1 << 13] {
                csv.push_str(&csv_series(p as f64, &log_cell(cluster, p, TRACES)));
            }
            println!("Figure 100 series (cluster {cluster}, shortened job):\n{csv}");
        }
    });
    c.bench_function("fig100_cluster18_cell", |b| {
        b.iter(|| {
            let mut sc = Scenario::petascale(DistSpec::LanlLog { cluster: 18 }, 1 << 12, 1);
            sc.total_work /= WORK_DIVISOR;
            sc.label = format!("bench18-{}", sc.label);
            let r = run_scenario(
                &sc,
                &[PolicyKind::Young, PolicyKind::DpNextFailure(Default::default())],
                &RunnerOptions { period_lb: None, ..Default::default() },
            );
            std::hint::black_box(r.outcomes.len())
        })
    });
}

criterion_group! {
    name = logbased;
    config = Criterion::default().sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = fig7_logbased, fig100_both_clusters
}
criterion_main!(logbased);
