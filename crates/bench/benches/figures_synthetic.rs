//! Benches regenerating the synthetic-failure figures (2–6, 8/9, 98/99)
//! at reduced scale: one representative platform size per figure, a few
//! traces — enough to reproduce each figure's *shape* (who wins, roughly
//! by how much) while keeping `cargo bench` tractable.

use ckpt_core::exp::experiments as ex;
use ckpt_core::exp::output::{csv_series, markdown_table, CSV_HEADER};
use ckpt_core::exp::{run_scenario, DistSpec, PolicyKind, RunnerOptions, Scenario};
use ckpt_core::prelude::{DAY, YEAR};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use std::sync::Once;

const TRACES: usize = 3;

fn cell(weibull: bool, procs: u64, traces: usize) -> ckpt_core::exp::ScenarioResult {
    let mtbf = 125.0 * YEAR;
    let dist = if weibull {
        DistSpec::Weibull { shape: 0.7, mtbf }
    } else {
        DistSpec::Exponential { mtbf }
    };
    let sc = Scenario::petascale(dist, procs, traces);
    run_scenario(
        &sc,
        &PolicyKind::paper_roster(!weibull),
        &RunnerOptions::default(),
    )
}

fn fig2_peta_exp(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut csv = String::from(CSV_HEADER);
        for p in [1u64 << 10, 1 << 12] {
            csv.push_str(&csv_series(p as f64, &cell(false, p, TRACES)));
        }
        println!("Figure 2 series (Exponential, Petascale):\n{csv}");
    });
    c.bench_function("fig2_peta_exp_cell", |b| {
        b.iter(|| std::hint::black_box(cell(false, 1 << 11, 1).outcomes.len()))
    });
}

fn fig4_peta_weibull(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let mut csv = String::from(CSV_HEADER);
        for p in [1u64 << 10, 1 << 12] {
            csv.push_str(&csv_series(p as f64, &cell(true, p, TRACES)));
        }
        println!("Figure 4 series (Weibull, Petascale):\n{csv}");
    });
    c.bench_function("fig4_peta_weibull_cell", |b| {
        b.iter(|| std::hint::black_box(cell(true, 1 << 11, 1).outcomes.len()))
    });
}

fn fig3_fig6_exascale(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        // One Exascale cell each for the Exponential (fig 3) and Weibull
        // (fig 6) variants.
        for weibull in [false, true] {
            let dist = if weibull {
                DistSpec::Weibull { shape: 0.7, mtbf: 1_250.0 * YEAR }
            } else {
                DistSpec::Exponential { mtbf: 1_250.0 * YEAR }
            };
            let sc = Scenario::exascale(dist, 1 << 15, 1);
            let r = run_scenario(
                &sc,
                &PolicyKind::paper_roster(!weibull),
                &RunnerOptions::default(),
            );
            println!(
                "Figure {} cell (p = 2^15):\n{}",
                if weibull { 6 } else { 3 },
                markdown_table(&r)
            );
        }
    });
    c.bench_function("fig6_exa_weibull_cell", |b| {
        b.iter(|| {
            let sc = Scenario::exascale(
                DistSpec::Weibull { shape: 0.7, mtbf: 1_250.0 * YEAR },
                1 << 14,
                1,
            );
            let r = run_scenario(
                &sc,
                &[PolicyKind::Young, PolicyKind::DpNextFailure(Default::default())],
                &RunnerOptions { period_lb: None, ..Default::default() },
            );
            std::hint::black_box(r.outcomes.len())
        })
    });
}

fn fig5_shape_sweep(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let rows = ex::fig5(&[0.3, 0.7], 1);
        let mut csv = String::from(CSV_HEADER);
        for (k, r) in &rows {
            csv.push_str(&csv_series(*k, r));
        }
        println!("Figure 5 series (shape sweep, p = 45,208):\n{csv}");
    });
    c.bench_function("fig5_shape_cell", |b| {
        b.iter(|| std::hint::black_box(ex::fig5(&[0.7], 1).len()))
    });
}

fn fig8_period_sweep_seq(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let r = ex::fig89(false, DAY, TRACES);
        println!("Figure 8 (1-proc Exponential period sweep):\n{}", markdown_table(&r));
        let r = ex::fig89(true, DAY, TRACES);
        println!("Figure 9 (1-proc Weibull period sweep):\n{}", markdown_table(&r));
    });
    c.bench_function("fig8_period_sweep_seq", |b| {
        b.iter(|| std::hint::black_box(ex::fig89(false, DAY, 1).outcomes.len()))
    });
}

fn fig98_makespan_profiles(c: &mut Criterion) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let series = ex::fig9899(&PolicyKind::OptExp, false, 2);
        println!("Figure 98 (mean makespan by application profile, OptExp):");
        for (model, pts) in &series {
            let line: Vec<String> = pts
                .iter()
                .map(|(p, m)| format!("p={p}:{:.1}d", m / DAY))
                .collect();
            println!("  {model}: {}", line.join(" "));
        }
    });
    c.bench_function("fig98_makespan_profiles", |b| {
        b.iter(|| std::hint::black_box(ex::fig9899(&PolicyKind::OptExp, false, 1).len()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = fig2_peta_exp, fig4_peta_weibull, fig3_fig6_exascale, fig5_shape_sweep,
              fig8_period_sweep_seq, fig98_makespan_profiles
}
criterion_main!(figures);
