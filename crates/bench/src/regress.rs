//! Bench-history parsing and the regression sentinel behind
//! `ckpt-bench regress`.
//!
//! `results/BENCH_history.jsonl` holds one record per
//! `bench_pipeline`/`bench_exec_scaling` run, oldest first. Records
//! group into **series** by everything that legitimately changes the
//! cost of a run — record kind, cell (scenario, processors, traces,
//! roster size, period grid) and worker threads — so a 1-thread smoke
//! run is never judged against an 8-thread sweep.
//!
//! The sentinel judges only the **latest** record of the latest
//! record's series: its `total_seconds` against the rolling median of
//! up to [`WINDOW`] prior same-series records, with a noise-aware
//! threshold of `max(base, NOISE_MADS · MAD/median)` — a stable
//! history flags a 20% slowdown at the default 10% base, while a noisy
//! one widens its own gate instead of crying wolf. Fewer than
//! [`MIN_PRIOR`] priors is a pass with a note: two points are not a
//! baseline. Per-stage deltas are reported as context, never judged
//! (stage noise is higher and the total already contains them).

use ckpt_core::exp::jsonio::{self, Json};

/// Maximum prior same-series records the rolling median sees.
pub const WINDOW: usize = 8;

/// Prior same-series records required before judging.
pub const MIN_PRIOR: usize = 2;

/// Default base regression threshold (fraction over the median).
pub const BASE_THRESHOLD: f64 = 0.10;

/// MAD multiplier of the noise-aware threshold widening.
pub const NOISE_MADS: f64 = 4.0;

/// One parsed history record (the fields the sentinel needs).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Record kind (`pipeline`).
    pub kind: String,
    /// Free-form run label.
    pub label: String,
    /// Git revision the run was built from.
    pub git_sha: String,
    /// Series identity: scenario label.
    pub scenario: String,
    /// Series identity: processor count.
    pub procs: u64,
    /// Series identity: traces per run.
    pub traces: u64,
    /// Series identity: roster size.
    pub policies: u64,
    /// Series identity: period-search grid size.
    pub period_grid: u64,
    /// Series identity: executor worker threads (0 when the record
    /// predates the field).
    pub threads: u64,
    /// The judged quantity.
    pub total_seconds: f64,
    /// `(name, seconds)` per stage, reported as context.
    pub stages: Vec<(String, f64)>,
}

impl Record {
    /// The series key: everything that legitimately changes run cost.
    pub fn series_key(&self) -> String {
        format!(
            "{}|{}|p{}|t{}|pol{}|grid{}|th{}",
            self.kind,
            self.scenario,
            self.procs,
            self.traces,
            self.policies,
            self.period_grid,
            self.threads
        )
    }
}

fn field<'a>(v: &'a Json, key: &str, line: usize) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("history line {line}: missing `{key}`"))
}

fn str_field(v: &Json, key: &str, line: usize) -> Result<String, String> {
    field(v, key, line)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("history line {line}: `{key}` is not a string"))
}

fn u64_field(v: &Json, key: &str, line: usize) -> Result<u64, String> {
    field(v, key, line)?
        .as_u64()
        .ok_or_else(|| format!("history line {line}: `{key}` is not an unsigned integer"))
}

fn f64_field(v: &Json, key: &str, line: usize) -> Result<f64, String> {
    let x = field(v, key, line)?
        .as_f64()
        .ok_or_else(|| format!("history line {line}: `{key}` is not a number"))?;
    if !x.is_finite() {
        return Err(format!("history line {line}: `{key}` is not finite"));
    }
    Ok(x)
}

/// Parse one history line (`line` is 1-based, for error messages).
///
/// # Errors
/// A human-readable message naming the line and the offending field.
pub fn parse_record(src: &str, line: usize) -> Result<Record, String> {
    let v = jsonio::parse(src).map_err(|e| format!("history line {line}: {e}"))?;
    let schema = u64_field(&v, "schema", line)?;
    if schema != 1 {
        return Err(format!("history line {line}: unsupported schema {schema}"));
    }
    let cell = field(&v, "cell", line)?;
    let mut stages = Vec::new();
    let stage_rows = field(&v, "stages", line)?
        .as_arr()
        .ok_or_else(|| format!("history line {line}: `stages` is not an array"))?;
    for row in stage_rows {
        stages.push((str_field(row, "name", line)?, f64_field(row, "seconds", line)?));
    }
    let total_seconds = f64_field(&v, "total_seconds", line)?;
    if total_seconds <= 0.0 {
        return Err(format!("history line {line}: `total_seconds` must be positive"));
    }
    Ok(Record {
        kind: str_field(&v, "kind", line)?,
        label: str_field(&v, "label", line)?,
        git_sha: str_field(&v, "git_sha", line)?,
        scenario: str_field(cell, "scenario", line)?,
        procs: u64_field(cell, "procs", line)?,
        traces: u64_field(cell, "traces", line)?,
        policies: u64_field(cell, "policies", line)?,
        period_grid: u64_field(cell, "period_grid", line)?,
        // Optional: early records predate the field.
        threads: v.get("threads").and_then(Json::as_u64).unwrap_or(0),
        total_seconds,
        stages,
    })
}

/// Parse a whole history file (blank lines skipped), oldest first.
///
/// # Errors
/// The first malformed line's message.
pub fn parse_history(src: &str) -> Result<Vec<Record>, String> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_record(line, i + 1)?);
    }
    Ok(out)
}

/// Median of a non-empty sample (mean of the middle pair when even).
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// The verdict on the latest record of its series.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The judged (latest) record.
    pub latest: Record,
    /// Prior same-series records in the window, oldest first.
    pub prior: Vec<Record>,
    /// Rolling median of the priors' totals (`None` below [`MIN_PRIOR`]).
    pub median_seconds: Option<f64>,
    /// The effective threshold fraction actually applied.
    pub threshold: f64,
    /// Latest total over the median, minus one (`None` below
    /// [`MIN_PRIOR`]). Positive means slower.
    pub delta_frac: Option<f64>,
    /// `true` when the latest total breaches the threshold.
    pub regressed: bool,
}

/// Judge the latest record of `history` against its series.
///
/// # Errors
/// When the history is empty.
pub fn analyze(history: &[Record], base_threshold: f64, window: usize) -> Result<Verdict, String> {
    let latest = history.last().ok_or("history is empty: nothing to judge")?.clone();
    let key = latest.series_key();
    let prior: Vec<Record> = history[..history.len() - 1]
        .iter()
        .filter(|r| r.series_key() == key)
        .cloned()
        .collect();
    let prior: Vec<Record> =
        prior.iter().rev().take(window.max(1)).rev().cloned().collect();

    if prior.len() < MIN_PRIOR {
        return Ok(Verdict {
            latest,
            prior,
            median_seconds: None,
            threshold: base_threshold,
            delta_frac: None,
            regressed: false,
        });
    }

    let mut totals: Vec<f64> = prior.iter().map(|r| r.total_seconds).collect();
    totals.sort_by(f64::total_cmp);
    let med = median(&totals);
    // Median absolute deviation: the robust spread of the window.
    let mut devs: Vec<f64> = totals.iter().map(|t| (t - med).abs()).collect();
    devs.sort_by(f64::total_cmp);
    let mad = median(&devs);
    let threshold = base_threshold.max(NOISE_MADS * mad / med);
    let delta = latest.total_seconds / med - 1.0;
    Ok(Verdict {
        latest,
        prior,
        median_seconds: Some(med),
        threshold,
        delta_frac: Some(delta),
        regressed: delta > threshold,
    })
}

/// Render the `BENCH_regress.txt` report.
pub fn report(v: &Verdict) -> String {
    let mut out = String::new();
    out.push_str("ckpt-bench regress report\n");
    out.push_str("=========================\n");
    out.push_str(&format!(
        "series:  {}\nlatest:  label `{}`, git {}, total {:.6}s\n",
        v.latest.series_key(),
        v.latest.label,
        v.latest.git_sha,
        v.latest.total_seconds
    ));
    match (v.median_seconds, v.delta_frac) {
        (Some(med), Some(delta)) => {
            out.push_str(&format!(
                "window:  {} prior record(s), rolling median {med:.6}s\n",
                v.prior.len()
            ));
            out.push_str(&format!(
                "delta:   {:+.1}% vs median (threshold {:.1}%)\n",
                100.0 * delta,
                100.0 * v.threshold
            ));
            // Stage context against the newest prior record: where the
            // time moved, not a judgement.
            if let Some(base) = v.prior.last() {
                for (name, seconds) in &v.latest.stages {
                    if let Some((_, b)) =
                        base.stages.iter().find(|(n, _)| n == name)
                    {
                        if *b > 0.0 {
                            out.push_str(&format!(
                                "stage:   {name:<14} {seconds:>10.6}s vs {b:>10.6}s ({:+.1}%)\n",
                                100.0 * (seconds / b - 1.0)
                            ));
                        }
                    }
                }
            }
            out.push_str(if v.regressed {
                "verdict: REGRESSION\n"
            } else {
                "verdict: pass\n"
            });
        }
        _ => {
            out.push_str(&format!(
                "window:  {} prior record(s) — fewer than {MIN_PRIOR}, not judged\n",
                v.prior.len()
            ));
            out.push_str("verdict: pass (insufficient history)\n");
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn line(total: f64, threads: u64) -> String {
        format!(
            "{{\"schema\": 1, \"kind\": \"pipeline\", \"label\": \"t\", \"git_sha\": \"abc\", \
             \"recorded_unix\": 1, \"host_cpus\": 4, \"lanes\": 4, \"threads\": {threads}, \
             \"cell\": {{\"scenario\": \"s\", \"procs\": 4096, \"traces\": 24, \
             \"policies\": 7, \"period_grid\": 479}}, \"total_seconds\": {total}, \
             \"stages\": [{{\"name\": \"policy_sims\", \"seconds\": {}, \"items\": 168}}], \
             \"counters\": {{}}}}",
            total * 0.9
        )
    }

    fn history(totals: &[f64]) -> Vec<Record> {
        let src: Vec<String> = totals.iter().map(|&t| line(t, 1)).collect();
        parse_history(&src.join("\n")).unwrap()
    }

    #[test]
    fn parses_a_valid_record() {
        let r = parse_record(&line(10.0, 2), 1).unwrap();
        assert_eq!(r.kind, "pipeline");
        assert_eq!(r.procs, 4096);
        assert_eq!(r.threads, 2);
        assert!((r.total_seconds - 10.0).abs() < 1e-12);
        assert_eq!(r.stages.len(), 1);
        assert_eq!(r.series_key(), "pipeline|s|p4096|t24|pol7|grid479|th2");
    }

    #[test]
    fn rejects_malformed_records_with_line_numbers() {
        let missing = line(10.0, 1).replace("\"total_seconds\": 10,", "");
        let err = parse_history(&format!("{}\n{missing}", line(9.0, 1))).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let bad_schema = line(10.0, 1).replace("\"schema\": 1", "\"schema\": 9");
        assert!(parse_record(&bad_schema, 3).unwrap_err().contains("schema 9"));
        assert!(parse_record("not json", 1).is_err());
    }

    #[test]
    fn threads_field_is_optional_for_pre_sentinel_records() {
        let legacy = line(10.0, 1).replace("\"threads\": 1, ", "");
        let r = parse_record(&legacy, 1).unwrap();
        assert_eq!(r.threads, 0);
    }

    #[test]
    fn twenty_percent_slowdown_is_flagged() {
        let v = analyze(&history(&[10.0, 10.2, 9.9, 12.2]), BASE_THRESHOLD, WINDOW).unwrap();
        assert!(v.regressed, "{v:?}");
        assert!(v.delta_frac.unwrap() > 0.19, "{v:?}");
        assert!(report(&v).contains("verdict: REGRESSION"));
    }

    #[test]
    fn stable_and_improving_histories_pass() {
        let v = analyze(&history(&[10.0, 10.2, 9.9, 10.1]), BASE_THRESHOLD, WINDOW).unwrap();
        assert!(!v.regressed, "{v:?}");
        let v = analyze(&history(&[10.0, 10.2, 9.9, 3.0]), BASE_THRESHOLD, WINDOW).unwrap();
        assert!(!v.regressed, "{v:?}");
        assert!(report(&v).contains("verdict: pass"));
    }

    #[test]
    fn insufficient_history_passes_with_a_note() {
        let v = analyze(&history(&[10.0, 12.2]), BASE_THRESHOLD, WINDOW).unwrap();
        assert!(!v.regressed);
        assert!(v.median_seconds.is_none());
        assert!(report(&v).contains("insufficient history"));
        assert!(analyze(&[], BASE_THRESHOLD, WINDOW).is_err());
    }

    #[test]
    fn noisy_history_widens_its_own_threshold() {
        // Spread ~±30%: a 20% excursion is within the series' own noise.
        let v = analyze(&history(&[7.0, 13.0, 10.0, 7.5, 12.5, 12.0]), BASE_THRESHOLD, WINDOW)
            .unwrap();
        assert!(v.threshold > BASE_THRESHOLD, "{v:?}");
        assert!(!v.regressed, "{v:?}");
    }

    #[test]
    fn different_series_never_mix() {
        // Same cell at other thread counts must not enter the window.
        let mut src: Vec<String> = [10.0, 10.1, 9.9].iter().map(|&t| line(t, 8)).collect();
        src.push(line(30.0, 1)); // a 1-thread run is slower by design
        let hist = parse_history(&src.join("\n")).unwrap();
        let v = analyze(&hist, BASE_THRESHOLD, WINDOW).unwrap();
        assert!(v.prior.is_empty());
        assert!(!v.regressed);
    }

    #[test]
    fn window_keeps_only_the_newest_priors() {
        // 12 priors; with WINDOW=8 the old slow era must age out.
        let mut totals = vec![20.0, 20.0, 20.0, 20.0];
        totals.extend_from_slice(&[10.0; 8]);
        totals.push(10.1);
        let v = analyze(&history(&totals), BASE_THRESHOLD, WINDOW).unwrap();
        assert_eq!(v.prior.len(), WINDOW);
        assert!((v.median_seconds.unwrap() - 10.0).abs() < 1e-9, "{v:?}");
        assert!(!v.regressed);
    }
}
