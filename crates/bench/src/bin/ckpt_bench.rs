//! `ckpt-bench` — bench-history tooling.
//!
//! ```text
//! ckpt-bench regress [--history PATH] [--out PATH] [--window N] [--threshold F]
//! ```
//!
//! Judges the newest `BENCH_history.jsonl` record against the rolling
//! median of its series (same cell, same worker threads) with a
//! noise-aware threshold — see [`ckpt_bench::regress`]. The report goes
//! to stdout and `--out` (default `results/BENCH_regress.txt`).
//!
//! Exit codes: `0` pass, `1` regression, `2` usage or history errors
//! (missing file, malformed record — a broken history must fail CI
//! loudly, not pass silently).

use ckpt_bench::regress;

fn fail(msg: &str) -> ! {
    eprintln!("ckpt-bench: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        fail("usage: ckpt-bench regress [--history PATH] [--out PATH] [--window N] [--threshold F]")
    };
    if cmd != "regress" {
        fail(&format!("unknown command `{cmd}` (known: regress)"));
    }

    let mut history = "results/BENCH_history.jsonl".to_string();
    let mut out = "results/BENCH_regress.txt".to_string();
    let mut window = regress::WINDOW;
    let mut threshold = regress::BASE_THRESHOLD;
    while let Some(a) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| fail(what));
        match a.as_str() {
            "--history" => history = next("--history PATH"),
            "--out" => out = next("--out PATH"),
            "--window" => {
                window = next("--window N")
                    .parse()
                    .unwrap_or_else(|_| fail("--window N: not a number"));
            }
            "--threshold" => {
                threshold = next("--threshold F")
                    .parse()
                    .unwrap_or_else(|_| fail("--threshold F: not a number"));
                if !(threshold.is_finite() && threshold > 0.0) {
                    fail("--threshold F: must be a positive fraction");
                }
            }
            other => fail(&format!("unknown `regress` argument {other}")),
        }
    }

    let src = std::fs::read_to_string(&history)
        .unwrap_or_else(|e| fail(&format!("read {history}: {e}")));
    let records = regress::parse_history(&src).unwrap_or_else(|e| fail(&e));
    let verdict =
        regress::analyze(&records, threshold, window).unwrap_or_else(|e| fail(&e));
    let report = regress::report(&verdict);

    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, &report)
        .unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
    print!("{report}");
    eprintln!("ckpt-bench: wrote {out}");
    std::process::exit(i32::from(verdict.regressed));
}
