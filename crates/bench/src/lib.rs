//! Bench-only crate: shared helpers for the Criterion benches that
//! regenerate the paper's tables and figures at reduced trace counts,
//! plus the bench-history regression sentinel ([`regress`], exposed as
//! the `ckpt-bench` binary).

pub mod regress;

use ckpt_core::prelude::*;

/// Trace count used by the benches. Small enough for `cargo bench` to
/// finish promptly; the `ckpt-exp` binary runs the paper's full 600.
pub const BENCH_TRACES: usize = 8;

/// A small single-processor scenario used by several micro-benches.
pub fn bench_scenario_1proc_weibull() -> Scenario {
    Scenario::single_processor(
        DistSpec::Weibull { shape: 0.7, mtbf: DAY },
        BENCH_TRACES,
    )
}

/// A reduced Petascale cell (2^12 processors) used by figure benches.
pub fn bench_scenario_peta_weibull() -> Scenario {
    Scenario::petascale(
        DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR },
        1 << 12,
        BENCH_TRACES,
    )
}

/// Build a named policy for a scenario through the experiment registry —
/// the same construction site the runner and the `ckpt-exp` CLI use, so
/// benches measure exactly what experiments run.
///
/// # Panics
/// On unknown names (listing the known ones) or policies that cannot be
/// instantiated for this cell.
pub fn bench_policy(name: &str, scenario: &Scenario) -> Box<dyn Policy> {
    let built = scenario.dist.build();
    let kind = ckpt_core::exp::parse_kind(name).unwrap_or_else(|e| panic!("{e}"));
    ckpt_core::exp::build_policy(&kind, scenario, &built).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build() {
        assert_eq!(bench_scenario_1proc_weibull().procs, 1);
        assert_eq!(bench_scenario_peta_weibull().procs, 1 << 12);
    }

    #[test]
    fn bench_policy_uses_the_registry() {
        let sc = bench_scenario_peta_weibull();
        // Case-insensitive, like the CLI.
        assert_eq!(bench_policy("young", &sc).name(), "Young");
        assert_eq!(bench_policy("OptExp", &sc).name(), "OptExp");
    }
}
