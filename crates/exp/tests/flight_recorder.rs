//! Flight-recorder pinning: a poisoned wave leaves a dump naming the
//! failing task, a study run leaves `flightrec.json` and
//! `progress.json` in its store, and — the contract everything above
//! rests on — results stay byte-identical with the recorder active at
//! 1 and 8 workers.
//!
//! Without the `obs` feature sessions cannot open, so each test
//! degrades to its recording-off half: the dumps must still be valid
//! (`"recording": false`, empty events) and the byte-identity halves
//! still compare. `scripts/check.sh` runs this crate's tests with the
//! feature on so the live paths are exercised in CI.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ckpt_exp::checkpoint::{run_study, CheckpointConfig, StudyDef, StudyOutcome};
use ckpt_exp::golden::golden_json;
use ckpt_exp::jsonio;
use ckpt_exp::runner::{run_scenario, PeriodSearch, RunnerOptions};
use ckpt_exp::steal::{run_wave, set_flight_dump, set_workers};
use ckpt_exp::{DistSpec, PolicyKind, Scenario};
use ckpt_sim::SimOptions;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

/// Obs sessions are process-global and exclusive, and `set_workers` /
/// `set_flight_dump` are process-global knobs: every test here
/// serializes.
static SESSION_TESTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SESSION_TESTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ckpt-flightrec-{}-{tag}", std::process::id()))
}

fn fast_options() -> RunnerOptions {
    RunnerOptions {
        lower_bound: true,
        period_lb: Some(vec![0.5, 1.0, 2.0]),
        period_search: PeriodSearch::Full,
        sim: SimOptions::default(),
    }
}

fn small_cell(label: &str) -> Scenario {
    let mut sc =
        Scenario::single_processor(DistSpec::Exponential { mtbf: 6.0 * 3_600.0 }, 4);
    sc.total_work = 12.0 * 3_600.0;
    sc.label = label.into();
    sc
}

/// Drive a poisoned wave at `workers` and return the parsed dump.
fn poisoned_wave_dump(workers: usize, poison_id: usize, tag: &str) -> jsonio::Json {
    let path = tmp_path(tag);
    let _ = std::fs::remove_file(&path);
    set_flight_dump(Some(path.clone()));
    let tasks: Vec<u64> = (0..12).collect();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        run_wave(&tasks, workers, |_| false, |i, &t| {
            assert!(i != poison_id, "poisoned task {i}");
            t
        })
    }));
    set_flight_dump(None);
    caught.expect_err("the poisoned wave must re-raise");
    let src = std::fs::read_to_string(&path)
        .expect("poisoned wave must write the flight dump");
    let _ = std::fs::remove_file(&path);
    jsonio::parse(&src).expect("flight dump must be valid JSON")
}

fn events<'a>(dump: &'a jsonio::Json) -> &'a [jsonio::Json] {
    dump.get("events").and_then(jsonio::Json::as_arr).expect("events array")
}

/// The dump of a poisoned wave names the failing task — threaded and
/// sequential paths alike — and degrades to a valid empty document
/// without the feature.
#[test]
fn poisoned_wave_dump_names_the_failing_task() {
    let _serial = lock();
    for (workers, poison_id, tag) in [(4usize, 7usize, "w4"), (1, 3, "w1")] {
        let session = ckpt_obs::ObsSession::start();
        let recording = session.is_some();
        let dump = poisoned_wave_dump(workers, poison_id, tag);
        if let Some(s) = session {
            let _ = s.finish();
        }
        assert_eq!(
            dump.get("recording").and_then(jsonio::Json::as_bool),
            Some(recording),
            "dump recording flag at {workers} workers"
        );
        if recording {
            let poison = events(&dump)
                .iter()
                .find(|e| {
                    e.get("name").and_then(jsonio::Json::as_str)
                        == Some("exec.task_poisoned")
                })
                .unwrap_or_else(|| {
                    panic!("poison event missing from dump at {workers} workers")
                });
            assert_eq!(
                poison.get("label").and_then(jsonio::Json::as_str),
                Some(format!("task{poison_id:06}").as_str()),
                "the poison event must name task {poison_id}"
            );
            assert_eq!(
                poison.get("kind").and_then(jsonio::Json::as_str),
                Some("counter")
            );
        } else {
            assert!(events(&dump).is_empty(), "no session ⇒ empty events");
        }
    }
}

/// Results are byte-identical with the flight recorder active at 1 and
/// 8 workers — the recorder observes the pipeline, never steers it.
#[test]
fn recorder_active_results_are_byte_identical_at_1_and_8_workers() {
    let _serial = lock();
    let sc = small_cell("flightrec-identity-cell");
    let kinds = [PolicyKind::Young, PolicyKind::OptExp];
    let options = fast_options();

    let baseline = golden_json(&run_scenario(&sc, &kinds, &options));
    for workers in [1usize, 8] {
        set_workers(workers);
        let session = ckpt_obs::ObsSession::start();
        let doc = golden_json(&run_scenario(&sc, &kinds, &options));
        if let Some(s) = session {
            let data = s.finish();
            // The recorder really was live: the run left span rows.
            assert!(!data.spans.is_empty(), "no spans at {workers} workers");
        }
        assert_eq!(
            doc, baseline,
            "recorder-on results diverged at {workers} workers"
        );
    }
    set_workers(0);
}

/// A completed study leaves `flightrec.json` and `progress.json` in its
/// store, both valid, with the progress snapshot fully accounted.
#[test]
fn run_study_leaves_flightrec_and_progress_in_the_store() {
    let _serial = lock();
    let session = ckpt_obs::ObsSession::start();
    let root = tmp_path("store");
    let _ = std::fs::remove_dir_all(&root);
    let def = StudyDef::new(
        "flightrec",
        [(small_cell("flightrec-store-cell"), vec![PolicyKind::Young], fast_options())],
    );
    let config = CheckpointConfig {
        root: root.clone(),
        interval_items: 2, // force mid-run checkpoint commits
        interval_seconds: 1e9,
        trace_block: 2,
        ..CheckpointConfig::default()
    };
    let report = match run_study(&def, &config, false).expect("study runs") {
        StudyOutcome::Complete(r) => r,
        StudyOutcome::Stopped { .. } => panic!("no stop hook configured"),
    };
    assert!(report.checkpoints_written > 0);
    if let Some(s) = session {
        let _ = s.finish();
    }

    let dir = root.join("flightrec");
    let flight = std::fs::read_to_string(dir.join("flightrec.json"))
        .expect("study store must contain flightrec.json");
    jsonio::parse(&flight).expect("flightrec.json must parse");

    let progress = std::fs::read_to_string(dir.join("progress.json"))
        .expect("study store must contain progress.json");
    let doc = jsonio::parse(&progress).expect("progress.json must parse");
    let total = doc.get("total").and_then(jsonio::Json::as_u64).expect("total");
    assert_eq!(total, report.items_total);
    assert_eq!(
        doc.get("completed").and_then(jsonio::Json::as_u64),
        Some(report.items_total),
        "final snapshot must show every item completed"
    );
    assert_eq!(doc.get("in_flight").and_then(jsonio::Json::as_u64), Some(0));
    assert!(progress.contains("wall_clock_nondeterministic"));
    let _ = std::fs::remove_dir_all(&root);
}
