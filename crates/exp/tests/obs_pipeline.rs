//! Observability must attach to the whole pipeline without perturbing
//! it: an open `ckpt-obs` session collects stage/task spans, the
//! per-fingerprint cache counters, and the `perf.obs` breakdown, while
//! the pipeline's *results* stay byte-identical with recording on or
//! off, at any rayon thread count.
//!
//! Without the `obs` feature sessions cannot open, so each test
//! degrades to its recording-off half (the golden check still runs);
//! `scripts/check.sh` runs this crate's tests with the feature on so
//! the live paths are exercised in CI.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ckpt_exp::golden::{golden_cells, golden_json};
use ckpt_exp::runner::{run_scenario, PeriodSearch, RunnerOptions};
use ckpt_exp::{DistSpec, PolicyKind, Scenario, Study};
use ckpt_sim::SimOptions;
use std::path::PathBuf;
use std::sync::Mutex;

/// Obs sessions are process-global and exclusive; every test here
/// records (or must observe a quiet registry), so they serialize.
static SESSION_TESTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SESSION_TESTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fast_options() -> RunnerOptions {
    RunnerOptions {
        lower_bound: true,
        period_lb: Some(vec![0.5, 1.0, 2.0]),
        period_search: PeriodSearch::Full,
        sim: SimOptions::default(),
    }
}

/// The obs label of `dist`'s shared plan-cache identity (`fp:…`). The
/// per-fingerprint counter cells make assertions pollution-proof: only
/// this test's distribution lands under this label.
fn fp_label(dist: &DistSpec) -> String {
    ckpt_policies::DistId::of(dist.build().dist.as_ref()).obs_label()
}

#[test]
fn session_collects_stage_spans_and_obs_breakdown() {
    let _serial = lock();
    let Some(session) = ckpt_obs::ObsSession::start() else { return };

    // Unique MTBF → unique fingerprint → this cell's DP plans are cold.
    let dist = DistSpec::Weibull { shape: 0.7, mtbf: 19_751.0 * 3_600.0 };
    let mut sc = Scenario::single_processor(dist, 3);
    sc.total_work = 12.0 * 3_600.0;
    sc.label = "obs-span-cell".into();
    let kinds = [PolicyKind::DpNextFailure(Default::default()), PolicyKind::Young];
    let r = run_scenario(&sc, &kinds, &fast_options());
    let data = session.finish();

    // Every pipeline stage and the scenario wrapper left a span.
    for name in [
        "scenario.run",
        "stage.trace_gen",
        "stage.policy_sims",
        "stage.period_search",
        "stage.aggregate",
    ] {
        assert!(data.spans.iter().any(|s| s.name == name), "missing span {name}");
    }
    // Task spans carry the policy/dist/p labels.
    let task = data
        .spans
        .iter()
        .find(|s| {
            s.name == "task.policy_sim"
                && s.labels.iter().any(|(k, v)| *k == "policy" && v == "DPNextFailure")
        })
        .expect("a DPNextFailure task span");
    assert!(task.labels.iter().any(|(k, v)| *k == "dist" && v == "obs-span-cell"));
    assert!(task.labels.iter().any(|(k, v)| *k == "p" && v == "1"));
    assert!(data.spans.iter().any(|s| s.name == "task.candidate_sim"));
    assert!(data.spans.iter().any(|s| s.name == "task.lower_bound"));

    // The run attached the counter-delta breakdown, and it is populated.
    let obs = r.perf.obs.expect("session open → perf.obs attached");
    assert!(obs.sim_runs > 0, "engine runs counted");
    assert!(obs.dp_solves > 0, "cold fingerprint → DP solved at least once");
    assert!(obs.dp_near_row_sweeps > 0);
    assert!(obs.sim_decisions > 0);
    assert_eq!(obs.trace_cache_misses, sc.traces as u64, "each trace generated once");

    // Both exporters render the session.
    let trace = data.chrome_trace_json();
    assert!(trace.contains("\"task.policy_sim\""));
    assert!(trace.contains("\"stage.policy_sims\""));
    let report = data.perf_report();
    assert!(report.contains("stage.policy_sims"));
    assert!(report.contains("dp.solves"));

    // Without a session the breakdown stays absent (and its JSON field
    // is omitted — the byte-compat contract).
    let quiet = run_scenario(&sc, &kinds, &fast_options());
    assert!(quiet.perf.obs.is_none());
    assert!(!quiet.perf.to_json().contains("\"obs\""));
}

#[test]
fn prewarm_makes_figure_sweeps_cache_hot() {
    let _serial = lock();

    // Unique MTBF again: the labeled counters below see only this cell.
    let dist = DistSpec::Weibull { shape: 0.7, mtbf: 23_417.0 * 3_600.0 };
    let mut sc = Scenario::single_processor(dist.clone(), 4);
    sc.total_work = 12.0 * 3_600.0;
    sc.label = "obs-prewarm-cell".into();
    let study = Study::new()
        .with_kinds([PolicyKind::DpNextFailure(Default::default()), PolicyKind::OptExp])
        .with_options(fast_options());

    for warmed in study.prewarm(std::slice::from_ref(&sc)) {
        warmed.expect("well-formed cell prewarms");
    }

    let Some(session) = ckpt_obs::ObsSession::start() else { return };
    let r = study.run(&sc).expect("runs");
    let data = session.finish();

    // ~100% hit rate, proven per fingerprint: the full sweep run after
    // prewarm must not miss the shared plan/kernel caches at all.
    let label = fp_label(&sc.dist);
    let plan_hits = data.counters.labeled("plan_cache.plans.hits", &label);
    assert!(plan_hits > 0, "DP policy must consult the plan cache");
    assert_eq!(
        data.counters.labeled("plan_cache.plans.misses", &label),
        0,
        "prewarmed plan cache must serve every lookup"
    );
    assert_eq!(
        data.counters.labeled("plan_cache.kernel_rows.misses", &label),
        0,
        "prewarmed kernel-row cache must serve every lookup"
    );
    // The traces were generated during prewarm, so the sweep run only hits.
    assert!(data.counter("trace_cache.hits") >= sc.traces as u64);
    assert_eq!(data.counter("trace_cache.misses"), 0);
    // And the attached breakdown tells the same story.
    let obs = r.perf.obs.expect("session open → perf.obs attached");
    assert_eq!(obs.dp_solves, 0, "no cold solves after prewarm");
    assert_eq!(obs.trace_cache_misses, 0);
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden")
}

/// Re-run every golden cell and byte-compare against the committed
/// files — the same contract as `golden_pipeline.rs`, here exercised
/// while a recording session is open.
fn check_all_cells_against_disk() {
    for (stem, scenario, kinds, options) in golden_cells() {
        let path = golden_dir().join(format!("{stem}.json"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let actual = golden_json(&run_scenario(&scenario, &kinds, &options));
        assert_eq!(
            actual, expected,
            "recording session perturbed {} — obs must be result-invisible",
            path.display()
        );
    }
}

#[test]
fn goldens_stay_byte_identical_while_recording() {
    let _serial = lock();
    for threads in [1usize, 8] {
        let session = ckpt_obs::ObsSession::start();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(check_all_cells_against_disk);
        if let Some(session) = session {
            let data = session.finish();
            assert!(data.counter("sim.runs") > 0, "session must actually have recorded");
        }
    }
}
