//! Machine-checked model of the work-stealing wave executor
//! (`ckpt_exp::steal`) — the Rust analogue of `DistributedExecution.tla`
//! (SNIPPETS.md Snippet 2), proptest-driven instead of TLC-driven.
//!
//! The coordinator ([`WaveState`]) is a pure state machine, so the
//! model tests explore arbitrary interleavings directly: a generated
//! schedule picks which worker acts at each step (claim or complete),
//! optionally designates one worker that **stalls forever** holding
//! its claim, and `check_invariants` is asserted after every single
//! transition. The properties, as in the TLA+ model:
//!
//! * **No task loss** — after quiescence, every task is completed
//!   except the one a stalled worker still holds.
//! * **No duplication** — every task is claimed exactly once
//!   (`WaveState::complete` additionally hard-asserts it).
//! * **Progress** — from any reachable state, the non-stalled workers
//!   drain the wave within a fuel bound linear in tasks + workers
//!   (claims never block, so there is no deadlock to reach).
//!
//! The threaded half runs the same executor with real threads:
//! results must be bit-identical to the sequential drain for any
//! worker count / heavy marking, and a poisoned (panicking) task must
//! surface the lowest poisoned task ID deterministically *after*
//! every sibling ran — no hang, no dropped tasks.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ckpt_exp::steal::{run_wave, WaveState};
use proptest::collection::vec;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

/// Drive a wave through an arbitrary schedule, then drain it to
/// quiescence with the non-stalled workers, checking the structural
/// invariant after every transition. Returns per-task claim counts.
fn drive(
    n: usize,
    workers: usize,
    heavy: &[bool],
    seed: u64,
    schedule: &[usize],
    stalled: Option<usize>,
) -> Vec<u32> {
    let mut state = WaveState::new(heavy, workers, seed);
    state.check_invariants();
    let mut claims = vec![0u32; n];

    // Phase 1: the generated interleaving. Claims and completions race
    // in whatever order the schedule dictates; a stalled worker claims
    // once and then never completes.
    for &step in schedule {
        let w = step % workers;
        if stalled == Some(w) {
            if state.executing(w).is_none() {
                if let Some(id) = state.claim(w) {
                    claims[id] += 1;
                }
                state.check_invariants();
            }
            continue;
        }
        if state.executing(w).is_some() {
            state.complete(w);
        } else if let Some(id) = state.claim(w) {
            claims[id] += 1;
        }
        state.check_invariants();
    }

    // Phase 2: progress. The live workers must drain everything that
    // is not held by the stalled worker, within a fuel bound: every
    // round either transitions (claim or complete) at least once or
    // the wave is quiescent, and there are at most 2n transitions.
    let mut fuel = 2 * n + workers + 4;
    loop {
        let mut progressed = false;
        for w in 0..workers {
            if stalled == Some(w) {
                continue;
            }
            if state.executing(w).is_some() {
                state.complete(w);
                progressed = true;
            } else if let Some(id) = state.claim(w) {
                claims[id] += 1;
                progressed = true;
            }
            state.check_invariants();
        }
        if !progressed {
            break;
        }
        fuel -= 1;
        assert!(fuel > 0, "no progress bound: wave failed to drain within fuel");
    }

    // No task loss: quiescence means everything completed except a
    // stalled worker's held claim.
    let held = stalled.and_then(|w| state.executing(w));
    assert_eq!(
        state.remaining(),
        usize::from(held.is_some()),
        "tasks lost at quiescence (held: {held:?})"
    );
    assert_eq!(state.drained(), held.is_none());

    // Scheduling counters account for every claim exactly once.
    let total: u64 = claims.iter().map(|&c| u64::from(c)).sum();
    assert_eq!(state.stats.claims(), total);
    assert_eq!(state.stats.per_worker.iter().sum::<u64>(), total);
    claims
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The TLA+ properties over arbitrary schedules: no-loss, no-dup,
    /// progress — including steal races (idle workers raid loaded
    /// deques mid-schedule) and a stalled worker.
    fn model_no_loss_no_dup_progress(
        n in 1usize..32,
        workers in 1usize..6,
        heavy_sel in vec(0usize..2, 32),
        seed in 0u64..u64::MAX,
        schedule in vec(0usize..64, 0..160),
        stall_sel in 0usize..12,
    ) {
        let heavy: Vec<bool> = (0..n).map(|i| heavy_sel[i] == 1).collect();
        // Stalling the only worker would (correctly) strand the whole
        // wave; the property needs a live worker to steal the backlog.
        let stalled = (workers >= 2 && stall_sel < workers).then_some(stall_sel);
        let claims = drive(n, workers, &heavy, seed, &schedule, stalled);
        // No duplication: every task claimed exactly once (a stalled
        // worker's held task was still claimed exactly once).
        prop_assert!(claims.iter().all(|&c| c == 1), "claim counts: {claims:?}");
    }

    /// Replay determinism: the same seed and schedule visit the exact
    /// same claim sequence, steals included.
    fn model_schedules_replay_deterministically(
        n in 1usize..24,
        workers in 2usize..6,
        heavy_sel in vec(0usize..2, 24),
        seed in 0u64..u64::MAX,
        schedule in vec(0usize..64, 0..120),
    ) {
        let heavy: Vec<bool> = (0..n).map(|i| heavy_sel[i] == 1).collect();
        let replay = || {
            let mut state = WaveState::new(&heavy, workers, seed);
            let mut log = Vec::new();
            for &step in &schedule {
                let w = step % workers;
                if state.executing(w).is_some() {
                    log.push((w, usize::MAX, state.complete(w)));
                } else if let Some(id) = state.claim(w) {
                    log.push((w, id, usize::MAX));
                }
            }
            (log, state.stats.clone())
        };
        let (log_a, stats_a) = replay();
        let (log_b, stats_b) = replay();
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// Real threads: the committed output is bit-identical to the
    /// sequential drain for any worker count and heavy marking, and
    /// every task is claimed exactly once.
    fn threaded_wave_matches_sequential(
        n in 0usize..48,
        workers in 1usize..9,
        heavy_sel in vec(0usize..2, 48),
    ) {
        let tasks: Vec<u64> = (0..n as u64).collect();
        let heavy = |t: &u64| heavy_sel[*t as usize] == 1;
        let work = |i: usize, t: &u64| (i as u64) ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let (seq, seq_stats) = run_wave(&tasks, 1, heavy, work);
        let (par, par_stats) = run_wave(&tasks, workers, heavy, work);
        prop_assert_eq!(seq, par);
        prop_assert_eq!(seq_stats.claims(), n as u64);
        prop_assert_eq!(par_stats.claims(), n as u64);
        prop_assert_eq!(par_stats.per_worker.iter().sum::<u64>(), n as u64);
    }
}

/// A poisoned task must not hang the wave, drop siblings, or surface
/// nondeterministically: the threaded drain runs *every* task, then
/// re-raises the panic of the lowest poisoned task ID — the same task
/// the sequential drain panics on first.
#[test]
fn poisoned_task_surfaces_lowest_id_and_drops_no_sibling() {
    // The default panic hook would print a backtrace per poisoned task
    // across every case below; silence it for this test only.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(|| {
        for (n, workers, poison_stride) in
            [(1usize, 4usize, 1usize), (9, 2, 3), (20, 4, 7), (33, 8, 5), (16, 16, 4)]
        {
            let tasks: Vec<u64> = (0..n as u64).collect();
            let poisoned: Vec<bool> = (0..n).map(|i| i % poison_stride == poison_stride - 1).collect();
            let lowest = poisoned.iter().position(|&p| p);
            let executed = AtomicU64::new(0);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_wave(&tasks, workers, |_| false, |i, &t| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    assert!(!poisoned[i], "poisoned task {i}");
                    t
                })
            }));
            match lowest {
                None => {
                    let (out, _) = outcome.unwrap_or_else(|_| panic!("clean wave must not panic"));
                    assert_eq!(out, tasks);
                    assert_eq!(executed.load(Ordering::Relaxed), n as u64);
                }
                Some(lo) => {
                    let payload = outcome.err().unwrap_or_else(|| panic!("poisoned wave must panic"));
                    let msg = payload
                        .downcast_ref::<String>()
                        .unwrap_or_else(|| panic!("assert! panics carry a String"));
                    assert!(msg.contains(&format!("poisoned task {lo}")), "{msg}");
                    // The threaded drain (clamped workers >= 2 here
                    // whenever n >= 2) runs every sibling before
                    // re-raising; the sequential clamp (n == 1) stops
                    // at the poisoned task, which is then trivially
                    // the whole wave.
                    if n.min(workers) >= 2 {
                        assert_eq!(executed.load(Ordering::Relaxed), n as u64);
                    }
                }
            }
        }
    });
    std::panic::set_hook(hook);
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// Worker stalls mid-wave with real threads: a worker that claims and
/// then blocks for a while must not prevent others from stealing its
/// deque backlog — the wave still completes every task.
#[test]
fn slow_worker_backlog_is_stolen_not_stranded() {
    // Task 0 is heavy *and slow* (seeded to worker 0's deque along
    // with several siblings at 4 workers); while it sleeps, the other
    // workers must steal the rest of worker 0's deque.
    let tasks: Vec<u64> = (0..32).collect();
    let (out, stats) = run_wave(
        &tasks,
        4,
        |&t| t < 8, // eight heavy tasks: two seeded per worker deque
        |i, &t| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            t + 1
        },
    );
    assert_eq!(out, (1..=32).collect::<Vec<_>>());
    assert_eq!(stats.claims(), 32);
    assert_eq!(stats.per_worker.iter().sum::<u64>(), 32);
}
