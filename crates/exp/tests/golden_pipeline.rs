//! Golden-result pinning: the plan → execute → reduce pipeline must
//! reproduce the committed `results/golden/*.json` files **byte for
//! byte**, at any rayon thread count.
//!
//! The files were generated from the pre-refactor monolithic runner
//! (via the `gen_golden` bin), so this test is the refactor's
//! bit-identity contract: same seeds, same simulations, same reduction
//! order, same shortest-roundtrip float serialisation. If a change is
//! *supposed* to move the numbers, regenerate with
//! `cargo run --release -p ckpt-exp --bin gen_golden` and commit the
//! diff; anything else that trips this test is a regression.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ckpt_exp::golden::{golden_cells, golden_json};
use ckpt_exp::runner::run_scenario;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/golden")
}

fn check_all_cells() {
    for (stem, scenario, kinds, options) in golden_cells() {
        let path = golden_dir().join(format!("{stem}.json"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let actual = golden_json(&run_scenario(&scenario, &kinds, &options));
        assert_eq!(
            actual, expected,
            "pipeline output diverged from {} — bit-identity broken",
            path.display()
        );
    }
}

#[test]
fn pipeline_reproduces_golden_results_single_threaded() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
    pool.install(check_all_cells);
}

#[test]
fn pipeline_reproduces_golden_results_eight_threads() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().expect("pool");
    pool.install(check_all_cells);
}
