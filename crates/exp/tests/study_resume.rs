//! Kill-safe resume pinning: a study stopped mid-wave (the
//! `stop_after_items` hook emulates a SIGKILL landing *between*
//! checkpoints — the final chunk's results are lost, the store is left
//! exactly as the last snapshot wrote it) and then resumed must commit
//! aggregates **byte-identical** to an uninterrupted run of the same
//! definition — at 1 and at 8 rayon threads, with the interruption
//! landing both early (policy wave) and late (the refine item resumes
//! against coarse payloads read back from disk).
//!
//! Also pins the staleness contract: a resume whose rebuilt manifest
//! fingerprint differs from the on-disk one is rejected, never
//! silently reused.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ckpt_exp::checkpoint::{build_manifest, run_study, CheckpointConfig, StudyDef, StudyOutcome};
use ckpt_exp::{DistSpec, PeriodSearch, PolicyKind, RunnerOptions, Scenario};
use ckpt_sim::SimOptions;
use std::path::{Path, PathBuf};

/// Two cells: an exhaustive-search cell and a coarse-to-fine cell whose
/// refine item folds coarse payloads — the two commit paths a kill can
/// split.
fn two_cell_def(id: &str) -> StudyDef {
    let mut a = Scenario::single_processor(DistSpec::Exponential { mtbf: 6.0 * 3_600.0 }, 4);
    a.total_work = 12.0 * 3_600.0;
    let full = RunnerOptions {
        lower_bound: true,
        period_lb: Some(vec![0.5, 1.0, 2.0]),
        period_search: PeriodSearch::Full,
        sim: SimOptions::default(),
    };

    let mut b = Scenario::single_processor(DistSpec::Exponential { mtbf: 3.0 * 3_600.0 }, 4);
    b.total_work = 12.0 * 3_600.0;
    let coarse_fine = RunnerOptions {
        lower_bound: true,
        // 25 factors in [0.4, 2.8]: big enough that CoarseToFine keeps a
        // refine wave (grid_len > min_full) instead of degrading to Full.
        period_lb: Some((1..=25).map(|i| 0.3 + 0.1 * f64::from(i)).collect()),
        period_search: PeriodSearch::CoarseToFine { coarse_step: 4, min_full: 8 },
        sim: SimOptions::default(),
    };

    StudyDef::new(
        id,
        [
            (a, vec![PolicyKind::Young, PolicyKind::OptExp], full),
            (b, vec![PolicyKind::Young, PolicyKind::OptExp], coarse_fine),
        ],
    )
}

fn store_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir()
        .join(format!("ckpt-study-resume-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn config(root: &Path) -> CheckpointConfig {
    CheckpointConfig {
        root: root.to_path_buf(),
        // A snapshot after every chunk, so the emulated kill always has
        // a recent checkpoint to fall back to…
        interval_items: 2,
        // …and the time trigger never fires (kept deterministic).
        interval_seconds: 1e9,
        trace_block: 2,
        ..CheckpointConfig::default()
    }
}

fn read_aggregates(root: &Path, id: &str, def: &StudyDef) -> Vec<(String, String)> {
    def.cells
        .iter()
        .map(|cell| {
            let path = root.join(id).join("aggregate").join(format!("{}.json", cell.stem));
            let bytes = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            (cell.stem.clone(), bytes)
        })
        .collect()
}

/// Stop a run after `stop` executed items, resume it, and require the
/// committed aggregates to match an uninterrupted run byte for byte.
fn check_kill_and_resume(root: &Path, stop: u64) {
    let interrupted = two_cell_def("interrupted");
    let stop_cfg =
        CheckpointConfig { stop_after_items: Some(stop), ..config(root) };
    let total = build_manifest(&interrupted, &stop_cfg).items.len() as u64;
    assert!(stop < total, "stop hook must land mid-study ({stop} < {total})");

    match run_study(&interrupted, &stop_cfg, false).expect("interrupted run starts") {
        StudyOutcome::Stopped { completed, total: t } => {
            assert!(completed >= stop, "stop fires only after `stop` items");
            assert!(completed < t, "stop must leave pending items");
        }
        StudyOutcome::Complete(_) => panic!("stop hook must fire before completion"),
    }
    // A stopped run commits nothing: no aggregates until the resume.
    assert!(
        !root.join("interrupted/aggregate").exists(),
        "aggregates must only exist after completion"
    );

    let resume_cfg = config(root);
    let report = match run_study(&interrupted, &resume_cfg, true).expect("resume runs") {
        StudyOutcome::Complete(report) => report,
        StudyOutcome::Stopped { .. } => panic!("no stop hook on the resume"),
    };
    assert!(report.items_resumed > 0, "resume must restore snapshot items");
    assert!(
        report.items_resumed < report.items_total,
        "the final pre-kill chunk was never snapshotted, so some items re-execute"
    );
    assert_eq!(
        report.items_resumed + report.items_executed,
        report.items_total,
        "resume replays exactly the non-snapshotted items"
    );
    for (stem, result) in &report.results {
        assert!(result.is_ok(), "cell {stem} failed: {result:?}");
    }

    let uninterrupted = two_cell_def("uninterrupted");
    match run_study(&uninterrupted, &config(root), false).expect("uninterrupted run") {
        StudyOutcome::Complete(report) => {
            for (stem, result) in &report.results {
                assert!(result.is_ok(), "cell {stem} failed: {result:?}");
            }
        }
        StudyOutcome::Stopped { .. } => panic!("no stop hook configured"),
    }

    let resumed = read_aggregates(root, "interrupted", &interrupted);
    let clean = read_aggregates(root, "uninterrupted", &uninterrupted);
    for ((stem_a, bytes_a), (stem_b, bytes_b)) in resumed.iter().zip(&clean) {
        assert_eq!(stem_a, stem_b);
        assert_eq!(
            bytes_a, bytes_b,
            "killed-and-resumed aggregate {stem_a} diverged from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn kill_mid_wave_then_resume_is_bit_identical_single_threaded() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().expect("pool");
    let root = store_root("1thread");
    pool.install(|| check_kill_and_resume(&root, 16));
}

#[test]
fn kill_mid_wave_then_resume_is_bit_identical_eight_threads() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().expect("pool");
    let root = store_root("8threads");
    pool.install(|| check_kill_and_resume(&root, 16));
}

#[test]
fn kill_just_before_refine_resumes_coarse_payloads_from_disk() {
    // Stop one item short of the end: the refine item (always the
    // cell's last) runs in the resume process, assembling its coarse
    // columns from payloads that crossed a process boundary.
    let pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().expect("pool");
    let root = store_root("late");
    let total =
        build_manifest(&two_cell_def("interrupted"), &config(&root)).items.len() as u64;
    pool.install(|| check_kill_and_resume(&root, total - 1));
}

#[test]
fn stale_manifest_fingerprint_refuses_to_resume() {
    let root = store_root("stale");
    let def = two_cell_def("stale");
    let stop_cfg = CheckpointConfig { stop_after_items: Some(8), ..config(&root) };
    match run_study(&def, &stop_cfg, false).expect("interrupted run starts") {
        StudyOutcome::Stopped { .. } => {}
        StudyOutcome::Complete(_) => panic!("stop hook must fire"),
    }

    // The same id now describes different work: the roster changed, so
    // the rebuilt fingerprint diverges from the persisted manifest.
    let mut altered = def;
    altered.cells[0].kinds.pop();
    let err = run_study(&altered, &config(&root), true)
        .expect_err("stale checkpoints must be rejected, not silently reused");
    let msg = err.to_string();
    assert!(msg.contains("refusing to resume"), "{msg}");
    assert!(msg.contains("fingerprint"), "{msg}");
    let _ = std::fs::remove_dir_all(&root);
}
