//! Property tests for the checkpoint store's wire format: any
//! manifest/checkpoint value that the emitters can produce must parse
//! back **equal** (floats travel as exact `u64` bit patterns, so
//! equality is bit equality), and any persisted makespan whose bits
//! decode to NaN/Inf must be *rejected* at parse time — the store's
//! NaN/Inf-free invariant. Chunk bounds are exempt (`chunk_min` is
//! legitimately `+∞` on decision-free runs) and the strategies leave
//! them fully arbitrary to prove it.
//!
//! Strategies are built from the offline proptest stub's primitives
//! (ranges, tuples, `prop_map`, `collection::vec`); enum variants are
//! picked by a generated selector index.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use ckpt_exp::checkpoint::{
    checkpoint_json, manifest_json, parse_checkpoint, parse_manifest, ItemKind,
    ItemPayload, ManifestCell, RefineColumn, StudyManifest, TraceStatsBits, WorkItem,
    STORE_VERSION,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Exponent field of an IEEE-754 double (all-ones ⇒ Inf/NaN).
const EXP_MASK: u64 = 0x7FF << 52;

/// Characters the JSON escaper and unescaper must agree on: quotes,
/// backslashes, control characters (escaped as `\u00XX`), multi-byte
/// code points, and an astral-plane scalar (a surrogate *pair* under
/// `\u` escaping).
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\t', '\r', '\u{0}', '\u{1}', '\u{7f}',
    'é', 'Δ', '€', '🦀',
];

fn any_string() -> impl Strategy<Value = String> {
    vec(0..PALETTE.len(), 0..12).prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

fn any_bool() -> impl Strategy<Value = bool> {
    (0..2u32).prop_map(|b| b == 1)
}

fn any_u64() -> impl Strategy<Value = u64> {
    0..u64::MAX
}

/// Arbitrary bit patterns nudged to decode finite: flipping bit 62
/// turns an all-ones exponent into `0b011…`, so the map is total and
/// never discards cases.
fn finite_bits() -> impl Strategy<Value = u64> {
    any_u64().prop_map(|b| if f64::from_bits(b).is_finite() { b } else { b ^ (1 << 62) })
}

/// Stats with a finite makespan but *fully arbitrary* chunk bounds —
/// NaN/Inf chunk bits must round-trip, not be rejected.
fn stats_bits() -> impl Strategy<Value = TraceStatsBits> {
    (finite_bits(), any_u64(), any_u64(), any_u64(), any_u64()).prop_map(
        |(makespan, failures, decisions, chunk_min, chunk_max)| TraceStatsBits {
            makespan,
            failures,
            decisions,
            chunk_min,
            chunk_max,
        },
    )
}

fn refine_column() -> impl Strategy<Value = RefineColumn> {
    (0..600usize, vec(stats_bits(), 0..3))
        .prop_map(|(candidate, stats)| RefineColumn { candidate, stats })
}

/// Every payload variant (selector-indexed); the ingredient pools are
/// generated unconditionally and the unused ones discarded.
fn payload() -> impl Strategy<Value = ItemPayload> {
    (
        0..5usize,
        (any_bool(), any_string(), vec(stats_bits(), 0..4)),
        vec(finite_bits(), 0..4),
        vec(refine_column(), 0..3),
        any_string(),
    )
        .prop_map(|(variant, (built, reason, stats), makespans, columns, error)| {
            match variant {
                0 => ItemPayload::Policy { built, reason, stats },
                1 => ItemPayload::LowerBound { makespans },
                2 => ItemPayload::Coarse { stats },
                3 => ItemPayload::Refine { columns },
                _ => ItemPayload::CellFailed { error },
            }
        })
}

fn completed_map() -> impl Strategy<Value = BTreeMap<u64, ItemPayload>> {
    vec((any_u64(), payload()), 0..8).prop_map(|kv| kv.into_iter().collect())
}

fn item_kind() -> impl Strategy<Value = ItemKind> {
    (0..4usize, 0..16usize, 0..600usize).prop_map(|(variant, policy, candidate)| {
        match variant {
            0 => ItemKind::Policy { policy },
            1 => ItemKind::LowerBound,
            2 => ItemKind::Coarse { candidate },
            _ => ItemKind::Refine,
        }
    })
}

fn work_item() -> impl Strategy<Value = WorkItem> {
    (any_u64(), 0..8usize, item_kind(), 0..1000usize, 0..32usize).prop_map(
        |(id, cell, kind, trace_lo, len)| WorkItem {
            id,
            cell,
            kind,
            trace_lo,
            trace_hi: trace_lo + len,
        },
    )
}

fn manifest_cell() -> impl Strategy<Value = ManifestCell> {
    (
        (any_string(), any_string(), any_u64(), 0..100_000usize, any_string()),
        (
            vec(any_string(), 0..4),
            any_string(),
            0..600usize,
            vec(0..600usize, 0..6),
            (0..16usize, any_bool()),
        ),
    )
        .prop_map(
            |(
                (label, stem, procs, traces, dist_id),
                (roster, options, grid_len, coarse, (refine_step, lower_bound)),
            )| ManifestCell {
                label,
                stem,
                procs,
                traces,
                dist_id,
                roster,
                options,
                grid_len,
                coarse,
                refine_step,
                lower_bound,
            },
        )
}

fn study_manifest() -> impl Strategy<Value = StudyManifest> {
    (
        (any_u64(), any_string(), any_string(), 0..64usize, 1..64usize, any_string()),
        vec(manifest_cell(), 0..3),
        vec(work_item(), 0..10),
    )
        .prop_map(
            |((version, study, fingerprint, lanes, trace_block, golden_hash), cells, items)| {
                StudyManifest {
                    version,
                    study,
                    fingerprint,
                    lanes,
                    trace_block,
                    golden_hash,
                    cells,
                    items,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    fn manifest_round_trips_byte_exact(m in study_manifest()) {
        let parsed = parse_manifest(&manifest_json(&m))
            .expect("emitted manifest must parse");
        prop_assert_eq!(parsed, m);
    }

    fn manifest_emission_is_a_pure_function(m in study_manifest()) {
        // The fingerprint hashes this serialisation, so it must be
        // deterministic down to the byte.
        prop_assert_eq!(manifest_json(&m), manifest_json(&m));
    }

    fn checkpoint_round_trips_byte_exact(
        study in any_string(),
        fingerprint in any_string(),
        seq in any_u64(),
        completed in completed_map(),
    ) {
        let src = checkpoint_json(&study, &fingerprint, seq, &completed);
        let parsed = parse_checkpoint(&src).expect("emitted checkpoint must parse");
        prop_assert_eq!(parsed.version, STORE_VERSION);
        prop_assert_eq!(parsed.study, study);
        prop_assert_eq!(parsed.fingerprint, fingerprint);
        prop_assert_eq!(parsed.seq, seq);
        prop_assert_eq!(parsed.completed, completed);
    }

    fn non_finite_lower_bound_makespans_are_rejected(
        id in any_u64(),
        bits in any_u64(),
        completed in completed_map(),
    ) {
        let mut completed = completed;
        let non_finite = bits | EXP_MASK;
        completed.insert(id, ItemPayload::LowerBound { makespans: vec![non_finite] });
        let src = checkpoint_json("s", "fp", 0, &completed);
        let err = parse_checkpoint(&src)
            .expect_err("a NaN/Inf makespan must not load");
        prop_assert!(err.to_string().contains("non-finite"), "{}", err);
    }

    fn non_finite_stats_makespans_are_rejected(
        id in any_u64(),
        bits in any_u64(),
        stats in stats_bits(),
        completed in completed_map(),
    ) {
        let mut stats = stats;
        let mut completed = completed;
        stats.makespan = bits | EXP_MASK;
        completed.insert(id, ItemPayload::Coarse { stats: vec![stats] });
        let src = checkpoint_json("s", "fp", 0, &completed);
        let err = parse_checkpoint(&src)
            .expect_err("a NaN/Inf makespan must not load");
        prop_assert!(err.to_string().contains("non-finite"), "{}", err);
    }
}
