//! Execution layer: drains a [`SimPlan`] through the work-stealing
//! wave executor ([`crate::steal`]).
//!
//! [`execute`] is the only place the pipeline touches the engine: it
//! fetches traces through the shared [`TraceCache`] (`Arc`-shared with
//! every worker), instantiates the roster through the policy
//! [`registry`](crate::registry), and drains the plan's task waves with
//! `drain_wave` — [`steal::run_wave`] under the plan's task numbering,
//! with DP sims marked heavy so they seed the per-worker deques and
//! start first. Results are committed in task-ID order, so every
//! reduction downstream sees results in plan order and the output is
//! bit-identical at any worker count ([`steal::workers`], settable via
//! the CLI `--threads`).
//!
//! Failures are values here: a policy that cannot be instantiated for
//! the cell (Liu's footnote-2 cases) becomes an [`Error`] stored in
//! [`ExecOutput::policy_build`] and a column of absent cells — never a
//! panic, never an aborted scenario. Per-stage wall-clock and work
//! counters (including the wave scheduling counters on
//! [`PipelinePerf::exec`]) feed the caller's [`PipelinePerf`].

use crate::cache::{CachedTrace, TraceCache};
use crate::error::Error;
use crate::perf::PipelinePerf;
use crate::plan::{self, SimPlan, SimTask};
use crate::scenario::{BuiltDist, Scenario};
use crate::steal;
use ckpt_policies::Policy;
use ckpt_sim::lower_bound_makespan;
use ckpt_workload::JobSpec;
use std::sync::Arc;
use std::time::Instant;

/// One roster-policy simulation result on one trace.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCell {
    /// Makespan, seconds.
    pub makespan: f64,
    /// Failures hit during the run.
    pub failures: u64,
    /// Smallest chunk attempted.
    pub chunk_min: f64,
    /// Largest chunk attempted.
    pub chunk_max: f64,
}

/// Outcome of the `PeriodLB` candidate search.
#[derive(Debug, Clone)]
pub struct SearchOutput {
    /// Winning factor.
    pub factor: f64,
    /// Winning candidate's per-trace makespans, in trace order.
    pub column: Vec<f64>,
}

/// Everything the executor measured, keyed back to plan indices.
pub struct ExecOutput {
    /// Per roster entry: `Err` ⇒ the policy could not be instantiated
    /// for this cell (failure as a value, reported as an absent row).
    pub policy_build: Vec<Result<(), Error>>,
    /// `cells[policy][trace]`; `None` for unbuildable policies.
    pub cells: Vec<Vec<Option<PolicyCell>>>,
    /// Lower-bound makespans in trace order, when the plan enables them.
    pub lower_bounds: Option<Vec<f64>>,
    /// `PeriodLB` search outcome, when the plan has a candidate grid.
    pub search: Option<SearchOutput>,
}

/// Is this policy kind a wave long pole (a DP sim)? Shared with the
/// checkpointed study runner so both drains seed the same task classes
/// into the worker deques.
pub(crate) fn heavy_policy_kind(k: &crate::policies_spec::PolicyKind) -> bool {
    matches!(
        k,
        crate::policies_spec::PolicyKind::DpNextFailure(_)
            | crate::policies_spec::PolicyKind::DpMakespan(_)
    )
}

/// Drain one wave through the work-stealing executor. Heavy tasks seed
/// the per-worker deques (each worker starts on a long pole instead of
/// trailing it — the schedule the old rayon drain approximated with a
/// heavy-first permutation and `with_max_len(1)`); the cheap bulk
/// drains through the shared injector. Results are committed in task
/// order, which is what makes downstream reductions independent of
/// worker count and scheduling; the wave's scheduling counters
/// accumulate on `perf.exec`.
fn drain_wave<T, F, H>(tasks: &[SimTask], perf: &mut PipelinePerf, is_heavy: H, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(SimTask) -> T + Sync,
    H: Fn(&SimTask) -> bool,
{
    let (out, stats) = steal::run_wave(tasks, steal::workers(), is_heavy, |_, &t| run(t));
    perf.exec.get_or_insert_with(Default::default).absorb(&stats);
    out
}

/// Per-task output of the roster wave.
enum RosterOutput {
    Policy { cell: Option<PolicyCell>, decisions: u64, failures: u64 },
    LowerBound { makespan: f64 },
}

/// Run one policy session on one cached trace. Shared with the
/// checkpointed study runner ([`crate::checkpoint`]), whose item
/// executors must perform bit-identical sims to this executor's waves.
pub(crate) fn simulate_on(
    spec: &JobSpec,
    policy: &dyn Policy,
    ct: &CachedTrace,
    sim: ckpt_sim::SimOptions,
) -> ckpt_sim::RunStats {
    let mut session = policy.session();
    ckpt_sim::simulate(
        spec,
        &mut *session,
        &ct.events,
        ct.procs_per_unit(),
        ct.traces.start_time,
        ct.traces.horizon,
        sim,
    )
}

/// Execute a plan against a scenario: fetch traces, build the roster,
/// drain the roster wave, then the candidate waves. Pushes the
/// `trace_gen`, `policy_sims` and `period_search` stages onto `perf`.
pub fn execute(
    scenario: &Scenario,
    built: &BuiltDist,
    sim_plan: &SimPlan,
    perf: &mut PipelinePerf,
) -> ExecOutput {
    let spec = scenario.job_spec();

    // Stage 1: trace generation (process-wide cache, shared via Arc).
    // lint: allow(transitive-nondeterminism) — stage timer feeds PipelinePerf only, never result rows
    let t_stage = Instant::now();
    let stage_span = ckpt_obs::span("stage.trace_gen");
    let cache = TraceCache::global();
    let trace_tasks: Vec<usize> = (0..sim_plan.traces).collect();
    let (cached, trace_stats) = steal::run_wave(
        &trace_tasks,
        steal::workers(),
        |_| false,
        |_, &idx| cache.get_or_generate(scenario, built, idx),
    );
    let cached: Vec<Arc<CachedTrace>> = cached;
    perf.exec.get_or_insert_with(Default::default).absorb(&trace_stats);
    drop(stage_span);
    perf.push_stage("trace_gen", t_stage, sim_plan.traces as u64);

    // Instantiate the roster once through the registry; sessions are
    // per-task. Build failures become values.
    let policies: Vec<Result<Box<dyn Policy>, Error>> = sim_plan
        .kinds
        .iter()
        .map(|k| crate::registry::build_policy(k, scenario, built))
        .collect();

    // Stage 2: the roster wave (policy sims plus lower bounds). DP sims
    // are the wave's long poles — schedule them first so they overlap the
    // cheap periodic sims instead of trailing them. The shared plan/
    // kernel-row caches are snapshotted around the wave so the perf
    // report attributes exactly this run's hits/misses/evictions.
    // lint: allow(transitive-nondeterminism) — stage timer feeds PipelinePerf only, never result rows
    let t_stage = Instant::now();
    let stage_span = ckpt_obs::span("stage.policy_sims");
    let caches_before = ckpt_policies::DpCaches::global().stats();
    let tasks = sim_plan.roster_wave();
    let is_heavy = |task: &SimTask| match task {
        SimTask::Policy { policy, .. } => heavy_policy_kind(&sim_plan.kinds[*policy]),
        _ => false,
    };
    ckpt_obs::gauge_max("wave.roster_tasks", tasks.len() as u64);
    let outputs = drain_wave(&tasks, perf, is_heavy, |task| match task {
        SimTask::Policy { policy, trace } => match &policies[policy] {
            Ok(p) => {
                // Task id = plan position: deterministic, so the merged
                // span order is identical at any thread count.
                let mut span = ckpt_obs::task_span(
                    "task.policy_sim",
                    (policy * sim_plan.traces + trace) as u64,
                );
                if ckpt_obs::active() {
                    span.label("policy", p.name().to_string());
                    span.label("dist", scenario.label.clone());
                    span.label("p", scenario.procs.to_string());
                }
                let st = simulate_on(&spec, p.as_ref(), &cached[trace], sim_plan.sim);
                RosterOutput::Policy {
                    cell: Some(PolicyCell {
                        makespan: st.makespan,
                        failures: st.failures,
                        chunk_min: st.chunk_min,
                        chunk_max: st.chunk_max,
                    }),
                    decisions: st.decisions,
                    failures: st.failures,
                }
            }
            Err(_) => RosterOutput::Policy { cell: None, decisions: 0, failures: 0 },
        },
        SimTask::LowerBound { trace } => {
            let _span = ckpt_obs::task_span(
                "task.lower_bound",
                (sim_plan.kinds.len() * sim_plan.traces + trace) as u64,
            );
            RosterOutput::LowerBound {
                makespan: lower_bound_makespan(&spec, &cached[trace].traces).makespan,
            }
        }
        SimTask::Candidate { .. } => {
            unreachable!("candidate tasks are drained in the search waves")
        }
    });
    // Scatter task outputs into [policy][trace] matrices (plan order is
    // preserved by drain_wave, so this is a deterministic transpose).
    let mut cells: Vec<Vec<Option<PolicyCell>>> =
        vec![vec![None; sim_plan.traces]; sim_plan.kinds.len()];
    let mut lower_bounds =
        sim_plan.lower_bound.then(|| vec![0.0f64; sim_plan.traces]);
    for (task, out) in tasks.iter().zip(outputs) {
        match (task, out) {
            (SimTask::Policy { policy, trace }, RosterOutput::Policy { cell, decisions, failures }) => {
                cells[*policy][*trace] = cell;
                perf.decisions += decisions;
                perf.failures += failures;
            }
            (SimTask::LowerBound { trace }, RosterOutput::LowerBound { makespan }) => {
                if let Some(lb) = &mut lower_bounds {
                    lb[*trace] = makespan;
                }
            }
            _ => unreachable!("wave outputs align with their tasks"),
        }
    }
    let ran_policies = policies.iter().filter(|b| b.is_ok()).count() as u64;
    perf.policy_sims = ran_policies * sim_plan.traces as u64;
    perf.plan_cache =
        ckpt_policies::DpCaches::global().stats().delta_since(&caches_before).into();
    drop(stage_span);
    perf.push_stage("policy_sims", t_stage, perf.policy_sims);

    // Stage 3: PeriodLB candidate waves (coarse, then refine).
    // lint: allow(transitive-nondeterminism) — stage timer feeds PipelinePerf only, never result rows
    let t_stage = Instant::now();
    let stage_span = ckpt_obs::span("stage.period_search");
    let search = search_candidates(&spec, built, sim_plan, &cached, perf);
    drop(stage_span);
    perf.push_stage("period_search", t_stage, perf.candidate_sims);

    ExecOutput {
        policy_build: policies.into_iter().map(|r| r.map(|_| ())).collect(),
        cells,
        lower_bounds,
        search,
    }
}

/// Drain the candidate waves: evaluate the plan's coarse indices, pick
/// the incumbent, evaluate the refine window, and return the winner by
/// mean makespan (ties toward the smaller factor).
fn search_candidates(
    spec: &JobSpec,
    built: &BuiltDist,
    sim_plan: &SimPlan,
    cached: &[Arc<CachedTrace>],
    perf: &mut PipelinePerf,
) -> Option<SearchOutput> {
    if sim_plan.grid.is_empty() {
        return None;
    }
    perf.candidate_grid_size = sim_plan.grid.len() as u64;
    let base = crate::registry::optexp_base(spec, built.proc_mtbf);
    // columns[candidate] = (per-trace makespans, mean).
    let mut columns: Vec<Option<(Vec<f64>, f64)>> = vec![None; sim_plan.grid.len()];

    let mut evaluate_wave = |wave: &'static str,
                             indices: &[usize],
                             columns: &mut Vec<Option<(Vec<f64>, f64)>>| {
        let fresh: Vec<usize> =
            indices.iter().copied().filter(|&i| columns[i].is_none()).collect();
        let tasks = sim_plan.candidate_wave(&fresh);
        ckpt_obs::gauge_max("wave.candidate_tasks", tasks.len() as u64);
        let outputs = drain_wave(&tasks, perf, |_| false, |task| {
            let SimTask::Candidate { candidate, trace } = task else {
                unreachable!("candidate waves contain only candidate tasks")
            };
            // Candidate ids live above the roster wave's id range.
            let mut span = ckpt_obs::task_span(
                "task.candidate_sim",
                ((sim_plan.kinds.len() + 1 + candidate) * sim_plan.traces + trace) as u64,
            );
            if ckpt_obs::active() {
                span.label("wave", wave);
                span.label("factor", format!("{}", sim_plan.grid[candidate]));
            }
            let policy = base.as_fixed_period().scaled(sim_plan.grid[candidate]);
            let st = simulate_on(spec, &policy, &cached[trace], sim_plan.sim);
            (st.makespan, st.decisions, st.failures)
        });
        ckpt_obs::counter_add_labeled("period_search.candidate_sims", wave, tasks.len() as u64);
        perf.candidate_sims += tasks.len() as u64;
        for (task, (makespan, decisions, failures)) in tasks.iter().zip(&outputs) {
            let SimTask::Candidate { candidate, trace } = task else {
                unreachable!("candidate waves contain only candidate tasks")
            };
            let col = &mut columns[*candidate]
                .get_or_insert_with(|| (vec![0.0; sim_plan.traces], 0.0))
                .0;
            col[*trace] = *makespan;
            perf.decisions += decisions;
            perf.failures += failures;
        }
        // Means in candidate order, summed in trace order: the exact
        // reduction the monolith performed.
        for &i in &fresh {
            if let Some((col, mean)) = &mut columns[i] {
                *mean = col.iter().sum::<f64>() / col.len().max(1) as f64;
            }
        }
    };

    evaluate_wave("coarse", &sim_plan.coarse, &mut columns);
    if sim_plan.refine_step.is_some() {
        let means: Vec<Option<f64>> =
            columns.iter().map(|c| c.as_ref().map(|(_, m)| *m)).collect();
        if let Some(incumbent) = plan::winner(&means) {
            let window: Vec<usize> = sim_plan.refine_window(incumbent).collect();
            evaluate_wave("refine", &window, &mut columns);
        }
    }

    let means: Vec<Option<f64>> =
        columns.iter().map(|c| c.as_ref().map(|(_, m)| *m)).collect();
    let winner = plan::winner(&means)?;
    let (column, _) = columns[winner].take()?;
    Some(SearchOutput { factor: sim_plan.grid[winner], column })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::plan::plan_scenario;
    use crate::policies_spec::PolicyKind;
    use crate::runner::{PeriodSearch, RunnerOptions};
    use crate::scenario::DistSpec;
    use ckpt_sim::SimOptions;

    fn tiny() -> Scenario {
        let mut s = Scenario::single_processor(
            DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            4,
        );
        s.total_work = 12.0 * 3_600.0;
        s
    }

    #[test]
    fn execute_fills_every_built_policy_cell() {
        let sc = tiny();
        let opts = RunnerOptions {
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            period_search: PeriodSearch::Full,
            lower_bound: true,
            sim: SimOptions::default(),
        };
        let sim_plan = plan_scenario(&sc, &[PolicyKind::Young], &opts);
        let built = sc.dist.build();
        let mut perf = PipelinePerf::default();
        let out = execute(&sc, &built, &sim_plan, &mut perf);
        assert!(out.policy_build[0].is_ok());
        assert!(out.cells[0].iter().all(Option::is_some));
        assert_eq!(out.lower_bounds.as_ref().map(Vec::len), Some(4));
        let s = out.search.expect("grid present");
        assert_eq!(s.column.len(), 4);
        assert!([0.5, 1.0, 2.0].contains(&s.factor));
        assert_eq!(perf.policy_sims, 4);
        assert_eq!(perf.candidate_sims, 12);
    }

    #[test]
    fn unbuildable_policy_is_a_value_not_a_panic() {
        let year = 365.25 * 86_400.0;
        let sc = Scenario::petascale(
            DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * year },
            4_096,
            2,
        );
        let opts = RunnerOptions { period_lb: None, lower_bound: false, ..Default::default() };
        let sim_plan = plan_scenario(&sc, &[PolicyKind::Liu], &opts);
        let built = sc.dist.build();
        let mut perf = PipelinePerf::default();
        let out = execute(&sc, &built, &sim_plan, &mut perf);
        assert!(out.policy_build[0].is_err());
        assert!(out.cells[0].iter().all(Option::is_none));
        assert_eq!(perf.policy_sims, 0);
        assert!(out.search.is_none());
    }

    /// Failure-as-value must survive the threaded drain: an unbuildable
    /// policy at 8 workers yields the same absent column, no panic, no
    /// hang, and the buildable sibling policy still fills every cell.
    #[test]
    fn unbuildable_policy_stays_a_value_under_many_workers() {
        let year = 365.25 * 86_400.0;
        let sc = Scenario::petascale(
            DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * year },
            4_096,
            4,
        );
        let opts = RunnerOptions { period_lb: None, lower_bound: false, ..Default::default() };
        let sim_plan = plan_scenario(&sc, &[PolicyKind::Liu, PolicyKind::Young], &opts);
        let built = sc.dist.build();
        crate::steal::set_workers(8);
        let mut perf = PipelinePerf::default();
        let out = execute(&sc, &built, &sim_plan, &mut perf);
        crate::steal::set_workers(0);
        assert!(out.policy_build[0].is_err());
        assert!(out.cells[0].iter().all(Option::is_none));
        assert!(out.policy_build[1].is_ok());
        assert!(out.cells[1].iter().all(Option::is_some));
        assert_eq!(perf.policy_sims, 4);
    }

    /// The core contract of the steal executor: `execute` output is
    /// bit-identical at 1 and 8 workers (cells, lower bounds, search
    /// column and the deterministic perf counters alike).
    #[test]
    fn execute_is_bit_identical_across_worker_counts() {
        let mut sc = tiny();
        sc.traces = 8;
        let opts = RunnerOptions {
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            period_search: PeriodSearch::Full,
            lower_bound: true,
            sim: SimOptions::default(),
        };
        let kinds = [PolicyKind::Young, PolicyKind::OptExp];
        let sim_plan = plan_scenario(&sc, &kinds, &opts);
        let built = sc.dist.build();

        let run_at = |workers: usize| {
            crate::steal::set_workers(workers);
            let mut perf = PipelinePerf::default();
            let out = execute(&sc, &built, &sim_plan, &mut perf);
            crate::steal::set_workers(0);
            (out, perf)
        };
        let (seq, perf_seq) = run_at(1);
        let (par, perf_par) = run_at(8);

        for (a, b) in seq.cells.iter().zip(&par.cells) {
            for (ca, cb) in a.iter().zip(b) {
                match (ca, cb) {
                    (Some(ca), Some(cb)) => {
                        assert_eq!(ca.makespan.to_bits(), cb.makespan.to_bits());
                        assert_eq!(ca.failures, cb.failures);
                    }
                    (None, None) => {}
                    _ => panic!("cell presence differs across worker counts"),
                }
            }
        }
        assert_eq!(
            seq.lower_bounds.as_ref().map(|l| l.iter().map(|m| m.to_bits()).collect::<Vec<_>>()),
            par.lower_bounds.as_ref().map(|l| l.iter().map(|m| m.to_bits()).collect::<Vec<_>>()),
        );
        let (sa, sb) = (seq.search.expect("grid"), par.search.expect("grid"));
        assert_eq!(sa.factor.to_bits(), sb.factor.to_bits());
        assert_eq!(
            sa.column.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
            sb.column.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
        );
        // Work counters are schedule-independent; only perf.exec varies.
        assert_eq!(perf_seq.policy_sims, perf_par.policy_sims);
        assert_eq!(perf_seq.candidate_sims, perf_par.candidate_sims);
        assert_eq!(perf_seq.decisions, perf_par.decisions);
        assert_eq!(perf_seq.failures, perf_par.failures);
    }
}
