//! Lightweight pipeline instrumentation: per-stage wall-clock and
//! decision/event counters for the scenario runner, plus the JSON
//! emitter behind `scripts/bench_pipeline.sh` / `BENCH_pipeline.json`.
//!
//! The counters are plain `u64`s accumulated single-threadedly per trace
//! row and summed at aggregation time, so instrumentation adds no
//! synchronisation to the hot path.

use serde::Serialize;
use std::time::Instant;

/// Wall-clock and volume of one pipeline stage.
#[derive(Debug, Clone, Serialize)]
pub struct StagePerf {
    /// Stage name (`trace_gen`, `policy_sims`, `period_search`, `aggregate`).
    pub name: String,
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
    /// Stage-specific volume: traces generated, simulations run, rows
    /// aggregated.
    pub items: u64,
}

/// Flow counters of one shared DP cache layer attributed to a run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CachePerf {
    /// Lookups served from the cache during the run.
    pub hits: u64,
    /// Lookups that had to compute during the run.
    pub misses: u64,
    /// Entries dropped by bounded eviction during the run.
    pub evictions: u64,
    /// Entries resident when the run finished (a level, not a flow).
    pub entries: u64,
}

impl From<ckpt_policies::CacheStats> for CachePerf {
    fn from(s: ckpt_policies::CacheStats) -> Self {
        Self { hits: s.hits, misses: s.misses, evictions: s.evictions, entries: s.entries }
    }
}

/// Shared DP plan/kernel-row cache activity attributed to one run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PlanCachePerf {
    /// Whole-plan layer (`PlanKey` → chunk schedule).
    pub plans: CachePerf,
    /// Per-age log-survival row layer (`KernelRowKey` → triangle row).
    pub kernel_rows: CachePerf,
}

impl From<ckpt_policies::DpCacheStats> for PlanCachePerf {
    fn from(s: ckpt_policies::DpCacheStats) -> Self {
        Self { plans: s.plans.into(), kernel_rows: s.kernel_rows.into() }
    }
}

/// Deterministic counters harvested from the `ckpt-obs` registry over
/// one `run_scenario` call — the richer breakdown `BENCH_pipeline.json`
/// gains when a recording session is open. Every field is a counter
/// delta, so the values are reproducible run to run (unlike the
/// wall-clock stage seconds).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ObsPerf {
    /// Cold `DPNextFailure` solves (plan-cache misses that ran the DP).
    pub dp_solves: u64,
    /// Near-age kernel rows accumulated across solves.
    pub dp_near_row_sweeps: u64,
    /// Solves that folded far ages into a Chebyshev interpolant.
    pub dp_far_fits: u64,
    /// Hull lines pushed across all DP inner loops.
    pub dp_hull_lines: u64,
    /// Monotone hull pointer advances (the amortised-O(1) query walk).
    pub dp_hull_advances: u64,
    /// States that fell back to the exact log-domain loop (underflow).
    pub dp_log_domain_states: u64,
    /// Solves that reused a warm per-thread scratch allocation.
    pub dp_scratch_reuses: u64,
    /// `KernelTable` queries answered by grid interpolation.
    pub kernel_interp_hits: u64,
    /// `KernelTable` queries past the horizon (exact fallback).
    pub kernel_exact_fallbacks: u64,
    /// Trace sets served from the process-wide cache.
    pub trace_cache_hits: u64,
    /// Trace sets generated on a cache miss.
    pub trace_cache_misses: u64,
    /// Engine runs completed.
    pub sim_runs: u64,
    /// Decision points across all engine runs.
    pub sim_decisions: u64,
}

impl ObsPerf {
    /// Harvest from a counter delta (see `ckpt_obs::counters_snapshot`).
    pub fn from_counters(c: &ckpt_obs::CounterSnapshot) -> Self {
        Self {
            dp_solves: c.total("dp.solves"),
            dp_near_row_sweeps: c.total("dp.near_row_sweeps"),
            dp_far_fits: c.total("dp.far_fits"),
            dp_hull_lines: c.total("dp.hull_lines"),
            dp_hull_advances: c.total("dp.hull_advances"),
            dp_log_domain_states: c.total("dp.log_domain_states"),
            dp_scratch_reuses: c.total("dp.scratch_reuses"),
            kernel_interp_hits: c.total("kernel_table.interp_hits"),
            kernel_exact_fallbacks: c.total("kernel_table.exact_fallbacks"),
            trace_cache_hits: c.total("trace_cache.hits"),
            trace_cache_misses: c.total("trace_cache.misses"),
            sim_runs: c.total("sim.runs"),
            sim_decisions: c.total("sim.decisions"),
        }
    }
}

/// Wave-executor scheduling counters accumulated over one run: how the
/// work-stealing drain ([`crate::steal`]) distributed the task waves.
/// These describe scheduling only — results are bit-identical at any
/// worker count — so they are reported, never golden-pinned.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ExecPerf {
    /// Effective worker count (the largest any wave ran with).
    pub workers: u64,
    /// Waves drained.
    pub waves: u64,
    /// Claims served from a worker's own deque (seeded heavy tasks).
    pub local_claims: u64,
    /// Claims served from the shared injector (the cheap bulk).
    pub injector_claims: u64,
    /// Claims served by stealing from another worker's deque.
    pub steals: u64,
    /// Steal probes that found an empty victim deque.
    pub failed_probes: u64,
}

impl ExecPerf {
    /// Fold one wave's scheduling counters into the run totals.
    pub fn absorb(&mut self, s: &crate::steal::WaveStats) {
        self.workers = self.workers.max(s.workers as u64);
        self.waves += 1;
        self.local_claims += s.local_claims;
        self.injector_claims += s.injector_claims;
        self.steals += s.steals;
        self.failed_probes += s.failed_probes;
    }
}

/// Instrumentation for one `run_scenario` call.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PipelinePerf {
    /// End-to-end seconds for the scenario.
    pub total_seconds: f64,
    /// Per-stage breakdown, in execution order.
    pub stages: Vec<StagePerf>,
    /// Simulations run for the policy roster.
    pub policy_sims: u64,
    /// Simulations run for PeriodLB period candidates.
    pub candidate_sims: u64,
    /// Size of the full candidate grid (so `candidate_sims` can be read
    /// as a fraction of `grid × traces`).
    pub candidate_grid_size: u64,
    /// Decision points across all simulations (chunks attempted).
    pub decisions: u64,
    /// Failures struck across all simulations.
    pub failures: u64,
    /// Shared DP cache counters accumulated over the `policy_sims` stage
    /// (the executor snapshots the global caches around the wave).
    pub plan_cache: PlanCachePerf,
    /// Wave-executor scheduling counters (worker count, claim/steal
    /// mix). `Some` once any wave has drained; `None` is omitted from
    /// the JSON so pre-executor documents keep their exact bytes.
    pub exec: Option<ExecPerf>,
    /// Obs-registry counter deltas for this run. Present only while a
    /// `ckpt-obs` session records; `None` is omitted from the JSON, so
    /// the emitted bytes without a session are identical to the
    /// pre-observability format (the byte-compat test relies on this
    /// being the last field).
    pub obs: Option<ObsPerf>,
}

impl PipelinePerf {
    /// Record a stage's duration and volume.
    pub fn push_stage(&mut self, name: &str, started: Instant, items: u64) {
        self.stages.push(StagePerf {
            name: name.to_string(),
            seconds: started.elapsed().as_secs_f64(),
            items,
        });
    }

    /// Seconds spent in a named stage (0 when absent).
    pub fn stage_seconds(&self, name: &str) -> f64 {
        self.stages.iter().filter(|s| s.name == name).map(|s| s.seconds).sum()
    }

    /// The JSON object body (no surrounding document) for this run.
    ///
    /// This is serde-derived field order; the vendored `serde_json`
    /// writer reproduces the original hand-rolled emitter byte for byte
    /// (`", "`/`": "` separators, `format_f64` floats, `None` fields
    /// omitted), which the `json_byte_compat_with_legacy_emitter` test
    /// pins.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self)
    }
}

// JSON-safe float formatting lives with the writer now; re-exported so
// the goldens and the bench binary keep one shared float format.
pub use serde_json::format_f64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough() {
        let mut p = PipelinePerf::default();
        let t = Instant::now();
        p.push_stage("trace_gen", t, 6);
        p.total_seconds = 1.5;
        p.policy_sims = 42;
        p.plan_cache.plans.hits = 7;
        let j = p.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"total_seconds\": 1.5"));
        assert!(j.contains("\"name\": \"trace_gen\""));
        assert!(j.contains("\"policy_sims\": 42"));
        assert!(j.contains("\"plan_cache\": {\"plans\": {\"hits\": 7"));
        assert!(j.contains("\"kernel_rows\": {\"hits\": 0"));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn floats_are_json_safe() {
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(f64::INFINITY), "null");
        assert_eq!(format_f64(0.25), "0.25");
    }

    /// The serde path must reproduce the retired hand-rolled emitter
    /// byte for byte, so historical `BENCH_pipeline.json` diffs stay
    /// clean. The expected string below is the old emitter's exact
    /// output for this struct.
    #[test]
    fn json_byte_compat_with_legacy_emitter() {
        let mut p = PipelinePerf {
            total_seconds: 1.5,
            policy_sims: 42,
            candidate_sims: 7,
            candidate_grid_size: 220,
            decisions: 9001,
            failures: 13,
            ..Default::default()
        };
        p.stages.push(StagePerf { name: "trace_gen".into(), seconds: 0.25, items: 6 });
        p.stages.push(StagePerf { name: "policy_sims".into(), seconds: 1.0, items: 42 });
        p.plan_cache.plans = CachePerf { hits: 7, misses: 2, evictions: 1, entries: 4 };
        p.plan_cache.kernel_rows = CachePerf { hits: 100, misses: 3, evictions: 0, entries: 3 };
        assert_eq!(
            p.to_json(),
            "{\"total_seconds\": 1.5, \"stages\": [\
             {\"name\": \"trace_gen\", \"seconds\": 0.25, \"items\": 6}, \
             {\"name\": \"policy_sims\", \"seconds\": 1.0, \"items\": 42}\
             ], \"policy_sims\": 42, \"candidate_sims\": 7, \
             \"candidate_grid_size\": 220, \"decisions\": 9001, \"failures\": 13, \
             \"plan_cache\": {\
             \"plans\": {\"hits\": 7, \"misses\": 2, \"evictions\": 1, \"entries\": 4}, \
             \"kernel_rows\": {\"hits\": 100, \"misses\": 3, \"evictions\": 0, \"entries\": 3}\
             }}"
        );
    }

    /// Non-finite floats must round-trip through the serde path exactly
    /// as the legacy `format_f64` wrote them: `null`.
    #[test]
    fn non_finite_floats_serialize_as_null() {
        let p = PipelinePerf { total_seconds: f64::NAN, ..Default::default() };
        assert!(p.to_json().starts_with("{\"total_seconds\": null, "));
        let p = PipelinePerf { total_seconds: f64::INFINITY, ..Default::default() };
        assert!(p.to_json().starts_with("{\"total_seconds\": null, "));
        let p = PipelinePerf { total_seconds: f64::NEG_INFINITY, ..Default::default() };
        assert!(p.to_json().starts_with("{\"total_seconds\": null, "));
        assert_eq!(format_f64(f64::NAN), "null");
    }

    /// The wave-executor block appears only once a wave ran (`Some`),
    /// keyed `exec`, between `plan_cache` and `obs`; `None` is omitted
    /// (the byte-compat test above pins the omitted form).
    #[test]
    fn exec_block_is_optional_and_ordered() {
        let mut p = PipelinePerf::default();
        assert!(!p.to_json().contains("\"exec\""));
        p.exec = Some(ExecPerf {
            workers: 8,
            waves: 3,
            local_claims: 5,
            injector_claims: 90,
            steals: 7,
            failed_probes: 2,
        });
        let j = p.to_json();
        assert!(j.contains(
            "\"exec\": {\"workers\": 8, \"waves\": 3, \"local_claims\": 5, \
             \"injector_claims\": 90, \"steals\": 7, \"failed_probes\": 2}"
        ), "{j}");
        let plan_cache = j.find("\"plan_cache\"").expect("plan_cache present");
        let exec = j.find("\"exec\"").expect("exec present");
        assert!(plan_cache < exec);
    }

    #[test]
    fn stage_seconds_sums_by_name() {
        let mut p = PipelinePerf::default();
        let t = Instant::now();
        p.push_stage("a", t, 1);
        p.push_stage("a", t, 1);
        p.push_stage("b", t, 1);
        assert!(p.stage_seconds("a") >= 0.0);
        assert_eq!(p.stage_seconds("missing"), 0.0);
        assert_eq!(p.stages.len(), 3);
    }
}
