//! Lightweight pipeline instrumentation: per-stage wall-clock and
//! decision/event counters for the scenario runner, plus the JSON
//! emitter behind `scripts/bench_pipeline.sh` / `BENCH_pipeline.json`.
//!
//! The counters are plain `u64`s accumulated single-threadedly per trace
//! row and summed at aggregation time, so instrumentation adds no
//! synchronisation to the hot path.

use serde::Serialize;
use std::time::Instant;

/// Wall-clock and volume of one pipeline stage.
#[derive(Debug, Clone, Serialize)]
pub struct StagePerf {
    /// Stage name (`trace_gen`, `policy_sims`, `period_search`, `aggregate`).
    pub name: String,
    /// Wall-clock seconds spent in the stage.
    pub seconds: f64,
    /// Stage-specific volume: traces generated, simulations run, rows
    /// aggregated.
    pub items: u64,
}

/// Flow counters of one shared DP cache layer attributed to a run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct CachePerf {
    /// Lookups served from the cache during the run.
    pub hits: u64,
    /// Lookups that had to compute during the run.
    pub misses: u64,
    /// Entries dropped by bounded eviction during the run.
    pub evictions: u64,
    /// Entries resident when the run finished (a level, not a flow).
    pub entries: u64,
}

impl From<ckpt_policies::CacheStats> for CachePerf {
    fn from(s: ckpt_policies::CacheStats) -> Self {
        Self { hits: s.hits, misses: s.misses, evictions: s.evictions, entries: s.entries }
    }
}

/// Shared DP plan/kernel-row cache activity attributed to one run.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PlanCachePerf {
    /// Whole-plan layer (`PlanKey` → chunk schedule).
    pub plans: CachePerf,
    /// Per-age log-survival row layer (`KernelRowKey` → triangle row).
    pub kernel_rows: CachePerf,
}

impl From<ckpt_policies::DpCacheStats> for PlanCachePerf {
    fn from(s: ckpt_policies::DpCacheStats) -> Self {
        Self { plans: s.plans.into(), kernel_rows: s.kernel_rows.into() }
    }
}

/// Instrumentation for one `run_scenario` call.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PipelinePerf {
    /// End-to-end seconds for the scenario.
    pub total_seconds: f64,
    /// Per-stage breakdown, in execution order.
    pub stages: Vec<StagePerf>,
    /// Simulations run for the policy roster.
    pub policy_sims: u64,
    /// Simulations run for PeriodLB period candidates.
    pub candidate_sims: u64,
    /// Size of the full candidate grid (so `candidate_sims` can be read
    /// as a fraction of `grid × traces`).
    pub candidate_grid_size: u64,
    /// Decision points across all simulations (chunks attempted).
    pub decisions: u64,
    /// Failures struck across all simulations.
    pub failures: u64,
    /// Shared DP cache counters accumulated over the `policy_sims` stage
    /// (the executor snapshots the global caches around the wave).
    pub plan_cache: PlanCachePerf,
}

impl PipelinePerf {
    /// Record a stage's duration and volume.
    pub fn push_stage(&mut self, name: &str, started: Instant, items: u64) {
        self.stages.push(StagePerf {
            name: name.to_string(),
            seconds: started.elapsed().as_secs_f64(),
            items,
        });
    }

    /// Seconds spent in a named stage (0 when absent).
    pub fn stage_seconds(&self, name: &str) -> f64 {
        self.stages.iter().filter(|s| s.name == name).map(|s| s.seconds).sum()
    }

    /// The JSON object body (no surrounding document) for this run.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_kv(&mut s, "total_seconds", &format_f64(self.total_seconds));
        s.push_str(", \"stages\": [");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('{');
            push_kv(&mut s, "name", &format!("\"{}\"", serde_json::escape_str(&st.name)));
            s.push_str(", ");
            push_kv(&mut s, "seconds", &format_f64(st.seconds));
            s.push_str(", ");
            push_kv(&mut s, "items", &st.items.to_string());
            s.push('}');
        }
        s.push_str("], ");
        push_kv(&mut s, "policy_sims", &self.policy_sims.to_string());
        s.push_str(", ");
        push_kv(&mut s, "candidate_sims", &self.candidate_sims.to_string());
        s.push_str(", ");
        push_kv(&mut s, "candidate_grid_size", &self.candidate_grid_size.to_string());
        s.push_str(", ");
        push_kv(&mut s, "decisions", &self.decisions.to_string());
        s.push_str(", ");
        push_kv(&mut s, "failures", &self.failures.to_string());
        s.push_str(", \"plan_cache\": {");
        push_cache(&mut s, "plans", &self.plan_cache.plans);
        s.push_str(", ");
        push_cache(&mut s, "kernel_rows", &self.plan_cache.kernel_rows);
        s.push_str("}}");
        s
    }
}

fn push_cache(buf: &mut String, key: &str, c: &CachePerf) {
    buf.push('"');
    buf.push_str(key);
    buf.push_str("\": {");
    push_kv(buf, "hits", &c.hits.to_string());
    buf.push_str(", ");
    push_kv(buf, "misses", &c.misses.to_string());
    buf.push_str(", ");
    push_kv(buf, "evictions", &c.evictions.to_string());
    buf.push_str(", ");
    push_kv(buf, "entries", &c.entries.to_string());
    buf.push('}');
}

fn push_kv(buf: &mut String, key: &str, value: &str) {
    buf.push('"');
    buf.push_str(key);
    buf.push_str("\": ");
    buf.push_str(value);
}

/// JSON-safe float formatting (finite shortest-roundtrip; JSON has no
/// Infinity/NaN, map them to null).
pub fn format_f64(x: f64) -> String {
    if x.is_finite() {
        let mut s = format!("{x}");
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough() {
        let mut p = PipelinePerf::default();
        let t = Instant::now();
        p.push_stage("trace_gen", t, 6);
        p.total_seconds = 1.5;
        p.policy_sims = 42;
        p.plan_cache.plans.hits = 7;
        let j = p.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"total_seconds\": 1.5"));
        assert!(j.contains("\"name\": \"trace_gen\""));
        assert!(j.contains("\"policy_sims\": 42"));
        assert!(j.contains("\"plan_cache\": {\"plans\": {\"hits\": 7"));
        assert!(j.contains("\"kernel_rows\": {\"hits\": 0"));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn floats_are_json_safe() {
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(f64::INFINITY), "null");
        assert_eq!(format_f64(0.25), "0.25");
    }

    #[test]
    fn stage_seconds_sums_by_name() {
        let mut p = PipelinePerf::default();
        let t = Instant::now();
        p.push_stage("a", t, 1);
        p.push_stage("a", t, 1);
        p.push_stage("b", t, 1);
        assert!(p.stage_seconds("a") >= 0.0);
        assert_eq!(p.stage_seconds("missing"), 0.0);
        assert_eq!(p.stages.len(), 3);
    }
}
