//! Scenario runner: staged pipeline (trace cache → policy sims →
//! PeriodLB search → aggregation) with rayon fan-out, the omniscient
//! LowerBound, the §4.1 average-makespan-degradation metric, and
//! per-stage perf instrumentation.

use crate::cache::{CachedTrace, TraceCache};
use crate::perf::PipelinePerf;
use crate::policies_spec::PolicyKind;
use crate::scenario::Scenario;
use ckpt_math::Summary;
use ckpt_policies::Policy;
use ckpt_sim::{lower_bound_makespan, SimOptions};
use rayon::prelude::*;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// How `PeriodLB` explores its candidate factor grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeriodSearch {
    /// Simulate every candidate on every trace (the paper's exhaustive
    /// sweep).
    Full,
    /// Coarse-to-fine: simulate every `coarse_step`-th candidate of the
    /// sorted grid (plus the factor nearest 1.0 and both endpoints),
    /// then refine exhaustively between the coarse neighbours of the
    /// incumbent. Cuts candidate simulations ~5–8× on the paper's
    /// 481-factor grid; exact whenever the mean-makespan profile is
    /// unimodal at the coarse resolution.
    CoarseToFine {
        /// Stride of the coarse pass over the sorted grid (≥ 2).
        coarse_step: usize,
        /// Grids up to this size are searched exhaustively.
        min_full: usize,
    },
}

impl Default for PeriodSearch {
    fn default() -> Self {
        Self::CoarseToFine { coarse_step: 8, min_full: 24 }
    }
}

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Include the omniscient `LowerBound` row.
    pub lower_bound: bool,
    /// Include the `PeriodLB` numeric search; the value is the period
    /// factor grid applied to the OptExp period.
    pub period_lb: Option<Vec<f64>>,
    /// Grid exploration strategy for `PeriodLB`.
    pub period_search: PeriodSearch,
    /// Engine safety options.
    pub sim: SimOptions,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            lower_bound: true,
            period_lb: Some(default_period_grid()),
            period_search: PeriodSearch::default(),
            sim: SimOptions::default(),
        }
    }
}

impl RunnerOptions {
    /// Defaults, but with the paper's §4.1 period grid.
    pub fn default_with_paper_grid() -> Self {
        Self { period_lb: Some(paper_period_grid()), ..Self::default() }
    }
}

/// Sort ascending and drop duplicates (relative tolerance 1e-9 — the
/// paper's grid reaches the same factor along both of its arms, e.g.
/// `1.1 = 1 + 0.05·2`).
fn dedupe_sorted(mut grid: Vec<f64>) -> Vec<f64> {
    grid.retain(|f| f.is_finite() && *f > 0.0);
    grid.sort_by(|a, b| a.partial_cmp(b).expect("finite factors"));
    grid.dedup_by(|a, b| (*a - *b).abs() <= 1e-9 * b.abs());
    grid
}

/// The default `PeriodLB` candidate grid: factors `2^{j/8}` for
/// `j ∈ [−24, 24]` — a coarser but equally wide net than the paper's
/// `(1 ± 0.05i, 1.1^j)` grid (which [`paper_period_grid`] reproduces).
/// Sorted ascending, duplicate-free.
pub fn default_period_grid() -> Vec<f64> {
    dedupe_sorted((-24..=24).map(|j| 2f64.powf(j as f64 / 8.0)).collect())
}

/// The paper's §4.1 grid: `×/÷ (1 + 0.05·i)` for `i ∈ 1..=180` and
/// `×/÷ 1.1^j` for `j ∈ 1..=60`, plus the identity. Sorted ascending
/// with the overlapping factors deduplicated (479 candidates; the raw
/// union counts 481 with `1.1 = 1 + 0.05·2` twice on both arms).
pub fn paper_period_grid() -> Vec<f64> {
    let mut g = vec![1.0];
    for i in 1..=180 {
        let f = 1.0 + 0.05 * i as f64;
        g.push(f);
        g.push(1.0 / f);
    }
    for j in 1..=60 {
        let f = 1.1f64.powi(j);
        g.push(f);
        g.push(1.0 / f);
    }
    dedupe_sorted(g)
}

/// Result row for one policy in one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyOutcome {
    /// Display name.
    pub name: String,
    /// Average degradation from best (§4.1) — `None` when the policy could
    /// not run (Liu's nonsensical placements).
    pub avg_degradation: Option<f64>,
    /// Standard deviation of the degradation.
    pub std_degradation: Option<f64>,
    /// Mean makespan, seconds.
    pub mean_makespan: Option<f64>,
    /// Mean number of failures per run.
    pub mean_failures: Option<f64>,
    /// Maximum failures over all runs (spare-processor sizing, §5.2.2).
    pub max_failures: Option<u64>,
    /// Smallest / largest chunk attempted across all runs.
    pub chunk_range: Option<(f64, f64)>,
    /// For `PeriodLB`: the winning factor over the OptExp period.
    pub period_factor: Option<f64>,
    /// Why the policy is absent, when it is.
    pub error: Option<String>,
}

impl PolicyOutcome {
    fn absent(name: &str, error: String) -> Self {
        Self {
            name: name.to_string(),
            avg_degradation: None,
            std_degradation: None,
            mean_makespan: None,
            mean_failures: None,
            max_failures: None,
            chunk_range: None,
            period_factor: None,
            error: Some(error),
        }
    }
}

/// All rows of one scenario plus metadata.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// Processor count.
    pub procs: u64,
    /// Trace count actually simulated.
    pub traces: usize,
    /// Policy rows, `LowerBound` first when present.
    pub outcomes: Vec<PolicyOutcome>,
    /// The `PeriodLB` winning factor (over the OptExp period), if searched.
    pub period_lb_factor: Option<f64>,
    /// Pipeline instrumentation for this call.
    pub perf: PipelinePerf,
}

impl ScenarioResult {
    /// Look up a row by name.
    pub fn get(&self, name: &str) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

/// Per-trace simulation results for the policy roster.
struct PolicyRow {
    makespans: Vec<Option<(f64, u64, f64, f64)>>, // (makespan, failures, cmin, cmax)
    lower_bound: Option<f64>,
    decisions: u64,
    failures: u64,
}

/// Outcome of the PeriodLB search.
struct PeriodSearchResult {
    /// Winning factor.
    factor: f64,
    /// Winning candidate's per-trace makespans.
    column: Vec<f64>,
    /// Candidate simulations actually run.
    sims: u64,
    decisions: u64,
    failures: u64,
}

/// Run `kinds` (plus optional LowerBound / PeriodLB) on a scenario.
///
/// Degradation from best (§4.1): for each trace `i`,
/// `v(i,j) = res(i,j) / min_{j' ≠ LowerBound} res(i,j')`, averaged over
/// traces. `PeriodLB` participates in the minimum; `LowerBound` does not.
/// Traces where *no* policy produced a makespan are excluded from the
/// averages; if that leaves nothing, each row reports an error instead
/// of panicking.
pub fn run_scenario(
    scenario: &Scenario,
    kinds: &[PolicyKind],
    options: &RunnerOptions,
) -> ScenarioResult {
    let t_total = Instant::now();
    let mut perf = PipelinePerf::default();
    let built = scenario.dist.build();
    let spec = scenario.job_spec();

    // Stage 1: trace generation (process-wide cache, shared via Arc).
    let t_stage = Instant::now();
    let cache = TraceCache::global();
    let cached: Vec<Arc<CachedTrace>> = (0..scenario.traces)
        .into_par_iter()
        .map(|idx| cache.get_or_generate(scenario, &built, idx))
        .collect();
    perf.push_stage("trace_gen", t_stage, scenario.traces as u64);

    // Instantiate policies once; sessions are per-trace.
    type BuiltPolicy = (String, Result<Box<dyn Policy>, String>);
    let policies: Vec<BuiltPolicy> = kinds
        .iter()
        .map(|k| (k.name(), k.build(scenario, &built)))
        .collect();

    // Stage 2: policy roster simulations (plus LowerBound).
    let t_stage = Instant::now();
    let rows: Vec<PolicyRow> = cached
        .par_iter()
        .map(|ct| {
            let ppu = ct.procs_per_unit();
            let mut makespans = Vec::with_capacity(policies.len());
            let mut decisions = 0u64;
            let mut failures = 0u64;
            for (_, built_policy) in &policies {
                match built_policy {
                    Ok(p) => {
                        let mut session = p.session();
                        let st = ckpt_sim::simulate(
                            &spec,
                            &mut *session,
                            &ct.events,
                            ppu,
                            ct.traces.start_time,
                            ct.traces.horizon,
                            options.sim,
                        );
                        decisions += st.decisions;
                        failures += st.failures;
                        makespans.push(Some((st.makespan, st.failures, st.chunk_min, st.chunk_max)));
                    }
                    Err(_) => makespans.push(None),
                }
            }
            let lower_bound = options
                .lower_bound
                .then(|| lower_bound_makespan(&spec, &ct.traces).makespan);
            PolicyRow { makespans, lower_bound, decisions, failures }
        })
        .collect();
    let ran_policies = policies.iter().filter(|(_, b)| b.is_ok()).count() as u64;
    perf.policy_sims = ran_policies * scenario.traces as u64;
    perf.decisions += rows.iter().map(|r| r.decisions).sum::<u64>();
    perf.failures += rows.iter().map(|r| r.failures).sum::<u64>();
    perf.push_stage("policy_sims", t_stage, perf.policy_sims);

    // Stage 3: PeriodLB candidate search.
    let t_stage = Instant::now();
    let search = options.period_lb.as_ref().and_then(|grid| {
        let grid = dedupe_sorted(grid.clone());
        if grid.is_empty() {
            return None;
        }
        perf.candidate_grid_size = grid.len() as u64;
        Some(search_period_grid(&spec, &built, &cached, &grid, options))
    });
    if let Some(s) = &search {
        perf.candidate_sims = s.sims;
        perf.decisions += s.decisions;
        perf.failures += s.failures;
    }
    perf.push_stage("period_search", t_stage, perf.candidate_sims);

    // Stage 4: aggregation — §4.1 degradation metric over the per-trace
    // best heuristic (incl. PeriodLB, excl. LowerBound).
    let t_stage = Instant::now();
    let trace_best: Vec<Option<f64>> = (0..scenario.traces)
        .map(|i| {
            let mut best = f64::INFINITY;
            for m in rows[i].makespans.iter().flatten() {
                best = best.min(m.0);
            }
            if let Some(s) = &search {
                best = best.min(s.column[i]);
            }
            best.is_finite().then_some(best)
        })
        .collect();
    let no_baseline =
        || "no policy produced a makespan on any trace (degradation undefined)".to_string();

    let mut outcomes = Vec::new();
    if options.lower_bound {
        let samples: Vec<(f64, f64)> = rows
            .iter()
            .zip(&trace_best)
            .filter_map(|(r, b)| {
                let lb = r.lower_bound.expect("lower bound enabled");
                b.map(|b| (lb, lb / b))
            })
            .collect();
        if samples.is_empty() {
            outcomes.push(PolicyOutcome::absent("LowerBound", no_baseline()));
        } else {
            let degr: Vec<f64> = samples.iter().map(|s| s.1).collect();
            let mks: Vec<f64> = samples.iter().map(|s| s.0).collect();
            let s = Summary::from_samples(&degr);
            outcomes.push(PolicyOutcome {
                name: "LowerBound".into(),
                avg_degradation: Some(s.mean()),
                std_degradation: Some(s.std_dev()),
                mean_makespan: Some(Summary::from_samples(&mks).mean()),
                mean_failures: None,
                max_failures: None,
                chunk_range: None,
                period_factor: None,
                error: None,
            });
        }
    }
    let period_lb_factor = search.as_ref().map(|s| s.factor);
    if let Some(sr) = &search {
        let samples: Vec<(f64, f64)> = sr
            .column
            .iter()
            .zip(&trace_best)
            .filter_map(|(&m, b)| b.map(|b| (m, m / b)))
            .collect();
        if samples.is_empty() {
            outcomes.push(PolicyOutcome::absent("PeriodLB", no_baseline()));
        } else {
            let degr: Vec<f64> = samples.iter().map(|s| s.1).collect();
            let mks: Vec<f64> = samples.iter().map(|s| s.0).collect();
            let s = Summary::from_samples(&degr);
            outcomes.push(PolicyOutcome {
                name: "PeriodLB".into(),
                avg_degradation: Some(s.mean()),
                std_degradation: Some(s.std_dev()),
                mean_makespan: Some(Summary::from_samples(&mks).mean()),
                mean_failures: None,
                max_failures: None,
                chunk_range: None,
                period_factor: Some(sr.factor),
                error: None,
            });
        }
    }
    for (j, (name, built_policy)) in policies.iter().enumerate() {
        match built_policy {
            Ok(_) => {
                let per_trace: Vec<(f64, u64, f64, f64)> =
                    rows.iter().map(|r| r.makespans[j].expect("ran")).collect();
                let samples: Vec<(f64, f64)> = per_trace
                    .iter()
                    .zip(&trace_best)
                    .filter_map(|(m, b)| b.map(|b| (m.0, m.0 / b)))
                    .collect();
                if samples.is_empty() {
                    outcomes.push(PolicyOutcome::absent(name, no_baseline()));
                    continue;
                }
                let degr: Vec<f64> = samples.iter().map(|s| s.1).collect();
                let mks: Vec<f64> = samples.iter().map(|s| s.0).collect();
                let s = Summary::from_samples(&degr);
                let fails: Vec<f64> = per_trace.iter().map(|m| m.1 as f64).collect();
                let cmin = per_trace.iter().map(|m| m.2).fold(f64::INFINITY, f64::min);
                let cmax = per_trace.iter().map(|m| m.3).fold(0.0f64, f64::max);
                outcomes.push(PolicyOutcome {
                    name: name.clone(),
                    avg_degradation: Some(s.mean()),
                    std_degradation: Some(s.std_dev()),
                    mean_makespan: Some(Summary::from_samples(&mks).mean()),
                    mean_failures: Some(Summary::from_samples(&fails).mean()),
                    max_failures: per_trace.iter().map(|m| m.1).max(),
                    chunk_range: Some((cmin, cmax)),
                    period_factor: None,
                    error: None,
                });
            }
            Err(e) => outcomes.push(PolicyOutcome::absent(name, e.clone())),
        }
    }
    perf.push_stage("aggregate", t_stage, outcomes.len() as u64);
    perf.total_seconds = t_total.elapsed().as_secs_f64();

    ScenarioResult {
        label: scenario.label.clone(),
        procs: scenario.procs,
        traces: scenario.traces,
        outcomes,
        period_lb_factor,
        perf,
    }
}

/// Simulate `factor × OptExp period` on every trace; returns the
/// per-trace makespans plus decision/failure counts.
fn simulate_candidate(
    spec: &ckpt_workload::JobSpec,
    base: &ckpt_policies::OptExp,
    factor: f64,
    cached: &[Arc<CachedTrace>],
    options: &RunnerOptions,
) -> (Vec<f64>, u64, u64) {
    let policy = base.as_fixed_period().scaled(factor);
    let stats: Vec<_> = cached
        .par_iter()
        .map(|ct| {
            let mut session = policy.session();
            let st = ckpt_sim::simulate(
                spec,
                &mut *session,
                &ct.events,
                ct.procs_per_unit(),
                ct.traces.start_time,
                ct.traces.horizon,
                options.sim,
            );
            (st.makespan, st.decisions, st.failures)
        })
        .collect();
    let decisions = stats.iter().map(|s| s.1).sum();
    let failures = stats.iter().map(|s| s.2).sum();
    (stats.into_iter().map(|s| s.0).collect(), decisions, failures)
}

/// Explore the (sorted, deduped) factor grid per `options.period_search`
/// and return the winner by mean makespan. Ties break toward the
/// smaller factor (deterministic regardless of exploration order).
fn search_period_grid(
    spec: &ckpt_workload::JobSpec,
    built: &crate::scenario::BuiltDist,
    cached: &[Arc<CachedTrace>],
    grid: &[f64],
    options: &RunnerOptions,
) -> PeriodSearchResult {
    let base = ckpt_policies::OptExp::from_mtbf(spec, built.proc_mtbf);
    let mut columns: Vec<Option<(Vec<f64>, f64)>> = vec![None; grid.len()]; // (makespans, mean)
    let mut decisions = 0u64;
    let mut failures = 0u64;
    let mut sims = 0u64;
    let evaluate = |i: usize,
                        columns: &mut Vec<Option<(Vec<f64>, f64)>>,
                        decisions: &mut u64,
                        failures: &mut u64,
                        sims: &mut u64| {
        if columns[i].is_none() {
            let (col, d, f) = simulate_candidate(spec, &base, grid[i], cached, options);
            *sims += col.len() as u64;
            *decisions += d;
            *failures += f;
            let mean = col.iter().sum::<f64>() / col.len().max(1) as f64;
            columns[i] = Some((col, mean));
        }
    };

    let coarse: Vec<usize> = match options.period_search {
        PeriodSearch::Full => (0..grid.len()).collect(),
        PeriodSearch::CoarseToFine { coarse_step, min_full } => {
            if grid.len() <= min_full.max(1) {
                (0..grid.len()).collect()
            } else {
                let step = coarse_step.max(2);
                let mut idx: Vec<usize> = (0..grid.len()).step_by(step).collect();
                idx.push(grid.len() - 1);
                // Always anchor at the factor nearest 1.0 (OptExp itself).
                let anchor = (0..grid.len())
                    .min_by(|&a, &b| {
                        (grid[a] - 1.0)
                            .abs()
                            .partial_cmp(&(grid[b] - 1.0).abs())
                            .expect("finite")
                    })
                    .expect("non-empty grid");
                idx.push(anchor);
                idx.sort_unstable();
                idx.dedup();
                idx
            }
        }
    };
    for &i in &coarse {
        evaluate(i, &mut columns, &mut decisions, &mut failures, &mut sims);
    }
    let best_of = |columns: &Vec<Option<(Vec<f64>, f64)>>| -> usize {
        let mut best = usize::MAX;
        let mut best_mean = f64::INFINITY;
        for (i, c) in columns.iter().enumerate() {
            if let Some((_, mean)) = c {
                if *mean < best_mean {
                    best_mean = *mean;
                    best = i;
                }
            }
        }
        best
    };

    if let PeriodSearch::CoarseToFine { coarse_step, min_full } = options.period_search {
        if grid.len() > min_full.max(1) {
            let step = coarse_step.max(2);
            // Refine exhaustively between the coarse neighbours of the
            // incumbent (they bracket the optimum when the mean profile
            // is unimodal at coarse resolution).
            let incumbent = best_of(&columns);
            let lo = incumbent.saturating_sub(step - 1);
            let hi = (incumbent + step).min(grid.len());
            for i in lo..hi {
                evaluate(i, &mut columns, &mut decisions, &mut failures, &mut sims);
            }
        }
    }

    let winner = best_of(&columns);
    let (column, _) = columns[winner].take().expect("winner evaluated");
    PeriodSearchResult { factor: grid[winner], column, sims, decisions, failures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;

    fn tiny_scenario() -> Scenario {
        // Small, fast cell: sequential job, hour-scale MTBF.
        let mut s = Scenario::single_processor(
            DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            12,
        );
        s.total_work = 12.0 * 3_600.0;
        s
    }

    fn fast_options() -> RunnerOptions {
        RunnerOptions {
            lower_bound: true,
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            period_search: PeriodSearch::Full,
            sim: SimOptions::default(),
        }
    }

    #[test]
    fn degradation_structure() {
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young, PolicyKind::OptExp];
        let r = run_scenario(&sc, &kinds, &fast_options());
        assert_eq!(r.traces, 12);
        // LowerBound + PeriodLB + 2 heuristics.
        assert_eq!(r.outcomes.len(), 4);
        let lb = r.get("LowerBound").expect("lower bound row");
        // LowerBound is ≤ best heuristic on every trace → avg ≤ 1.
        assert!(lb.avg_degradation.expect("ran") <= 1.0 + 1e-12);
        for name in ["Young", "OptExp", "PeriodLB"] {
            let o = r.get(name).expect(name);
            assert!(o.avg_degradation.expect("ran") >= 1.0 - 1e-12, "{name}");
        }
    }

    #[test]
    fn period_lb_at_least_as_good_as_optexp_on_average() {
        let sc = tiny_scenario();
        // Grid contains factor 1.0 = OptExp itself, so PeriodLB's mean
        // makespan can never exceed OptExp's.
        let r = run_scenario(&sc, &[PolicyKind::OptExp], &fast_options());
        let plb = r.get("PeriodLB").expect("row").mean_makespan.expect("ran");
        let opt = r.get("OptExp").expect("row").mean_makespan.expect("ran");
        assert!(plb <= opt + 1e-6, "PeriodLB {plb} > OptExp {opt}");
    }

    #[test]
    fn period_lb_row_reports_winning_factor() {
        let sc = tiny_scenario();
        let r = run_scenario(&sc, &[PolicyKind::OptExp], &fast_options());
        let row_factor = r.get("PeriodLB").expect("row").period_factor;
        assert_eq!(row_factor, r.period_lb_factor);
        let f = row_factor.expect("searched");
        assert!([0.5, 1.0, 2.0].contains(&f), "factor {f} from the grid");
    }

    #[test]
    fn failed_policy_reports_error_row() {
        // Liu's nonsensical-interval case: large platform, small shape.
        let year = 365.25 * 86_400.0;
        let mut sc = Scenario::petascale(
            DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * year },
            4_096,
            3,
        );
        sc.label = "tiny-weibull".into();
        let r = run_scenario(
            &sc,
            &[PolicyKind::Liu, PolicyKind::Young],
            &RunnerOptions { period_lb: None, ..fast_options() },
        );
        let liu = r.get("Liu").expect("row");
        assert!(liu.error.is_some());
        assert!(liu.avg_degradation.is_none());
        assert!(r.get("Young").expect("row").avg_degradation.is_some());
    }

    #[test]
    fn all_policies_failing_yields_error_rows_not_panic() {
        // Only Liu, which cannot build at this shape/scale: every trace
        // has no baseline, and every row (incl. LowerBound) must report
        // an error instead of panicking.
        let year = 365.25 * 86_400.0;
        let mut sc = Scenario::petascale(
            DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * year },
            4_096,
            2,
        );
        sc.label = "all-fail-weibull".into();
        let r = run_scenario(&sc, &[PolicyKind::Liu], &RunnerOptions {
            period_lb: None,
            ..fast_options()
        });
        assert_eq!(r.outcomes.len(), 2); // LowerBound + Liu
        let lb = r.get("LowerBound").expect("row");
        assert!(lb.error.is_some(), "LowerBound must degrade gracefully");
        assert!(lb.avg_degradation.is_none());
        assert!(r.get("Liu").expect("row").error.is_some());
    }

    #[test]
    fn results_are_deterministic() {
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young];
        let a = run_scenario(&sc, &kinds, &fast_options());
        let b = run_scenario(&sc, &kinds, &fast_options());
        assert_eq!(
            a.get("Young").expect("row").mean_makespan,
            b.get("Young").expect("row").mean_makespan
        );
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The pipeline must be bit-identical regardless of rayon
        // parallelism: per-trace work is independent and reduction order
        // is fixed by trace index.
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young, PolicyKind::OptExp];
        let run_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| run_scenario(&sc, &kinds, &fast_options()))
        };
        let one = run_with(1);
        let many = run_with(4);
        assert_eq!(one.period_lb_factor, many.period_lb_factor);
        for (a, b) in one.outcomes.iter().zip(&many.outcomes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.mean_makespan, b.mean_makespan, "{}", a.name);
            assert_eq!(a.avg_degradation, b.avg_degradation, "{}", a.name);
        }
    }

    #[test]
    fn grids_are_sorted_and_deduped() {
        for grid in [default_period_grid(), paper_period_grid()] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1], "sorted strictly: {} vs {}", w[0], w[1]);
            }
        }
        // The raw paper grid contains 1.1 and 1/1.1 on both arms; after
        // dedup the count drops from 481 to 479.
        assert_eq!(paper_period_grid().len(), 479);
        assert!(paper_period_grid().contains(&1.0));
    }

    #[test]
    fn coarse_to_fine_matches_full_search_and_cuts_sims() {
        let sc = tiny_scenario();
        let grid = paper_period_grid();
        let full = run_scenario(&sc, &[], &RunnerOptions {
            lower_bound: false,
            period_lb: Some(grid.clone()),
            period_search: PeriodSearch::Full,
            sim: SimOptions::default(),
        });
        let coarse = run_scenario(&sc, &[], &RunnerOptions {
            lower_bound: false,
            period_lb: Some(grid.clone()),
            period_search: PeriodSearch::default(),
            sim: SimOptions::default(),
        });
        let full_sims = full.perf.candidate_sims;
        let coarse_sims = coarse.perf.candidate_sims;
        assert_eq!(full_sims, (grid.len() * sc.traces) as u64);
        assert!(
            coarse_sims * 5 <= full_sims,
            "coarse-to-fine used {coarse_sims} of {full_sims} sims (> 1/5)"
        );
        let full_mean = full.get("PeriodLB").expect("row").mean_makespan.expect("ran");
        let coarse_mean = coarse.get("PeriodLB").expect("row").mean_makespan.expect("ran");
        assert!(
            (coarse_mean - full_mean).abs() <= 1e-3 * full_mean,
            "coarse-to-fine mean {coarse_mean} deviates from full-grid {full_mean}"
        );
    }

    #[test]
    fn perf_counters_are_populated() {
        let sc = tiny_scenario();
        let r = run_scenario(&sc, &[PolicyKind::Young], &fast_options());
        assert!(r.perf.total_seconds > 0.0);
        let names: Vec<&str> = r.perf.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["trace_gen", "policy_sims", "period_search", "aggregate"]);
        assert_eq!(r.perf.policy_sims, sc.traces as u64);
        assert_eq!(r.perf.candidate_sims, (3 * sc.traces) as u64);
        assert_eq!(r.perf.candidate_grid_size, 3);
        assert!(r.perf.decisions > 0);
    }
}
