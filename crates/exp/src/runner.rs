//! Scenario runner: rayon fan-out, PeriodLB search, LowerBound, and the
//! §4.1 average-makespan-degradation metric.

use crate::policies_spec::PolicyKind;
use crate::scenario::Scenario;
use ckpt_math::Summary;
use ckpt_policies::Policy;
use ckpt_sim::{lower_bound_makespan, SimOptions};
use rayon::prelude::*;
use serde::Serialize;

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Include the omniscient `LowerBound` row.
    pub lower_bound: bool,
    /// Include the `PeriodLB` numeric search; the value is the period
    /// factor grid applied to the OptExp period.
    pub period_lb: Option<Vec<f64>>,
    /// Engine safety options.
    pub sim: SimOptions,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            lower_bound: true,
            period_lb: Some(default_period_grid()),
            sim: SimOptions::default(),
        }
    }
}

/// The default `PeriodLB` candidate grid: factors `2^{j/8}` for
/// `j ∈ [−24, 24]` — a coarser but equally wide net than the paper's
/// `(1 ± 0.05i, 1.1^j)` grid (which [`paper_period_grid`] reproduces).
pub fn default_period_grid() -> Vec<f64> {
    (-24..=24).map(|j| 2f64.powf(j as f64 / 8.0)).collect()
}

/// The paper's §4.1 grid: `×/÷ (1 + 0.05·i)` for `i ∈ 1..=180` and
/// `×/÷ 1.1^j` for `j ∈ 1..=60` (481 candidates with the identity).
pub fn paper_period_grid() -> Vec<f64> {
    let mut g = vec![1.0];
    for i in 1..=180 {
        let f = 1.0 + 0.05 * i as f64;
        g.push(f);
        g.push(1.0 / f);
    }
    for j in 1..=60 {
        let f = 1.1f64.powi(j);
        g.push(f);
        g.push(1.0 / f);
    }
    g
}

/// Result row for one policy in one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyOutcome {
    /// Display name.
    pub name: String,
    /// Average degradation from best (§4.1) — `None` when the policy could
    /// not run (Liu's nonsensical placements).
    pub avg_degradation: Option<f64>,
    /// Standard deviation of the degradation.
    pub std_degradation: Option<f64>,
    /// Mean makespan, seconds.
    pub mean_makespan: Option<f64>,
    /// Mean number of failures per run.
    pub mean_failures: Option<f64>,
    /// Maximum failures over all runs (spare-processor sizing, §5.2.2).
    pub max_failures: Option<u64>,
    /// Smallest / largest chunk attempted across all runs.
    pub chunk_range: Option<(f64, f64)>,
    /// Why the policy is absent, when it is.
    pub error: Option<String>,
}

/// All rows of one scenario plus metadata.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// Processor count.
    pub procs: u64,
    /// Trace count actually simulated.
    pub traces: usize,
    /// Policy rows, `LowerBound` first when present.
    pub outcomes: Vec<PolicyOutcome>,
    /// The `PeriodLB` winning factor (over the OptExp period), if searched.
    pub period_lb_factor: Option<f64>,
}

impl ScenarioResult {
    /// Look up a row by name.
    pub fn get(&self, name: &str) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }
}

/// Run `kinds` (plus optional LowerBound / PeriodLB) on a scenario.
///
/// Degradation from best (§4.1): for each trace `i`,
/// `v(i,j) = res(i,j) / min_{j' ≠ LowerBound} res(i,j')`, averaged over
/// traces. `PeriodLB` participates in the minimum; `LowerBound` does not.
pub fn run_scenario(
    scenario: &Scenario,
    kinds: &[PolicyKind],
    options: &RunnerOptions,
) -> ScenarioResult {
    let built = scenario.dist.build();
    let spec = scenario.job_spec();

    // Instantiate policies once; sessions are per-trace.
    let mut policies: Vec<(String, Result<Box<dyn Policy>, String>)> = kinds
        .iter()
        .map(|k| (k.name(), k.build(scenario, &built)))
        .collect();

    // PeriodLB candidates share OptExp's base period.
    let period_candidates: Vec<Box<dyn Policy>> = match &options.period_lb {
        Some(grid) => {
            let base = ckpt_policies::OptExp::from_mtbf(&spec, built.proc_mtbf);
            grid.iter()
                .map(|&f| Box::new(base.as_fixed_period().scaled(f)) as Box<dyn Policy>)
                .collect()
        }
        None => Vec::new(),
    };

    struct TraceRow {
        makespans: Vec<Option<(f64, u64, f64, f64)>>, // (makespan, failures, cmin, cmax)
        candidates: Vec<f64>,
        lower_bound: Option<f64>,
    }

    let rows: Vec<TraceRow> = (0..scenario.traces)
        .into_par_iter()
        .map(|idx| {
            let traces = scenario.generate_traces(&built, idx);
            let events = traces.platform_events();
            let ppu = traces.topology.procs_per_unit() as u32;
            let mut makespans = Vec::with_capacity(policies.len());
            for (_, built_policy) in &policies {
                match built_policy {
                    Ok(p) => {
                        let mut session = p.session();
                        let st = ckpt_sim::simulate(
                            &spec,
                            &mut *session,
                            &events,
                            ppu,
                            traces.start_time,
                            traces.horizon,
                            options.sim,
                        );
                        makespans.push(Some((st.makespan, st.failures, st.chunk_min, st.chunk_max)));
                    }
                    Err(_) => makespans.push(None),
                }
            }
            let candidates = period_candidates
                .iter()
                .map(|p| {
                    let mut session = p.session();
                    ckpt_sim::simulate(
                        &spec,
                        &mut *session,
                        &events,
                        ppu,
                        traces.start_time,
                        traces.horizon,
                        options.sim,
                    )
                    .makespan
                })
                .collect();
            let lower_bound = options
                .lower_bound
                .then(|| lower_bound_makespan(&spec, &traces).makespan);
            TraceRow { makespans, candidates, lower_bound }
        })
        .collect();

    // PeriodLB: best average candidate.
    let (period_lb_col, period_lb_factor) = if period_candidates.is_empty() {
        (None, None)
    } else {
        let n = period_candidates.len();
        let mut means = vec![0.0f64; n];
        for row in &rows {
            for (m, &v) in means.iter_mut().zip(&row.candidates) {
                *m += v;
            }
        }
        let best = (0..n)
            .min_by(|&a, &b| means[a].partial_cmp(&means[b]).expect("no NaN"))
            .expect("non-empty");
        let col: Vec<f64> = rows.iter().map(|r| r.candidates[best]).collect();
        let factor = options.period_lb.as_ref().expect("grid present")[best];
        (Some(col), Some(factor))
    };

    // Per-trace best over heuristics (incl. PeriodLB, excl. LowerBound).
    let trace_best: Vec<f64> = (0..scenario.traces)
        .map(|i| {
            let mut best = f64::INFINITY;
            for m in rows[i].makespans.iter().flatten() {
                best = best.min(m.0);
            }
            if let Some(col) = &period_lb_col {
                best = best.min(col[i]);
            }
            assert!(best.is_finite(), "no policy produced a makespan for trace {i}");
            best
        })
        .collect();

    let mut outcomes = Vec::new();
    if options.lower_bound {
        let degr: Vec<f64> = rows
            .iter()
            .zip(&trace_best)
            .map(|(r, &b)| r.lower_bound.expect("lower bound enabled") / b)
            .collect();
        let mks: Vec<f64> = rows.iter().map(|r| r.lower_bound.expect("enabled")).collect();
        let s = Summary::from_samples(&degr);
        outcomes.push(PolicyOutcome {
            name: "LowerBound".into(),
            avg_degradation: Some(s.mean()),
            std_degradation: Some(s.std_dev()),
            mean_makespan: Some(Summary::from_samples(&mks).mean()),
            mean_failures: None,
            max_failures: None,
            chunk_range: None,
            error: None,
        });
    }
    if let (Some(col), Some(factor)) = (&period_lb_col, period_lb_factor) {
        let degr: Vec<f64> = col.iter().zip(&trace_best).map(|(&m, &b)| m / b).collect();
        let s = Summary::from_samples(&degr);
        outcomes.push(PolicyOutcome {
            name: "PeriodLB".into(),
            avg_degradation: Some(s.mean()),
            std_degradation: Some(s.std_dev()),
            mean_makespan: Some(Summary::from_samples(col).mean()),
            mean_failures: None,
            max_failures: None,
            chunk_range: None,
            error: None,
        });
        let _ = factor;
    }
    for (j, (name, built_policy)) in policies.iter_mut().enumerate() {
        match built_policy {
            Ok(_) => {
                let per_trace: Vec<(f64, u64, f64, f64)> =
                    rows.iter().map(|r| r.makespans[j].expect("ran")).collect();
                let degr: Vec<f64> = per_trace
                    .iter()
                    .zip(&trace_best)
                    .map(|(m, &b)| m.0 / b)
                    .collect();
                let s = Summary::from_samples(&degr);
                let mks: Vec<f64> = per_trace.iter().map(|m| m.0).collect();
                let fails: Vec<f64> = per_trace.iter().map(|m| m.1 as f64).collect();
                let cmin = per_trace.iter().map(|m| m.2).fold(f64::INFINITY, f64::min);
                let cmax = per_trace.iter().map(|m| m.3).fold(0.0f64, f64::max);
                outcomes.push(PolicyOutcome {
                    name: name.clone(),
                    avg_degradation: Some(s.mean()),
                    std_degradation: Some(s.std_dev()),
                    mean_makespan: Some(Summary::from_samples(&mks).mean()),
                    mean_failures: Some(Summary::from_samples(&fails).mean()),
                    max_failures: per_trace.iter().map(|m| m.1).max(),
                    chunk_range: Some((cmin, cmax)),
                    error: None,
                });
            }
            Err(e) => outcomes.push(PolicyOutcome {
                name: name.clone(),
                avg_degradation: None,
                std_degradation: None,
                mean_makespan: None,
                mean_failures: None,
                max_failures: None,
                chunk_range: None,
                error: Some(e.clone()),
            }),
        }
    }

    ScenarioResult {
        label: scenario.label.clone(),
        procs: scenario.procs,
        traces: scenario.traces,
        outcomes,
        period_lb_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;

    fn tiny_scenario() -> Scenario {
        // Small, fast cell: sequential job, hour-scale MTBF.
        let mut s = Scenario::single_processor(
            DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            12,
        );
        s.total_work = 12.0 * 3_600.0;
        s
    }

    fn fast_options() -> RunnerOptions {
        RunnerOptions {
            lower_bound: true,
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            sim: SimOptions::default(),
        }
    }

    #[test]
    fn degradation_structure() {
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young, PolicyKind::OptExp];
        let r = run_scenario(&sc, &kinds, &fast_options());
        assert_eq!(r.traces, 12);
        // LowerBound + PeriodLB + 2 heuristics.
        assert_eq!(r.outcomes.len(), 4);
        let lb = r.get("LowerBound").expect("lower bound row");
        // LowerBound is ≤ best heuristic on every trace → avg ≤ 1.
        assert!(lb.avg_degradation.expect("ran") <= 1.0 + 1e-12);
        for name in ["Young", "OptExp", "PeriodLB"] {
            let o = r.get(name).expect(name);
            assert!(o.avg_degradation.expect("ran") >= 1.0 - 1e-12, "{name}");
        }
    }

    #[test]
    fn period_lb_at_least_as_good_as_optexp_on_average() {
        let sc = tiny_scenario();
        // Grid contains factor 1.0 = OptExp itself, so PeriodLB's mean
        // makespan can never exceed OptExp's.
        let r = run_scenario(&sc, &[PolicyKind::OptExp], &fast_options());
        let plb = r.get("PeriodLB").expect("row").mean_makespan.expect("ran");
        let opt = r.get("OptExp").expect("row").mean_makespan.expect("ran");
        assert!(plb <= opt + 1e-6, "PeriodLB {plb} > OptExp {opt}");
    }

    #[test]
    fn failed_policy_reports_error_row() {
        // Liu's nonsensical-interval case: large platform, small shape.
        let year = 365.25 * 86_400.0;
        let mut sc = Scenario::petascale(
            DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * year },
            4_096,
            3,
        );
        sc.label = "tiny-weibull".into();
        let r = run_scenario(
            &sc,
            &[PolicyKind::Liu, PolicyKind::Young],
            &RunnerOptions { period_lb: None, ..fast_options() },
        );
        let liu = r.get("Liu").expect("row");
        assert!(liu.error.is_some());
        assert!(liu.avg_degradation.is_none());
        assert!(r.get("Young").expect("row").avg_degradation.is_some());
    }

    #[test]
    fn results_are_deterministic() {
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young];
        let a = run_scenario(&sc, &kinds, &fast_options());
        let b = run_scenario(&sc, &kinds, &fast_options());
        assert_eq!(
            a.get("Young").expect("row").mean_makespan,
            b.get("Young").expect("row").mean_makespan
        );
    }
}
