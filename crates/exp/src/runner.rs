//! Scenario runner: the thin orchestrator of the plan → execute →
//! reduce pipeline.
//!
//! [`run_scenario_checked`] is three calls:
//!
//! 1. [`crate::plan::plan_scenario`] — pure `Scenario → SimPlan`
//!    (which sims run, in which waves, on which traces);
//! 2. [`crate::exec::execute`] — the rayon executor draining the plan
//!    against cached traces, with policy-build failures as values;
//! 3. [`crate::reduce::reduce`] — fold into the §4.1 degradation rows.
//!
//! This module keeps the user-facing types: [`RunnerOptions`],
//! [`PeriodSearch`], [`PolicyOutcome`], [`ScenarioResult`], and the
//! period factor grids (re-exported from [`crate::plan`]).

use crate::error::Error;
use crate::perf::PipelinePerf;
use crate::policies_spec::PolicyKind;
use crate::scenario::Scenario;
use ckpt_sim::SimOptions;
use serde::Serialize;
use std::time::Instant;

pub use crate::plan::{default_period_grid, paper_period_grid};

/// How `PeriodLB` explores its candidate factor grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PeriodSearch {
    /// Simulate every candidate on every trace (the paper's exhaustive
    /// sweep).
    Full,
    /// Coarse-to-fine: simulate every `coarse_step`-th candidate of the
    /// sorted grid (plus the factor nearest 1.0 and both endpoints),
    /// then refine exhaustively between the coarse neighbours of the
    /// incumbent. Cuts candidate simulations ~5–8× on the paper's
    /// 481-factor grid; exact whenever the mean-makespan profile is
    /// unimodal at the coarse resolution.
    CoarseToFine {
        /// Stride of the coarse pass over the sorted grid (≥ 2).
        coarse_step: usize,
        /// Grids up to this size are searched exhaustively.
        min_full: usize,
    },
}

impl Default for PeriodSearch {
    fn default() -> Self {
        Self::CoarseToFine { coarse_step: 8, min_full: 24 }
    }
}

/// Runner knobs.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Include the omniscient `LowerBound` row.
    pub lower_bound: bool,
    /// Include the `PeriodLB` numeric search; the value is the period
    /// factor grid applied to the OptExp period.
    pub period_lb: Option<Vec<f64>>,
    /// Grid exploration strategy for `PeriodLB`.
    pub period_search: PeriodSearch,
    /// Engine safety options.
    pub sim: SimOptions,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            lower_bound: true,
            period_lb: Some(default_period_grid()),
            period_search: PeriodSearch::default(),
            sim: SimOptions::default(),
        }
    }
}

impl RunnerOptions {
    /// Defaults, but with the paper's §4.1 period grid.
    pub fn default_with_paper_grid() -> Self {
        Self { period_lb: Some(paper_period_grid()), ..Self::default() }
    }
}

/// Result row for one policy in one scenario.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyOutcome {
    /// Display name.
    pub name: String,
    /// Average degradation from best (§4.1) — `None` when the policy could
    /// not run (Liu's nonsensical placements).
    pub avg_degradation: Option<f64>,
    /// Standard deviation of the degradation.
    pub std_degradation: Option<f64>,
    /// Mean makespan, seconds.
    pub mean_makespan: Option<f64>,
    /// Mean number of failures per run.
    pub mean_failures: Option<f64>,
    /// Maximum failures over all runs (spare-processor sizing, §5.2.2).
    pub max_failures: Option<u64>,
    /// Smallest / largest chunk attempted across all runs.
    pub chunk_range: Option<(f64, f64)>,
    /// For `PeriodLB`: the winning factor over the OptExp period.
    pub period_factor: Option<f64>,
    /// Why the policy is absent, when it is.
    pub error: Option<String>,
}

impl PolicyOutcome {
    pub(crate) fn absent(name: &str, error: String) -> Self {
        Self {
            name: name.to_string(),
            avg_degradation: None,
            std_degradation: None,
            mean_makespan: None,
            mean_failures: None,
            max_failures: None,
            chunk_range: None,
            period_factor: None,
            error: Some(error),
        }
    }
}

/// All rows of one scenario plus metadata.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// The scenario's label.
    pub label: String,
    /// Processor count.
    pub procs: u64,
    /// Trace count actually simulated.
    pub traces: usize,
    /// Policy rows, `LowerBound` first when present.
    pub outcomes: Vec<PolicyOutcome>,
    /// The `PeriodLB` winning factor (over the OptExp period), if searched.
    pub period_lb_factor: Option<f64>,
    /// Pipeline instrumentation for this call.
    pub perf: PipelinePerf,
}

impl ScenarioResult {
    /// Look up a row by name, case-insensitively (row names are unique
    /// up to case: `LowerBound`, `PeriodLB`, and the registry names).
    pub fn get(&self, name: &str) -> Option<&PolicyOutcome> {
        self.outcomes.iter().find(|o| o.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Self::get`], but a miss names every row this result holds.
    ///
    /// # Errors
    /// [`Error::UnknownPolicy`] listing the available row names.
    pub fn lookup(&self, name: &str) -> Result<&PolicyOutcome, Error> {
        self.get(name).ok_or_else(|| Error::UnknownPolicy {
            requested: name.to_string(),
            known: self.outcomes.iter().map(|o| o.name.clone()).collect(),
        })
    }
}

/// Run `kinds` (plus optional LowerBound / PeriodLB) on a scenario.
///
/// Degradation from best (§4.1): for each trace `i`,
/// `v(i,j) = res(i,j) / min_{j' ≠ LowerBound} res(i,j')`, averaged over
/// traces. `PeriodLB` participates in the minimum; `LowerBound` does not.
/// Traces where *no* policy produced a makespan are excluded from the
/// averages; if that leaves nothing, each row reports an error instead
/// of panicking.
///
/// # Panics
/// When the scenario itself is malformed (its distribution cannot be
/// built) — use [`run_scenario_checked`] to handle that as a value.
/// Per-policy failures never panic; they become error rows.
pub fn run_scenario(
    scenario: &Scenario,
    kinds: &[PolicyKind],
    options: &RunnerOptions,
) -> ScenarioResult {
    match run_scenario_checked(scenario, kinds, options) {
        Ok(r) => r,
        Err(e) => panic!("scenario {}: {e}", scenario.label),
    }
}

/// [`run_scenario`] with scenario-level failures as values.
///
/// # Errors
/// Anything that prevents the cell from running at all — a distribution
/// that cannot be built ([`Error::Dist`], [`Error::Trace`]). Per-policy
/// failures are *not* errors; they surface as rows with
/// [`PolicyOutcome::error`] set.
pub fn run_scenario_checked(
    scenario: &Scenario,
    kinds: &[PolicyKind],
    options: &RunnerOptions,
) -> Result<ScenarioResult, Error> {
    let t_total = Instant::now();
    let mut scenario_span = ckpt_obs::span("scenario.run");
    if ckpt_obs::active() {
        scenario_span.label("cell", scenario.label.clone());
    }
    let obs_before = ckpt_obs::counters_snapshot();
    let mut perf = PipelinePerf::default();
    let built = scenario.dist.try_build()?;
    let sim_plan = crate::plan::plan_scenario(scenario, kinds, options);
    let out = crate::exec::execute(scenario, &built, &sim_plan, &mut perf);
    let mut result = crate::reduce::reduce(scenario, &sim_plan, &out, &mut perf);
    if ckpt_obs::active() {
        let delta = ckpt_obs::counters_snapshot().delta_since(&obs_before);
        perf.obs = Some(crate::perf::ObsPerf::from_counters(&delta));
    }
    drop(scenario_span);
    perf.total_seconds = t_total.elapsed().as_secs_f64();
    result.perf = perf;
    Ok(result)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;

    fn tiny_scenario() -> Scenario {
        // Small, fast cell: sequential job, hour-scale MTBF.
        let mut s = Scenario::single_processor(
            DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            12,
        );
        s.total_work = 12.0 * 3_600.0;
        s
    }

    fn fast_options() -> RunnerOptions {
        RunnerOptions {
            lower_bound: true,
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            period_search: PeriodSearch::Full,
            sim: SimOptions::default(),
        }
    }

    #[test]
    fn degradation_structure() {
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young, PolicyKind::OptExp];
        let r = run_scenario(&sc, &kinds, &fast_options());
        assert_eq!(r.traces, 12);
        // LowerBound + PeriodLB + 2 heuristics.
        assert_eq!(r.outcomes.len(), 4);
        let lb = r.get("LowerBound").expect("lower bound row");
        // LowerBound is ≤ best heuristic on every trace → avg ≤ 1.
        assert!(lb.avg_degradation.expect("ran") <= 1.0 + 1e-12);
        for name in ["Young", "OptExp", "PeriodLB"] {
            let o = r.get(name).expect(name);
            assert!(o.avg_degradation.expect("ran") >= 1.0 - 1e-12, "{name}");
        }
    }

    #[test]
    fn checked_form_returns_ok_and_matches() {
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young];
        let a = run_scenario(&sc, &kinds, &fast_options());
        let b = run_scenario_checked(&sc, &kinds, &fast_options()).expect("well-formed cell");
        assert_eq!(
            a.get("Young").expect("row").mean_makespan,
            b.get("Young").expect("row").mean_makespan
        );
    }

    #[test]
    fn get_is_case_insensitive_and_lookup_names_rows() {
        let sc = tiny_scenario();
        let r = run_scenario(&sc, &[PolicyKind::Young], &fast_options());
        assert!(r.get("young").is_some());
        assert!(r.get("PERIODLB").is_some());
        assert_eq!(
            r.lookup("lowerbound").expect("row").name,
            "LowerBound"
        );
        let Err(Error::UnknownPolicy { requested, known }) = r.lookup("Daly") else {
            panic!("miss must list known rows");
        };
        assert_eq!(requested, "Daly");
        assert_eq!(known, ["LowerBound", "PeriodLB", "Young"]);
    }

    #[test]
    fn period_lb_at_least_as_good_as_optexp_on_average() {
        let sc = tiny_scenario();
        // Grid contains factor 1.0 = OptExp itself, so PeriodLB's mean
        // makespan can never exceed OptExp's.
        let r = run_scenario(&sc, &[PolicyKind::OptExp], &fast_options());
        let plb = r.get("PeriodLB").expect("row").mean_makespan.expect("ran");
        let opt = r.get("OptExp").expect("row").mean_makespan.expect("ran");
        assert!(plb <= opt + 1e-6, "PeriodLB {plb} > OptExp {opt}");
    }

    #[test]
    fn period_lb_row_reports_winning_factor() {
        let sc = tiny_scenario();
        let r = run_scenario(&sc, &[PolicyKind::OptExp], &fast_options());
        let row_factor = r.get("PeriodLB").expect("row").period_factor;
        assert_eq!(row_factor, r.period_lb_factor);
        let f = row_factor.expect("searched");
        assert!([0.5, 1.0, 2.0].contains(&f), "factor {f} from the grid");
    }

    #[test]
    fn failed_policy_reports_error_row() {
        // Liu's nonsensical-interval case: large platform, small shape.
        let year = 365.25 * 86_400.0;
        let mut sc = Scenario::petascale(
            DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * year },
            4_096,
            3,
        );
        sc.label = "tiny-weibull".into();
        let r = run_scenario(
            &sc,
            &[PolicyKind::Liu, PolicyKind::Young],
            &RunnerOptions { period_lb: None, ..fast_options() },
        );
        let liu = r.get("Liu").expect("row");
        assert!(liu.error.is_some());
        assert!(liu.avg_degradation.is_none());
        assert!(r.get("Young").expect("row").avg_degradation.is_some());
    }

    #[test]
    fn all_policies_failing_yields_error_rows_not_panic() {
        // Only Liu, which cannot build at this shape/scale: every trace
        // has no baseline, and every row (incl. LowerBound) must report
        // an error instead of panicking.
        let year = 365.25 * 86_400.0;
        let mut sc = Scenario::petascale(
            DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * year },
            4_096,
            2,
        );
        sc.label = "all-fail-weibull".into();
        let r = run_scenario(&sc, &[PolicyKind::Liu], &RunnerOptions {
            period_lb: None,
            ..fast_options()
        });
        assert_eq!(r.outcomes.len(), 2); // LowerBound + Liu
        let lb = r.get("LowerBound").expect("row");
        assert!(lb.error.is_some(), "LowerBound must degrade gracefully");
        assert!(lb.avg_degradation.is_none());
        assert!(r.get("Liu").expect("row").error.is_some());
    }

    #[test]
    fn results_are_deterministic() {
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young];
        let a = run_scenario(&sc, &kinds, &fast_options());
        let b = run_scenario(&sc, &kinds, &fast_options());
        assert_eq!(
            a.get("Young").expect("row").mean_makespan,
            b.get("Young").expect("row").mean_makespan
        );
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The pipeline must be bit-identical regardless of executor
        // parallelism: per-task work is independent and the steal
        // executor commits every wave in task-ID order (trace index,
        // candidate index), whatever worker claimed what.
        let sc = tiny_scenario();
        let kinds = [PolicyKind::Young, PolicyKind::OptExp];
        let run_with = |threads: usize| {
            crate::steal::set_workers(threads);
            let out = run_scenario(&sc, &kinds, &fast_options());
            crate::steal::set_workers(0);
            out
        };
        let one = run_with(1);
        let many = run_with(4);
        assert_eq!(one.period_lb_factor, many.period_lb_factor);
        for (a, b) in one.outcomes.iter().zip(&many.outcomes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.mean_makespan, b.mean_makespan, "{}", a.name);
            assert_eq!(a.avg_degradation, b.avg_degradation, "{}", a.name);
        }
    }

    #[test]
    fn coarse_to_fine_matches_full_search_and_cuts_sims() {
        let sc = tiny_scenario();
        let grid = paper_period_grid();
        let full = run_scenario(&sc, &[], &RunnerOptions {
            lower_bound: false,
            period_lb: Some(grid.clone()),
            period_search: PeriodSearch::Full,
            sim: SimOptions::default(),
        });
        let coarse = run_scenario(&sc, &[], &RunnerOptions {
            lower_bound: false,
            period_lb: Some(grid.clone()),
            period_search: PeriodSearch::default(),
            sim: SimOptions::default(),
        });
        let full_sims = full.perf.candidate_sims;
        let coarse_sims = coarse.perf.candidate_sims;
        assert_eq!(full_sims, (grid.len() * sc.traces) as u64);
        assert!(
            coarse_sims * 5 <= full_sims,
            "coarse-to-fine used {coarse_sims} of {full_sims} sims (> 1/5)"
        );
        let full_mean = full.get("PeriodLB").expect("row").mean_makespan.expect("ran");
        let coarse_mean = coarse.get("PeriodLB").expect("row").mean_makespan.expect("ran");
        assert!(
            (coarse_mean - full_mean).abs() <= 1e-3 * full_mean,
            "coarse-to-fine mean {coarse_mean} deviates from full-grid {full_mean}"
        );
    }

    #[test]
    fn perf_counters_are_populated() {
        let sc = tiny_scenario();
        let r = run_scenario(&sc, &[PolicyKind::Young], &fast_options());
        assert!(r.perf.total_seconds > 0.0);
        let names: Vec<&str> = r.perf.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["trace_gen", "policy_sims", "period_search", "aggregate"]);
        assert_eq!(r.perf.policy_sims, sc.traces as u64);
        assert_eq!(r.perf.candidate_sims, (3 * sc.traces) as u64);
        assert_eq!(r.perf.candidate_grid_size, 3);
        assert!(r.perf.decisions > 0);
    }
}
