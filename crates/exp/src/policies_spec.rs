//! Declarative policy lists, instantiated per scenario.

use crate::error::Error;
use crate::scenario::{BuiltDist, Scenario};
use ckpt_policies::{DpMakespanConfig, DpNextFailureConfig, Policy};

/// Which policy to instantiate for a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// Young 1974.
    Young,
    /// Daly 2004 lower-order.
    DalyLow,
    /// Daly 2004 higher-order.
    DalyHigh,
    /// Theorem 1 / Proposition 5.
    OptExp,
    /// Bouguerra et al. (rejuvenation assumption).
    Bouguerra,
    /// Liu et al. hazard-frequency placement.
    Liu,
    /// Algorithm 2 + §3.3.
    DpNextFailure(DpNextFailureConfig),
    /// Algorithm 1 (on the rejuvenated platform distribution when p > 1).
    DpMakespan(DpMakespanConfig),
    /// OptExp's period scaled by a factor (`PeriodVariation`).
    OptExpScaled(f64),
}

impl PolicyKind {
    /// The §4.1 roster for synthetic-failure experiments. `DPMakespan` is
    /// included only when the distribution supports it the way the paper
    /// uses it (Exponential, or 1-processor / rejuvenated Weibull).
    pub fn paper_roster(include_dp_makespan: bool) -> Vec<Self> {
        let mut v = vec![
            Self::Young,
            Self::DalyLow,
            Self::DalyHigh,
            Self::Liu,
            Self::Bouguerra,
            Self::OptExp,
            Self::DpNextFailure(DpNextFailureConfig::default()),
        ];
        if include_dp_makespan {
            v.push(Self::DpMakespan(DpMakespanConfig::default()));
        }
        v
    }

    /// The §6 roster for log-based experiments (Liu, Bouguerra and
    /// DPMakespan cannot be adapted, as the paper notes).
    pub fn log_based_roster() -> Vec<Self> {
        vec![
            Self::Young,
            Self::DalyLow,
            Self::DalyHigh,
            Self::OptExp,
            Self::DpNextFailure(DpNextFailureConfig::default()),
        ]
    }

    /// Instantiate for a scenario — a thin forwarder to the single
    /// construction site, [`crate::registry::build_policy`]. `Err` carries
    /// the reason a policy cannot produce a meaningful schedule (Liu's
    /// `interval < C` case), reported as a gap exactly like the paper's
    /// incomplete curves.
    pub fn build(
        &self,
        scenario: &Scenario,
        built: &BuiltDist,
    ) -> Result<Box<dyn Policy>, Error> {
        crate::registry::build_policy(self, scenario, built)
    }

    /// Display name (matches the paper's legends).
    pub fn name(&self) -> String {
        match self {
            Self::Young => "Young".into(),
            Self::DalyLow => "DalyLow".into(),
            Self::DalyHigh => "DalyHigh".into(),
            Self::OptExp => "OptExp".into(),
            Self::Bouguerra => "Bouguerra".into(),
            Self::Liu => "Liu".into(),
            Self::DpNextFailure(_) => "DPNextFailure".into(),
            Self::DpMakespan(_) => "DPMakespan".into(),
            Self::OptExpScaled(f) => format!("OptExp*{f:.4}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;
    use ckpt_workload::YEAR;

    fn weibull_cell(p: u64) -> (Scenario, BuiltDist) {
        let dist = DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR };
        let s = Scenario::petascale(dist.clone(), p, 1);
        let b = dist.build();
        (s, b)
    }

    #[test]
    fn roster_sizes() {
        assert_eq!(PolicyKind::paper_roster(true).len(), 8);
        assert_eq!(PolicyKind::paper_roster(false).len(), 7);
        assert_eq!(PolicyKind::log_based_roster().len(), 5);
    }

    #[test]
    fn periodic_policies_build() {
        let (s, b) = weibull_cell(4_096);
        for kind in [PolicyKind::Young, PolicyKind::DalyLow, PolicyKind::DalyHigh, PolicyKind::OptExp]
        {
            let p = kind.build(&s, &b).expect("periodic policies always build");
            assert_eq!(p.name(), kind.name());
        }
    }

    #[test]
    fn liu_fails_at_petascale_small_shape() {
        // Footnote-2 behaviour: nonsensical intervals on big platforms
        // with small Weibull shapes.
        let dist = DistSpec::Weibull { shape: 0.5, mtbf: 125.0 * YEAR };
        let s = Scenario::petascale(dist.clone(), 45_208, 1);
        let b = dist.build();
        let e = PolicyKind::Liu.build(&s, &b);
        assert!(e.is_err(), "footnote-2 behaviour expected");
    }

    #[test]
    fn liu_fails_at_exascale_paper_shape() {
        let dist = DistSpec::Weibull { shape: 0.7, mtbf: 1_250.0 * YEAR };
        let s = Scenario::exascale(dist.clone(), 1 << 20, 1);
        let b = dist.build();
        assert!(PolicyKind::Liu.build(&s, &b).is_err());
    }

    #[test]
    fn liu_unavailable_for_log_based() {
        let dist = DistSpec::LanlLog { cluster: 19 };
        let s = Scenario::petascale(dist.clone(), 4_096, 1);
        let b = dist.build();
        assert!(PolicyKind::Liu.build(&s, &b).is_err());
    }

    #[test]
    fn scaled_optexp_scales() {
        let (s, b) = weibull_cell(4_096);
        let base = PolicyKind::OptExp.build(&s, &b).unwrap();
        let scaled = PolicyKind::OptExpScaled(2.0).build(&s, &b).unwrap();
        // Compare first chunks through sessions.
        let ages = ckpt_platform::AgeView::all_pristine(4_096, 0.0);
        let w = s.job_spec().work;
        let c0 = base.session().next_chunk(w, &ages, 0.0);
        let c1 = scaled.session().next_chunk(w, &ages, 0.0);
        assert!((c1 / c0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dp_policies_build_for_weibull_parallel() {
        let (s, b) = weibull_cell(1_024);
        assert!(PolicyKind::DpNextFailure(Default::default()).build(&s, &b).is_ok());
        // Parallel Weibull DPMakespan builds on the min-of distribution.
        let cfg = ckpt_policies::DpMakespanConfig { quanta: Some(20), ..Default::default() };
        assert!(PolicyKind::DpMakespan(cfg).build(&s, &b).is_ok());
    }
}
