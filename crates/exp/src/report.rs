//! Whole-study report generator.
//!
//! Assembles every experiment into one self-contained markdown document —
//! the shape of the paper's evaluation section — at a configurable trace
//! count. Used by `ckpt-exp report` and by EXPERIMENTS.md's recorded runs.

use crate::experiments as ex;
use crate::output::{markdown_table, CSV_HEADER};
use crate::policies_spec::PolicyKind;
use crate::runner::ScenarioResult;
use std::fmt::Write as _;

/// Which experiments to include.
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// Traces per scenario.
    pub traces: usize,
    /// Include the single-processor tables (2 & 3).
    pub tables: bool,
    /// Include the Petascale scaling figures (2 & 4) and Table 4.
    pub petascale: bool,
    /// Include the Exascale figures (3 & 6) — the slowest section.
    pub exascale: bool,
    /// Include the Weibull shape sweep (Figure 5).
    pub shape_sweep: bool,
    /// Include the log-based figures (7 & 100).
    pub logbased: bool,
}

impl ReportConfig {
    /// A quick configuration that exercises every section at small scale.
    pub fn quick(traces: usize) -> Self {
        Self {
            traces,
            tables: true,
            petascale: true,
            exascale: false,
            shape_sweep: true,
            logbased: true,
        }
    }
}

/// Extract the headline comparison from a scenario: DPNextFailure's
/// degradation vs the best previously-published heuristic.
fn headline(r: &ScenarioResult) -> Option<String> {
    let dp = r.get("DPNextFailure")?.avg_degradation?;
    let prior = ["Young", "DalyLow", "DalyHigh", "OptExp", "Bouguerra", "Liu"]
        .iter()
        .filter_map(|n| r.get(n).and_then(|o| o.avg_degradation))
        .fold(f64::INFINITY, f64::min);
    if !prior.is_finite() {
        return None;
    }
    Some(if dp <= prior {
        format!(
            "DPNextFailure ({dp:.4}) ≤ best prior heuristic ({prior:.4}) — the paper's headline holds."
        )
    } else {
        format!("DPNextFailure ({dp:.4}) vs best prior heuristic ({prior:.4}) on this sample.")
    })
}

/// Generate the report.
pub fn generate(config: &ReportConfig) -> String {
    let t = config.traces;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Checkpointing strategies — reproduction report\n\n\
         Traces per scenario: {t}. Degradation values are §4.1 averages of\n\
         per-trace `makespan / best-heuristic-makespan`.\n"
    );

    // Figure 1 is analytic and always cheap.
    let _ = writeln!(out, "## Figure 1 — rejuvenation options\n");
    let _ = writeln!(out, "| p | MTBF rejuvenate-all (h) | MTBF failed-only (h) |");
    let _ = writeln!(out, "|---|---|---|");
    for (p, all, failed) in ex::fig1().into_iter().step_by(3) {
        let _ = writeln!(out, "| {p} | {:.2} | {:.2} |", all / 3_600.0, failed / 3_600.0);
    }
    let _ = writeln!(out);

    if config.tables {
        for (weibull, name) in [(false, "Table 2 (Exponential)"), (true, "Table 3 (Weibull k=0.7)")] {
            let _ = writeln!(out, "## {name}\n");
            for (label, r) in ex::table23(weibull, t) {
                let _ = writeln!(out, "### MTBF = {label}\n\n{}", markdown_table(&r));
                if let Some(h) = headline(&r) {
                    let _ = writeln!(out, "{h}\n");
                }
            }
        }
    }

    if config.petascale {
        for (weibull, name) in [(false, "Figure 2"), (true, "Figure 4")] {
            let _ = writeln!(out, "## {name} — Petascale scaling\n\n```\n{CSV_HEADER}");
            for (p, r) in ex::fig_synthetic_scaling(weibull, false, 125.0, t) {
                let _ = write!(out, "{}", crate::output::csv_series(p as f64, &r));
            }
            let _ = writeln!(out, "```\n");
        }
        let _ = writeln!(out, "## Table 4 — Jaguar cell\n");
        let r = ex::table4(t);
        let _ = writeln!(out, "{}", markdown_table(&r));
        if let Some(h) = headline(&r) {
            let _ = writeln!(out, "{h}\n");
        }
    }

    if config.shape_sweep {
        let _ = writeln!(out, "## Figure 5 — shape sweep at p = 45,208\n\n```\n{CSV_HEADER}");
        let shapes = [0.3, 0.5, 0.7, 0.9];
        for (k, r) in ex::fig5(&shapes, t) {
            let _ = write!(out, "{}", crate::output::csv_series(k, &r));
        }
        let _ = writeln!(out, "```\n");
    }

    if config.exascale {
        for (weibull, name) in [(false, "Figure 3"), (true, "Figure 6")] {
            let _ = writeln!(out, "## {name} — Exascale scaling\n\n```\n{CSV_HEADER}");
            for (p, r) in ex::fig_synthetic_scaling(weibull, true, 1_250.0, t) {
                let _ = write!(out, "{}", crate::output::csv_series(p as f64, &r));
            }
            let _ = writeln!(out, "```\n");
        }
    }

    if config.logbased {
        for cluster in [19u32, 18] {
            let _ = writeln!(
                out,
                "## Figure {} — log-based (synthetic LANL cluster {cluster})\n\n```\n{CSV_HEADER}",
                if cluster == 19 { "7" } else { "100" }
            );
            for (p, r) in ex::fig_logbased(cluster, t) {
                let _ = write!(out, "{}", crate::output::csv_series(p as f64, &r));
            }
            let _ = writeln!(out, "```\n");
        }
    }

    let _ = writeln!(out, "## Figures 98/99 — makespan by application profile\n");
    for (kind, weibull, name) in [
        (PolicyKind::OptExp, false, "Figure 98 (OptExp, Exponential)"),
        (
            PolicyKind::DpNextFailure(Default::default()),
            true,
            "Figure 99 (DPNextFailure, Weibull)",
        ),
    ] {
        let _ = writeln!(out, "### {name}\n\n```\nmodel,p,mean_makespan_days");
        for (model, series) in ex::fig9899(&kind, weibull, t.min(3)) {
            for (p, mk) in series {
                let _ = writeln!(out, "{model},{p},{:.3}", mk / 86_400.0);
            }
        }
        let _ = writeln!(out, "```\n");
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_contains_all_sections() {
        let cfg = ReportConfig {
            traces: 1,
            tables: false,
            petascale: false,
            exascale: false,
            shape_sweep: false,
            logbased: false,
        };
        let r = generate(&cfg);
        assert!(r.contains("Figure 1"));
        assert!(r.contains("Figures 98/99"));
    }
}
