//! Planning layer: a pure `Scenario → SimPlan` function.
//!
//! A [`SimPlan`] is the complete, typed description of the simulation
//! work one scenario requires — which policies run on which traces,
//! whether the omniscient lower bound is evaluated, and how the
//! `PeriodLB` candidate grid is explored. Nothing in this module
//! generates traces, builds policies, or simulates; those effects live
//! in [`crate::exec`]. Because every task is identified by stable
//! indices (policy index, candidate index, trace index) and trace seeds
//! derive from the scenario label and trace index alone, a plan is
//! **seed-stable**: executing it with any rayon thread count, in any
//! task order, yields bit-identical results.
//!
//! Dependencies are explicit in the wave structure:
//!
//! * [`SimPlan::roster_wave`] — policy sims and lower-bound evals; no
//!   prerequisites.
//! * [`SimPlan::coarse`] — the first `PeriodLB` candidate wave; no
//!   prerequisites (it is a pure function of the grid).
//! * [`SimPlan::refine_window`] — the second candidate wave *depends on*
//!   the coarse wave: its indices are a function of the coarse
//!   incumbent.
//!
//! The coarse-to-fine exploration strategy and the process-wide trace
//! cache are properties of the plan (`search`, `cache_traces`), not
//! hidden behaviour of the runner.

use crate::policies_spec::PolicyKind;
use crate::runner::{PeriodSearch, RunnerOptions};
use crate::scenario::Scenario;
use ckpt_sim::SimOptions;

/// One deterministic unit of simulation work. All variants are
/// identified by indices into the owning [`SimPlan`], so tasks are
/// `Copy` and trivially shippable across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimTask {
    /// Run roster policy `policy` on trace `trace`.
    Policy {
        /// Index into [`SimPlan::kinds`].
        policy: usize,
        /// Trace index (also the seed-sequence child index).
        trace: usize,
    },
    /// Evaluate the omniscient lower bound on trace `trace`.
    LowerBound {
        /// Trace index.
        trace: usize,
    },
    /// Run `PeriodLB` candidate `candidate` on trace `trace`.
    Candidate {
        /// Index into [`SimPlan::grid`].
        candidate: usize,
        /// Trace index.
        trace: usize,
    },
}

/// The typed, executable description of one scenario's simulation work.
#[derive(Debug, Clone)]
pub struct SimPlan {
    /// Roster policies, in report order.
    pub kinds: Vec<PolicyKind>,
    /// Display names, aligned with `kinds`.
    pub policy_names: Vec<String>,
    /// Number of traces (tasks exist for indices `0..traces`).
    pub traces: usize,
    /// Whether [`SimTask::LowerBound`] tasks are part of the roster wave.
    pub lower_bound: bool,
    /// The `PeriodLB` candidate factor grid, sorted ascending and
    /// deduplicated. Empty ⇒ no period search.
    pub grid: Vec<f64>,
    /// Grid indices of the first candidate wave.
    pub coarse: Vec<usize>,
    /// `Some(step)` ⇒ a refine wave follows the coarse wave, covering
    /// [`Self::refine_window`] around the coarse incumbent. `None` ⇒ the
    /// coarse wave already covers the whole grid.
    pub refine_step: Option<usize>,
    /// The exploration strategy the waves were derived from.
    pub search: PeriodSearch,
    /// Traces are fetched through the process-wide [`crate::cache::TraceCache`]
    /// (keyed by scenario label, platform size and trace index), so
    /// repeated plans for the same cell share generation work.
    pub cache_traces: bool,
    /// Engine safety options applied to every simulation.
    pub sim: SimOptions,
}

/// Build the [`SimPlan`] for a scenario. Pure: no traces are generated,
/// no policies are instantiated, nothing is simulated.
pub fn plan_scenario(
    scenario: &Scenario,
    kinds: &[PolicyKind],
    options: &RunnerOptions,
) -> SimPlan {
    let grid = options
        .period_lb
        .as_ref()
        .map(|g| dedupe_sorted(g.clone()))
        .unwrap_or_default();
    let (coarse, refine_step) = candidate_waves(&grid, options.period_search);
    SimPlan {
        kinds: kinds.to_vec(),
        policy_names: kinds.iter().map(PolicyKind::name).collect(),
        traces: scenario.traces,
        lower_bound: options.lower_bound,
        grid,
        coarse,
        refine_step,
        search: options.period_search,
        cache_traces: true,
        sim: options.sim,
    }
}

impl SimPlan {
    /// The first wave: every roster policy sim plus (when enabled) the
    /// lower-bound evals. No prerequisites; tasks are independent.
    pub fn roster_wave(&self) -> Vec<SimTask> {
        let mut tasks =
            Vec::with_capacity(self.traces * (self.kinds.len() + usize::from(self.lower_bound)));
        for trace in 0..self.traces {
            for policy in 0..self.kinds.len() {
                tasks.push(SimTask::Policy { policy, trace });
            }
            if self.lower_bound {
                tasks.push(SimTask::LowerBound { trace });
            }
        }
        tasks
    }

    /// Candidate tasks for a set of grid indices (one per trace).
    pub fn candidate_wave(&self, indices: &[usize]) -> Vec<SimTask> {
        indices
            .iter()
            .flat_map(|&candidate| {
                (0..self.traces).map(move |trace| SimTask::Candidate { candidate, trace })
            })
            .collect()
    }

    /// Grid indices of the refine wave, given the coarse incumbent.
    /// This is the plan's only inter-wave dependency: the window is a
    /// pure function of which coarse candidate won. Returns an empty
    /// range when the plan has no refine wave.
    pub fn refine_window(&self, incumbent: usize) -> std::ops::Range<usize> {
        match self.refine_step {
            None => 0..0,
            Some(step) => {
                // The coarse neighbours bracket the optimum when the mean
                // profile is unimodal at coarse resolution.
                incumbent.saturating_sub(step - 1)..(incumbent + step).min(self.grid.len())
            }
        }
    }
}

/// Coarse-wave indices and refine step for a (sorted, deduped) grid
/// under `search`. Pure.
fn candidate_waves(grid: &[f64], search: PeriodSearch) -> (Vec<usize>, Option<usize>) {
    let len = grid.len();
    if len == 0 {
        return (Vec::new(), None);
    }
    match search {
        PeriodSearch::Full => ((0..len).collect(), None),
        PeriodSearch::CoarseToFine { coarse_step, min_full } => {
            if len <= min_full.max(1) {
                ((0..len).collect(), None)
            } else {
                let step = coarse_step.max(2);
                let mut idx: Vec<usize> = (0..len).step_by(step).collect();
                idx.push(len - 1);
                // Always anchor at the factor nearest 1.0 (OptExp itself).
                if let Some(anchor) = anchor_index(grid) {
                    idx.push(anchor);
                }
                idx.sort_unstable();
                idx.dedup();
                (idx, Some(step))
            }
        }
    }
}

/// Index of the factor nearest 1.0 (OptExp itself) — the coarse wave is
/// always anchored there. Exposed separately because it needs the
/// factor values, not just the grid length.
pub fn anchor_index(grid: &[f64]) -> Option<usize> {
    (0..grid.len()).min_by(|&a, &b| (grid[a] - 1.0).abs().total_cmp(&(grid[b] - 1.0).abs()))
}

/// The winner among evaluated candidates: smallest mean makespan, ties
/// broken toward the smaller factor (deterministic regardless of
/// exploration order). `means[i]` is `None` for unevaluated candidates.
pub fn winner(means: &[Option<f64>]) -> Option<usize> {
    let mut best = None;
    let mut best_mean = f64::INFINITY;
    for (i, mean) in means.iter().enumerate() {
        if let Some(m) = mean {
            if *m < best_mean {
                best_mean = *m;
                best = Some(i);
            }
        }
    }
    best
}

/// Sort ascending and drop duplicates (relative tolerance 1e-9 — the
/// paper's grid reaches the same factor along both of its arms, e.g.
/// `1.1 = 1 + 0.05·2`).
pub(crate) fn dedupe_sorted(mut grid: Vec<f64>) -> Vec<f64> {
    grid.retain(|f| f.is_finite() && *f > 0.0);
    grid.sort_by(f64::total_cmp);
    grid.dedup_by(|a, b| (*a - *b).abs() <= 1e-9 * b.abs());
    grid
}

/// The default `PeriodLB` candidate grid: factors `2^{j/8}` for
/// `j ∈ [−24, 24]` — a coarser but equally wide net than the paper's
/// `(1 ± 0.05i, 1.1^j)` grid (which [`paper_period_grid`] reproduces).
/// Sorted ascending, duplicate-free.
pub fn default_period_grid() -> Vec<f64> {
    dedupe_sorted((-24..=24).map(|j| 2f64.powf(j as f64 / 8.0)).collect())
}

/// The paper's §4.1 grid: `×/÷ (1 + 0.05·i)` for `i ∈ 1..=180` and
/// `×/÷ 1.1^j` for `j ∈ 1..=60`, plus the identity. Sorted ascending
/// with the overlapping factors deduplicated (479 candidates; the raw
/// union counts 481 with `1.1 = 1 + 0.05·2` twice on both arms).
pub fn paper_period_grid() -> Vec<f64> {
    let mut g = vec![1.0];
    for i in 1..=180 {
        let f = 1.0 + 0.05 * i as f64;
        g.push(f);
        g.push(1.0 / f);
    }
    for j in 1..=60 {
        let f = 1.1f64.powi(j);
        g.push(f);
        g.push(1.0 / f);
    }
    dedupe_sorted(g)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;

    fn tiny() -> Scenario {
        Scenario::single_processor(DistSpec::Exponential { mtbf: 6.0 * 3_600.0 }, 3)
    }

    #[test]
    fn plan_is_pure_and_typed() {
        let sc = tiny();
        let kinds = [PolicyKind::Young, PolicyKind::OptExp];
        let plan = plan_scenario(&sc, &kinds, &RunnerOptions::default());
        assert_eq!(plan.policy_names, ["Young", "OptExp"]);
        assert_eq!(plan.traces, 3);
        // Default grid: 49 factors, coarse-to-fine with step 8.
        assert_eq!(plan.grid.len(), 49);
        assert_eq!(plan.refine_step, Some(8));
        // Roster wave: 2 policies × 3 traces + 3 lower bounds.
        let wave = plan.roster_wave();
        assert_eq!(wave.len(), 9);
        assert_eq!(wave[0], SimTask::Policy { policy: 0, trace: 0 });
        assert_eq!(wave[2], SimTask::LowerBound { trace: 0 });
    }

    #[test]
    fn full_search_has_no_refine_wave() {
        let sc = tiny();
        let opts = RunnerOptions {
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            period_search: PeriodSearch::Full,
            ..RunnerOptions::default()
        };
        let plan = plan_scenario(&sc, &[], &opts);
        assert_eq!(plan.coarse, [0, 1, 2]);
        assert_eq!(plan.refine_step, None);
        assert_eq!(plan.refine_window(1), 0..0);
    }

    #[test]
    fn small_grids_are_searched_exhaustively_under_coarse_to_fine() {
        let sc = tiny();
        let opts = RunnerOptions {
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            ..RunnerOptions::default()
        };
        let plan = plan_scenario(&sc, &[], &opts);
        assert_eq!(plan.coarse, [0, 1, 2]);
        assert_eq!(plan.refine_step, None);
    }

    #[test]
    fn coarse_wave_strides_and_includes_last() {
        let sc = tiny();
        let opts = RunnerOptions {
            period_lb: Some(paper_period_grid()),
            ..RunnerOptions::default()
        };
        let plan = plan_scenario(&sc, &[], &opts);
        assert_eq!(plan.grid.len(), 479);
        assert_eq!(plan.coarse.first(), Some(&0));
        assert_eq!(plan.coarse.last(), Some(&478));
        assert!(plan.coarse.len() < 70);
        // Refine window brackets the incumbent between coarse neighbours.
        assert_eq!(plan.refine_window(16), 9..24);
        assert_eq!(plan.refine_window(0), 0..8);
        assert_eq!(plan.refine_window(478), 471..479);
    }

    #[test]
    fn winner_prefers_smallest_mean_then_smallest_index() {
        assert_eq!(winner(&[None, Some(2.0), Some(1.0), Some(1.0)]), Some(2));
        assert_eq!(winner(&[None, None]), None);
        assert_eq!(winner(&[]), None);
    }

    #[test]
    fn anchor_is_nearest_one() {
        assert_eq!(anchor_index(&[0.25, 0.9, 1.2, 4.0]), Some(1));
        assert_eq!(anchor_index(&[]), None);
    }

    #[test]
    fn grids_are_sorted_and_deduped() {
        for grid in [default_period_grid(), paper_period_grid()] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1], "sorted strictly: {} vs {}", w[0], w[1]);
            }
        }
        assert_eq!(paper_period_grid().len(), 479);
        assert!(paper_period_grid().contains(&1.0));
    }
}
