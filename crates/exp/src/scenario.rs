//! Experimental cells and their (prefix-stable) trace generation.

use crate::error::Error;
use ckpt_math::SeedSequence;
use ckpt_dist::{Exponential, FailureDistribution, GammaDist, LogNormal, Weibull};
use ckpt_platform::{Topology, TraceSet};
use ckpt_traces::try_synthetic_lanl_cluster;
use ckpt_workload::{JobSpec, OverheadModel, ParallelismModel, DAY, YEAR};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The failure model of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DistSpec {
    /// Exponential with per-processor MTBF (seconds).
    Exponential {
        /// Per-processor MTBF, seconds.
        mtbf: f64,
    },
    /// Weibull with shape `k` and per-processor MTBF.
    Weibull {
        /// Shape parameter `k`.
        shape: f64,
        /// Per-processor MTBF, seconds.
        mtbf: f64,
    },
    /// LogNormal with log-space σ and per-processor MTBF (extension).
    LogNormal {
        /// Log-space standard deviation.
        sigma: f64,
        /// Per-processor MTBF, seconds.
        mtbf: f64,
    },
    /// Gamma with shape and per-processor MTBF (extension).
    Gamma {
        /// Shape parameter.
        shape: f64,
        /// Per-processor MTBF, seconds.
        mtbf: f64,
    },
    /// Empirical distribution from the synthetic LANL-like log of the
    /// given cluster (18 or 19); failures strike 4-processor nodes.
    LanlLog {
        /// Cluster id (18 or 19).
        cluster: u32,
    },
}

/// Render a shape-like parameter as a fixed-width, filename-safe token:
/// four decimals, zero-padded to eight characters, decimal point as `p`
/// (`0.7` → `000p7000`). Fixed width makes labels sort lexicographically
/// and kills the `1` vs `1.0` spelling collision of raw `{}` interpolation.
fn shape_token(x: f64) -> String {
    format!("{x:08.4}").replace('.', "p")
}

/// Render an MTBF-like parameter (seconds, effectively integral) as a
/// twelve-digit zero-padded token so labels sort numerically.
fn mtbf_token(x: f64) -> String {
    format!("{x:012.0}")
}

impl DistSpec {
    /// Short label for file names and seeds: filename-safe (no `.`),
    /// fixed-width (labels sort lexicographically = numerically), and
    /// collision-free across parameter spellings.
    ///
    /// **This label seeds trace generation** — changing the format changes
    /// every downstream number, so it is covered by the golden test.
    pub fn label(&self) -> String {
        match self {
            Self::Exponential { mtbf } => format!("exp-{}", mtbf_token(*mtbf)),
            Self::Weibull { shape, mtbf } => {
                format!("weibull{}-{}", shape_token(*shape), mtbf_token(*mtbf))
            }
            Self::LogNormal { sigma, mtbf } => {
                format!("lognormal{}-{}", shape_token(*sigma), mtbf_token(*mtbf))
            }
            Self::Gamma { shape, mtbf } => {
                format!("gamma{}-{}", shape_token(*shape), mtbf_token(*mtbf))
            }
            Self::LanlLog { cluster } => format!("lanl{cluster:02}"),
        }
    }
}

/// A built failure model: the sampling/conditioning distribution, the
/// failure-unit topology, and the *effective per-processor MTBF* the
/// MTBF-only heuristics are fed (§4.1; for log-based models this is the
/// empirical node MTBF scaled to processor granularity, the paper's
/// "pretending the underlying distribution is Exponential with the same
/// MTBF").
#[derive(Clone)]
pub struct BuiltDist {
    /// The per-unit failure inter-arrival distribution.
    pub dist: Arc<dyn FailureDistribution>,
    /// Unit → processor mapping.
    pub topology: Topology,
    /// Effective per-processor MTBF, seconds.
    pub proc_mtbf: f64,
    /// Weibull shape when the model is Weibull (Liu needs it).
    pub weibull_shape: Option<f64>,
}

impl DistSpec {
    /// Materialise the distribution (generating the synthetic log for
    /// `LanlLog`, deterministic per cluster id).
    ///
    /// # Panics
    /// Panics when the model cannot be materialised (unknown LANL cluster
    /// id); the fallible form is [`DistSpec::try_build`].
    pub fn build(&self) -> BuiltDist {
        match self.try_build() {
            Ok(b) => b,
            Err(e) => panic!("DistSpec::build: {e}"),
        }
    }

    /// Fallible form of [`DistSpec::build`], reporting an unmodelled LANL
    /// cluster or a degenerate log as a typed [`Error`].
    pub fn try_build(&self) -> Result<BuiltDist, Error> {
        Ok(match *self {
            Self::Exponential { mtbf } => BuiltDist {
                dist: Arc::new(Exponential::from_mtbf(mtbf)),
                topology: Topology::per_processor(),
                proc_mtbf: mtbf,
                weibull_shape: Some(1.0),
            },
            Self::Weibull { shape, mtbf } => BuiltDist {
                dist: Arc::new(Weibull::from_mtbf(shape, mtbf)),
                topology: Topology::per_processor(),
                proc_mtbf: mtbf,
                weibull_shape: Some(shape),
            },
            Self::LogNormal { sigma, mtbf } => BuiltDist {
                dist: Arc::new(LogNormal::from_mtbf(sigma, mtbf)),
                topology: Topology::per_processor(),
                proc_mtbf: mtbf,
                weibull_shape: None,
            },
            Self::Gamma { shape, mtbf } => BuiltDist {
                dist: Arc::new(GammaDist::from_mtbf(shape, mtbf)),
                topology: Topology::per_processor(),
                proc_mtbf: mtbf,
                weibull_shape: None,
            },
            Self::LanlLog { cluster } => {
                let log = try_synthetic_lanl_cluster(
                    cluster,
                    SeedSequence::from_label(&format!("lanl-log-{cluster}")),
                )?;
                let node_mtbf = log.empirical_mtbf();
                let procs_per_node = log.procs_per_node;
                BuiltDist {
                    dist: Arc::new(log.try_empirical_distribution()?),
                    topology: Topology::nodes_of(procs_per_node),
                    // A node failure takes down `procs_per_node`
                    // processors at once, so the platform failure rate is
                    // (p / n_per_node) / node_mtbf; the per-processor MTBF
                    // that reproduces it is node_mtbf · n_per_node.
                    proc_mtbf: node_mtbf * f64::from(procs_per_node),
                    weibull_shape: None,
                }
            }
        })
    }
}

/// One experimental cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Label — also the seed root, so it must NOT encode the processor
    /// count (trace prefixes must match across `p`, §4.3).
    pub label: String,
    /// Failure model.
    pub dist: DistSpec,
    /// Enrolled processors.
    pub procs: u64,
    /// Total sequential work, seconds.
    pub total_work: f64,
    /// Parallelism law.
    pub parallelism: ParallelismModel,
    /// Checkpoint-cost law.
    pub overhead: OverheadModel,
    /// Downtime `D`, seconds.
    pub downtime: f64,
    /// Trace horizon, seconds.
    pub horizon: f64,
    /// Job start within the horizon, seconds.
    pub start_time: f64,
    /// Number of traces (the paper uses 600).
    pub traces: usize,
}

impl Scenario {
    /// Table 1 single-processor cell.
    pub fn single_processor(dist: DistSpec, traces: usize) -> Self {
        Self {
            label: format!("1proc-{}", dist.label()),
            dist,
            procs: 1,
            total_work: 20.0 * DAY,
            parallelism: ParallelismModel::EmbarrassinglyParallel,
            overhead: OverheadModel::Constant { seconds: 600.0 },
            downtime: 60.0,
            horizon: 2.0 * YEAR,
            start_time: 0.0,
            traces,
        }
    }

    /// Table 1 Petascale cell (W = 1000 y, default EP + constant C).
    pub fn petascale(dist: DistSpec, procs: u64, traces: usize) -> Self {
        Self {
            label: format!("peta-{}", dist.label()),
            dist,
            procs,
            total_work: 1_000.0 * YEAR,
            parallelism: ParallelismModel::EmbarrassinglyParallel,
            overhead: OverheadModel::Constant { seconds: 600.0 },
            downtime: 60.0,
            horizon: 11.0 * YEAR,
            start_time: YEAR,
            traces,
        }
    }

    /// Table 1 Exascale cell (W = 10 000 y).
    pub fn exascale(dist: DistSpec, procs: u64, traces: usize) -> Self {
        Self {
            label: format!("exa-{}", dist.label()),
            dist,
            procs,
            total_work: 10_000.0 * YEAR,
            parallelism: ParallelismModel::EmbarrassinglyParallel,
            overhead: OverheadModel::Constant { seconds: 600.0 },
            downtime: 60.0,
            horizon: 11.0 * YEAR,
            start_time: YEAR,
            traces,
        }
    }

    /// The job spec of this cell.
    pub fn job_spec(&self) -> JobSpec {
        JobSpec::from_models(
            self.total_work,
            self.procs,
            self.parallelism,
            self.overhead,
            self.downtime,
        )
    }

    /// Generate the `index`-th trace set (deterministic; prefix-stable
    /// across processor counts for a fixed label).
    ///
    /// # Panics
    /// Panics on a degenerate cell (zero units, non-finite horizon);
    /// the fallible form is [`Scenario::try_generate_traces`].
    pub fn generate_traces(&self, built: &BuiltDist, index: usize) -> TraceSet {
        match self.try_generate_traces(built, index) {
            Ok(set) => set,
            Err(e) => panic!("generate_traces: {e}"),
        }
    }

    /// Fallible form of [`Scenario::generate_traces`], reporting a
    /// degenerate cell as a typed [`Error`].
    pub fn try_generate_traces(
        &self,
        built: &BuiltDist,
        index: usize,
    ) -> Result<TraceSet, Error> {
        let units = built.topology.units_for_procs(self.procs);
        Ok(TraceSet::try_generate(
            built.dist.as_ref(),
            units,
            built.topology,
            self.horizon,
            self.start_time,
            SeedSequence::from_label(&self.label).child(index as u64),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_per_dist() {
        let a = DistSpec::Exponential { mtbf: 100.0 }.label();
        let b = DistSpec::Weibull { shape: 0.7, mtbf: 100.0 }.label();
        assert_ne!(a, b);
    }

    #[test]
    fn labels_are_filename_safe_and_sortable() {
        let l = DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR }.label();
        assert_eq!(l, "weibull000p7000-003944700000");
        assert!(!l.contains('.') && !l.contains(' ') && !l.contains('/'));
        // Equal floats → equal labels, regardless of source spelling.
        assert_eq!(
            DistSpec::Weibull { shape: 1.0, mtbf: 100.0 }.label(),
            DistSpec::Weibull { shape: 1.0f32 as f64, mtbf: 100.0 }.label(),
        );
        // Fixed width: lexicographic order matches numeric order.
        let mtbfs = [9.0 * DAY, 100.0 * DAY, 2.0 * YEAR];
        let labels: Vec<String> =
            mtbfs.iter().map(|&m| DistSpec::Exponential { mtbf: m }.label()).collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted, "labels must sort numerically");
        // Distinct shapes never collide once zero-padded.
        assert_ne!(
            DistSpec::Weibull { shape: 1.0, mtbf: 100.0 }.label(),
            DistSpec::Weibull { shape: 10.0, mtbf: 100.0 }.label(),
        );
    }

    #[test]
    fn build_exponential() {
        let b = DistSpec::Exponential { mtbf: 1_000.0 }.build();
        assert_eq!(b.proc_mtbf, 1_000.0);
        assert!((b.dist.mean() - 1_000.0).abs() < 1e-9);
        assert_eq!(b.topology.procs_per_unit(), 1);
    }

    #[test]
    fn build_weibull_has_shape() {
        let b = DistSpec::Weibull { shape: 0.7, mtbf: 500.0 }.build();
        assert_eq!(b.weibull_shape, Some(0.7));
        assert!((b.dist.mean() - 500.0).abs() < 1e-6);
    }

    #[test]
    fn petascale_cell_spec() {
        let s = Scenario::petascale(
            DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR },
            45_208,
            600,
        );
        let spec = s.job_spec();
        assert_eq!(spec.procs, 45_208);
        assert!((spec.work / DAY - 8.07).abs() < 0.1);
        assert_eq!(spec.checkpoint, 600.0);
    }

    #[test]
    fn traces_prefix_stable_across_p() {
        let dist = DistSpec::Weibull { shape: 0.7, mtbf: 50_000.0 };
        let built = dist.build();
        let mut small = Scenario::petascale(dist.clone(), 8, 1);
        let mut large = Scenario::petascale(dist, 32, 1);
        // Same label (processor count must not leak into it).
        small.horizon = 1e6;
        large.horizon = 1e6;
        small.start_time = 0.0;
        large.start_time = 0.0;
        assert_eq!(small.label, large.label);
        let ts = small.generate_traces(&built, 3);
        let tl = large.generate_traces(&built, 3);
        assert_eq!(&tl.units[..8], &ts.units[..]);
    }

    #[test]
    fn lanl_build_uses_node_topology() {
        let b = DistSpec::LanlLog { cluster: 19 }.build();
        assert_eq!(b.topology.procs_per_unit(), 4);
        assert!(b.proc_mtbf > 0.0);
        // Platform MTBF at 45,208 procs should be around §6's 1,297 s
        // (generous band — synthetic log).
        let plat = b.proc_mtbf / 45_208.0;
        assert!((300.0..6_000.0).contains(&plat), "platform MTBF {plat}");
    }
}
