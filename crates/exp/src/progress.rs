//! Live study progress: total/completed/in-flight item counts per
//! [`WorkItem`](crate::checkpoint::WorkItem) kind, derived from the
//! manifest plus the commit layer, with rates and ETA read through the
//! single sanctioned `ckpt-obs` clock.
//!
//! Two outputs, one determinism rule:
//!
//! * **`progress.json`** in the study store, rewritten atomically at
//!   chunk boundaries and checkpoint commits. Every field is
//!   byte-deterministic at any worker count *except* the ones
//!   quarantined under the clearly-marked
//!   `wall_clock_nondeterministic` object (elapsed, rate, ETA).
//! * **Console lines** on stderr (opt-in via `run --study … --progress`),
//!   rate-limited to roughly one per second.
//!
//! Nothing here feeds results: the reporter observes the run loop, and
//! the run loop never reads it back.

use crate::checkpoint::{StudyManifest, WorkItem};
use crate::error::Error;
use crate::perf::format_f64;
use serde_json::escape_str;
use std::path::Path;

/// Fixed kind order of the `kinds` array (and the console breakdown).
const KIND_NAMES: [&str; 4] = ["policy", "lower_bound", "coarse", "refine"];

/// Minimum seconds between unforced console lines.
const CONSOLE_PERIOD_SECONDS: f64 = 1.0;

/// Seconds since process origin, for rates/ETA and console
/// rate-limiting only. Telemetry: nothing derived from this clock
/// reaches an aggregate, and every field it feeds in `progress.json`
/// is quarantined under `wall_clock_nondeterministic`.
fn clock_seconds() -> f64 {
    // lint: allow(wall-clock-in-sim, transitive-nondeterminism) — the progress reporter's single sanctioned clock site, routed through ckpt_obs::clock (see lint.toml)
    ckpt_obs::clock::now_micros() as f64 / 1e6
}

/// Map an item kind onto its [`KIND_NAMES`] slot.
fn kind_slot(item: &WorkItem) -> usize {
    use crate::checkpoint::ItemKind;
    match item.kind {
        ItemKind::Policy { .. } => 0,
        ItemKind::LowerBound => 1,
        ItemKind::Coarse { .. } => 2,
        ItemKind::Refine => 3,
    }
}

/// The live progress tracker the study run loop drives.
#[derive(Debug)]
pub struct StudyProgress {
    study: String,
    total: u64,
    resumed: u64,
    completed: u64,
    in_flight: u64,
    kind_total: [u64; 4],
    kind_completed: [u64; 4],
    kind_in_flight: [u64; 4],
    start_seconds: f64,
    last_console: f64,
    console: bool,
}

impl StudyProgress {
    /// Seed the tracker from a manifest's item list; `is_done` marks
    /// the items restored from a resumed snapshot. `console` enables
    /// the stderr lines (`--progress`).
    pub fn new(
        study: &str,
        items: &[WorkItem],
        is_done: impl Fn(u64) -> bool,
        console: bool,
    ) -> Self {
        let mut p = Self {
            study: study.to_string(),
            total: 0,
            resumed: 0,
            completed: 0,
            in_flight: 0,
            kind_total: [0; 4],
            kind_completed: [0; 4],
            kind_in_flight: [0; 4],
            start_seconds: 0.0,
            last_console: 0.0,
            console,
        };
        for item in items {
            let k = kind_slot(item);
            p.total += 1;
            p.kind_total[k] += 1;
            if is_done(item.id) {
                p.resumed += 1;
                p.completed += 1;
                p.kind_completed[k] += 1;
            }
        }
        let now = clock_seconds();
        p.start_seconds = now;
        // Make the very first tick print immediately.
        p.last_console = now - CONSOLE_PERIOD_SECONDS;
        p
    }

    /// Convenience: seed from a manifest.
    pub fn from_manifest(
        manifest: &StudyManifest,
        is_done: impl Fn(u64) -> bool,
        console: bool,
    ) -> Self {
        Self::new(&manifest.study, &manifest.items, is_done, console)
    }

    /// A chunk enters the executor: its items are now in flight.
    pub fn begin_chunk(&mut self, chunk: &[WorkItem]) {
        for item in chunk {
            self.in_flight += 1;
            self.kind_in_flight[kind_slot(item)] += 1;
        }
    }

    /// A chunk's results committed: in-flight items became completed.
    pub fn finish_chunk(&mut self, chunk: &[WorkItem]) {
        for item in chunk {
            self.in_flight = self.in_flight.saturating_sub(1);
            let k = kind_slot(item);
            self.kind_in_flight[k] = self.kind_in_flight[k].saturating_sub(1);
            self.completed += 1;
            self.kind_completed[k] += 1;
        }
    }

    /// Items completed so far (resumed + executed).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// `(items_per_second, eta_seconds)` over the items *this process*
    /// executed; `None` before the first completion (no basis for a
    /// rate yet).
    fn rate_eta(&self, now: f64) -> Option<(f64, f64)> {
        let executed = self.completed.saturating_sub(self.resumed);
        let elapsed = now - self.start_seconds;
        if executed == 0 || elapsed <= 0.0 {
            return None;
        }
        let rate = executed as f64 / elapsed;
        let eta = (self.total - self.completed) as f64 / rate;
        Some((rate, eta))
    }

    /// Render the `progress.json` document. Deterministic fields first;
    /// wall-clock-derived values are quarantined under
    /// `wall_clock_nondeterministic` (and are the *only* fields that
    /// may differ between byte-identical runs).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"study\": \"{}\",\n", escape_str(&self.study)));
        out.push_str(&format!("  \"total\": {},\n", self.total));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!("  \"in_flight\": {},\n", self.in_flight));
        out.push_str(&format!("  \"resumed\": {},\n", self.resumed));
        out.push_str("  \"kinds\": [\n");
        for (k, name) in KIND_NAMES.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kind\": \"{name}\", \"total\": {}, \"completed\": {}, \"in_flight\": {}}}{}\n",
                self.kind_total[k],
                self.kind_completed[k],
                self.kind_in_flight[k],
                if k + 1 < KIND_NAMES.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        let now = clock_seconds();
        let (rate, eta) = match self.rate_eta(now) {
            Some((r, e)) => (format_f64(r), format_f64(e)),
            None => ("null".to_string(), "null".to_string()),
        };
        out.push_str("  \"wall_clock_nondeterministic\": {\n");
        out.push_str(
            "    \"note\": \"quarantined timestamps: every field outside this object is byte-deterministic at any worker count\",\n",
        );
        out.push_str(&format!(
            "    \"elapsed_seconds\": {},\n",
            format_f64(now - self.start_seconds)
        ));
        out.push_str(&format!("    \"items_per_second\": {rate},\n"));
        out.push_str(&format!("    \"eta_seconds\": {eta}\n"));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Atomically (re)write `<dir>/progress.json`.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] when the write or rename fails.
    pub fn write(&self, dir: &Path) -> Result<(), Error> {
        crate::checkpoint::write_atomic(&dir.join("progress.json"), &self.snapshot_json())
    }

    /// Print one stderr progress line, rate-limited to one per
    /// [`CONSOLE_PERIOD_SECONDS`] unless `force`. No-op when console
    /// output was not requested.
    pub fn console_tick(&mut self, force: bool) {
        if !self.console {
            return;
        }
        let now = clock_seconds();
        if !force && now - self.last_console < CONSOLE_PERIOD_SECONDS {
            return;
        }
        self.last_console = now;
        let pct = if self.total > 0 {
            100.0 * self.completed as f64 / self.total as f64
        } else {
            100.0
        };
        let pace = match self.rate_eta(now) {
            Some((rate, eta)) => format!("{rate:.1} items/s, eta {eta:.0}s"),
            None => "rate pending".to_string(),
        };
        eprintln!(
            "study {}: {}/{} items ({pct:.0}%), {} in flight, {pace}",
            self.study, self.completed, self.total, self.in_flight
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::checkpoint::ItemKind;

    fn item(id: u64, kind: ItemKind) -> WorkItem {
        WorkItem { id, cell: 0, kind, trace_lo: 0, trace_hi: 1 }
    }

    fn items() -> Vec<WorkItem> {
        vec![
            item(0, ItemKind::Policy { policy: 0 }),
            item(1, ItemKind::Policy { policy: 1 }),
            item(2, ItemKind::LowerBound),
            item(3, ItemKind::Coarse { candidate: 0 }),
            item(4, ItemKind::Coarse { candidate: 1 }),
            item(5, ItemKind::Refine),
        ]
    }

    #[test]
    fn seeds_totals_per_kind_and_counts_resumed_as_completed() {
        let p = StudyProgress::new("s", &items(), |id| id < 2, false);
        assert_eq!(p.total, 6);
        assert_eq!(p.resumed, 2);
        assert_eq!(p.completed, 2);
        assert_eq!(p.kind_total, [2, 1, 2, 1]);
        assert_eq!(p.kind_completed, [2, 0, 0, 0]);
        assert_eq!(p.in_flight, 0);
    }

    #[test]
    fn chunk_transitions_move_items_in_flight_then_completed() {
        let all = items();
        let mut p = StudyProgress::new("s", &all, |_| false, false);
        p.begin_chunk(&all[0..3]);
        assert_eq!(p.in_flight, 3);
        assert_eq!(p.kind_in_flight, [2, 1, 0, 0]);
        assert_eq!(p.completed, 0);
        p.finish_chunk(&all[0..3]);
        assert_eq!(p.in_flight, 0);
        assert_eq!(p.completed, 3);
        assert_eq!(p.kind_completed, [2, 1, 0, 0]);
    }

    #[test]
    fn snapshot_json_quarantines_wall_clock_fields() {
        let all = items();
        let mut p = StudyProgress::new("s", &all, |id| id == 0, false);
        p.begin_chunk(&all[1..3]);
        let doc = p.snapshot_json();
        // Deterministic head...
        assert!(doc.contains("\"study\": \"s\""), "{doc}");
        assert!(doc.contains("\"total\": 6,"), "{doc}");
        assert!(doc.contains("\"completed\": 1,"), "{doc}");
        assert!(doc.contains("\"in_flight\": 2,"), "{doc}");
        assert!(doc.contains("\"resumed\": 1,"), "{doc}");
        assert!(doc.contains(
            "{\"kind\": \"policy\", \"total\": 2, \"completed\": 1, \"in_flight\": 1}"
        ), "{doc}");
        // ... and a clearly-marked quarantine for everything clocked.
        assert!(doc.contains("\"wall_clock_nondeterministic\""), "{doc}");
        assert!(doc.contains("\"elapsed_seconds\""), "{doc}");
        // Nothing executed yet in this process: no rate, no ETA.
        assert!(doc.contains("\"items_per_second\": null"), "{doc}");
        assert!(doc.contains("\"eta_seconds\": null"), "{doc}");
        // The doc parses as JSON.
        crate::jsonio::parse(&doc).expect("progress.json must parse");
    }

    #[test]
    fn rate_and_eta_appear_once_items_execute() {
        let all = items();
        let mut p = StudyProgress::new("s", &all, |_| false, false);
        p.begin_chunk(&all);
        p.finish_chunk(&all[0..4]);
        let (rate, eta) = p
            .rate_eta(p.start_seconds + 2.0)
            .expect("executed items must yield a rate");
        assert!((rate - 2.0).abs() < 1e-12, "{rate}");
        assert!((eta - 1.0).abs() < 1e-12, "{eta}");
        let doc = p.snapshot_json();
        assert!(!doc.contains("\"items_per_second\": null"), "{doc}");
    }

    #[test]
    fn write_creates_progress_json_atomically() {
        let dir = std::env::temp_dir().join(format!(
            "ckpt-progress-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let p = StudyProgress::new("s", &items(), |_| false, false);
        p.write(&dir).unwrap();
        let src = std::fs::read_to_string(dir.join("progress.json")).unwrap();
        crate::jsonio::parse(&src).expect("written progress.json must parse");
        assert!(!dir.join("progress.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
