//! One entry point per paper artefact.
//!
//! Every function returns typed rows; the `ckpt-exp` binary renders them
//! via [`crate::output`]. Trace counts are parameters everywhere: the
//! paper uses 600, benches use far fewer (shape is preserved).

use crate::policies_spec::PolicyKind;
use crate::runner::{run_scenario, RunnerOptions, ScenarioResult};
use crate::scenario::{DistSpec, Scenario};
use ckpt_dist::Weibull;
use ckpt_workload::{OverheadModel, ParallelismModel, DAY, HOUR, JAGUAR_PROCS, WEEK, YEAR};

/// Petascale processor counts plotted in Figures 2/4: powers of two from
/// 2^10 plus the full Jaguar platform.
pub fn petascale_proc_counts() -> Vec<u64> {
    vec![1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, JAGUAR_PROCS]
}

/// Exascale processor counts of Figures 3/6.
pub fn exascale_proc_counts() -> Vec<u64> {
    (14..=20).map(|e| 1u64 << e).collect()
}

/// Log-based processor counts of Figures 7/100.
pub fn logbased_proc_counts() -> Vec<u64> {
    vec![1 << 12, 1 << 13, 1 << 14, 1 << 15]
}

/// Figure 1 — platform MTBF vs processor count, both rejuvenation options
/// (pure analytics; `(p, mtbf_rejuvenate_all, mtbf_failed_only)` rows).
pub fn fig1() -> Vec<(u64, f64, f64)> {
    let w = Weibull::from_mtbf(0.7, 125.0 * YEAR);
    ckpt_platform::mtbf::figure1_series(&w, 60.0, 4, 22)
}

/// Tables 2 & 3 — single processor, three MTBFs. `weibull = false` gives
/// Table 2 (Exponential), `true` gives Table 3 (Weibull k = 0.7).
pub fn table23(weibull: bool, traces: usize) -> Vec<(String, ScenarioResult)> {
    [("1 hour", HOUR), ("1 day", DAY), ("1 week", WEEK)]
        .into_iter()
        .map(|(label, mtbf)| {
            let dist = if weibull {
                DistSpec::Weibull { shape: 0.7, mtbf }
            } else {
                DistSpec::Exponential { mtbf }
            };
            let sc = Scenario::single_processor(dist, traces);
            let kinds = PolicyKind::paper_roster(true);
            (label.to_string(), run_scenario(&sc, &kinds, &RunnerOptions::default()))
        })
        .collect()
}

/// Figures 2/3 (Exponential) and 4/6 (Weibull) — degradation vs processor
/// count. `exa` selects the Exascale platform (MTBF 1250 y, W = 10 000 y).
pub fn fig_synthetic_scaling(
    weibull: bool,
    exa: bool,
    proc_mtbf_years: f64,
    traces: usize,
) -> Vec<(u64, ScenarioResult)> {
    let procs = if exa { exascale_proc_counts() } else { petascale_proc_counts() };
    let mtbf = proc_mtbf_years * YEAR;
    procs
        .into_iter()
        .map(|p| {
            let dist = if weibull {
                DistSpec::Weibull { shape: 0.7, mtbf }
            } else {
                DistSpec::Exponential { mtbf }
            };
            let sc = if exa {
                Scenario::exascale(dist, p, traces)
            } else {
                Scenario::petascale(dist, p, traces)
            };
            // DPMakespan runs for Exponential (rejuvenation-equivalent) as
            // in Figures 2/3; the Weibull scaling figures omit it like the
            // paper's Figures 4/6.
            let kinds = PolicyKind::paper_roster(!weibull);
            (p, run_scenario(&sc, &kinds, &RunnerOptions::default()))
        })
        .collect()
}

/// Figure 5 — degradation vs Weibull shape `k` on the full Jaguar
/// platform.
pub fn fig5(shapes: &[f64], traces: usize) -> Vec<(f64, ScenarioResult)> {
    shapes
        .iter()
        .map(|&k| {
            let dist = DistSpec::Weibull { shape: k, mtbf: 125.0 * YEAR };
            let sc = Scenario::petascale(dist, JAGUAR_PROCS, traces);
            let kinds = PolicyKind::paper_roster(false);
            (k, run_scenario(&sc, &kinds, &RunnerOptions::default()))
        })
        .collect()
}

/// Table 4 — the full Jaguar platform cell of Figure 4, with standard
/// deviations.
pub fn table4(traces: usize) -> ScenarioResult {
    let dist = DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR };
    let sc = Scenario::petascale(dist, JAGUAR_PROCS, traces);
    let kinds = PolicyKind::paper_roster(false);
    run_scenario(&sc, &kinds, &RunnerOptions::default())
}

/// Figures 7 / 100 — log-based failures from the synthetic LANL cluster
/// (18 or 19), degradation vs processor count.
pub fn fig_logbased(cluster: u32, traces: usize) -> Vec<(u64, ScenarioResult)> {
    logbased_proc_counts()
        .into_iter()
        .map(|p| {
            let sc = Scenario::petascale(DistSpec::LanlLog { cluster }, p, traces);
            let kinds = PolicyKind::log_based_roster();
            (p, run_scenario(&sc, &kinds, &RunnerOptions::default()))
        })
        .collect()
}

/// Figures 8/9 (Appendix A) — single-processor period sweep: the roster
/// plus `OptExp × factor` for `factor = 2^(j/2), j ∈ [−8, 8]`.
pub fn fig89(weibull: bool, mtbf: f64, traces: usize) -> ScenarioResult {
    let dist = if weibull {
        DistSpec::Weibull { shape: 0.7, mtbf }
    } else {
        DistSpec::Exponential { mtbf }
    };
    let sc = Scenario::single_processor(dist, traces);
    let mut kinds = PolicyKind::paper_roster(true);
    for j in -8..=8 {
        kinds.push(PolicyKind::OptExpScaled(2f64.powf(f64::from(j) / 2.0)));
    }
    run_scenario(&sc, &kinds, &RunnerOptions::default())
}

/// Appendix B/C matrix — one cell of the
/// `{parallelism} × {overhead} × {MTBF}` cross product on the chosen
/// platform.
pub fn matrix_cell(
    weibull: bool,
    exa: bool,
    parallelism: ParallelismModel,
    proportional_overhead: bool,
    proc_mtbf_years: f64,
    procs: u64,
    traces: usize,
) -> ScenarioResult {
    let mtbf = proc_mtbf_years * YEAR;
    let dist = if weibull {
        DistSpec::Weibull { shape: 0.7, mtbf }
    } else {
        DistSpec::Exponential { mtbf }
    };
    let mut sc = if exa {
        Scenario::exascale(dist, procs, traces)
    } else {
        Scenario::petascale(dist, procs, traces)
    };
    sc.parallelism = parallelism;
    if proportional_overhead {
        sc.overhead = OverheadModel::Proportional {
            seconds_at_full: 600.0,
            ptotal: if exa { 1 << 20 } else { JAGUAR_PROCS },
        };
    }
    sc.label = format!(
        "{}-{}-{}",
        sc.label,
        sc.parallelism.label(),
        sc.overhead.label()
    );
    let kinds = PolicyKind::paper_roster(!weibull);
    run_scenario(&sc, &kinds, &RunnerOptions::default())
}

/// Figures 98/99 (Appendix D) — absolute mean makespan vs processor count
/// per application profile, for one fixed policy kind.
pub fn fig9899(
    kind: &PolicyKind,
    weibull: bool,
    traces: usize,
) -> Vec<(String, Vec<(u64, f64)>)> {
    let mtbf = if weibull { 1_250.0 * YEAR } else { 125.0 * YEAR };
    ParallelismModel::paper_suite()
        .into_iter()
        .map(|model| {
            let series = petascale_proc_counts()
                .into_iter()
                .map(|p| {
                    let dist = if weibull {
                        DistSpec::Weibull { shape: 0.7, mtbf }
                    } else {
                        DistSpec::Exponential { mtbf }
                    };
                    let mut sc = Scenario::petascale(dist, p, traces);
                    sc.parallelism = model;
                    sc.label = format!("{}-{}", sc.label, model.label());
                    let opts = RunnerOptions {
                        lower_bound: false,
                        period_lb: None,
                        ..Default::default()
                    };
                    let r = run_scenario(&sc, std::slice::from_ref(kind), &opts);
                    let mk = r.outcomes[0].mean_makespan.unwrap_or(f64::NAN);
                    (p, mk)
                })
                .collect();
            (model.label(), series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_series_shape() {
        let rows = fig1();
        assert_eq!(rows.len(), 19);
        // Failed-only dominates at scale (the Figure 1 message).
        let last = rows.last().expect("non-empty");
        assert!(last.2 > last.1);
    }

    #[test]
    fn proc_count_lists() {
        assert_eq!(petascale_proc_counts().last(), Some(&JAGUAR_PROCS));
        assert_eq!(exascale_proc_counts().len(), 7);
        assert_eq!(logbased_proc_counts().len(), 4);
    }

    #[test]
    fn table2_smoke() {
        // One tiny cell: the full machinery end to end.
        let rows = table23(false, 3);
        assert_eq!(rows.len(), 3);
        let (_, r) = &rows[0];
        assert!(r.get("OptExp").expect("row").avg_degradation.is_some());
        assert!(r.get("DPNextFailure").expect("row").avg_degradation.is_some());
    }
}
