//! Work-stealing wave executor with a deterministic commit.
//!
//! This is the execution substrate under [`crate::exec`] and the
//! checkpointed study runner ([`crate::checkpoint`]): one injector
//! queue, per-worker deques, randomized stealing — the coordinator
//! shape of `DistributedExecution.tla` (SNIPPETS.md Snippet 2) — with
//! one crucial addition that makes the whole repository's determinism
//! story work: **results are buffered per worker and committed in
//! task-ID order** after the wave drains, so every reduction
//! downstream (and every golden, and every checkpoint payload) sees
//! the same bytes at any worker count.
//!
//! Scheduling is split from execution so it can be machine-checked:
//!
//! * [`WaveState`] is the pure coordinator state machine — injector,
//!   deques, in-flight claims, completion set. Every transition
//!   (`claim`, `complete`) is a plain method on `&mut self` with no
//!   I/O and no clock, so `tests/steal_model.rs` can drive it through
//!   arbitrary interleavings (steal races, worker stalls, a poisoned
//!   task) and assert no-task-loss, no-duplication, and progress.
//! * [`run_wave`] wraps that state machine in real threads: the state
//!   sits behind one mutex (claims and completions are O(1) pops; the
//!   task bodies — policy sims, DP solves — run unlocked and dwarf
//!   them), workers buffer `(task_id, result)` pairs locally, and the
//!   commit loop scatters them into a task-ID-indexed vector.
//!
//! A panicking task does not hang or poison the wave: the worker
//! catches it, the wave drains every sibling, and the commit step
//! re-raises the panic of the **lowest** poisoned task ID — the same
//! task a sequential drain would have panicked on first.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker count, settable from the CLI (`--threads N`).
/// 0 means "not configured": fall back to `CKPT_THREADS`, then to the
/// machine's available parallelism.
// lint: allow(shared-mutable-in-exec) — the worker-count knob: written
// once at CLI parse time, read at wave start; never touches results.
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide worker count (`0` resets to auto-detection).
pub fn set_workers(n: usize) {
    WORKERS.store(n, Ordering::Relaxed);
}

/// Where a poisoned wave dumps the flight recorder, if anywhere.
/// The study runner points this at `<store>/flightrec.json` for the
/// duration of a run so a panicking task leaves its last-N-events
/// record next to the checkpoint store.
// lint: allow(shared-mutable-in-exec) — the flight-dump destination:
// set once by the study runner, read on the poison path; a diagnostic
// side channel that never touches results.
static FLIGHT_DUMP: std::sync::Mutex<Option<PathBuf>> = std::sync::Mutex::new(None);

/// Lock the dump destination, surviving poisoning: the lock is touched
/// on panic paths by design, and the value inside is always coherent.
fn flight_dump_lock() -> std::sync::MutexGuard<'static, Option<PathBuf>> {
    FLIGHT_DUMP.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Point the poisoned-wave flight dump at `path` (`None` disables it).
pub fn set_flight_dump(path: Option<PathBuf>) {
    *flight_dump_lock() = path;
}

/// Best-effort flight-recorder dump to the configured path. Called on
/// the poison path only, right before the panic is re-raised; without
/// the `obs` feature (or outside a session) it still writes a valid
/// `recording: false` document so tooling never reads a torn file.
fn dump_flight() {
    let path = flight_dump_lock().clone();
    if let Some(path) = path {
        let _ = std::fs::write(&path, ckpt_obs::flight_dump_json());
    }
}

/// Record a poisoned task on the flight ring (no-op unless a session
/// records). The label names the failing task, so the dump's tail
/// identifies it even after the ring has evicted the task's own spans.
fn mark_poisoned(id: usize) {
    if ckpt_obs::active() {
        ckpt_obs::counter_add_labeled("exec.task_poisoned", &format!("task{id:06}"), 1);
    }
}

/// The effective worker count for the next wave: the explicitly
/// configured value, else `CKPT_THREADS`, else available parallelism.
pub fn workers() -> usize {
    let n = WORKERS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Some(n) = std::env::var("CKPT_THREADS").ok().and_then(|v| v.parse().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Scheduling counters of one wave. These describe *how* the wave ran
/// (and so vary with worker count and timing); the results themselves
/// never do.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveStats {
    /// Workers the wave ran with.
    pub workers: usize,
    /// Claims served from the worker's own deque (seeded heavy tasks).
    pub local_claims: u64,
    /// Claims served from the shared injector (the cheap bulk).
    pub injector_claims: u64,
    /// Claims served by stealing from another worker's deque.
    pub steals: u64,
    /// Steal probes that found the victim's deque empty.
    pub failed_probes: u64,
    /// Tasks executed per worker (occupancy; sums to the task count).
    pub per_worker: Vec<u64>,
}

impl WaveStats {
    /// Total tasks claimed (= executed, once the wave drains).
    pub fn claims(&self) -> u64 {
        self.local_claims + self.injector_claims + self.steals
    }
}

/// The pure coordinator state machine of one wave.
///
/// Tasks are `0..n` by ID. Heavy tasks are dealt round-robin into the
/// per-worker deques at seed time (each worker starts on its own long
/// poles — the heavy-first schedule the old rayon drain approximated
/// with `with_max_len(1)`); everything else waits in the injector in
/// task order. A worker claims from its own deque first (LIFO end),
/// then the injector (FIFO), then steals from a random victim's
/// opposite end (FIFO) — so thieves drain a loaded worker's backlog
/// oldest-first while the owner keeps its cache-warm tail.
///
/// Tasks never spawn tasks, so `claim` returning `None` is a stable
/// exit condition: new work can never appear after the queues and the
/// claimant's own slot are empty.
pub struct WaveState {
    /// Shared FIFO of the cheap bulk, in task order.
    injector: VecDeque<usize>,
    /// Per-worker deques, seeded with the heavy tasks.
    deques: Vec<VecDeque<usize>>,
    /// The task each worker currently executes, if any.
    executing: Vec<Option<usize>>,
    /// Completion flags (no-duplication is checked here).
    done: Vec<bool>,
    /// Tasks not yet completed.
    remaining: usize,
    /// Per-worker victim-selection RNG, deterministically seeded.
    rngs: Vec<StdRng>,
    /// Scheduling counters.
    pub stats: WaveStats,
}

impl WaveState {
    /// Seed a wave of `heavy.len()` tasks over `workers` workers.
    /// `heavy[id]` marks the long poles; `seed` fixes every victim
    /// RNG (per-worker streams are split by worker index).
    pub fn new(heavy: &[bool], workers: usize, seed: u64) -> Self {
        let workers = workers.max(1);
        let mut deques = vec![VecDeque::new(); workers];
        let mut injector = VecDeque::new();
        let mut dealt = 0usize;
        for (id, &h) in heavy.iter().enumerate() {
            if h {
                deques[dealt % workers].push_back(id);
                dealt += 1;
            } else {
                injector.push_back(id);
            }
        }
        Self {
            injector,
            deques,
            executing: vec![None; workers],
            done: vec![false; heavy.len()],
            remaining: heavy.len(),
            rngs: (0..workers)
                .map(|w| StdRng::seed_from_u64(seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .collect(),
            stats: WaveStats { workers, per_worker: vec![0; workers], ..WaveStats::default() },
        }
    }

    /// Worker `w` claims its next task: own deque (LIFO), injector
    /// (FIFO), then randomized steal. `None` ⇒ no claimable work
    /// exists anywhere; since tasks never spawn tasks, the worker can
    /// exit. Panics if `w` already holds an uncompleted claim.
    pub fn claim(&mut self, w: usize) -> Option<usize> {
        assert!(self.executing[w].is_none(), "worker {w} claimed while executing");
        let id = self.deques[w]
            .pop_back()
            .inspect(|_| self.stats.local_claims += 1)
            .or_else(|| {
                self.injector.pop_front().inspect(|_| self.stats.injector_claims += 1)
            })
            .or_else(|| self.steal(w))?;
        self.executing[w] = Some(id);
        self.stats.per_worker[w] += 1;
        Some(id)
    }

    /// One randomized steal attempt: probe every other worker once, in
    /// an order drawn from `w`'s own RNG (a Fisher–Yates shuffle), and
    /// take the FIFO end of the first non-empty victim deque.
    fn steal(&mut self, w: usize) -> Option<usize> {
        let workers = self.deques.len();
        let mut victims: Vec<usize> = (0..workers).filter(|&v| v != w).collect();
        for i in (1..victims.len()).rev() {
            let j = (self.rngs[w].next_u64() % (i as u64 + 1)) as usize;
            victims.swap(i, j);
        }
        for v in victims {
            if let Some(id) = self.deques[v].pop_front() {
                self.stats.steals += 1;
                return Some(id);
            }
            self.stats.failed_probes += 1;
        }
        None
    }

    /// Worker `w` reports its claimed task complete. Returns the task
    /// ID. Panics on double completion or completion without a claim —
    /// the no-duplication invariant is enforced, not just tested.
    pub fn complete(&mut self, w: usize) -> usize {
        let Some(id) = self.executing[w].take() else {
            panic!("worker {w} completed without a claim")
        };
        assert!(!self.done[id], "task {id} completed twice");
        self.done[id] = true;
        self.remaining -= 1;
        id
    }

    /// Every task completed?
    pub fn drained(&self) -> bool {
        self.remaining == 0
    }

    /// Tasks not yet completed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The task worker `w` currently holds, if any.
    pub fn executing(&self, w: usize) -> Option<usize> {
        self.executing[w]
    }

    /// Worker count this wave was seeded with.
    pub fn worker_count(&self) -> usize {
        self.deques.len()
    }

    /// Structural invariant, checked by the model tests after every
    /// transition: each task is in **exactly one** place — queued
    /// (injector or one deque), executing on one worker, or done — and
    /// `remaining` agrees with the completion flags.
    ///
    /// # Panics
    /// When the invariant is violated (that is the point).
    pub fn check_invariants(&self) {
        let n = self.done.len();
        let mut seen = vec![0u32; n];
        for &id in &self.injector {
            seen[id] += 1;
        }
        for d in &self.deques {
            for &id in d {
                seen[id] += 1;
            }
        }
        for id in self.executing.iter().flatten() {
            seen[*id] += 1;
        }
        for (id, (&count, &done)) in seen.iter().zip(&self.done).enumerate() {
            let expected = u32::from(!done);
            assert!(
                count == expected,
                "task {id}: present {count} times, done={done} (expected {expected})"
            );
        }
        assert!(
            self.remaining == self.done.iter().filter(|&&d| !d).count(),
            "remaining counter disagrees with completion flags"
        );
    }
}

/// Fixed wave seed: the steal pattern is irrelevant to results, so one
/// constant stream (split per worker) keeps runs reproducible enough
/// to read steal-rate counters across repeats.
const WAVE_SEED: u64 = 0xC0FF_EE00_5EED_CAFE;

type TaskPanic = Box<dyn std::any::Any + Send + 'static>;

/// Drain `tasks` over `workers` threads and commit the results in
/// task-ID order: `out[i] == run(i, &tasks[i])`, bit-identical at any
/// worker count.
///
/// `is_heavy` marks long-pole tasks for deque seeding (they start
/// first, one per worker); everything else drains through the shared
/// injector. With `workers <= 1` (or one task) no thread is spawned
/// and tasks run sequentially in task order.
///
/// # Panics
/// If a task panics, every sibling still runs to completion, and the
/// panic of the lowest poisoned task ID is re-raised at commit time —
/// the same task a sequential drain panics on, so error surfacing is
/// deterministic too.
pub fn run_wave<T, R, F, H>(tasks: &[T], workers: usize, is_heavy: H, run: F) -> (Vec<R>, WaveStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    H: Fn(&T) -> bool,
{
    let n = tasks.len();
    let w = workers.max(1).min(n.max(1));
    if w <= 1 {
        // Same poison protocol as the threaded path: record the event
        // and dump the flight ring before re-raising, so a 1-worker
        // run leaves the same diagnostic record an 8-worker run does.
        let mut out: Vec<R> = Vec::with_capacity(n);
        for (i, t) in tasks.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| run(i, t))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    mark_poisoned(i);
                    dump_flight();
                    resume_unwind(payload);
                }
            }
        }
        let stats = WaveStats {
            workers: 1,
            injector_claims: n as u64,
            per_worker: vec![n as u64],
            ..WaveStats::default()
        };
        publish(&stats);
        return (out, stats);
    }

    let heavy: Vec<bool> = tasks.iter().map(is_heavy).collect();
    // lint: allow(shared-mutable-in-exec) — the sanctioned commit path:
    // the one coordinator lock every claim/complete goes through.
    let state = parking_lot::Mutex::new(WaveState::new(&heavy, w, WAVE_SEED));

    // One result bucket per worker; merged in task-ID order below.
    let buckets: Vec<Vec<(usize, Result<R, TaskPanic>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..w)
            .map(|wid| {
                let state = &state;
                let run = &run;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Result<R, TaskPanic>)> = Vec::new();
                    loop {
                        // The claim must be its own statement: a guard
                        // living in a `while let` scrutinee would span
                        // the body and self-deadlock on `complete`.
                        let claimed = state.lock().claim(wid);
                        let Some(id) = claimed else { break };
                        // The task body runs unlocked; a panic is a
                        // value here so siblings keep draining.
                        let out = catch_unwind(AssertUnwindSafe(|| run(id, &tasks[id])));
                        if out.is_err() {
                            mark_poisoned(id);
                        }
                        state.lock().complete(wid);
                        local.push((id, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(bucket) => bucket,
                // Only a coordinator bug panics outside a task; don't
                // swallow it.
                Err(p) => resume_unwind(p),
            })
            .collect()
    });

    let stats = {
        let state = state.into_inner();
        debug_assert!(state.drained(), "wave exited with tasks remaining");
        state.stats
    };
    publish(&stats);

    // Deterministic commit: scatter the buckets into task-ID order,
    // then surface the lowest poisoned task (if any) before unwrapping.
    let mut slots: Vec<Option<Result<R, TaskPanic>>> = (0..n).map(|_| None).collect();
    for (id, out) in buckets.into_iter().flatten() {
        debug_assert!(slots[id].is_none(), "task {id} committed twice");
        slots[id] = Some(out);
    }
    for slot in slots.iter_mut() {
        if matches!(slot, Some(Err(_))) {
            if let Some(Err(payload)) = slot.take() {
                dump_flight();
                resume_unwind(payload);
            }
        }
    }
    let out: Vec<R> = slots
        .into_iter()
        .enumerate()
        .map(|(id, slot)| match slot {
            Some(Ok(r)) => r,
            _ => panic!("task {id} was never committed"),
        })
        .collect();
    (out, stats)
}

/// Publish a wave's scheduling counters to `ckpt-obs` (no-op unless a
/// session records). Steal rate = `exec.steals / exec.claims_*`;
/// per-worker occupancy lands on the labeled `exec.worker_tasks`.
fn publish(stats: &WaveStats) {
    if !ckpt_obs::active() {
        return;
    }
    ckpt_obs::gauge_max("exec.workers", stats.workers as u64);
    ckpt_obs::counter_add("exec.claims_local", stats.local_claims);
    ckpt_obs::counter_add("exec.claims_injector", stats.injector_claims);
    ckpt_obs::counter_add("exec.steals", stats.steals);
    ckpt_obs::counter_add("exec.failed_probes", stats.failed_probes);
    for (w, &count) in stats.per_worker.iter().enumerate() {
        ckpt_obs::counter_add_labeled("exec.worker_tasks", &format!("w{w:02}"), count);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn seeding_deals_heavy_round_robin_and_queues_rest_in_order() {
        // Tasks 0..6; 1, 3, 5 heavy; 2 workers.
        let heavy = [false, true, false, true, false, true];
        let st = WaveState::new(&heavy, 2, 7);
        assert_eq!(st.injector.iter().copied().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(st.deques[0].iter().copied().collect::<Vec<_>>(), vec![1, 5]);
        assert_eq!(st.deques[1].iter().copied().collect::<Vec<_>>(), vec![3]);
        st.check_invariants();
    }

    #[test]
    fn sequential_path_preserves_task_order() {
        let tasks: Vec<u64> = (0..10).collect();
        let order = parking_lot::Mutex::new(Vec::new());
        let (out, stats) = run_wave(&tasks, 1, |_| false, |i, &t| {
            order.lock().push(i);
            t * 2
        });
        assert_eq!(out, (0..10).map(|t| t * 2).collect::<Vec<_>>());
        assert_eq!(*order.lock(), (0..10).collect::<Vec<_>>());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.claims(), 10);
    }

    #[test]
    fn threaded_wave_commits_in_task_id_order() {
        let tasks: Vec<u64> = (0..97).collect();
        for w in [2, 3, 8] {
            let (out, stats) =
                run_wave(&tasks, w, |&t| t % 7 == 0, |i, &t| (i as u64) * 1000 + t);
            assert_eq!(out, (0..97).map(|t| t * 1000 + t).collect::<Vec<_>>());
            assert_eq!(stats.workers, w);
            assert_eq!(stats.claims(), 97);
            assert_eq!(stats.per_worker.iter().sum::<u64>(), 97);
        }
    }

    #[test]
    fn empty_and_single_task_waves_work() {
        let (out, _) = run_wave(&[] as &[u64], 8, |_| false, |_, &t| t);
        assert!(out.is_empty());
        let (out, stats) = run_wave(&[41u64], 8, |_| true, |_, &t| t + 1);
        assert_eq!(out, [42]);
        // One task clamps to one worker: no thread spawn.
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn more_workers_than_tasks_is_clamped() {
        let tasks: Vec<u64> = (0..3).collect();
        let (out, stats) = run_wave(&tasks, 64, |_| false, |_, &t| t);
        assert_eq!(out, [0, 1, 2]);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn panicking_task_surfaces_lowest_id_after_all_siblings_ran() {
        let executed = AtomicU64::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_wave(
                &(0..20).collect::<Vec<u64>>(),
                4,
                |_| false,
                |i, _| {
                    executed.fetch_add(1, Ordering::Relaxed);
                    assert!(i != 7 && i != 13, "poisoned task {i}");
                    i
                },
            )
        }));
        let payload = caught.expect_err("wave must re-raise the task panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("assert! panics carry a String");
        // Lowest poisoned ID wins, deterministically.
        assert!(msg.contains("poisoned task 7"), "{msg}");
        // ... and no sibling was dropped on the floor.
        assert_eq!(executed.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn victim_order_is_deterministic_per_seed() {
        let mut a = WaveState::new(&[true; 16], 4, 99);
        let mut b = WaveState::new(&[true; 16], 4, 99);
        // Drain both from worker 3 only: claim order includes steals,
        // which must replay identically for an identical seed.
        let mut ids_a = Vec::new();
        while let Some(id) = a.claim(3) {
            a.complete(3);
            ids_a.push(id);
        }
        let mut ids_b = Vec::new();
        while let Some(id) = b.claim(3) {
            b.complete(3);
            ids_b.push(id);
        }
        assert_eq!(ids_a, ids_b);
        assert!(a.drained());
    }

    #[test]
    fn set_workers_overrides_and_resets() {
        // Not asserting the ambient default (other tests may set it):
        // only that an explicit value round-trips and 0 resets.
        set_workers(5);
        assert_eq!(workers(), 5);
        set_workers(0);
        assert!(workers() >= 1);
    }
}
