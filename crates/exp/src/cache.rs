//! Shared trace/event cache.
//!
//! Trace generation is deterministic in `(scenario label, unit count,
//! horizon, start time, trace index)`, so the same `TraceSet` and its
//! merged `PlatformEvents` are recomputed identically every time an
//! experiment revisits a cell — e.g. the period-variation sweeps call
//! `run_scenario` once per factor on the *same* traces. This module
//! memoises both behind `Arc`s: one generation, shared by every policy,
//! every period candidate, and every subsequent `run_scenario` call in
//! the process.

use crate::scenario::{BuiltDist, Scenario};
use ckpt_platform::{PlatformEvents, TraceSet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// One generated trace set with its pre-merged platform event stream.
#[derive(Debug)]
pub struct CachedTrace {
    /// The per-unit failure traces.
    pub traces: Arc<TraceSet>,
    /// The merged, time-ordered platform event stream.
    pub events: Arc<PlatformEvents>,
}

impl CachedTrace {
    /// Processors per failure unit (node granularity).
    pub fn procs_per_unit(&self) -> u32 {
        self.traces.topology.procs_per_unit() as u32
    }
}

/// Everything trace generation depends on, bit-exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    label: String,
    units: usize,
    horizon_bits: u64,
    start_bits: u64,
    index: u64,
}

/// Process-wide memo of generated traces.
#[derive(Default)]
pub struct TraceCache {
    map: Mutex<HashMap<CacheKey, Arc<CachedTrace>>>,
}

impl TraceCache {
    /// The process-wide cache instance.
    pub fn global() -> &'static TraceCache {
        static CACHE: OnceLock<TraceCache> = OnceLock::new();
        CACHE.get_or_init(TraceCache::default)
    }

    /// The `index`-th trace set of `scenario`, generated at most once per
    /// process.
    pub fn get_or_generate(
        &self,
        scenario: &Scenario,
        built: &BuiltDist,
        index: usize,
    ) -> Arc<CachedTrace> {
        let key = CacheKey {
            label: scenario.label.clone(),
            units: built.topology.units_for_procs(scenario.procs),
            horizon_bits: scenario.horizon.to_bits(),
            start_bits: scenario.start_time.to_bits(),
            index: index as u64,
        };
        if let Some(hit) = self.map.lock().get(&key) {
            ckpt_obs::counter_add("trace_cache.hits", 1);
            return Arc::clone(hit);
        }
        ckpt_obs::counter_add("trace_cache.misses", 1);
        // Generate outside the lock: generation is deterministic, so a
        // racing thread computing the same key produces the same value
        // and first-insert-wins keeps sharing maximal.
        let mut span = ckpt_obs::task_span("trace.generate", index as u64);
        if ckpt_obs::active() {
            span.label("cell", scenario.label.clone());
        }
        let traces = Arc::new(scenario.generate_traces(built, index));
        let events = Arc::new(traces.platform_events());
        drop(span);
        let entry = Arc::new(CachedTrace { traces, events });
        let mut map = self.map.lock();
        Arc::clone(map.entry(key).or_insert(entry))
    }

    /// Number of cached trace sets.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached trace (frees memory between unrelated sweeps).
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;

    fn tiny() -> (Scenario, BuiltDist) {
        let dist = DistSpec::Exponential { mtbf: 3_600.0 };
        let mut s = Scenario::single_processor(dist.clone(), 2);
        s.label = "cache-test-cell".into();
        s.horizon = 100_000.0;
        let b = dist.build();
        (s, b)
    }

    #[test]
    fn same_key_shares_the_allocation() {
        let cache = TraceCache::default();
        let (s, b) = tiny();
        let a = cache.get_or_generate(&s, &b, 0);
        let c = cache.get_or_generate(&s, &b, 0);
        assert!(Arc::ptr_eq(&a, &c), "second lookup must be a cache hit");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_indices_and_cells_do_not_collide() {
        let cache = TraceCache::default();
        let (s, b) = tiny();
        let a = cache.get_or_generate(&s, &b, 0);
        let c = cache.get_or_generate(&s, &b, 1);
        assert!(!Arc::ptr_eq(&a, &c));
        let mut s2 = s.clone();
        s2.horizon *= 2.0;
        let d = cache.get_or_generate(&s2, &b, 0);
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_traces_match_direct_generation() {
        let (s, b) = tiny();
        let direct = s.generate_traces(&b, 0);
        let cached = TraceCache::default().get_or_generate(&s, &b, 0);
        assert_eq!(direct.units, cached.traces.units);
        assert_eq!(direct.platform_events().len(), cached.events.len());
    }
}
