//! §8 "future directions" experiments, implemented.
//!
//! The paper closes with three open questions; each has a concrete
//! experiment here:
//!
//! * **Optimal processor count** — on a fault-free machine the makespan
//!   is minimal at `p = ptotal`; with failures the optimum can be
//!   interior. [`optimal_proc_count`] sweeps `p` and reports the argmin.
//! * **Replication** — run the job once on `p` processors, or replicate
//!   it on two halves (`p/2` each), independently or synchronizing after
//!   every checkpoint? [`replication_study`] compares all three.
//! * **Energy** — [`energy_period_tradeoff`] sweeps the checkpoint period
//!   and reports makespan *and* platform energy, exposing the trade-off
//!   (short periods waste I/O energy, long periods waste re-computation).

use crate::policies_spec::PolicyKind;
use crate::runner::RunnerOptions;
use crate::scenario::Scenario;
use ckpt_math::Summary;
use ckpt_policies::{young, FixedPeriod, Policy};
use ckpt_sim::{
    simulate, simulate_replicated_independent, simulate_replicated_synchronized, PowerModel,
    SimOptions,
};

/// Mean makespan per processor count for one policy; returns the series
/// and the argmin `p`.
pub fn optimal_proc_count(
    scenario_at: impl Fn(u64) -> Scenario,
    kind: &PolicyKind,
    procs: &[u64],
    traces: usize,
) -> (Vec<(u64, f64)>, u64) {
    let opts = RunnerOptions { lower_bound: false, period_lb: None, ..Default::default() };
    let series: Vec<(u64, f64)> = procs
        .iter()
        .map(|&p| {
            let mut sc = scenario_at(p);
            sc.traces = traces;
            let r = crate::runner::run_scenario(&sc, std::slice::from_ref(kind), &opts);
            let mk = match r.outcomes[0].mean_makespan {
                Some(m) => m,
                None => panic!("policy {} did not run at p = {p}", kind.name()),
            };
            (p, mk)
        })
        .collect();
    let best = match series.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
        Some(&(p, _)) => p,
        None => panic!("optimal_proc_count needs a non-empty processor list"),
    };
    (series, best)
}

/// One row of the replication comparison.
#[derive(Debug, Clone)]
pub struct ReplicationRow {
    /// Mean makespan with all `p` processors on one job, seconds.
    pub single: f64,
    /// Mean makespan of two independent half-platform replicas (first to
    /// finish wins), seconds.
    pub independent: f64,
    /// Mean makespan with checkpoint-synchronized half-platform replicas,
    /// seconds.
    pub synchronized: f64,
}

/// Compare single execution vs both replication modes on a scenario
/// (§8's open question). The policy is Young's (the replication protocols
/// are defined for periodic strategies).
pub fn replication_study(scenario: &Scenario, traces: usize) -> ReplicationRow {
    let built = scenario.dist.build();
    let full_spec = scenario.job_spec();
    let mut half_sc = scenario.clone();
    half_sc.procs = (scenario.procs / 2).max(1);
    let half_spec = half_sc.job_spec();
    let proc_mtbf = built.proc_mtbf;
    let full_policy = young(&full_spec, proc_mtbf);
    let half_policy = young(&half_spec, proc_mtbf);
    let units_full = built.topology.units_for_procs(scenario.procs);
    let units_half = built.topology.units_for_procs(half_sc.procs);

    let (mut single, mut independent, mut synchronized) =
        (Vec::new(), Vec::new(), Vec::new());
    for i in 0..traces {
        let traces_full = scenario.generate_traces(&built, i);
        // Single execution on the whole platform.
        {
            let mut s = full_policy.session();
            let st = simulate(
                &full_spec,
                &mut *s,
                &traces_full.platform_events(),
                traces_full.topology.procs_per_unit() as u32,
                traces_full.start_time,
                traces_full.horizon,
                SimOptions::default(),
            );
            single.push(st.makespan);
        }
        // Replication: the same units split into two halves.
        let a = traces_full.prefix(units_half);
        let b = ckpt_platform::TraceSet {
            units: traces_full.units[units_half..units_full.min(2 * units_half)].to_vec(),
            topology: traces_full.topology,
            horizon: traces_full.horizon,
            start_time: traces_full.start_time,
        };
        {
            let mut sa = half_policy.session();
            let mut sb = half_policy.session();
            let st = simulate_replicated_independent(
                &half_spec,
                [&mut *sa, &mut *sb],
                [&a, &b],
                SimOptions::default(),
            );
            independent.push(st.makespan);
        }
        {
            let mut s = half_policy.session();
            let st = simulate_replicated_synchronized(
                &half_spec,
                &mut *s,
                [&a, &b],
                SimOptions::default(),
            );
            synchronized.push(st.makespan);
        }
    }
    ReplicationRow {
        single: Summary::from_samples(&single).mean(),
        independent: Summary::from_samples(&independent).mean(),
        synchronized: Summary::from_samples(&synchronized).mean(),
    }
}

/// One row of the energy/makespan period sweep.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Period factor relative to Young's period.
    pub factor: f64,
    /// Mean makespan, seconds.
    pub makespan: f64,
    /// Mean platform energy, joules.
    pub energy: f64,
}

/// Sweep the checkpoint period and report makespan and energy per factor.
pub fn energy_period_tradeoff(
    scenario: &Scenario,
    power: &PowerModel,
    factors: &[f64],
    traces: usize,
) -> Vec<EnergyRow> {
    let built = scenario.dist.build();
    let spec = scenario.job_spec();
    let base = young(&spec, built.proc_mtbf).period();
    factors
        .iter()
        .map(|&factor| {
            let policy = FixedPeriod::new("sweep", base * factor);
            let (mut mk, mut en) = (Vec::new(), Vec::new());
            for i in 0..traces {
                let tr = scenario.generate_traces(&built, i);
                let mut s = policy.session();
                let st = simulate(
                    &spec,
                    &mut *s,
                    &tr.platform_events(),
                    tr.topology.procs_per_unit() as u32,
                    tr.start_time,
                    tr.horizon,
                    SimOptions::default(),
                );
                mk.push(st.makespan);
                en.push(power.energy(&st, spec.procs));
            }
            EnergyRow {
                factor,
                makespan: Summary::from_samples(&mk).mean(),
                energy: Summary::from_samples(&en).mean(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;
    use ckpt_workload::YEAR;

    fn small_peta(p: u64) -> Scenario {
        Scenario::petascale(
            DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR },
            p,
            4,
        )
    }

    #[test]
    fn proc_count_series_is_computed() {
        let (series, best) = optimal_proc_count(
            small_peta,
            &PolicyKind::Young,
            &[1 << 9, 1 << 10, 1 << 11],
            3,
        );
        assert_eq!(series.len(), 3);
        assert!(series.iter().any(|&(p, _)| p == best));
        // With this failure rate more processors still help: makespan
        // decreases with p in this range.
        assert!(series[0].1 > series[2].1);
    }

    #[test]
    fn replication_study_runs() {
        let sc = small_peta(1 << 10);
        let row = replication_study(&sc, 3);
        assert!(row.single > 0.0 && row.independent > 0.0 && row.synchronized > 0.0);
        // Halving the platform doubles the EP work: replicas are slower
        // than the single full-platform run at this failure rate.
        assert!(row.independent > row.single * 1.5);
        // Synchronization can only help relative to independent replicas.
        assert!(row.synchronized <= row.independent * 1.001);
    }

    #[test]
    fn energy_tradeoff_monotonicities() {
        let sc = small_peta(1 << 10);
        let rows = energy_period_tradeoff(
            &sc,
            &PowerModel::typical_hpc(),
            &[0.25, 1.0, 4.0],
            3,
        );
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.makespan > 0.0 && r.energy > 0.0);
        }
        // Very short periods burn more checkpoint I/O time → longer
        // makespan than the Young period.
        assert!(rows[0].makespan > rows[1].makespan);
    }
}
