//! The single `PolicyKind → Box<dyn Policy>` construction site.
//!
//! Every consumer — the scenario runner, the `ckpt-exp` CLI, the bench
//! crate — instantiates policies through [`build_policy`], so the
//! scenario-specific wiring (Bouguerra's rejuvenated-platform
//! distribution, DPMakespan's "false assumption" macro-processor,
//! Liu's Weibull-fit requirement) lives in exactly one place.
//! [`parse_kind`] maps user-facing names (case-insensitive) onto kinds
//! for the CLI, and [`optexp_base`] is the `OptExp` instance the
//! `PeriodLB` search scales.

use crate::error::Error;
use crate::policies_spec::PolicyKind;
use crate::scenario::{BuiltDist, Scenario};
use ckpt_dist::{Exponential, MinOf, Weibull};
use ckpt_policies::{
    daly_high, daly_low, young, Bouguerra, DpMakespan, DpNextFailure, Liu, OptExp, Policy,
};
use ckpt_workload::JobSpec;

/// The `OptExp` instance whose period `PeriodLB` candidates scale
/// (Theorem 1 at the scenario's effective per-processor MTBF).
pub fn optexp_base(spec: &JobSpec, proc_mtbf: f64) -> OptExp {
    OptExp::from_mtbf(spec, proc_mtbf)
}

/// Instantiate `kind` for a scenario.
///
/// # Errors
/// [`Error::Policy`] when the policy cannot produce a meaningful schedule
/// for this cell — Liu without a Weibull/Exponential fit, or Liu's
/// footnote-2 nonsensical placements. The error's `Display` is the bare
/// reason, reported as a gap exactly like the paper's incomplete curves.
pub fn build_policy(
    kind: &PolicyKind,
    scenario: &Scenario,
    built: &BuiltDist,
) -> Result<Box<dyn Policy>, Error> {
    let spec = scenario.job_spec();
    let proc_mtbf = built.proc_mtbf;
    match kind {
        PolicyKind::Young => Ok(Box::new(young(&spec, proc_mtbf))),
        PolicyKind::DalyLow => Ok(Box::new(daly_low(&spec, proc_mtbf))),
        PolicyKind::DalyHigh => Ok(Box::new(daly_high(&spec, proc_mtbf))),
        PolicyKind::OptExp => Ok(Box::new(optexp_base(&spec, proc_mtbf))),
        PolicyKind::OptExpScaled(f) => Ok(Box::new(
            optexp_base(&spec, proc_mtbf).as_fixed_period().scaled(*f),
        )),
        PolicyKind::Bouguerra => {
            // The rejuvenated-platform distribution: minimum over all
            // enrolled processors (units scaled accordingly).
            let units = built.topology.units_for_procs(scenario.procs) as u64;
            let plat = MinOf::new(built.dist.clone_box(), units.max(1));
            Ok(Box::new(Bouguerra::new(&spec, &plat)))
        }
        PolicyKind::Liu => {
            let Some(shape) = built.weibull_shape else {
                return Err(Error::Policy {
                    name: "Liu".into(),
                    reason: "Liu requires a Weibull (or Exponential) fit".into(),
                });
            };
            let proc = Weibull::from_mtbf(shape, proc_mtbf);
            Liu::new(&spec, &proc)
                .map(|l| Box::new(l) as Box<dyn Policy>)
                .map_err(|reason| Error::Policy { name: "Liu".into(), reason })
        }
        PolicyKind::DpNextFailure(cfg) => Ok(Box::new(DpNextFailure::new(
            &spec,
            built.dist.clone_box(),
            proc_mtbf,
            *cfg,
        ))),
        PolicyKind::DpMakespan(cfg) => {
            // p = 1: the true distribution. p > 1: the paper's "false
            // assumption" — the rejuvenated platform distribution
            // (macro-processor pλ for Exponential, min-of-p otherwise).
            let units = built.topology.units_for_procs(scenario.procs) as u64;
            let mut cfg = *cfg;
            let dist: Box<dyn ckpt_dist::FailureDistribution> = if units <= 1 {
                built.dist.clone_box()
            } else if built.weibull_shape == Some(1.0) {
                cfg.assume_memoryless = true;
                Box::new(Exponential::from_mtbf(proc_mtbf / scenario.procs as f64))
            } else {
                Box::new(MinOf::new(built.dist.clone_box(), units))
            };
            if built.weibull_shape == Some(1.0) {
                cfg.assume_memoryless = true;
            }
            Ok(Box::new(DpMakespan::new(&spec, dist, cfg)))
        }
    }
}

/// Every name [`parse_kind`] accepts, in canonical spelling.
pub fn known_policy_names() -> Vec<String> {
    [
        "Young",
        "DalyLow",
        "DalyHigh",
        "OptExp",
        "Bouguerra",
        "Liu",
        "DPNextFailure",
        "DPMakespan",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

/// Map a user-facing policy name (case-insensitive, e.g. from the CLI)
/// onto its kind with default configuration.
///
/// # Errors
/// [`Error::UnknownPolicy`] listing every known name.
pub fn parse_kind(name: &str) -> Result<PolicyKind, Error> {
    match name.to_ascii_lowercase().as_str() {
        "young" => Ok(PolicyKind::Young),
        "dalylow" => Ok(PolicyKind::DalyLow),
        "dalyhigh" => Ok(PolicyKind::DalyHigh),
        "optexp" => Ok(PolicyKind::OptExp),
        "bouguerra" => Ok(PolicyKind::Bouguerra),
        "liu" => Ok(PolicyKind::Liu),
        "dpnextfailure" => Ok(PolicyKind::DpNextFailure(Default::default())),
        "dpmakespan" => Ok(PolicyKind::DpMakespan(Default::default())),
        _ => Err(Error::UnknownPolicy {
            requested: name.to_string(),
            known: known_policy_names(),
        }),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::scenario::DistSpec;
    use ckpt_workload::YEAR;

    #[test]
    fn parse_kind_is_case_insensitive() {
        assert_eq!(parse_kind("dpnextfailure").unwrap().name(), "DPNextFailure");
        assert_eq!(parse_kind("DPNEXTFAILURE").unwrap().name(), "DPNextFailure");
        assert_eq!(parse_kind("Young").unwrap(), PolicyKind::Young);
    }

    #[test]
    fn parse_kind_unknown_lists_names() {
        let e = parse_kind("noexist").unwrap_err();
        let Error::UnknownPolicy { requested, known } = e else {
            panic!("wrong variant: {e:?}");
        };
        assert_eq!(requested, "noexist");
        assert_eq!(known.len(), 8);
    }

    #[test]
    fn registry_and_kind_name_agree() {
        let dist = DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR };
        let s = crate::scenario::Scenario::petascale(dist.clone(), 1 << 10, 1);
        let b = dist.build();
        for name in known_policy_names() {
            let mut kind = parse_kind(&name).expect("canonical names parse");
            // Cap the DP table resolutions — this test checks wiring, not
            // full-resolution planning cost.
            match &mut kind {
                PolicyKind::DpMakespan(cfg) => cfg.quanta = Some(20),
                PolicyKind::DpNextFailure(cfg) => cfg.quanta = Some(64),
                _ => {}
            }
            let policy = build_policy(&kind, &s, &b).expect("builds at this cell");
            assert_eq!(policy.name(), kind.name(), "{name}");
        }
    }

    #[test]
    fn liu_error_is_policy_variant_with_bare_reason() {
        let dist = DistSpec::LanlLog { cluster: 19 };
        let s = crate::scenario::Scenario::petascale(dist.clone(), 4_096, 1);
        let b = dist.build();
        let Err(e) = build_policy(&PolicyKind::Liu, &s, &b) else {
            panic!("Liu must not build without a Weibull fit");
        };
        assert_eq!(e.to_string(), "Liu requires a Weibull (or Exponential) fit");
    }
}
