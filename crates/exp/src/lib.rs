//! Experiment harness: regenerates every table and figure of the paper.
//!
//! * [`scenario`] — a fully-specified experimental cell (failure model,
//!   platform size, job/overhead models, trace count) and its trace
//!   generation (prefix-stable across platform sizes, §4.3);
//! * [`policies_spec`] — declarative policy lists instantiated per
//!   scenario (so e.g. `OptExp` picks up each cell's `p` and `C(p)`);
//! * [`runner`] — rayon fan-out of every `(trace, policy)` pair, the
//!   `PeriodLB` search and the omniscient `LowerBound`, and the §4.1
//!   *average makespan degradation* metric;
//! * [`experiments`] — one entry point per paper artefact (`table2`,
//!   `fig4`, …) returning typed rows;
//! * [`output`] — markdown and CSV emitters matching the paper's
//!   presentation.
//!
//! The `ckpt-exp` binary exposes all of it from the command line:
//!
//! ```text
//! ckpt-exp table2 --traces 600
//! ckpt-exp fig4 --traces 100
//! ckpt-exp matrix --dist weibull --overhead prop --model amdahl-1e-4
//! ```

pub mod cache;
pub mod experiments;
pub mod extensions;
pub mod output;
pub mod perf;
pub mod plot;
pub mod policies_spec;
pub mod report;
pub mod runner;
pub mod scenario;

pub use cache::TraceCache;
pub use perf::PipelinePerf;
pub use policies_spec::PolicyKind;
pub use runner::{
    run_scenario, PeriodSearch, PolicyOutcome, RunnerOptions, ScenarioResult,
};
pub use scenario::{DistSpec, Scenario};
