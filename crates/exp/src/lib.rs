//! Experiment harness: regenerates every table and figure of the paper.
//!
//! The scenario pipeline is three explicit layers plus a thin
//! orchestrator — `Scenario → SimPlan → ExecOutput → ScenarioResult`:
//!
//! * [`scenario`] — a fully-specified experimental cell (failure model,
//!   platform size, job/overhead models, trace count) and its trace
//!   generation (prefix-stable across platform sizes, §4.3);
//! * [`plan`] — pure planning: which sims run (roster policies,
//!   lower-bound evals, `PeriodLB` candidates), in which waves, as
//!   typed seed-stable [`SimTask`]s with explicit dependencies;
//! * [`exec`] — the executor draining a plan against the shared trace
//!   [`cache`] through the work-stealing wave substrate, with
//!   policy-build failures as values;
//! * [`steal`] — the work-stealing wave executor itself: injector +
//!   per-worker deques + randomized stealing, with results committed
//!   in task-ID order so output is bit-identical at any worker count
//!   (the coordinator state machine is model-checked in
//!   `tests/steal_model.rs`);
//! * [`reduce`] — pure aggregation into the §4.1 *average makespan
//!   degradation* rows;
//! * [`runner`] — [`run_scenario`] / [`run_scenario_checked`] wiring the
//!   three layers together, plus the user-facing option/result types;
//! * [`registry`] — the single `PolicyKind → Box<dyn Policy>`
//!   construction site (runner, CLI and benches all build here);
//! * [`policies_spec`] — declarative policy lists instantiated per
//!   scenario (so e.g. `OptExp` picks up each cell's `p` and `C(p)`);
//! * [`study`] — the batch API: one roster + options, many scenarios,
//!   per-cell `Result`s;
//! * [`checkpoint`] — the durable form of a study: persisted work-item
//!   manifests with content fingerprints, kill-safe checkpoint/resume
//!   under `results/study/<id>/`, and byte-identical aggregates via the
//!   [`reduce`] commit layer;
//! * [`jsonio`] — the minimal JSON reader behind the checkpoint store
//!   (the vendored `serde_json` is write-only);
//! * [`error`] — the experiment-level [`Error`] type (`From`-chained
//!   over the dist/platform/trace errors);
//! * [`experiments`] — one entry point per paper artefact (`table2`,
//!   `fig4`, …) returning typed rows;
//! * [`output`] — markdown and CSV emitters matching the paper's
//!   presentation;
//! * [`golden`] — canonical serialisation and the cells pinned by the
//!   byte-identical golden-result tests under `results/golden/`.
//!
//! The `ckpt-exp` binary exposes all of it from the command line:
//!
//! ```text
//! ckpt-exp table2 --traces 600
//! ckpt-exp fig4 --traces 100
//! ckpt-exp matrix --dist weibull --overhead prop --model amdahl-1e-4
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod checkpoint;
pub mod error;
pub mod exec;
pub mod experiments;
pub mod extensions;
pub mod golden;
pub mod jsonio;
pub mod output;
pub mod perf;
pub mod plan;
pub mod plot;
pub mod policies_spec;
pub mod progress;
pub mod reduce;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod steal;
pub mod study;

pub use cache::TraceCache;
pub use checkpoint::{
    run_study, CheckpointConfig, StudyDef, StudyOutcome, StudyReport,
};
pub use error::Error;
pub use perf::PipelinePerf;
pub use plan::{plan_scenario, SimPlan, SimTask};
pub use policies_spec::PolicyKind;
pub use registry::{build_policy, parse_kind};
pub use runner::{
    run_scenario, run_scenario_checked, PeriodSearch, PolicyOutcome, RunnerOptions,
    ScenarioResult,
};
pub use scenario::{DistSpec, Scenario};
pub use study::Study;
