//! Reduction layer: fold executor output into a [`ScenarioResult`].
//!
//! Implements the paper's §4.1 *average makespan degradation*: for each
//! trace `i`, `v(i,j) = res(i,j) / min_{j'} res(i,j')` where the minimum
//! runs over every heuristic (including `PeriodLB`, excluding the
//! omniscient `LowerBound`), averaged over traces. Traces where no
//! policy produced a makespan are excluded; if that leaves nothing,
//! every row reports an error instead of panicking.
//!
//! This layer is pure arithmetic over [`ExecOutput`] — no simulation,
//! no I/O — so its cost shows up as the `aggregate` perf stage and its
//! output is a deterministic function of the executor's (already
//! thread-count-independent) results.

use crate::checkpoint::{ItemKind, ItemPayload, WorkItem};
use crate::error::Error;
use crate::exec::{ExecOutput, PolicyCell, SearchOutput};
use crate::perf::PipelinePerf;
use crate::plan::{self, SimPlan};
use crate::runner::{PolicyOutcome, ScenarioResult};
use crate::scenario::Scenario;
use ckpt_math::Summary;
use std::collections::BTreeMap;
use std::time::Instant;

fn no_baseline() -> String {
    "no policy produced a makespan on any trace (degradation undefined)".to_string()
}

/// Degradation + makespan summary over `(makespan, best)` sample pairs.
fn degradation_row(
    name: &str,
    samples: &[(f64, f64)],
    period_factor: Option<f64>,
) -> PolicyOutcome {
    let degr: Vec<f64> = samples.iter().map(|s| s.1).collect();
    let mks: Vec<f64> = samples.iter().map(|s| s.0).collect();
    let s = Summary::from_samples(&degr);
    PolicyOutcome {
        name: name.to_string(),
        avg_degradation: Some(s.mean()),
        std_degradation: Some(s.std_dev()),
        mean_makespan: Some(Summary::from_samples(&mks).mean()),
        mean_failures: None,
        max_failures: None,
        chunk_range: None,
        period_factor,
        error: None,
    }
}

/// Aggregate executor output into the scenario's result rows. Pushes
/// the `aggregate` perf stage; the caller stamps `total_seconds`.
pub fn reduce(
    scenario: &Scenario,
    sim_plan: &SimPlan,
    out: &ExecOutput,
    perf: &mut PipelinePerf,
) -> ScenarioResult {
    // lint: allow(transitive-nondeterminism) — stage timer feeds PipelinePerf only, never result rows
    let t_stage = Instant::now();
    let stage_span = ckpt_obs::span("stage.aggregate");

    // Per-trace best heuristic (incl. PeriodLB, excl. LowerBound).
    let trace_best: Vec<Option<f64>> = (0..sim_plan.traces)
        .map(|i| {
            let mut best = f64::INFINITY;
            for cells in &out.cells {
                if let Some(c) = &cells[i] {
                    best = best.min(c.makespan);
                }
            }
            if let Some(s) = &out.search {
                best = best.min(s.column[i]);
            }
            best.is_finite().then_some(best)
        })
        .collect();

    let mut outcomes = Vec::new();
    if let Some(lower_bounds) = &out.lower_bounds {
        let samples: Vec<(f64, f64)> = lower_bounds
            .iter()
            .zip(&trace_best)
            .filter_map(|(&lb, b)| b.map(|b| (lb, lb / b)))
            .collect();
        if samples.is_empty() {
            outcomes.push(PolicyOutcome::absent("LowerBound", no_baseline()));
        } else {
            outcomes.push(degradation_row("LowerBound", &samples, None));
        }
    }
    let period_lb_factor = out.search.as_ref().map(|s| s.factor);
    if let Some(sr) = &out.search {
        let samples: Vec<(f64, f64)> = sr
            .column
            .iter()
            .zip(&trace_best)
            .filter_map(|(&m, b)| b.map(|b| (m, m / b)))
            .collect();
        if samples.is_empty() {
            outcomes.push(PolicyOutcome::absent("PeriodLB", no_baseline()));
        } else {
            outcomes.push(degradation_row("PeriodLB", &samples, Some(sr.factor)));
        }
    }
    for (j, name) in sim_plan.policy_names.iter().enumerate() {
        match &out.policy_build[j] {
            Ok(()) => {
                let per_trace: Vec<PolicyCell> =
                    out.cells[j].iter().flatten().copied().collect();
                let samples: Vec<(f64, f64)> = out.cells[j]
                    .iter()
                    .zip(&trace_best)
                    .filter_map(|(c, b)| match (c, b) {
                        (Some(c), Some(b)) => Some((c.makespan, c.makespan / b)),
                        _ => None,
                    })
                    .collect();
                if samples.is_empty() {
                    outcomes.push(PolicyOutcome::absent(name, no_baseline()));
                    continue;
                }
                let fails: Vec<f64> = per_trace.iter().map(|c| c.failures as f64).collect();
                let cmin = per_trace.iter().map(|c| c.chunk_min).fold(f64::INFINITY, f64::min);
                let cmax = per_trace.iter().map(|c| c.chunk_max).fold(0.0f64, f64::max);
                let mut row = degradation_row(name, &samples, None);
                row.mean_failures = Some(Summary::from_samples(&fails).mean());
                row.max_failures = per_trace.iter().map(|c| c.failures).max();
                row.chunk_range = Some((cmin, cmax));
                outcomes.push(row);
            }
            Err(e) => outcomes.push(PolicyOutcome::absent(name, e.to_string())),
        }
    }
    drop(stage_span);
    perf.push_stage("aggregate", t_stage, outcomes.len() as u64);

    ScenarioResult {
        label: scenario.label.clone(),
        procs: scenario.procs,
        traces: sim_plan.traces,
        outcomes,
        period_lb_factor,
        perf: PipelinePerf::default(),
    }
}

fn incomplete(what: &str, id: u64) -> Error {
    Error::Checkpoint { reason: format!("incomplete study: {what} item {id} has no payload") }
}

/// Commit layer of the checkpointed study runner: fold one cell's
/// persisted [`ItemPayload`]s — in task-ID order, regardless of the
/// order items completed in across any number of processes — back into
/// the [`ExecOutput`] + [`PipelinePerf`] arithmetic of the live
/// executor, then [`reduce`] as usual. Because every per-trace float is
/// restored from its exact bit pattern and every reduction here mirrors
/// [`crate::exec::execute`] operation for operation, the resulting
/// [`ScenarioResult`] serialises byte-identically to an uninterrupted
/// in-memory run.
///
/// # Errors
/// [`Error::Cell`] (wrapping the scenario's build failure) when the
/// cell's distribution could not be built; [`Error::Checkpoint`] when a
/// required item payload is missing or has the wrong shape — a commit
/// must never guess.
pub fn commit(
    scenario: &Scenario,
    sim_plan: &SimPlan,
    cell_items: &[WorkItem],
    completed: &BTreeMap<u64, ItemPayload>,
) -> Result<ScenarioResult, Error> {
    // An unbuildable distribution marks every item of the cell; surface
    // the *typed* build error (re-derived, deterministic) with the cell
    // label attached, exactly as `Study::run_all` would have.
    if cell_items
        .iter()
        .any(|i| matches!(completed.get(&i.id), Some(ItemPayload::CellFailed { .. })))
    {
        let source = match scenario.dist.try_build() {
            Err(e) => e,
            Ok(_) => Error::Checkpoint {
                reason: format!(
                    "cell `{}` persisted as failed but its distribution now builds — \
                     stale store",
                    scenario.label
                ),
            },
        };
        return Err(Error::for_cell(&scenario.label, source));
    }

    let mut perf = PipelinePerf::default();
    let mut policy_build: Vec<Result<(), Error>> =
        (0..sim_plan.kinds.len()).map(|_| Ok(())).collect();
    let mut cells: Vec<Vec<Option<PolicyCell>>> =
        vec![vec![None; sim_plan.traces]; sim_plan.kinds.len()];
    let mut lower_bounds = sim_plan.lower_bound.then(|| vec![0.0f64; sim_plan.traces]);
    // columns[candidate] = per-trace makespans (coarse and refine items
    // both land here, as in the live search's shared `columns`).
    let mut columns: Vec<Option<Vec<f64>>> = vec![None; sim_plan.grid.len()];

    for item in cell_items {
        match (item.kind, completed.get(&item.id)) {
            (ItemKind::Policy { policy }, Some(ItemPayload::Policy { built, reason, stats })) => {
                if *built {
                    for (k, st) in stats.iter().enumerate() {
                        cells[policy][item.trace_lo + k] = Some(PolicyCell {
                            makespan: st.makespan_f64(),
                            failures: st.failures,
                            chunk_min: f64::from_bits(st.chunk_min),
                            chunk_max: f64::from_bits(st.chunk_max),
                        });
                        perf.decisions += st.decisions;
                        perf.failures += st.failures;
                    }
                } else {
                    // The registry's failure is deterministic, so every
                    // block of this policy carries the same reason; the
                    // row only needs its Display (reduce stringifies).
                    policy_build[policy] = Err(Error::Policy {
                        name: sim_plan.policy_names[policy].clone(),
                        reason: reason.clone(),
                    });
                }
            }
            (ItemKind::LowerBound, Some(ItemPayload::LowerBound { makespans })) => {
                if let Some(lb) = &mut lower_bounds {
                    for (k, &bits) in makespans.iter().enumerate() {
                        lb[item.trace_lo + k] = f64::from_bits(bits);
                    }
                }
            }
            (ItemKind::Coarse { candidate }, Some(ItemPayload::Coarse { stats })) => {
                let col =
                    columns[candidate].get_or_insert_with(|| vec![0.0; sim_plan.traces]);
                for (k, st) in stats.iter().enumerate() {
                    col[item.trace_lo + k] = st.makespan_f64();
                    perf.decisions += st.decisions;
                    perf.failures += st.failures;
                }
                perf.candidate_sims += stats.len() as u64;
            }
            (ItemKind::Refine, Some(ItemPayload::Refine { columns: refined })) => {
                for rc in refined {
                    let col = columns[rc.candidate]
                        .get_or_insert_with(|| vec![0.0; sim_plan.traces]);
                    for (t, st) in rc.stats.iter().enumerate() {
                        col[t] = st.makespan_f64();
                        perf.decisions += st.decisions;
                        perf.failures += st.failures;
                    }
                    perf.candidate_sims += rc.stats.len() as u64;
                }
            }
            (ItemKind::Policy { .. }, _) => return Err(incomplete("policy", item.id)),
            (ItemKind::LowerBound, _) => return Err(incomplete("lower-bound", item.id)),
            (ItemKind::Coarse { .. }, _) => return Err(incomplete("coarse", item.id)),
            (ItemKind::Refine, _) => return Err(incomplete("refine", item.id)),
        }
    }

    perf.policy_sims =
        policy_build.iter().filter(|b| b.is_ok()).count() as u64 * sim_plan.traces as u64;
    let search = if sim_plan.grid.is_empty() {
        None
    } else {
        perf.candidate_grid_size = sim_plan.grid.len() as u64;
        // Winner by mean makespan over every evaluated column, means
        // summed in trace order — the live search's final reduction.
        let means: Vec<Option<f64>> = columns
            .iter()
            .map(|c| c.as_ref().map(|col| col.iter().sum::<f64>() / col.len().max(1) as f64))
            .collect();
        plan::winner(&means).and_then(|w| {
            columns[w]
                .take()
                .map(|column| SearchOutput { factor: sim_plan.grid[w], column })
        })
    };

    let out = ExecOutput { policy_build, cells, lower_bounds, search };
    let mut result = reduce(scenario, sim_plan, &out, &mut perf);
    result.perf = perf;
    Ok(result)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::exec::SearchOutput;
    use crate::plan::plan_scenario;
    use crate::runner::RunnerOptions;
    use crate::scenario::DistSpec;

    fn cell(makespan: f64) -> Option<PolicyCell> {
        Some(PolicyCell { makespan, failures: 1, chunk_min: 10.0, chunk_max: 20.0 })
    }

    #[test]
    fn reduce_is_pure_arithmetic_over_exec_output() {
        let sc = Scenario::single_processor(
            DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            2,
        );
        let sim_plan = plan_scenario(
            &sc,
            &[crate::policies_spec::PolicyKind::Young],
            &RunnerOptions {
                period_lb: Some(vec![1.0]),
                ..RunnerOptions::default()
            },
        );
        let out = ExecOutput {
            policy_build: vec![Ok(())],
            cells: vec![vec![cell(100.0), cell(200.0)]],
            lower_bounds: Some(vec![50.0, 100.0]),
            search: Some(SearchOutput { factor: 1.0, column: vec![110.0, 180.0] }),
        };
        let mut perf = PipelinePerf::default();
        let r = reduce(&sc, &sim_plan, &out, &mut perf);
        // Rows in report order: LowerBound, PeriodLB, Young.
        let names: Vec<&str> = r.outcomes.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, ["LowerBound", "PeriodLB", "Young"]);
        // Best per trace: min(100, 110) = 100 and min(200, 180) = 180.
        let lb = &r.outcomes[0];
        assert!((lb.avg_degradation.unwrap() - (0.5 / 2.0 + (100.0 / 180.0) / 2.0)).abs() < 1e-12);
        let young = &r.outcomes[2];
        assert_eq!(young.mean_failures, Some(1.0));
        assert_eq!(young.max_failures, Some(1));
        assert_eq!(young.chunk_range, Some((10.0, 20.0)));
        assert_eq!(r.period_lb_factor, Some(1.0));
        assert_eq!(perf.stages.len(), 1);
        assert_eq!(perf.stages[0].name, "aggregate");
    }

    #[test]
    fn all_absent_rows_degrade_gracefully() {
        let sc = Scenario::single_processor(
            DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            2,
        );
        let sim_plan = plan_scenario(
            &sc,
            &[crate::policies_spec::PolicyKind::Liu],
            &RunnerOptions { period_lb: None, ..RunnerOptions::default() },
        );
        let out = ExecOutput {
            policy_build: vec![Err(crate::error::Error::Policy {
                name: "Liu".into(),
                reason: "Liu requires a Weibull (or Exponential) fit".into(),
            })],
            cells: vec![vec![None, None]],
            lower_bounds: Some(vec![50.0, 100.0]),
            search: None,
        };
        let mut perf = PipelinePerf::default();
        let r = reduce(&sc, &sim_plan, &out, &mut perf);
        assert_eq!(r.outcomes.len(), 2);
        assert!(r.outcomes[0].error.as_deref().unwrap().contains("degradation undefined"));
        assert_eq!(
            r.outcomes[1].error.as_deref(),
            Some("Liu requires a Weibull (or Exponential) fit")
        );
    }

    #[test]
    fn commit_refuses_missing_payloads() {
        let sc = Scenario::single_processor(
            DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
            2,
        );
        let sim_plan = plan_scenario(
            &sc,
            &[crate::policies_spec::PolicyKind::Young],
            &RunnerOptions { period_lb: None, lower_bound: false, ..RunnerOptions::default() },
        );
        let items = vec![WorkItem {
            id: 0,
            cell: 0,
            kind: ItemKind::Policy { policy: 0 },
            trace_lo: 0,
            trace_hi: 2,
        }];
        let completed = BTreeMap::new();
        let err = commit(&sc, &sim_plan, &items, &completed).expect_err("nothing completed");
        assert!(err.to_string().contains("incomplete study"), "{err}");
    }
}
