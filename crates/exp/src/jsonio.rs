//! A minimal JSON **reader** for the study checkpoint store.
//!
//! The vendored `serde_json` is deliberately write-only (a push-based
//! serializer is all the result emitters need), so the checkpoint
//! resume path brings its own parser. It reads exactly the dialect the
//! vendored writer emits — objects, arrays, strings escaped by
//! [`serde_json::escape_str`], integers, floats, booleans, `null` —
//! plus standard JSON it might receive from a hand-edited manifest.
//!
//! Two properties matter for resume correctness:
//!
//! * **Exact integers.** `u64` values (item ids, float *bit patterns*)
//!   are parsed from the raw digit run with `str::parse`, never routed
//!   through `f64`, so 64-bit payload bits survive the round trip.
//! * **Order preservation.** Objects are `Vec<(String, Json)>` in
//!   document order — no hash maps, so iterating a parsed document is
//!   deterministic (and `ckpt-lint`'s hash-order rule stays quiet).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, kept as its raw source text (exactness on demand).
    Num(String),
    /// A (de-escaped) string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen; precision per `str::parse`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
/// A human-readable message with a byte offset, on any syntax error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(src, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", char::from(want), pos))
    }
}

fn parse_value(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(src, bytes, pos),
        Some(b'[') => parse_array(src, bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(src, bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(src, bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", char::from(*c), pos)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {pos}"))
    }
}

fn parse_number(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = &src[start..*pos];
    // Validate by parsing as f64 (covers every JSON number shape).
    raw.parse::<f64>().map_err(|_| format!("bad number `{raw}` at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(src: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(&src[chunk_start..*pos]);
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(&src[chunk_start..*pos]);
                *pos += 1;
                let esc = *bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = src
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogate pairs: the writer never emits them
                        // (it escapes only controls), but accept them.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            let lo_hex = src
                                .get(*pos + 2..*pos + 6)
                                .filter(|_| src[*pos..].starts_with("\\u"))
                                .ok_or("unpaired surrogate")?;
                            let lo = u32::from_str_radix(lo_hex, 16)
                                .map_err(|_| format!("bad \\u escape `{lo_hex}`"))?;
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u code point")?);
                    }
                    other => {
                        let mut msg = String::from("unknown escape \\");
                        let _ = write!(msg, "{}", char::from(other));
                        return Err(msg);
                    }
                }
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_array(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(src, bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(src: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(src, bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(src, bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_writer_output_shapes() {
        let doc = parse(
            "{\"version\": 1, \"ok\": true, \"none\": null, \
             \"items\": [{\"id\": 0}, {\"id\": 18446744073709551615}], \
             \"f\": -2.5e-3}",
        )
        .unwrap();
        assert_eq!(doc.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("none"), Some(&Json::Null));
        let items = doc.get("items").unwrap().as_arr().unwrap();
        // u64::MAX must survive exactly — this is the float-bits path.
        assert_eq!(items[1].get("id").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(-2.5e-3));
    }

    #[test]
    fn round_trips_escaped_strings() {
        for s in ["plain", "q\"uote", "back\\slash", "tab\there", "new\nline", "ctl\u{1}"] {
            let doc = format!("{{\"k\": \"{}\"}}", serde_json::escape_str(s));
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s), "{doc}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse("{\"b\": 1, \"a\": 2, \"b\": 3}").unwrap();
        let Json::Obj(members) = v else { panic!("object") };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a", "b"]);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "{\"a\": 1} x", "nul", "\"open", "01a"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn accepts_standard_json_extras() {
        // Things the vendored writer never emits but hand-edited
        // manifests might contain.
        let v = parse(" [ 1 , \"\\u0041\\/\" , { } ] ").unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 3);
        assert_eq!(v.as_arr().unwrap()[1].as_str(), Some("A/"));
    }
}
