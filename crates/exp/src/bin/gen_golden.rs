//! Regenerates the golden results committed under `results/golden/`.
//!
//! Run after any change that is *supposed* to move the numbers (e.g. a
//! seed-label change); the `golden_pipeline` integration test then pins
//! the new values:
//!
//! ```text
//! cargo run --release -p ckpt-exp --bin gen_golden [OUT_DIR]
//! ```

use ckpt_exp::golden::{golden_cells, golden_json};
use ckpt_exp::runner::run_scenario;
use std::path::PathBuf;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "results/golden".into());
    std::fs::create_dir_all(&out).expect("create output dir");
    for (stem, scenario, kinds, options) in golden_cells() {
        let result = run_scenario(&scenario, &kinds, &options);
        let path = PathBuf::from(&out).join(format!("{stem}.json"));
        std::fs::write(&path, golden_json(&result)).expect("write golden file");
        eprintln!("wrote {}", path.display());
    }
}
