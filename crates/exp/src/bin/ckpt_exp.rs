//! `ckpt-exp` — regenerate any table or figure of the paper.
//!
//! ```text
//! ckpt-exp <experiment> [--traces N] [--out results/] [--threads N]
//!
//! experiments:
//!   fig1      platform MTBF vs p, both rejuvenation options
//!   table2    1 proc, Exponential          table3  1 proc, Weibull k=0.7
//!   fig2      Petascale Exponential        fig3    Exascale Exponential
//!   fig4      Petascale Weibull            fig6    Exascale Weibull
//!   fig5      shape sweep at p=45208       table4  Jaguar Weibull cell
//!   fig7      LANL cluster 19 log          fig100  both LANL clusters
//!   fig8      1-proc period sweep (Exp)    fig9    1-proc period sweep (Weibull)
//!   fig98     makespan profiles, OptExp    fig99   makespan profiles, DPNextFailure
//!             (both accept --policy NAME to profile any policy, case-insensitive)
//!   matrix    one Appendix-B cell: --model ep|amdahl-1e-4|amdahl-1e-6|
//!             kernel-0.1|kernel-1|kernel-10 --overhead const|prop
//!             [--mtbf-years Y] [--weibull] [--exa] [--procs P]
//!   all       every table & figure at the given trace count
//! ```
//!
//! Durable studies (checkpointed, kill-safe, resumable):
//!
//! ```text
//! ckpt-exp run --study golden|bench [--id ID] [--resume ID]
//!              [--traces N] [--study-root DIR] [--checkpoint-items N]
//!              [--checkpoint-secs S] [--trace-block B] [--max-checkpoints N]
//!              [--kill-at FRAC] [--prewarm] [--no-checkpoint] [--threads N]
//!              [--progress]
//! ckpt-exp study ls [--study-root DIR]
//! ckpt-exp study gc [--study-root DIR] [--max-checkpoints N] [--purge ID]
//! ```
//!
//! `run` executes a study through the checkpoint store under
//! `<study-root>/<id>/`, writing a durable manifest plus periodic
//! snapshots; `--resume ID` continues a killed run from its newest
//! snapshot (stale stores are rejected by fingerprint). `--kill-at 0.5`
//! SIGKILLs the process mid-sweep (for testing the resume path),
//! `--no-checkpoint` runs the plain in-memory study and leaves the
//! store untouched, `--progress` prints live per-kind completion lines
//! on stderr (the store's `progress.json` is written either way). Exit
//! codes: 0 on success, 1 when any cell or prewarm failed, 2 on store
//! errors (stale fingerprint, bad id).

use ckpt_exp::experiments as ex;
use ckpt_exp::output::{csv_series, markdown_table, CSV_HEADER};
use ckpt_exp::PolicyKind;
use ckpt_workload::{ParallelismModel, DAY, JAGUAR_PROCS};
use std::io::Write as _;
use std::path::PathBuf;

struct Args {
    experiment: String,
    traces: usize,
    out: Option<PathBuf>,
    model: String,
    overhead: String,
    mtbf_years: f64,
    weibull: bool,
    exa: bool,
    procs: u64,
    policy: Option<String>,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: String::new(),
        traces: 600,
        out: None,
        model: "ep".into(),
        overhead: "const".into(),
        mtbf_years: 125.0,
        weibull: false,
        exa: false,
        procs: JAGUAR_PROCS,
        policy: None,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--traces" => args.traces = it.next().expect("--traces N").parse().expect("number"),
            "--out" => args.out = Some(PathBuf::from(it.next().expect("--out DIR"))),
            "--model" => args.model = it.next().expect("--model M"),
            "--overhead" => args.overhead = it.next().expect("--overhead O"),
            "--mtbf-years" => {
                args.mtbf_years = it.next().expect("--mtbf-years Y").parse().expect("number")
            }
            "--policy" => args.policy = Some(it.next().expect("--policy NAME")),
            "--threads" => {
                args.threads = Some(it.next().expect("--threads N").parse().expect("number"))
            }
            "--weibull" => args.weibull = true,
            "--exa" => args.exa = true,
            "--procs" => args.procs = it.next().expect("--procs P").parse().expect("number"),
            other if args.experiment.is_empty() => args.experiment = other.to_string(),
            other => panic!("unknown argument {other}"),
        }
    }
    if args.experiment.is_empty() {
        args.experiment = "help".into();
    }
    args
}

fn emit(out: &Option<PathBuf>, name: &str, content: &str) {
    println!("{content}");
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(content.as_bytes()).expect("write output");
        eprintln!("wrote {}", path.display());
    }
}

fn series_output(rows: &[(u64, ckpt_exp::ScenarioResult)]) -> String {
    let mut csv = String::from(CSV_HEADER);
    for (p, r) in rows {
        csv.push_str(&csv_series(*p as f64, r));
    }
    csv
}

fn parallelism_from(label: &str) -> ParallelismModel {
    match label {
        "ep" => ParallelismModel::EmbarrassinglyParallel,
        "amdahl-1e-4" => ParallelismModel::Amdahl { gamma: 1e-4 },
        "amdahl-1e-6" => ParallelismModel::Amdahl { gamma: 1e-6 },
        "kernel-0.1" => ParallelismModel::NumericalKernel { gamma: 0.1 },
        "kernel-1" => ParallelismModel::NumericalKernel { gamma: 1.0 },
        "kernel-10" => ParallelismModel::NumericalKernel { gamma: 10.0 },
        other => panic!("unknown parallelism model {other}"),
    }
}

/// Arguments of the `run` subcommand (durable studies).
struct RunArgs {
    study: String,
    id: Option<String>,
    resume: Option<String>,
    traces: Option<usize>,
    root: PathBuf,
    checkpoint_items: u64,
    checkpoint_secs: f64,
    trace_block: usize,
    max_checkpoints: usize,
    kill_at: Option<f64>,
    prewarm: bool,
    no_checkpoint: bool,
    threads: Option<usize>,
    progress: bool,
}

fn parse_run_args(rest: &[String]) -> RunArgs {
    let mut args = RunArgs {
        study: "golden".into(),
        id: None,
        resume: None,
        traces: None,
        root: PathBuf::from("results/study"),
        checkpoint_items: 64,
        checkpoint_secs: 30.0,
        trace_block: 4,
        max_checkpoints: 3,
        kill_at: None,
        prewarm: false,
        no_checkpoint: false,
        threads: None,
        progress: false,
    };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what}")).clone();
        match a.as_str() {
            "--study" => args.study = next("--study golden|bench"),
            "--id" => args.id = Some(next("--id ID")),
            "--resume" => args.resume = Some(next("--resume ID")),
            "--traces" => args.traces = Some(next("--traces N").parse().expect("number")),
            "--study-root" => args.root = PathBuf::from(next("--study-root DIR")),
            "--checkpoint-items" => {
                args.checkpoint_items = next("--checkpoint-items N").parse().expect("number")
            }
            "--checkpoint-secs" => {
                args.checkpoint_secs = next("--checkpoint-secs S").parse().expect("number")
            }
            "--trace-block" => {
                args.trace_block = next("--trace-block B").parse().expect("number")
            }
            "--max-checkpoints" => {
                args.max_checkpoints = next("--max-checkpoints N").parse().expect("number")
            }
            "--kill-at" => args.kill_at = Some(next("--kill-at FRAC").parse().expect("number")),
            "--prewarm" => args.prewarm = true,
            "--no-checkpoint" => args.no_checkpoint = true,
            "--progress" => args.progress = true,
            "--threads" => {
                args.threads = Some(next("--threads N").parse().expect("number"))
            }
            other => panic!("unknown `run` argument {other}"),
        }
    }
    args
}

/// The named studies `run` knows how to build. `golden` is the pinned
/// golden-cell set (fixed trace counts, byte-comparable against
/// `results/golden/`); `bench` is the Petascale bench cell at a chosen
/// trace count.
fn study_def(name: &str, id: &str, traces: Option<usize>) -> ckpt_exp::StudyDef {
    match name {
        "golden" => ckpt_exp::StudyDef::new(
            id,
            ckpt_exp::golden::golden_cells()
                .into_iter()
                .map(|(_, sc, kinds, options)| (sc, kinds, options)),
        ),
        "bench" => {
            let year = 365.25 * 86_400.0;
            let sc = ckpt_exp::Scenario::petascale(
                ckpt_exp::DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * year },
                1 << 8,
                traces.unwrap_or(12),
            );
            let kinds = PolicyKind::paper_roster(false);
            ckpt_exp::StudyDef::new(id, [(sc, kinds, ckpt_exp::RunnerOptions::default())])
        }
        other => {
            eprintln!("unknown study `{other}`; known: golden, bench");
            std::process::exit(2);
        }
    }
}

fn cmd_run(rest: &[String]) -> i32 {
    let args = parse_run_args(rest);
    if let Some(n) = args.threads {
        ckpt_exp::steal::set_workers(n);
    }
    // Under the `obs` build, record the whole run so the flight
    // recorder has events to dump next to the checkpoint store (a
    // no-op `None` otherwise; results are byte-identical either way).
    let _obs = ckpt_obs::ObsSession::start();
    let id = args
        .resume
        .clone()
        .or_else(|| args.id.clone())
        .unwrap_or_else(|| args.study.clone());
    let def = study_def(&args.study, &id, args.traces);

    if args.prewarm {
        // Per-cell rosters: prewarm each cell through a study configured
        // with exactly its roster and options. Failures are labeled
        // (`Error::Cell`), counted on `study.prewarm_errors`, and turn
        // into exit code 1.
        let mut failed = false;
        for cell in &def.cells {
            let warm = ckpt_exp::Study::new()
                .with_kinds(cell.kinds.clone())
                .with_options(cell.options.clone())
                .prewarm(std::slice::from_ref(&cell.scenario))
                .remove(0);
            match warm {
                Ok(()) => eprintln!("prewarmed {}", cell.stem),
                Err(e) => {
                    eprintln!("prewarm failed: {e}");
                    failed = true;
                }
            }
        }
        if failed {
            return 1;
        }
    }

    if args.no_checkpoint {
        // Plain in-memory study: the checkpoint store is not touched.
        let mut exit = 0;
        for cell in &def.cells {
            let study = ckpt_exp::Study::new()
                .with_kinds(cell.kinds.clone())
                .with_options(cell.options.clone());
            match study.run_all(std::slice::from_ref(&cell.scenario)).remove(0) {
                Ok(r) => println!("{}: ok ({} rows)", cell.stem, r.outcomes.len()),
                Err(e) => {
                    eprintln!("{}: {e}", cell.stem);
                    exit = 1;
                }
            }
        }
        return exit;
    }

    let config = ckpt_exp::CheckpointConfig {
        root: args.root.clone(),
        interval_items: args.checkpoint_items,
        interval_seconds: args.checkpoint_secs,
        max_checkpoints: args.max_checkpoints,
        trace_block: args.trace_block,
        golden_dir: Some(PathBuf::from("results/golden")),
        kill_at: args.kill_at,
        progress: args.progress,
        ..ckpt_exp::CheckpointConfig::default()
    };
    match ckpt_exp::run_study(&def, &config, args.resume.is_some()) {
        Ok(ckpt_exp::StudyOutcome::Complete(report)) => {
            eprintln!(
                "study {}: {} items ({} resumed, {} executed), {} checkpoint(s)",
                report.id,
                report.items_total,
                report.items_resumed,
                report.items_executed,
                report.checkpoints_written
            );
            let mut exit = 0;
            for (stem, result) in &report.results {
                match result {
                    Ok(r) => println!("{stem}: ok ({} rows)", r.outcomes.len()),
                    Err(e) => {
                        eprintln!("{stem}: {e}");
                        exit = 1;
                    }
                }
            }
            exit
        }
        Ok(ckpt_exp::StudyOutcome::Stopped { completed, total }) => {
            eprintln!("study stopped at {completed}/{total} items");
            1
        }
        Err(e) => {
            eprintln!("{e}");
            2
        }
    }
}

fn cmd_study(rest: &[String]) -> i32 {
    let mut root = PathBuf::from("results/study");
    let mut max_checkpoints: usize = 3;
    let mut purge: Option<String> = None;
    let action = match rest.first().map(String::as_str) {
        Some(a @ ("ls" | "gc")) => a.to_string(),
        _ => {
            eprintln!("usage: ckpt-exp study <ls|gc> [--study-root DIR] [--max-checkpoints N] [--purge ID]");
            return 2;
        }
    };
    let mut it = rest[1..].iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{what}")).clone();
        match a.as_str() {
            "--study-root" => root = PathBuf::from(next("--study-root DIR")),
            "--max-checkpoints" => {
                max_checkpoints = next("--max-checkpoints N").parse().expect("number")
            }
            "--purge" => purge = Some(next("--purge ID")),
            other => panic!("unknown `study` argument {other}"),
        }
    }
    match action.as_str() {
        "ls" => {
            let studies = ckpt_exp::checkpoint::list_studies(&root);
            if studies.is_empty() {
                println!("no studies under {}", root.display());
                return 0;
            }
            println!("{:<24} {:>8} {:>12} {:>12} status", "id", "items", "checkpoints", "aggregates");
            for s in studies {
                println!(
                    "{:<24} {:>8} {:>12} {:>12} {}",
                    s.id, s.items, s.checkpoints, s.aggregates, s.status
                );
            }
            0
        }
        _ => match ckpt_exp::checkpoint::gc_studies(&root, max_checkpoints, purge.as_deref()) {
            Ok(actions) => {
                if actions.is_empty() {
                    println!("nothing to do");
                } else {
                    for a in actions {
                        println!("{a}");
                    }
                }
                0
            }
            Err(e) => {
                eprintln!("{e}");
                2
            }
        },
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match raw.first().map(String::as_str) {
        Some("run") => std::process::exit(cmd_run(&raw[1..])),
        Some("study") => std::process::exit(cmd_study(&raw[1..])),
        _ => {}
    }
    let args = parse_args();
    if let Some(n) = args.threads {
        ckpt_exp::steal::set_workers(n);
    }
    let t = args.traces;
    match args.experiment.as_str() {
        "fig1" => {
            let mut s = String::from("p,mtbf_rejuvenate_all_s,mtbf_failed_only_s\n");
            for (p, all, failed) in ex::fig1() {
                s.push_str(&format!("{p},{all:.3},{failed:.3}\n"));
            }
            emit(&args.out, "fig1.csv", &s);
            emit(
                &args.out,
                "fig1.gp",
                &ckpt_exp::plot::fig1_script("fig1.csv", "fig1.png"),
            );
        }
        "table2" | "table3" => {
            let weibull = args.experiment == "table3";
            let mut md = String::new();
            for (label, r) in ex::table23(weibull, t) {
                md.push_str(&format!("## MTBF = {label}\n\n{}\n", markdown_table(&r)));
            }
            emit(&args.out, &format!("{}.md", args.experiment), &md);
        }
        "fig2" | "fig3" | "fig4" | "fig6" => {
            let weibull = matches!(args.experiment.as_str(), "fig4" | "fig6");
            let exa = matches!(args.experiment.as_str(), "fig3" | "fig6");
            let years = if exa { 1_250.0 } else { args.mtbf_years };
            let rows = ex::fig_synthetic_scaling(weibull, exa, years, t);
            let name = &args.experiment;
            emit(&args.out, &format!("{name}.csv"), &series_output(&rows));
            emit(
                &args.out,
                &format!("{name}.gp"),
                &ckpt_exp::plot::degradation_figure_script(
                    &format!("Figure {} — degradation vs processors", &name[3..]),
                    "number of processors",
                    &format!("{name}.csv"),
                    &format!("{name}.png"),
                    true,
                ),
            );
        }
        "fig5" => {
            let shapes: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
            let rows = ex::fig5(&shapes, t);
            let mut csv = String::from(CSV_HEADER);
            for (k, r) in &rows {
                csv.push_str(&csv_series(*k, r));
            }
            emit(&args.out, "fig5.csv", &csv);
        }
        "table4" => {
            let r = ex::table4(t);
            emit(&args.out, "table4.md", &markdown_table(&r));
        }
        "fig7" => {
            let rows = ex::fig_logbased(19, t);
            emit(&args.out, "fig7.csv", &series_output(&rows));
            emit(
                &args.out,
                "fig7.gp",
                &ckpt_exp::plot::degradation_figure_script(
                    "Figure 7 — log-based failures (LANL 19)",
                    "number of processors",
                    "fig7.csv",
                    "fig7.png",
                    true,
                ),
            );
        }
        "fig100" => {
            for cluster in [18u32, 19] {
                let rows = ex::fig_logbased(cluster, t);
                emit(
                    &args.out,
                    &format!("fig100-cluster{cluster}.csv"),
                    &series_output(&rows),
                );
            }
        }
        "fig8" | "fig9" => {
            let weibull = args.experiment == "fig9";
            let r = ex::fig89(weibull, DAY, t);
            emit(&args.out, &format!("{}.md", args.experiment), &markdown_table(&r));
        }
        "fig98" | "fig99" => {
            // `--policy NAME` picks any registry policy (case-insensitive);
            // the default matches the figure's subject.
            let kind = match &args.policy {
                Some(name) => match ckpt_exp::parse_kind(name) {
                    Ok(kind) => kind,
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                },
                None if args.experiment == "fig98" => PolicyKind::OptExp,
                None => PolicyKind::DpNextFailure(Default::default()),
            };
            let weibull = args.experiment == "fig99";
            let mut csv = String::from("model,p,mean_makespan_days\n");
            for (model, series) in ex::fig9899(&kind, weibull, t) {
                for (p, mk) in series {
                    csv.push_str(&format!("{model},{p},{:.3}\n", mk / DAY));
                }
            }
            emit(&args.out, &format!("{}.csv", args.experiment), &csv);
        }
        "matrix" => {
            let r = ex::matrix_cell(
                args.weibull,
                args.exa,
                parallelism_from(&args.model),
                args.overhead == "prop",
                args.mtbf_years,
                args.procs,
                t,
            );
            emit(&args.out, "matrix.md", &markdown_table(&r));
        }
        "ext-procs" => {
            // §8: optimal processor count under failures.
            let procs: Vec<u64> = (9..=15).map(|e| 1u64 << e).collect();
            let weibull = ckpt_exp::DistSpec::Weibull {
                shape: 0.7,
                mtbf: args.mtbf_years * 365.25 * 86_400.0,
            };
            let (series, best) = ckpt_exp::extensions::optimal_proc_count(
                |p| ckpt_exp::Scenario::petascale(weibull.clone(), p, t),
                &PolicyKind::Young,
                &procs,
                t,
            );
            let mut csv = String::from("p,mean_makespan_days,argmin\n");
            for (p, mk) in series {
                csv.push_str(&format!("{p},{:.3},{}\n", mk / DAY, p == best));
            }
            emit(&args.out, "ext-procs.csv", &csv);
        }
        "ext-replication" => {
            let weibull = ckpt_exp::DistSpec::Weibull {
                shape: 0.7,
                mtbf: args.mtbf_years * 365.25 * 86_400.0,
            };
            let sc = ckpt_exp::Scenario::petascale(weibull, args.procs, t);
            let row = ckpt_exp::extensions::replication_study(&sc, t);
            let s = format!(
                "mode,mean_makespan_days\nsingle,{:.3}\nindependent,{:.3}\nsynchronized,{:.3}\n",
                row.single / DAY,
                row.independent / DAY,
                row.synchronized / DAY
            );
            emit(&args.out, "ext-replication.csv", &s);
        }
        "ext-energy" => {
            let weibull = ckpt_exp::DistSpec::Weibull {
                shape: 0.7,
                mtbf: args.mtbf_years * 365.25 * 86_400.0,
            };
            let sc = ckpt_exp::Scenario::petascale(weibull, args.procs, t);
            let rows = ckpt_exp::extensions::energy_period_tradeoff(
                &sc,
                &ckpt_sim::PowerModel::typical_hpc(),
                &[0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
                t,
            );
            let mut csv = String::from("period_factor,mean_makespan_days,mean_energy_mj\n");
            for r in rows {
                csv.push_str(&format!(
                    "{},{:.3},{:.1}\n",
                    r.factor,
                    r.makespan / DAY,
                    r.energy / 1e6
                ));
            }
            emit(&args.out, "ext-energy.csv", &csv);
        }
        "report" => {
            let cfg = ckpt_exp::report::ReportConfig::quick(t);
            let md = ckpt_exp::report::generate(&cfg);
            emit(&args.out, "report.md", &md);
        }
        "all" => {
            run_all(&args);
        }
        _ => {
            eprintln!(
                "usage: ckpt-exp <fig1|table2|table3|table4|fig2..fig9|fig98|fig99|fig100|matrix|all> \
                 [--traces N] [--out DIR] [matrix flags]"
            );
        }
    }
}

fn run_all(args: &Args) {
    for exp in [
        "fig1", "table2", "table3", "fig2", "fig3", "fig4", "fig5", "fig6", "table4", "fig7",
        "fig100", "fig8", "fig9", "fig98", "fig99",
    ] {
        eprintln!("=== {exp} (traces = {}) ===", args.traces);
        let status = std::process::Command::new(std::env::current_exe().expect("self"))
            .arg(exp)
            .args(["--traces", &args.traces.to_string()])
            .args(
                args.out
                    .as_ref()
                    .map(|o| vec!["--out".to_string(), o.display().to_string()])
                    .unwrap_or_default(),
            )
            .status()
            .expect("spawn self");
        assert!(status.success(), "{exp} failed");
    }
}
