//! End-to-end pipeline benchmark: the fixed Petascale Weibull cell used
//! by `scripts/bench_pipeline.sh` to produce `BENCH_pipeline.json`.
//!
//! Usage: `bench_pipeline [--traces N] [--label NAME] [--out PATH]
//! [--search full|coarse] [--trace-out PATH] [--report-out PATH]
//! [--threads N] [--cell bench|lanl18|lanl19] [--history PATH|none]
//! [--flight-out PATH] [--prom-out PATH]`
//!
//! Every run appends one JSONL record — git sha, host CPUs, lane
//! width, stage timings, key obs counter deltas — to the bench history
//! (`--history`, default `results/BENCH_history.jsonl`, `none`
//! disables), the series `ckpt-bench regress` judges. `--flight-out`
//! dumps the live flight-recorder ring, `--prom-out` the Prometheus
//! text exposition of the session (both need `--features obs` to carry
//! data; without it they write valid empty documents).
//!
//! `--threads N` pins the work-stealing executor's worker count (the
//! effective count and steal counters land in the JSON's
//! `pipeline.exec` block); `--cell` selects the scaling cells used by
//! `scripts/bench_exec_scaling.sh` (`lanl18`/`lanl19` are the LANL
//! log-based clusters at the same p = 4096).
//!
//! Runs the full scenario pipeline (trace generation → policy sims →
//! PeriodLB search → aggregation) once, prints a human summary, and
//! writes a JSON document with the per-stage timings and counters.
//!
//! Built with `--features obs`, the run records into a `ckpt-obs`
//! session: `--trace-out` then emits a chrome://tracing timeline and
//! `--report-out` a `perf report`-style text summary, and the binary
//! *verifies* that the obs span totals agree with the `PipelinePerf`
//! stage timings within 5% (the two measure the same bracketed regions
//! through independent code paths). Without the feature those flags are
//! accepted but skipped.

use ckpt_exp::perf::format_f64;
use ckpt_exp::policies_spec::PolicyKind;
use ckpt_exp::runner::{run_scenario, PeriodSearch, RunnerOptions};
use ckpt_exp::scenario::{DistSpec, Scenario};
use std::io::Write as _;
use std::time::Instant;

const YEAR: f64 = 365.25 * 86_400.0;

/// The fixed bench cell: Table 1 Petascale, Weibull(k = 0.7, μ = 125 y),
/// 4096 processors — the same platform as the `policy_micro` benches.
/// `lanl18`/`lanl19` swap in the LANL log-based failure models at the
/// same platform size (the `fig7`/`fig100` distributions).
fn bench_scenario(cell: &str, traces: usize) -> Scenario {
    let dist = match cell {
        "bench" => DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR },
        "lanl18" => DistSpec::LanlLog { cluster: 18 },
        "lanl19" => DistSpec::LanlLog { cluster: 19 },
        other => panic!("--cell bench|lanl18|lanl19, got {other:?}"),
    };
    Scenario::petascale(dist, 1 << 12, traces)
}

fn main() {
    let mut traces = 24usize;
    let mut cell = "bench".to_string();
    let mut label = "run".to_string();
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut history = "results/BENCH_history.jsonl".to_string();
    let mut flight_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut search = PeriodSearch::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--traces" => {
                traces = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--traces N");
            }
            "--label" => label = args.next().expect("--label NAME"),
            "--cell" => cell = args.next().expect("--cell bench|lanl18|lanl19"),
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads N");
                ckpt_exp::steal::set_workers(n);
            }
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out PATH")),
            "--report-out" => report_out = Some(args.next().expect("--report-out PATH")),
            "--history" => history = args.next().expect("--history PATH|none"),
            "--flight-out" => flight_out = Some(args.next().expect("--flight-out PATH")),
            "--prom-out" => prom_out = Some(args.next().expect("--prom-out PATH")),
            "--search" => {
                search = match args.next().as_deref() {
                    Some("full") => PeriodSearch::Full,
                    Some("coarse") => PeriodSearch::default(),
                    other => panic!("--search full|coarse, got {other:?}"),
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let scenario = bench_scenario(&cell, traces);
    let kinds = if cell == "bench" {
        PolicyKind::paper_roster(false)
    } else {
        PolicyKind::log_based_roster()
    };
    let mut options = RunnerOptions::default_with_paper_grid();
    options.period_search = search;

    eprintln!(
        "bench_pipeline[{label}]: cell {cell}, {} procs, {} traces, {} policies, \
         {} period candidates, {} workers",
        scenario.procs,
        scenario.traces,
        kinds.len(),
        options.period_lb.as_ref().map_or(0, Vec::len),
        ckpt_exp::steal::workers(),
    );

    let session = ckpt_obs::ObsSession::start();
    if session.is_none() {
        eprintln!(
            "bench_pipeline[{label}]: recording off (build with --features obs for \
             the chrome trace / perf report)"
        );
    }
    let t0 = Instant::now();
    let result = run_scenario(&scenario, &kinds, &options);
    let total = t0.elapsed().as_secs_f64();
    if let Some(path) = &flight_out {
        // Must precede `finish`: finishing the session drains the
        // shards, and the flight ring dies with them.
        std::fs::write(path, ckpt_obs::flight_dump_json())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("bench_pipeline[{label}]: wrote flight dump {path}");
    }
    let obs_data = session.map(ckpt_obs::ObsSession::finish);

    eprintln!("bench_pipeline[{label}]: total {total:.3}s");
    let perf = &result.perf;
    for st in &perf.stages {
        eprintln!("  stage {:<14} {:>9.3}s  ({} items)", st.name, st.seconds, st.items);
    }
    eprintln!(
        "  sims: {} policy + {} candidate (grid {}), {} decisions, {} failures",
        perf.policy_sims,
        perf.candidate_sims,
        perf.candidate_grid_size,
        perf.decisions,
        perf.failures
    );
    if let Some(e) = &perf.exec {
        eprintln!(
            "  exec: {} workers, {} waves, claims {} local + {} injector + {} stolen \
             ({} failed probes)",
            e.workers, e.waves, e.local_claims, e.injector_claims, e.steals, e.failed_probes
        );
    }

    if let Some(data) = &obs_data {
        // The obs spans and the `PipelinePerf` stage timings bracket the
        // same regions through independent code paths; if they disagree
        // beyond tolerance, one of the two is lying — fail the bench.
        for st in &perf.stages {
            let span_s = data.span_total_seconds(&format!("stage.{}", st.name));
            // 5%, with a small absolute floor so microsecond-scale
            // stages don't trip on scheduling noise.
            let tol = (0.05 * st.seconds).max(0.005);
            let diff = (span_s - st.seconds).abs();
            eprintln!(
                "  agree {:<14} span {:>9.3}s vs perf {:>9.3}s  (|Δ| {:.4}s)",
                st.name, span_s, st.seconds, diff
            );
            assert!(
                diff <= tol,
                "stage {} disagrees: obs span total {span_s:.4}s vs perf {:.4}s (tol {tol:.4}s)",
                st.name,
                st.seconds
            );
        }
        if let Some(path) = &trace_out {
            std::fs::write(path, data.chrome_trace_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench_pipeline[{label}]: wrote chrome trace {path}");
        }
        if let Some(path) = &report_out {
            std::fs::write(path, data.perf_report())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench_pipeline[{label}]: wrote perf report {path}");
        }
        if let Some(path) = &prom_out {
            std::fs::write(path, data.prometheus_text())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench_pipeline[{label}]: wrote prometheus text {path}");
        }
    }

    // JSON document: run metadata + measured pipeline perf.
    let mut doc = String::from("{\n");
    doc.push_str(&format!("  \"label\": \"{}\",\n", serde_json::escape_str(&label)));
    doc.push_str(&format!(
        "  \"cell\": {{\"scenario\": \"{}\", \"procs\": {}, \"traces\": {}, \"policies\": {}, \"period_grid\": {}}},\n",
        serde_json::escape_str(&scenario.label),
        scenario.procs,
        scenario.traces,
        kinds.len(),
        options.period_lb.as_ref().map_or(0, Vec::len),
    ));
    doc.push_str(&format!("  \"total_seconds\": {},\n", format_f64(total)));
    doc.push_str(&format!("  \"pipeline\": {}\n", perf.to_json()));
    doc.push_str("}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench_pipeline[{label}]: wrote {path}");
        }
        None => println!("{doc}"),
    }

    // Bench history: append one JSONL record per run (never stdout —
    // callers pipe the document above to jq).
    if history != "none" {
        let record = history_record(
            &label,
            &scenario,
            kinds.len(),
            options.period_lb.as_ref().map_or(0, Vec::len),
            total,
            perf,
        );
        append_history(&history, &record);
        eprintln!("bench_pipeline[{label}]: appended history record to {history}");
    }
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree.
fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Wall-clock record stamp (bench provenance only: history records are
/// measurements *about* the machine, never simulation inputs).
fn unix_seconds() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// One `BENCH_history.jsonl` record (see DESIGN.md for the schema):
/// run identity (git sha, host CPUs, lane width, worker threads, cell)
/// plus the stage timings and key obs counter deltas that `ckpt-bench
/// regress` judges.
fn history_record(
    label: &str,
    scenario: &Scenario,
    policies: usize,
    period_grid: usize,
    total: f64,
    perf: &ckpt_exp::perf::PipelinePerf,
) -> String {
    let mut rec = String::from("{\"schema\": 1, \"kind\": \"pipeline\"");
    rec.push_str(&format!(", \"label\": \"{}\"", serde_json::escape_str(label)));
    rec.push_str(&format!(", \"git_sha\": \"{}\"", serde_json::escape_str(&git_sha())));
    rec.push_str(&format!(", \"recorded_unix\": {}", unix_seconds()));
    rec.push_str(&format!(
        ", \"host_cpus\": {}",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    ));
    rec.push_str(&format!(", \"lanes\": {}", ckpt_math::simd::LANES));
    rec.push_str(&format!(", \"threads\": {}", ckpt_exp::steal::workers()));
    rec.push_str(&format!(
        ", \"cell\": {{\"scenario\": \"{}\", \"procs\": {}, \"traces\": {}, \"policies\": {}, \"period_grid\": {}}}",
        serde_json::escape_str(&scenario.label),
        scenario.procs,
        scenario.traces,
        policies,
        period_grid,
    ));
    rec.push_str(&format!(", \"total_seconds\": {}", format_f64(total)));
    rec.push_str(", \"stages\": [");
    for (i, st) in perf.stages.iter().enumerate() {
        if i > 0 {
            rec.push_str(", ");
        }
        rec.push_str(&format!(
            "{{\"name\": \"{}\", \"seconds\": {}, \"items\": {}}}",
            serde_json::escape_str(&st.name),
            format_f64(st.seconds),
            st.items,
        ));
    }
    rec.push_str("], \"counters\": {");
    if let Some(o) = &perf.obs {
        rec.push_str(&format!(
            "\"dp_solves\": {}, \"dp_near_row_sweeps\": {}, \"dp_far_fits\": {}, \
             \"dp_hull_lines\": {}, \"dp_hull_advances\": {}, \"dp_log_domain_states\": {}, \
             \"dp_scratch_reuses\": {}, \"kernel_interp_hits\": {}, \
             \"kernel_exact_fallbacks\": {}, \"trace_cache_hits\": {}, \
             \"trace_cache_misses\": {}, \"sim_runs\": {}, \"sim_decisions\": {}",
            o.dp_solves,
            o.dp_near_row_sweeps,
            o.dp_far_fits,
            o.dp_hull_lines,
            o.dp_hull_advances,
            o.dp_log_domain_states,
            o.dp_scratch_reuses,
            o.kernel_interp_hits,
            o.kernel_exact_fallbacks,
            o.trace_cache_hits,
            o.trace_cache_misses,
            o.sim_runs,
            o.sim_decisions,
        ));
    }
    rec.push_str("}}");
    rec
}

/// Append one record line, creating the file (and parents) on first use.
fn append_history(path: &str, record: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| panic!("open {path}: {e}"));
    writeln!(f, "{record}").unwrap_or_else(|e| panic!("append {path}: {e}"));
}
