//! End-to-end pipeline benchmark: the fixed Petascale Weibull cell used
//! by `scripts/bench_pipeline.sh` to produce `BENCH_pipeline.json`.
//!
//! Usage: `bench_pipeline [--traces N] [--label NAME] [--out PATH]
//! [--search full|coarse]`
//!
//! Runs the full scenario pipeline (trace generation → policy sims →
//! PeriodLB search → aggregation) once, prints a human summary, and
//! writes a JSON document with the per-stage timings and counters.

use ckpt_exp::perf::format_f64;
use ckpt_exp::policies_spec::PolicyKind;
use ckpt_exp::runner::{run_scenario, PeriodSearch, RunnerOptions};
use ckpt_exp::scenario::{DistSpec, Scenario};
use std::time::Instant;

const YEAR: f64 = 365.25 * 86_400.0;

/// The fixed bench cell: Table 1 Petascale, Weibull(k = 0.7, μ = 125 y),
/// 4096 processors — the same platform as the `policy_micro` benches.
fn bench_scenario(traces: usize) -> Scenario {
    Scenario::petascale(
        DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR },
        1 << 12,
        traces,
    )
}

fn main() {
    let mut traces = 24usize;
    let mut label = "run".to_string();
    let mut out: Option<String> = None;
    let mut search = PeriodSearch::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--traces" => {
                traces = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--traces N");
            }
            "--label" => label = args.next().expect("--label NAME"),
            "--out" => out = Some(args.next().expect("--out PATH")),
            "--search" => {
                search = match args.next().as_deref() {
                    Some("full") => PeriodSearch::Full,
                    Some("coarse") => PeriodSearch::default(),
                    other => panic!("--search full|coarse, got {other:?}"),
                };
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let scenario = bench_scenario(traces);
    let kinds = PolicyKind::paper_roster(false);
    let mut options = RunnerOptions::default_with_paper_grid();
    options.period_search = search;

    eprintln!(
        "bench_pipeline[{label}]: {} procs, {} traces, {} policies, {} period candidates",
        scenario.procs,
        scenario.traces,
        kinds.len(),
        options.period_lb.as_ref().map_or(0, Vec::len),
    );

    let t0 = Instant::now();
    let result = run_scenario(&scenario, &kinds, &options);
    let total = t0.elapsed().as_secs_f64();

    eprintln!("bench_pipeline[{label}]: total {total:.3}s");
    let perf = &result.perf;
    for st in &perf.stages {
        eprintln!("  stage {:<14} {:>9.3}s  ({} items)", st.name, st.seconds, st.items);
    }
    eprintln!(
        "  sims: {} policy + {} candidate (grid {}), {} decisions, {} failures",
        perf.policy_sims,
        perf.candidate_sims,
        perf.candidate_grid_size,
        perf.decisions,
        perf.failures
    );

    // JSON document: run metadata + measured pipeline perf.
    let mut doc = String::from("{\n");
    doc.push_str(&format!("  \"label\": \"{}\",\n", serde_json::escape_str(&label)));
    doc.push_str(&format!(
        "  \"cell\": {{\"scenario\": \"{}\", \"procs\": {}, \"traces\": {}, \"policies\": {}, \"period_grid\": {}}},\n",
        serde_json::escape_str(&scenario.label),
        scenario.procs,
        scenario.traces,
        kinds.len(),
        options.period_lb.as_ref().map_or(0, Vec::len),
    ));
    doc.push_str(&format!("  \"total_seconds\": {},\n", format_f64(total)));
    doc.push_str(&format!("  \"pipeline\": {}\n", perf.to_json()));
    doc.push_str("}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("bench_pipeline[{label}]: wrote {path}");
        }
        None => println!("{doc}"),
    }
}
