//! Quick per-policy wall-clock profile on the bench cell (dev tool).

use ckpt_exp::cache::TraceCache;
use ckpt_exp::policies_spec::PolicyKind;
use ckpt_exp::scenario::{DistSpec, Scenario};
use ckpt_sim::SimOptions;
use std::time::Instant;

const YEAR: f64 = 365.25 * 86_400.0;

fn main() {
    let traces: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(2);
    let scenario = Scenario::petascale(
        DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR },
        1 << 12,
        traces,
    );
    let built = scenario.dist.build();
    let spec = scenario.job_spec();
    let cache = TraceCache::global();
    let cached: Vec<_> = (0..traces).map(|i| cache.get_or_generate(&scenario, &built, i)).collect();
    for kind in PolicyKind::paper_roster(false) {
        let name = kind.name();
        let policy = match kind.build(&scenario, &built) {
            Ok(p) => p,
            Err(e) => {
                println!("{name:<14} SKIP: {e}");
                continue;
            }
        };
        let t0 = Instant::now();
        let mut decisions = 0u64;
        for ct in &cached {
            let mut s = policy.session();
            let st = ckpt_sim::simulate(
                &spec,
                &mut *s,
                &ct.events,
                ct.procs_per_unit(),
                ct.traces.start_time,
                ct.traces.horizon,
                SimOptions::default(),
            );
            decisions += st.decisions;
        }
        println!("{name:<14} {:>8.3}s  {decisions} decisions", t0.elapsed().as_secs_f64());
    }

    // Omniscient lower bound (runs in the same roster wave as the
    // policies, so its cost lands in the policy_sims stage).
    let t0 = Instant::now();
    for ct in &cached {
        std::hint::black_box(ckpt_sim::lower_bound_makespan(&spec, &ct.traces).makespan);
    }
    println!("{:<14} {:>8.3}s", "LowerBound", t0.elapsed().as_secs_f64());

    // Direct DP run with plan-cache statistics.
    let dp = ckpt_policies::DpNextFailure::new(
        &spec,
        built.dist.clone_box(),
        built.proc_mtbf,
        ckpt_policies::DpNextFailureConfig::default(),
    );
    let t0 = Instant::now();
    for ct in &cached {
        let mut s = ckpt_policies::Policy::session(&dp);
        let st = ckpt_sim::simulate(
            &spec,
            &mut *s,
            &ct.events,
            ct.procs_per_unit(),
            ct.traces.start_time,
            ct.traces.horizon,
            SimOptions::default(),
        );
        std::hint::black_box(st);
    }
    let (total_plans, cold_plans) = dp.plan_stats();
    println!(
        "dp direct: {:.3}s, {total_plans} plans ({cold_plans} cold)",
        t0.elapsed().as_secs_f64()
    );
    println!("dp quanta = {}", dp.quanta());
    let t0 = Instant::now();
    let n_plans = 40;
    for i in 0..n_plans {
        let ages = ckpt_platform::AgeView::new(
            vec![(1_000.0 + 777.0 * i as f64, 1), (50_000.0 + 33_333.0 * i as f64, 1)],
            4_094,
            YEAR + 300_000.0 * i as f64,
        );
        let plan = dp.plan(spec.work / spec.procs as f64, &ages);
        std::hint::black_box(plan);
    }
    println!(
        "cold plan avg: {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3 / n_plans as f64
    );
}
