//! Gnuplot emitters: turn recorded figure series into ready-to-run plot
//! scripts, so `ckpt-exp <fig> --out results && gnuplot results/<fig>.gp`
//! reproduces the paper's figures visually, not just numerically.

use crate::runner::ScenarioResult;
use std::fmt::Write as _;

/// Policies plotted, in the paper's legend order; series not present in a
/// result are skipped.
const LEGEND_ORDER: &[&str] = &[
    "DalyHigh",
    "DalyLow",
    "Young",
    "LowerBound",
    "PeriodLB",
    "Liu",
    "Bouguerra",
    "OptExp",
    "DPMakespan",
    "DPNextFailure",
];

/// A gnuplot script for a degradation-vs-x figure (Figures 2–7 style).
///
/// `data_csv` must be in [`crate::output::csv_series`] format and is
/// referenced by file name, so write both files next to each other:
///
/// ```text
/// results/fig4.csv   # csv_series output
/// results/fig4.gp    # this script: `gnuplot fig4.gp` → fig4.png
/// ```
pub fn degradation_figure_script(
    title: &str,
    xlabel: &str,
    csv_name: &str,
    png_name: &str,
    log2_x: bool,
) -> String {
    let mut gp = String::new();
    let _ = writeln!(gp, "set terminal pngcairo size 960,640 enhanced");
    let _ = writeln!(gp, "set output '{png_name}'");
    let _ = writeln!(gp, "set title '{title}'");
    let _ = writeln!(gp, "set xlabel '{xlabel}'");
    let _ = writeln!(gp, "set ylabel 'average makespan degradation'");
    let _ = writeln!(gp, "set datafile separator ','");
    let _ = writeln!(gp, "set key outside right");
    let _ = writeln!(gp, "set grid");
    if log2_x {
        let _ = writeln!(gp, "set logscale x 2");
    }
    let _ = writeln!(gp);
    let mut plots = Vec::new();
    for name in LEGEND_ORDER {
        plots.push(format!(
            "'{csv_name}' using 1:(strcol(2) eq '{name}' ? $3 : 1/0) with linespoints title '{name}'"
        ));
    }
    let _ = writeln!(gp, "plot \\\n  {}", plots.join(", \\\n  "));
    gp
}

/// A gnuplot script for the Figure 1 MTBF comparison
/// (`p,mtbf_rejuvenate_all_s,mtbf_failed_only_s` CSV).
pub fn fig1_script(csv_name: &str, png_name: &str) -> String {
    format!(
        "set terminal pngcairo size 960,640 enhanced\n\
         set output '{png_name}'\n\
         set title 'Platform MTBF vs rejuvenation option (Weibull k = 0.7)'\n\
         set xlabel 'number of processors'\n\
         set ylabel 'platform MTBF (s)'\n\
         set datafile separator ','\n\
         set logscale x 2\n\
         set logscale y 2\n\
         set grid\n\
         plot '{csv_name}' using 1:2 with linespoints title 'rejuvenate all', \\\n  \
              '{csv_name}' using 1:3 with linespoints title 'failed only'\n"
    )
}

/// Inline data-block variant: embeds the series so the script is fully
/// self-contained (no CSV file needed). Used by the report generator.
pub fn self_contained_script(
    title: &str,
    xlabel: &str,
    png_name: &str,
    rows: &[(f64, &ScenarioResult)],
    log2_x: bool,
) -> String {
    let mut gp = String::new();
    let _ = writeln!(gp, "set terminal pngcairo size 960,640 enhanced");
    let _ = writeln!(gp, "set output '{png_name}'");
    let _ = writeln!(gp, "set title '{title}'");
    let _ = writeln!(gp, "set xlabel '{xlabel}'");
    let _ = writeln!(gp, "set ylabel 'average makespan degradation'");
    let _ = writeln!(gp, "set key outside right");
    let _ = writeln!(gp, "set grid");
    if log2_x {
        let _ = writeln!(gp, "set logscale x 2");
    }
    // One $DATA block per policy with any data.
    let mut plotted = Vec::new();
    for name in LEGEND_ORDER {
        let mut block = String::new();
        for (x, r) in rows {
            if let Some(o) = r.get(name) {
                if let Some(d) = o.avg_degradation {
                    let _ = writeln!(block, "{x} {d}");
                }
            }
        }
        if !block.is_empty() {
            let var = name.replace(['*', '.'], "_");
            let _ = writeln!(gp, "${var} << EOD\n{block}EOD");
            plotted.push(format!("${var} using 1:2 with linespoints title '{name}'"));
        }
    }
    let _ = writeln!(gp, "plot \\\n  {}", plotted.join(", \\\n  "));
    gp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PolicyOutcome;

    fn result(names: &[(&str, f64)]) -> ScenarioResult {
        ScenarioResult {
            label: "t".into(),
            procs: 4,
            traces: 1,
            outcomes: names
                .iter()
                .map(|&(n, d)| PolicyOutcome {
                    name: n.into(),
                    avg_degradation: Some(d),
                    std_degradation: Some(0.0),
                    mean_makespan: Some(1.0),
                    mean_failures: None,
                    max_failures: None,
                    chunk_range: None,
                    period_factor: None,
                    error: None,
                })
                .collect(),
            period_lb_factor: None,
            perf: crate::perf::PipelinePerf::default(),
        }
    }

    #[test]
    fn csv_script_references_files_and_series() {
        let gp = degradation_figure_script("Figure 4", "p", "fig4.csv", "fig4.png", true);
        assert!(gp.contains("set output 'fig4.png'"));
        assert!(gp.contains("logscale x 2"));
        assert!(gp.contains("'fig4.csv'"));
        assert!(gp.contains("strcol(2)"));
        assert!(gp.contains("DPNextFailure"));
    }

    #[test]
    fn fig1_script_has_both_series() {
        let gp = fig1_script("fig1.csv", "fig1.png");
        assert!(gp.contains("rejuvenate all"));
        assert!(gp.contains("failed only"));
        assert!(gp.contains("logscale y 2"));
    }

    #[test]
    fn self_contained_embeds_data() {
        let r1 = result(&[("Young", 1.01), ("DPNextFailure", 1.002)]);
        let r2 = result(&[("Young", 1.05), ("DPNextFailure", 1.01)]);
        let gp = self_contained_script("demo", "p", "demo.png", &[(1024.0, &r1), (4096.0, &r2)], true);
        assert!(gp.contains("$Young << EOD"));
        assert!(gp.contains("1024 1.01"));
        assert!(gp.contains("4096 1.01"));
        assert!(gp.contains("$DPNextFailure"));
        // Policies with no data are not plotted.
        assert!(!gp.contains("$Bouguerra"));
    }
}
