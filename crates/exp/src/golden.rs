//! Canonical JSON emitter for golden-result tests.
//!
//! Serialises the *deterministic* portion of a [`ScenarioResult`] — every
//! `PolicyOutcome` field plus the deterministic pipeline counters, but no
//! wall-clock timings — with shortest-roundtrip float formatting
//! ([`crate::perf::format_f64`]), which is injective on finite `f64`s.
//! Two results serialise to the same bytes **iff** every number is
//! bit-identical, so the integration test under `tests/` can byte-compare
//! a fresh run against the committed files in `results/golden/` to prove
//! the plan → execute → reduce pipeline reproduces the pre-refactor
//! monolith exactly, at any rayon thread count.

use crate::perf::format_f64;
use crate::policies_spec::PolicyKind;
use crate::runner::{PeriodSearch, PolicyOutcome, RunnerOptions, ScenarioResult};
use crate::scenario::{DistSpec, Scenario};
use ckpt_policies::DpMakespanConfig;
use ckpt_workload::YEAR;

/// The cells pinned by the golden test, as `(file stem, scenario, roster,
/// options)`. Shared by the `gen_golden` binary (which writes
/// `results/golden/<stem>.json`) and the `golden_pipeline` integration
/// test (which re-runs them and byte-compares).
///
/// Coverage: a small Petascale-Weibull cell through the default
/// coarse-to-fine `PeriodLB` search, a sequential Exponential cell through
/// the exhaustive search, a cell whose `Liu` row fails to build
/// (footnote-2 behaviour) so error rows are pinned too, and a sequential
/// Exponential `DPMakespan` cell so the Algorithm-1 value recursion has a
/// pinned row (`registry-exhaustive` in ckpt-lint requires every
/// `PolicyKind` label to appear in some golden file).
pub fn golden_cells() -> Vec<(String, Scenario, Vec<PolicyKind>, RunnerOptions)> {
    let peta = Scenario::petascale(
        DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * YEAR },
        1 << 8,
        12,
    );
    let mut seq = Scenario::single_processor(
        DistSpec::Exponential { mtbf: 6.0 * 3_600.0 },
        10,
    );
    seq.total_work = 12.0 * 3_600.0;
    let liu_gap = Scenario::petascale(
        DistSpec::Weibull { shape: 0.3, mtbf: 125.0 * YEAR },
        1 << 12,
        4,
    );
    let mut dp_mk = Scenario::single_processor(
        DistSpec::Exponential { mtbf: 4.0 * 3_600.0 },
        8,
    );
    dp_mk.total_work = 8.0 * 3_600.0;
    let dp_mk_cfg = DpMakespanConfig { quanta: Some(24), assume_memoryless: true };
    vec![
        (
            peta.label.clone(),
            peta,
            PolicyKind::paper_roster(false),
            RunnerOptions::default(),
        ),
        (
            seq.label.clone(),
            seq,
            vec![PolicyKind::Young, PolicyKind::OptExp, PolicyKind::Liu],
            RunnerOptions {
                period_lb: Some(vec![0.5, 1.0, 2.0]),
                period_search: PeriodSearch::Full,
                ..RunnerOptions::default()
            },
        ),
        (
            liu_gap.label.clone(),
            liu_gap,
            vec![PolicyKind::Liu, PolicyKind::Young],
            RunnerOptions { period_lb: None, ..RunnerOptions::default() },
        ),
        (
            dp_mk.label.clone(),
            dp_mk,
            vec![PolicyKind::Young, PolicyKind::DpMakespan(dp_mk_cfg)],
            RunnerOptions { period_lb: None, ..RunnerOptions::default() },
        ),
    ]
}

fn opt_f64(x: Option<f64>) -> String {
    x.map_or_else(|| "null".into(), format_f64)
}

fn opt_u64(x: Option<u64>) -> String {
    x.map_or_else(|| "null".into(), |v| v.to_string())
}

fn opt_str(x: Option<&str>) -> String {
    x.map_or_else(|| "null".into(), |s| format!("\"{}\"", serde_json::escape_str(s)))
}

fn outcome_json(o: &PolicyOutcome) -> String {
    let chunk_range = o.chunk_range.map_or_else(
        || "null".into(),
        |(lo, hi)| format!("[{}, {}]", format_f64(lo), format_f64(hi)),
    );
    format!(
        concat!(
            "{{\"name\": \"{}\", \"avg_degradation\": {}, \"std_degradation\": {}, ",
            "\"mean_makespan\": {}, \"mean_failures\": {}, \"max_failures\": {}, ",
            "\"chunk_range\": {}, \"period_factor\": {}, \"error\": {}}}"
        ),
        serde_json::escape_str(&o.name),
        opt_f64(o.avg_degradation),
        opt_f64(o.std_degradation),
        opt_f64(o.mean_makespan),
        opt_f64(o.mean_failures),
        opt_u64(o.max_failures),
        chunk_range,
        opt_f64(o.period_factor),
        opt_str(o.error.as_deref()),
    )
}

/// Canonical JSON for the deterministic portion of a scenario result.
/// One outcome per line, trailing newline, stable key order.
pub fn golden_json(r: &ScenarioResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"label\": \"{}\",\n", serde_json::escape_str(&r.label)));
    s.push_str(&format!("  \"procs\": {},\n", r.procs));
    s.push_str(&format!("  \"traces\": {},\n", r.traces));
    s.push_str(&format!("  \"period_lb_factor\": {},\n", opt_f64(r.period_lb_factor)));
    s.push_str(&format!("  \"policy_sims\": {},\n", r.perf.policy_sims));
    s.push_str(&format!("  \"candidate_sims\": {},\n", r.perf.candidate_sims));
    s.push_str(&format!("  \"candidate_grid_size\": {},\n", r.perf.candidate_grid_size));
    s.push_str(&format!("  \"decisions\": {},\n", r.perf.decisions));
    s.push_str(&format!("  \"failures\": {},\n", r.perf.failures));
    s.push_str("  \"outcomes\": [\n");
    for (i, o) in r.outcomes.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&outcome_json(o));
        s.push_str(if i + 1 < r.outcomes.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::perf::PipelinePerf;

    fn row(name: &str, mk: Option<f64>) -> PolicyOutcome {
        PolicyOutcome {
            name: name.into(),
            avg_degradation: mk.map(|_| 1.0),
            std_degradation: mk.map(|_| 0.1),
            mean_makespan: mk,
            mean_failures: mk.map(|_| 2.5),
            max_failures: mk.map(|_| 4),
            chunk_range: mk.map(|m| (12.25, m)),
            period_factor: None,
            error: mk.is_none().then(|| "did not \"run\"".into()),
        }
    }

    fn result() -> ScenarioResult {
        ScenarioResult {
            label: "cell".into(),
            procs: 8,
            traces: 2,
            outcomes: vec![row("A", Some(123.456)), row("B", None)],
            period_lb_factor: Some(1.0),
            perf: PipelinePerf::default(),
        }
    }

    #[test]
    fn emits_every_outcome_field() {
        let j = golden_json(&result());
        for key in [
            "avg_degradation",
            "std_degradation",
            "mean_makespan",
            "mean_failures",
            "max_failures",
            "chunk_range",
            "period_factor",
            "error",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key} in {j}");
        }
        assert!(j.contains("\"mean_makespan\": 123.456"));
        assert!(j.contains("\"chunk_range\": [12.25, 123.456]"));
        assert!(j.contains("did not \\\"run\\\""), "error strings must be escaped");
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn serialisation_separates_bitwise_different_floats() {
        let mut a = result();
        let mut b = result();
        assert_eq!(golden_json(&a), golden_json(&b));
        b.outcomes[0].mean_makespan = Some(123.456 + 1e-10);
        assert_ne!(golden_json(&a), golden_json(&b));
        // Sign of zero is a bit difference format_f64 preserves.
        a.outcomes[0].period_factor = Some(0.0);
        b.outcomes[0].mean_makespan = Some(123.456);
        b.outcomes[0].period_factor = Some(-0.0);
        assert_ne!(golden_json(&a), golden_json(&b));
    }
}
