//! The harness-level error type.
//!
//! Every fallible path of the experiment pipeline funnels into [`Error`]:
//! per-crate typed errors ([`ckpt_dist::DistError`],
//! [`ckpt_platform::PlatformError`], [`ckpt_traces::TraceError`]) convert
//! via `From`, and the pipeline's own failure modes (a policy that cannot
//! produce a schedule, an unknown policy name from the CLI, a scenario
//! where no policy yields a baseline) get dedicated variants. The
//! `Display` of [`Error::Policy`] is the bare reason string so result
//! rows carry exactly the text the paper-facing reports always carried.

use ckpt_dist::DistError;
use ckpt_platform::PlatformError;
use ckpt_traces::TraceError;

/// Why a scenario, policy, or study could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A failure distribution could not be built.
    Dist(DistError),
    /// A trace set could not be generated.
    Platform(PlatformError),
    /// An availability log could not be loaded or generated.
    Trace(TraceError),
    /// A policy cannot produce a meaningful schedule for the scenario
    /// (e.g. Liu's nonsensical placements, footnote 2). Displays as the
    /// bare reason so result rows read like the paper's gap annotations.
    Policy {
        /// Display name of the policy.
        name: String,
        /// Why it cannot run.
        reason: String,
    },
    /// A policy name (e.g. from the CLI) matched nothing in the registry.
    UnknownPolicy {
        /// The name as given.
        requested: String,
        /// Every name the registry does know.
        known: Vec<String>,
    },
    /// No policy produced a makespan on any trace, so the §4.1
    /// degradation-from-best metric is undefined.
    NoBaseline,
    /// A scenario-level failure annotated with the scenario's label, so
    /// a failed cell in a 100-cell sweep is attributable from the error
    /// value alone (`Study::run_all` / `Study::prewarm` wrap here).
    Cell {
        /// The failing scenario's label.
        label: String,
        /// The underlying failure.
        source: Box<Error>,
    },
    /// The study checkpoint store could not be read, written, or trusted
    /// (I/O failure, corrupt JSON, version skew, or a manifest
    /// fingerprint mismatch — stale checkpoints are rejected, never
    /// silently reused).
    Checkpoint {
        /// What went wrong, including the offending path where known.
        reason: String,
    },
}

impl Error {
    /// Attach a scenario label to a cell-level failure. Idempotent: an
    /// error already carrying this label is returned unchanged, so
    /// layered callers (study → checkpoint runner) never double-wrap.
    #[must_use]
    pub fn for_cell(label: &str, source: Error) -> Self {
        match source {
            Self::Cell { label: l, source } if l == label => Self::Cell { label: l, source },
            source => Self::Cell { label: label.to_string(), source: Box::new(source) },
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Dist(e) => write!(f, "distribution: {e}"),
            Self::Platform(e) => write!(f, "trace generation: {e}"),
            Self::Trace(e) => write!(f, "availability log: {e}"),
            Self::Policy { reason, .. } => write!(f, "{reason}"),
            Self::UnknownPolicy { requested, known } => {
                write!(f, "unknown policy {requested:?}; known: {}", known.join(", "))
            }
            Self::NoBaseline => write!(
                f,
                "no policy produced a makespan on any trace (degradation undefined)"
            ),
            Self::Cell { label, source } => write!(f, "cell {label}: {source}"),
            Self::Checkpoint { reason } => write!(f, "checkpoint store: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Dist(e) => Some(e),
            Self::Platform(e) => Some(e),
            Self::Trace(e) => Some(e),
            Self::Cell { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<DistError> for Error {
    fn from(e: DistError) -> Self {
        Self::Dist(e)
    }
}

impl From<PlatformError> for Error {
    fn from(e: PlatformError) -> Self {
        Self::Platform(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Self::Trace(e)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn policy_displays_bare_reason() {
        let e = Error::Policy {
            name: "Liu".into(),
            reason: "Liu requires a Weibull (or Exponential) fit".into(),
        };
        assert_eq!(e.to_string(), "Liu requires a Weibull (or Exponential) fit");
    }

    #[test]
    fn no_baseline_keeps_historic_text() {
        assert_eq!(
            Error::NoBaseline.to_string(),
            "no policy produced a makespan on any trace (degradation undefined)"
        );
    }

    #[test]
    fn unknown_policy_lists_known_names() {
        let e = Error::UnknownPolicy {
            requested: "dalylo".into(),
            known: vec!["DalyLow".into(), "DalyHigh".into()],
        };
        let s = e.to_string();
        assert!(s.contains("dalylo") && s.contains("DalyLow, DalyHigh"), "{s}");
    }

    #[test]
    fn cell_wraps_label_and_chains_source() {
        use std::error::Error as _;
        let inner: Error = DistError::EmptySample.into();
        let e = Error::for_cell("peta-weibull000p7000-003944700000", inner.clone());
        assert!(e.to_string().starts_with("cell peta-weibull000p7000-003944700000: "));
        assert!(e.source().is_some(), "cell errors must chain their source");
        // Idempotent: re-wrapping with the same label changes nothing.
        let again = Error::for_cell("peta-weibull000p7000-003944700000", e.clone());
        assert_eq!(again, e);
        // A different label nests (outermost wins the attribution).
        let other = Error::for_cell("other-cell", e.clone());
        assert!(other.to_string().starts_with("cell other-cell: cell peta-"));
    }

    #[test]
    fn checkpoint_error_displays_reason() {
        let e = Error::Checkpoint { reason: "manifest fingerprint mismatch".into() };
        assert_eq!(e.to_string(), "checkpoint store: manifest fingerprint mismatch");
    }

    #[test]
    fn crate_errors_convert_and_chain() {
        use std::error::Error as _;
        let e: Error = DistError::EmptySample.into();
        assert!(e.source().is_some());
        let e: Error = ckpt_platform::PlatformError::NoUnits.into();
        assert!(e.to_string().contains("trace generation"));
        let e: Error = ckpt_traces::TraceError::NoEvents.into();
        assert!(e.to_string().contains("availability log"));
    }
}
