//! Durable, resumable study execution: the checkpointed counterpart of
//! [`Study::run_all`](crate::study::Study::run_all).
//!
//! The in-memory pipeline (`Scenario → SimPlan → ExecOutput →
//! ScenarioResult`) becomes a restartable state machine in three parts:
//!
//! * a **manifest** — the full study decomposed into typed
//!   [`WorkItem`]s (cell × policy × trace-block, plus lower-bound,
//!   candidate and refine items), persisted once per study with a
//!   content **fingerprint** over everything the numbers depend on
//!   (scenario labels, [`DistId`](ckpt_policies::DistId)s, rosters,
//!   runner options, the SIMD lane width, the committed golden hash).
//!   A resume whose rebuilt fingerprint differs is *rejected*, never
//!   silently reused;
//! * a **checkpoint store** — versioned JSON snapshots under
//!   `<root>/<id>/ckpt-NNNNNN.json`, each holding every completed
//!   item's payload (floats as exact `u64` bit patterns). Written every
//!   `interval_items` completed items *or* `interval_seconds` seconds —
//!   the latter read through the one sanctioned clock in
//!   [`ckpt_obs::clock`] — with retention (`max_checkpoints`,
//!   `keep_final`). Snapshots are full-state, so "move in-progress
//!   items back to pending" is implicit: pending = manifest − snapshot;
//! * a **commit layer** ([`crate::reduce::commit`]) that folds the
//!   per-item payloads in task-ID order — regardless of the order items
//!   completed in, before or after any number of kills — reconstructing
//!   the exact [`ExecOutput`](crate::exec::ExecOutput) arithmetic of
//!   the live executor. A SIGKILL'd-and-resumed study therefore writes
//!   byte-identical aggregates to an uninterrupted run, at any rayon
//!   thread count (`tests/study_resume.rs` pins this).
//!
//! Nothing in this module ever stores a wall-clock timestamp: the clock
//! gates *when* a snapshot is written, never *what* is written.

use crate::error::Error;
use crate::plan::{self, plan_scenario, SimPlan};
use crate::policies_spec::PolicyKind;
use crate::runner::{RunnerOptions, ScenarioResult};
use crate::scenario::{BuiltDist, Scenario};
use crate::{cache::TraceCache, jsonio, jsonio::Json};
use ckpt_policies::DistId;
use ckpt_sim::{lower_bound_makespan, RunStats};
use ckpt_workload::JobSpec;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// On-disk format version of manifests and checkpoints. A snapshot from
/// any other version is rejected on resume.
pub const STORE_VERSION: u64 = 1;

/// Items per rayon chunk of the run loop. Chunks execute strictly in
/// item-id order; a checkpoint can be cut after any chunk.
const CHUNK_ITEMS: usize = 8;

/// Knobs of the checkpoint store and run loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointConfig {
    /// Store root; each study lives under `<root>/<id>/`.
    pub root: PathBuf,
    /// Write a checkpoint after this many newly completed items.
    pub interval_items: u64,
    /// … or after this many seconds since the last write, whichever
    /// comes first (read through the sanctioned `ckpt_obs` clock).
    pub interval_seconds: f64,
    /// Keep at most this many checkpoint files (newest win).
    pub max_checkpoints: usize,
    /// Keep the final snapshot after the study completes; `false`
    /// removes every `ckpt-*.json` once the aggregates are written.
    pub keep_final: bool,
    /// Traces per work item (the "trace-block" of the manifest).
    pub trace_block: usize,
    /// Directory of committed golden files to fold into the manifest
    /// fingerprint (`None` ⇒ a zero golden hash).
    pub golden_dir: Option<PathBuf>,
    /// Test hook: abort the run loop (no status, no checkpoint — as if
    /// killed between snapshots) once this many items executed.
    pub stop_after_items: Option<u64>,
    /// CLI hook: SIGKILL our own process once `completed ≥ frac·total`,
    /// *before* the snapshot that would cover those items.
    pub kill_at: Option<f64>,
    /// Emit live progress lines on stderr (`run --study … --progress`).
    /// `progress.json` snapshots are written to the store regardless.
    pub progress: bool,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            root: PathBuf::from("results/study"),
            interval_items: 64,
            interval_seconds: 30.0,
            max_checkpoints: 3,
            keep_final: true,
            trace_block: 4,
            golden_dir: None,
            stop_after_items: None,
            kill_at: None,
            progress: false,
        }
    }
}

/// One cell of a study: a scenario with its roster and runner options,
/// plus the (unique) stem its aggregate file is written under.
#[derive(Debug, Clone)]
pub struct StudyCell {
    /// Aggregate file stem (`aggregate/<stem>.json`), unique per study.
    pub stem: String,
    /// The experimental cell.
    pub scenario: Scenario,
    /// Roster to run on it.
    pub kinds: Vec<PolicyKind>,
    /// Runner options (grid, search strategy, lower bound, engine).
    pub options: RunnerOptions,
}

/// A named, fully-specified batch of cells — the unit of durability.
#[derive(Debug, Clone)]
pub struct StudyDef {
    /// Study id: the directory name under the store root.
    pub id: String,
    /// The cells, in commit order.
    pub cells: Vec<StudyCell>,
}

impl StudyDef {
    /// Build a definition from `(scenario, roster, options)` triples.
    /// Stems default to the scenario labels; colliding labels get the
    /// processor count and then an index appended, so every cell owns a
    /// distinct aggregate file.
    pub fn new(
        id: impl Into<String>,
        cells: impl IntoIterator<Item = (Scenario, Vec<PolicyKind>, RunnerOptions)>,
    ) -> Self {
        let mut out = Vec::new();
        let mut stems: Vec<String> = Vec::new();
        for (scenario, kinds, options) in cells {
            let mut stem = scenario.label.clone();
            if stems.iter().any(|s| s == &stem) {
                stem = format!("{stem}-p{}", scenario.procs);
            }
            let mut n = 2usize;
            while stems.iter().any(|s| s == &stem) {
                stem = format!("{}-{}", scenario.label, n);
                n += 1;
            }
            stems.push(stem.clone());
            out.push(StudyCell { stem, scenario, kinds, options });
        }
        Self { id: id.into(), cells: out }
    }
}

/// One deterministic unit of study work, identified entirely by indices
/// into the manifest (so payloads rebind to items across processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Global item id; items execute in id order.
    pub id: u64,
    /// Index into [`StudyDef::cells`].
    pub cell: usize,
    /// What the item simulates.
    pub kind: ItemKind,
    /// First trace index covered (inclusive).
    pub trace_lo: usize,
    /// Last trace index covered (exclusive).
    pub trace_hi: usize,
}

/// The simulation kind of a [`WorkItem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// Roster policy `policy` over the item's trace block.
    Policy {
        /// Index into the cell's roster.
        policy: usize,
    },
    /// Omniscient lower bound over the trace block.
    LowerBound,
    /// `PeriodLB` coarse candidate `candidate` over the trace block.
    Coarse {
        /// Index into the cell's factor grid.
        candidate: usize,
    },
    /// The refine wave: depends on every `Coarse` item of its cell
    /// (smaller ids — the run loop's strict id order is the barrier),
    /// fans out over (fresh candidate × trace) internally.
    Refine,
}

/// One simulation's stats, floats as exact bit patterns. Makespans must
/// decode finite (the store's NaN/Inf-free invariant); `chunk_min` is
/// legitimately `+∞` when a run made no decisions, so chunk bounds are
/// exempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStatsBits {
    /// `RunStats::makespan` bits.
    pub makespan: u64,
    /// Failures hit.
    pub failures: u64,
    /// Decision points.
    pub decisions: u64,
    /// `RunStats::chunk_min` bits.
    pub chunk_min: u64,
    /// `RunStats::chunk_max` bits.
    pub chunk_max: u64,
}

impl TraceStatsBits {
    fn of(st: &RunStats) -> Self {
        Self {
            makespan: st.makespan.to_bits(),
            failures: st.failures,
            decisions: st.decisions,
            chunk_min: st.chunk_min.to_bits(),
            chunk_max: st.chunk_max.to_bits(),
        }
    }

    /// The makespan as a float.
    pub fn makespan_f64(&self) -> f64 {
        f64::from_bits(self.makespan)
    }
}

/// One refine-wave column: a fresh candidate's stats over all traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefineColumn {
    /// Grid index of the candidate.
    pub candidate: usize,
    /// Stats in trace order, one per trace.
    pub stats: Vec<TraceStatsBits>,
}

/// The persisted result of one completed [`WorkItem`].
#[derive(Debug, Clone, PartialEq)]
pub enum ItemPayload {
    /// A roster-policy block: build outcome plus per-trace stats
    /// (empty when the policy could not be built for the cell).
    Policy {
        /// Whether the registry built the policy.
        built: bool,
        /// The build-failure reason (empty when `built`).
        reason: String,
        /// Stats in trace order over the item's block.
        stats: Vec<TraceStatsBits>,
    },
    /// Lower-bound makespans (bits) in trace order over the block.
    LowerBound {
        /// Makespan bit patterns.
        makespans: Vec<u64>,
    },
    /// A coarse candidate block.
    Coarse {
        /// Stats in trace order over the item's block.
        stats: Vec<TraceStatsBits>,
    },
    /// The refine wave's fresh columns (possibly empty when the window
    /// only contains already-evaluated coarse candidates).
    Refine {
        /// One column per fresh candidate, in grid order.
        columns: Vec<RefineColumn>,
    },
    /// The cell's distribution could not be built; every item of the
    /// cell carries the same error and the cell commits to `Err`.
    CellFailed {
        /// Display of the build error.
        error: String,
    },
}

/// One cell's identity row in the manifest — everything its numbers
/// depend on, rendered to stable strings for fingerprinting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestCell {
    /// Scenario label (the seed root).
    pub label: String,
    /// Aggregate file stem.
    pub stem: String,
    /// Processor count.
    pub procs: u64,
    /// Trace count.
    pub traces: usize,
    /// Distribution identity: `fp:…` fingerprint when the distribution
    /// is fingerprintable, else the spec label (process-local instance
    /// ids must never be persisted).
    pub dist_id: String,
    /// Roster, as `Debug` strings (config fields included).
    pub roster: Vec<String>,
    /// Runner options, as a `Debug` string (grid floats included).
    pub options: String,
    /// Candidate grid length after dedup.
    pub grid_len: usize,
    /// Coarse-wave grid indices.
    pub coarse: Vec<usize>,
    /// Refine stride; `0` ⇒ no refine wave.
    pub refine_step: usize,
    /// Whether lower-bound items exist.
    pub lower_bound: bool,
}

/// The persisted decomposition of a study, with its content fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyManifest {
    /// Format version ([`STORE_VERSION`]).
    pub version: u64,
    /// Study id.
    pub study: String,
    /// FNV-1a 64 over the manifest serialised with this field empty,
    /// as 16 hex digits.
    pub fingerprint: String,
    /// SIMD lane width the kernels were compiled for.
    pub lanes: usize,
    /// Traces per work item.
    pub trace_block: usize,
    /// FNV-1a 64 over the committed golden files (16 hex digits;
    /// all-zero when no golden directory was configured).
    pub golden_hash: String,
    /// Per-cell identity rows.
    pub cells: Vec<ManifestCell>,
    /// Every work item, in execution (id) order.
    pub items: Vec<WorkItem>,
}

/// What a completed (sub)study reports back.
#[derive(Debug)]
pub struct StudyReport {
    /// Study id.
    pub id: String,
    /// `(stem, result)` per cell, in definition order.
    pub results: Vec<(String, Result<ScenarioResult, Error>)>,
    /// Items in the manifest.
    pub items_total: u64,
    /// Items restored from the resumed checkpoint.
    pub items_resumed: u64,
    /// Items executed by this process.
    pub items_executed: u64,
    /// Checkpoints written by this process.
    pub checkpoints_written: u64,
}

/// Outcome of [`run_study`].
#[derive(Debug)]
pub enum StudyOutcome {
    /// Ran to completion; aggregates are on disk.
    Complete(StudyReport),
    /// The `stop_after_items` hook fired (test emulation of a kill
    /// between checkpoints — nothing was written for the final chunk).
    Stopped {
        /// Completed items at the stop, including resumed ones.
        completed: u64,
        /// Total items in the manifest.
        total: u64,
    },
}

// ---------------------------------------------------------------------
// Fingerprints and the sanctioned clock
// ---------------------------------------------------------------------

/// FNV-1a 64 (no dependencies, stable across platforms).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seconds since process origin, for the `interval_seconds` trigger.
/// This is the module's *only* clock read, and it gates when snapshots
/// are written — never what they contain.
fn clock_seconds() -> f64 {
    // lint: allow(wall-clock-in-sim, transitive-nondeterminism) — the study checkpointer's single sanctioned clock site, routed through ckpt_obs::clock (see lint.toml)
    ckpt_obs::clock::now_micros() as f64 / 1e6
}

/// FNV-1a over the golden directory (file names + contents, sorted by
/// name), or 0 when unset/unreadable — a pipeline-identity component of
/// the manifest fingerprint: when the committed goldens change, every
/// older checkpoint store is stale by definition.
fn golden_hash(dir: Option<&Path>) -> u64 {
    let Some(dir) = dir else { return 0 };
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let mut names: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    names.sort();
    let mut bytes = Vec::new();
    for p in names {
        if let Some(name) = p.file_name() {
            bytes.extend_from_slice(name.to_string_lossy().as_bytes());
        }
        bytes.push(0);
        if let Ok(content) = std::fs::read(&p) {
            bytes.extend_from_slice(&content);
        }
        bytes.push(0);
    }
    fnv1a(&bytes)
}

// ---------------------------------------------------------------------
// Manifest construction
// ---------------------------------------------------------------------

/// Stable persistent distribution identity: the value fingerprint when
/// the distribution has one, else the spec label (never the
/// process-local instance id, which would poison resume).
fn dist_identity(scenario: &Scenario) -> String {
    match scenario.dist.try_build() {
        Ok(built) => match DistId::of(built.dist.as_ref()) {
            DistId::Shared(fp) => format!("fp:{fp:016x}"),
            DistId::Instance(_) => format!("label:{}", scenario.dist.label()),
        },
        Err(e) => format!("unbuildable:{e}"),
    }
}

/// Decompose a study into its manifest (typed items + fingerprint).
pub fn build_manifest(def: &StudyDef, config: &CheckpointConfig) -> StudyManifest {
    let block = config.trace_block.max(1);
    let mut cells = Vec::with_capacity(def.cells.len());
    let mut items: Vec<WorkItem> = Vec::new();
    let mut id: u64 = 0;
    let mut push = |items: &mut Vec<WorkItem>, cell, kind, lo, hi| {
        items.push(WorkItem { id, cell, kind, trace_lo: lo, trace_hi: hi });
        id += 1;
    };
    for (c, cell) in def.cells.iter().enumerate() {
        let sim_plan = plan_scenario(&cell.scenario, &cell.kinds, &cell.options);
        let blocks: Vec<(usize, usize)> = (0..sim_plan.traces)
            .step_by(block)
            .map(|lo| (lo, (lo + block).min(sim_plan.traces)))
            .collect();
        for policy in 0..sim_plan.kinds.len() {
            for &(lo, hi) in &blocks {
                push(&mut items, c, ItemKind::Policy { policy }, lo, hi);
            }
        }
        if sim_plan.lower_bound {
            for &(lo, hi) in &blocks {
                push(&mut items, c, ItemKind::LowerBound, lo, hi);
            }
        }
        for &candidate in &sim_plan.coarse {
            for &(lo, hi) in &blocks {
                push(&mut items, c, ItemKind::Coarse { candidate }, lo, hi);
            }
        }
        if sim_plan.refine_step.is_some() && !sim_plan.grid.is_empty() {
            push(&mut items, c, ItemKind::Refine, 0, sim_plan.traces);
        }
        cells.push(ManifestCell {
            label: cell.scenario.label.clone(),
            stem: cell.stem.clone(),
            procs: cell.scenario.procs,
            traces: sim_plan.traces,
            dist_id: dist_identity(&cell.scenario),
            roster: cell.kinds.iter().map(|k| format!("{k:?}")).collect(),
            options: format!("{:?}", cell.options),
            grid_len: sim_plan.grid.len(),
            coarse: sim_plan.coarse.clone(),
            refine_step: sim_plan.refine_step.unwrap_or(0),
            lower_bound: sim_plan.lower_bound,
        });
    }
    let mut manifest = StudyManifest {
        version: STORE_VERSION,
        study: def.id.clone(),
        fingerprint: String::new(),
        lanes: ckpt_math::simd::LANES,
        trace_block: block,
        golden_hash: format!("{:016x}", golden_hash(config.golden_dir.as_deref())),
        cells,
        items,
    };
    manifest.fingerprint = format!("{:016x}", fnv1a(manifest_json(&manifest).as_bytes()));
    manifest
}

// ---------------------------------------------------------------------
// JSON emission (read back by `jsonio`)
// ---------------------------------------------------------------------

fn json_str(s: &str) -> String {
    format!("\"{}\"", serde_json::escape_str(s))
}

fn stats_json(st: &TraceStatsBits) -> String {
    format!(
        "{{\"makespan\": {}, \"failures\": {}, \"decisions\": {}, \
         \"chunk_min\": {}, \"chunk_max\": {}}}",
        st.makespan, st.failures, st.decisions, st.chunk_min, st.chunk_max
    )
}

fn stats_list_json(stats: &[TraceStatsBits]) -> String {
    let inner: Vec<String> = stats.iter().map(stats_json).collect();
    format!("[{}]", inner.join(", "))
}

fn payload_json(p: &ItemPayload) -> String {
    match p {
        ItemPayload::Policy { built, reason, stats } => format!(
            "{{\"kind\": \"policy\", \"built\": {built}, \"reason\": {}, \"stats\": {}}}",
            json_str(reason),
            stats_list_json(stats)
        ),
        ItemPayload::LowerBound { makespans } => {
            let inner: Vec<String> = makespans.iter().map(u64::to_string).collect();
            format!("{{\"kind\": \"lower_bound\", \"makespans\": [{}]}}", inner.join(", "))
        }
        ItemPayload::Coarse { stats } => {
            format!("{{\"kind\": \"coarse\", \"stats\": {}}}", stats_list_json(stats))
        }
        ItemPayload::Refine { columns } => {
            let cols: Vec<String> = columns
                .iter()
                .map(|c| {
                    format!(
                        "{{\"candidate\": {}, \"stats\": {}}}",
                        c.candidate,
                        stats_list_json(&c.stats)
                    )
                })
                .collect();
            format!("{{\"kind\": \"refine\", \"columns\": [{}]}}", cols.join(", "))
        }
        ItemPayload::CellFailed { error } => {
            format!("{{\"kind\": \"cell_failed\", \"error\": {}}}", json_str(error))
        }
    }
}

fn item_json(it: &WorkItem) -> String {
    let (kind, index) = match it.kind {
        ItemKind::Policy { policy } => ("policy", policy as i64),
        ItemKind::LowerBound => ("lower_bound", -1),
        ItemKind::Coarse { candidate } => ("coarse", candidate as i64),
        ItemKind::Refine => ("refine", -1),
    };
    format!(
        "{{\"id\": {}, \"cell\": {}, \"kind\": \"{kind}\", \"index\": {index}, \
         \"trace_lo\": {}, \"trace_hi\": {}}}",
        it.id, it.cell, it.trace_lo, it.trace_hi
    )
}

/// Serialise a manifest. With `fingerprint` emptied this is also the
/// fingerprint's hash input, so the serialisation *is* the identity.
pub fn manifest_json(m: &StudyManifest) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"version\": {},\n", m.version));
    s.push_str(&format!("  \"study\": {},\n", json_str(&m.study)));
    s.push_str(&format!("  \"fingerprint\": {},\n", json_str(&m.fingerprint)));
    s.push_str(&format!("  \"lanes\": {},\n", m.lanes));
    s.push_str(&format!("  \"trace_block\": {},\n", m.trace_block));
    s.push_str(&format!("  \"golden_hash\": {},\n", json_str(&m.golden_hash)));
    s.push_str("  \"cells\": [\n");
    for (i, c) in m.cells.iter().enumerate() {
        let roster: Vec<String> = c.roster.iter().map(|r| json_str(r)).collect();
        let coarse: Vec<String> = c.coarse.iter().map(usize::to_string).collect();
        s.push_str(&format!(
            "    {{\"label\": {}, \"stem\": {}, \"procs\": {}, \"traces\": {}, \
             \"dist_id\": {}, \"roster\": [{}], \"options\": {}, \"grid_len\": {}, \
             \"coarse\": [{}], \"refine_step\": {}, \"lower_bound\": {}}}",
            json_str(&c.label),
            json_str(&c.stem),
            c.procs,
            c.traces,
            json_str(&c.dist_id),
            roster.join(", "),
            json_str(&c.options),
            c.grid_len,
            coarse.join(", "),
            c.refine_step,
            c.lower_bound,
        ));
        s.push_str(if i + 1 < m.cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"items\": [\n");
    for (i, it) in m.items.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&item_json(it));
        s.push_str(if i + 1 < m.items.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Serialise one checkpoint snapshot (full completed state).
pub fn checkpoint_json(
    study: &str,
    fingerprint: &str,
    seq: u64,
    completed: &BTreeMap<u64, ItemPayload>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"version\": {STORE_VERSION},\n"));
    s.push_str(&format!("  \"study\": {},\n", json_str(study)));
    s.push_str(&format!("  \"fingerprint\": {},\n", json_str(fingerprint)));
    s.push_str(&format!("  \"seq\": {seq},\n"));
    s.push_str("  \"completed\": [\n");
    let n = completed.len();
    for (i, (id, payload)) in completed.iter().enumerate() {
        s.push_str(&format!("    {{\"id\": {id}, \"payload\": {}}}", payload_json(payload)));
        s.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

// ---------------------------------------------------------------------
// JSON parsing (via `jsonio`)
// ---------------------------------------------------------------------

fn bad(reason: impl Into<String>) -> Error {
    Error::Checkpoint { reason: reason.into() }
}

fn get_u64(v: &Json, key: &str) -> Result<u64, Error> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| bad(format!("missing u64 `{key}`")))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, Error> {
    usize::try_from(get_u64(v, key)?).map_err(|_| bad(format!("`{key}` out of range")))
}

fn get_str(v: &Json, key: &str) -> Result<String, Error> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("missing string `{key}`")))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, Error> {
    v.get(key).and_then(Json::as_bool).ok_or_else(|| bad(format!("missing bool `{key}`")))
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], Error> {
    v.get(key).and_then(Json::as_arr).ok_or_else(|| bad(format!("missing array `{key}`")))
}

/// The finite-makespan invariant: a persisted makespan bit pattern must
/// decode to a finite float (NaN/Inf would silently poison downstream
/// means and golden bytes; chunk bounds are exempt — `chunk_min` is
/// `+∞` on decision-free runs by construction).
fn check_finite_makespan(bits: u64) -> Result<u64, Error> {
    if f64::from_bits(bits).is_finite() {
        Ok(bits)
    } else {
        Err(bad(format!("non-finite makespan bits {bits:#018x}")))
    }
}

fn parse_stats(v: &Json) -> Result<TraceStatsBits, Error> {
    Ok(TraceStatsBits {
        makespan: check_finite_makespan(get_u64(v, "makespan")?)?,
        failures: get_u64(v, "failures")?,
        decisions: get_u64(v, "decisions")?,
        chunk_min: get_u64(v, "chunk_min")?,
        chunk_max: get_u64(v, "chunk_max")?,
    })
}

fn parse_stats_list(v: &Json, key: &str) -> Result<Vec<TraceStatsBits>, Error> {
    get_arr(v, key)?.iter().map(parse_stats).collect()
}

fn parse_payload(v: &Json) -> Result<ItemPayload, Error> {
    match get_str(v, "kind")?.as_str() {
        "policy" => Ok(ItemPayload::Policy {
            built: get_bool(v, "built")?,
            reason: get_str(v, "reason")?,
            stats: parse_stats_list(v, "stats")?,
        }),
        "lower_bound" => Ok(ItemPayload::LowerBound {
            makespans: get_arr(v, "makespans")?
                .iter()
                .map(|m| {
                    m.as_u64()
                        .ok_or_else(|| bad("bad lower-bound bits"))
                        .and_then(check_finite_makespan)
                })
                .collect::<Result<_, _>>()?,
        }),
        "coarse" => Ok(ItemPayload::Coarse { stats: parse_stats_list(v, "stats")? }),
        "refine" => Ok(ItemPayload::Refine {
            columns: get_arr(v, "columns")?
                .iter()
                .map(|c| {
                    Ok(RefineColumn {
                        candidate: get_usize(c, "candidate")?,
                        stats: parse_stats_list(c, "stats")?,
                    })
                })
                .collect::<Result<_, Error>>()?,
        }),
        "cell_failed" => Ok(ItemPayload::CellFailed { error: get_str(v, "error")? }),
        other => Err(bad(format!("unknown payload kind `{other}`"))),
    }
}

fn parse_item(v: &Json) -> Result<WorkItem, Error> {
    let kind = match get_str(v, "kind")?.as_str() {
        "policy" => ItemKind::Policy { policy: get_usize(v, "index")? },
        "lower_bound" => ItemKind::LowerBound,
        "coarse" => ItemKind::Coarse { candidate: get_usize(v, "index")? },
        "refine" => ItemKind::Refine,
        other => return Err(bad(format!("unknown item kind `{other}`"))),
    };
    Ok(WorkItem {
        id: get_u64(v, "id")?,
        cell: get_usize(v, "cell")?,
        kind,
        trace_lo: get_usize(v, "trace_lo")?,
        trace_hi: get_usize(v, "trace_hi")?,
    })
}

/// Parse a manifest document back to its typed form.
///
/// # Errors
/// [`Error::Checkpoint`] on malformed JSON or missing fields.
pub fn parse_manifest(src: &str) -> Result<StudyManifest, Error> {
    let v = jsonio::parse(src).map_err(|e| bad(format!("manifest: {e}")))?;
    Ok(StudyManifest {
        version: get_u64(&v, "version")?,
        study: get_str(&v, "study")?,
        fingerprint: get_str(&v, "fingerprint")?,
        lanes: get_usize(&v, "lanes")?,
        trace_block: get_usize(&v, "trace_block")?,
        golden_hash: get_str(&v, "golden_hash")?,
        cells: get_arr(&v, "cells")?
            .iter()
            .map(|c| {
                Ok(ManifestCell {
                    label: get_str(c, "label")?,
                    stem: get_str(c, "stem")?,
                    procs: get_u64(c, "procs")?,
                    traces: get_usize(c, "traces")?,
                    dist_id: get_str(c, "dist_id")?,
                    roster: get_arr(c, "roster")?
                        .iter()
                        .map(|r| {
                            r.as_str().map(str::to_string).ok_or_else(|| bad("bad roster"))
                        })
                        .collect::<Result<_, _>>()?,
                    options: get_str(c, "options")?,
                    grid_len: get_usize(c, "grid_len")?,
                    coarse: get_arr(c, "coarse")?
                        .iter()
                        .map(|x| {
                            x.as_u64()
                                .and_then(|u| usize::try_from(u).ok())
                                .ok_or_else(|| bad("bad coarse index"))
                        })
                        .collect::<Result<_, _>>()?,
                    refine_step: get_usize(c, "refine_step")?,
                    lower_bound: get_bool(c, "lower_bound")?,
                })
            })
            .collect::<Result<_, Error>>()?,
        items: get_arr(&v, "items")?.iter().map(parse_item).collect::<Result<_, _>>()?,
    })
}

/// A parsed checkpoint snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointFile {
    /// Format version.
    pub version: u64,
    /// Owning study id.
    pub study: String,
    /// Manifest fingerprint the snapshot was written against.
    pub fingerprint: String,
    /// Monotonic snapshot sequence number.
    pub seq: u64,
    /// Completed payloads by item id.
    pub completed: BTreeMap<u64, ItemPayload>,
}

/// Parse a checkpoint document, enforcing the finite-makespan invariant.
///
/// # Errors
/// [`Error::Checkpoint`] on malformed JSON, missing fields, or a
/// non-finite persisted makespan.
pub fn parse_checkpoint(src: &str) -> Result<CheckpointFile, Error> {
    let v = jsonio::parse(src).map_err(|e| bad(format!("checkpoint: {e}")))?;
    let mut completed = BTreeMap::new();
    for entry in get_arr(&v, "completed")? {
        let id = get_u64(entry, "id")?;
        let payload = entry.get("payload").ok_or_else(|| bad("missing payload"))?;
        completed.insert(id, parse_payload(payload)?);
    }
    Ok(CheckpointFile {
        version: get_u64(&v, "version")?,
        study: get_str(&v, "study")?,
        fingerprint: get_str(&v, "fingerprint")?,
        seq: get_u64(&v, "seq")?,
        completed,
    })
}

// ---------------------------------------------------------------------
// Store layout and atomic I/O
// ---------------------------------------------------------------------

fn study_dir(config: &CheckpointConfig, id: &str) -> PathBuf {
    config.root.join(id)
}

fn ckpt_name(seq: u64) -> String {
    format!("ckpt-{seq:06}.json")
}

/// Parse `ckpt-NNNNNN.json` back to its sequence number.
fn ckpt_seq(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.strip_suffix(".json")?.parse().ok()
}

/// Write-then-rename so readers (and kills) never observe a torn file.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> Result<(), Error> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)
        .map_err(|e| bad(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| bad(format!("rename {}: {e}", path.display())))
}

/// Checkpoint files of a study dir as `(seq, path)`, ascending.
fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut out: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            let seq = ckpt_seq(path.file_name()?.to_str()?)?;
            Some((seq, path))
        })
        .collect();
    out.sort();
    out
}

/// Drop all but the newest `keep` checkpoint files.
fn prune_checkpoints(dir: &Path, keep: usize) {
    let files = list_checkpoints(dir);
    let excess = files.len().saturating_sub(keep.max(1));
    for (_, path) in files.into_iter().take(excess) {
        let _ = std::fs::remove_file(path);
    }
}

fn write_status(dir: &Path, status: &str) -> Result<(), Error> {
    write_atomic(&dir.join("status"), &format!("{status}\n"))
}

/// Best-effort flight-recorder dump into the store. Diagnostic only: a
/// failed write must never fail the study. Without the `obs` feature
/// (or outside a session) this still writes a valid `recording: false`
/// document, so store tooling never has to special-case its absence.
fn write_flightrec(dir: &Path) {
    let _ = write_atomic(&dir.join("flightrec.json"), &ckpt_obs::flight_dump_json());
}

/// Resets the poisoned-wave flight-dump destination when the run loop
/// exits — normally or by unwind — so a later wave outside any study
/// cannot write into a stale store.
struct FlightDumpGuard;

impl Drop for FlightDumpGuard {
    fn drop(&mut self) {
        crate::steal::set_flight_dump(None);
    }
}

// ---------------------------------------------------------------------
// Item execution
// ---------------------------------------------------------------------

/// Per-cell execution context, built once per process.
struct CellCtx {
    sim_plan: SimPlan,
    built: Result<BuiltDist, Error>,
    spec: JobSpec,
}

impl CellCtx {
    fn build(cell: &StudyCell) -> Self {
        Self {
            sim_plan: plan_scenario(&cell.scenario, &cell.kinds, &cell.options),
            built: cell.scenario.dist.try_build(),
            spec: cell.scenario.job_spec(),
        }
    }
}

/// Simulate one candidate factor on one trace — the exact construction
/// [`crate::exec::search_candidates`] performs per task.
fn simulate_candidate(
    ctx: &CellCtx,
    built: &BuiltDist,
    scenario: &Scenario,
    factor: f64,
    trace: usize,
) -> TraceStatsBits {
    let ct = TraceCache::global().get_or_generate(scenario, built, trace);
    let base = crate::registry::optexp_base(&ctx.spec, built.proc_mtbf);
    let policy = base.as_fixed_period().scaled(factor);
    TraceStatsBits::of(&crate::exec::simulate_on(&ctx.spec, &policy, &ct, ctx.sim_plan.sim))
}

/// The coarse columns of one cell, assembled from completed payloads in
/// trace order: `columns[candidate] = per-trace makespans`. Shared by
/// the refine executor (incumbent) and the commit layer (final winner).
pub(crate) fn assemble_coarse_columns(
    sim_plan: &SimPlan,
    cell_items: &[WorkItem],
    completed: &BTreeMap<u64, ItemPayload>,
) -> Vec<Option<Vec<f64>>> {
    let mut columns: Vec<Option<Vec<f64>>> = vec![None; sim_plan.grid.len()];
    for item in cell_items {
        let ItemKind::Coarse { candidate } = item.kind else { continue };
        let Some(ItemPayload::Coarse { stats }) = completed.get(&item.id) else { continue };
        let col =
            columns[candidate].get_or_insert_with(|| vec![0.0; sim_plan.traces]);
        for (k, st) in stats.iter().enumerate() {
            col[item.trace_lo + k] = st.makespan_f64();
        }
    }
    columns
}

/// Mean per candidate, summed in trace order — the executor's exact
/// reduction (`col.iter().sum::<f64>() / len`).
fn column_means(columns: &[Option<Vec<f64>>]) -> Vec<Option<f64>> {
    columns
        .iter()
        .map(|c| c.as_ref().map(|col| col.iter().sum::<f64>() / col.len().max(1) as f64))
        .collect()
}

/// Execute one work item. Pure in the payload: the result depends only
/// on the manifest position and (for `Refine`) on the cell's completed
/// coarse payloads, never on wall-clock, thread count, or process
/// history.
fn execute_item(
    def: &StudyDef,
    ctxs: &[CellCtx],
    cell_items: &[Vec<WorkItem>],
    item: &WorkItem,
    completed: &BTreeMap<u64, ItemPayload>,
) -> ItemPayload {
    let _span = ckpt_obs::task_span("study.item", item.id);
    let cell = &def.cells[item.cell];
    let ctx = &ctxs[item.cell];
    let built = match &ctx.built {
        Ok(b) => b,
        Err(e) => return ItemPayload::CellFailed { error: e.to_string() },
    };
    match item.kind {
        ItemKind::Policy { policy } => {
            match crate::registry::build_policy(&ctx.sim_plan.kinds[policy], &cell.scenario, built)
            {
                Ok(p) => {
                    let stats: Vec<TraceStatsBits> = (item.trace_lo..item.trace_hi)
                        .into_par_iter()
                        .map(|t| {
                            let ct =
                                TraceCache::global().get_or_generate(&cell.scenario, built, t);
                            TraceStatsBits::of(&crate::exec::simulate_on(
                                &ctx.spec,
                                p.as_ref(),
                                &ct,
                                ctx.sim_plan.sim,
                            ))
                        })
                        .collect();
                    ItemPayload::Policy { built: true, reason: String::new(), stats }
                }
                Err(e) => {
                    ItemPayload::Policy { built: false, reason: e.to_string(), stats: Vec::new() }
                }
            }
        }
        ItemKind::LowerBound => {
            let makespans: Vec<u64> = (item.trace_lo..item.trace_hi)
                .into_par_iter()
                .map(|t| {
                    let ct = TraceCache::global().get_or_generate(&cell.scenario, built, t);
                    lower_bound_makespan(&ctx.spec, &ct.traces).makespan.to_bits()
                })
                .collect();
            ItemPayload::LowerBound { makespans }
        }
        ItemKind::Coarse { candidate } => {
            let factor = ctx.sim_plan.grid[candidate];
            let stats: Vec<TraceStatsBits> = (item.trace_lo..item.trace_hi)
                .into_par_iter()
                .map(|t| simulate_candidate(ctx, built, &cell.scenario, factor, t))
                .collect();
            ItemPayload::Coarse { stats }
        }
        ItemKind::Refine => {
            // Incumbent from the cell's (already completed — strict id
            // order) coarse columns, exactly as the live executor picks
            // it between its waves.
            let columns =
                assemble_coarse_columns(&ctx.sim_plan, &cell_items[item.cell], completed);
            let means = column_means(&columns);
            let Some(incumbent) = plan::winner(&means) else {
                return ItemPayload::Refine { columns: Vec::new() };
            };
            // Same fresh filter as the live refine wave: candidates the
            // coarse pass already evaluated are not re-simulated (their
            // count feeds `candidate_sims`, so it must match too).
            let fresh: Vec<usize> = ctx
                .sim_plan
                .refine_window(incumbent)
                .filter(|i| !ctx.sim_plan.coarse.contains(i))
                .collect();
            let pairs: Vec<(usize, usize)> = fresh
                .iter()
                .flat_map(|&c| (0..ctx.sim_plan.traces).map(move |t| (c, t)))
                .collect();
            let flat: Vec<TraceStatsBits> = pairs
                .par_iter()
                .map(|&(c, t)| {
                    simulate_candidate(ctx, built, &cell.scenario, ctx.sim_plan.grid[c], t)
                })
                .collect();
            let columns = fresh
                .iter()
                .enumerate()
                .map(|(k, &candidate)| RefineColumn {
                    candidate,
                    stats: flat[k * ctx.sim_plan.traces..(k + 1) * ctx.sim_plan.traces].to_vec(),
                })
                .collect();
            ItemPayload::Refine { columns }
        }
    }
}

// ---------------------------------------------------------------------
// The run loop
// ---------------------------------------------------------------------

/// Group pending items into execution chunks: consecutive runs of up to
/// [`CHUNK_ITEMS`] independent items, with every `Refine` item alone in
/// its chunk (the chunk boundary is the barrier that guarantees its
/// cell's coarse items are merged before it runs).
fn chunk_pending(pending: &[WorkItem]) -> Vec<Vec<WorkItem>> {
    let mut chunks: Vec<Vec<WorkItem>> = Vec::new();
    let mut current: Vec<WorkItem> = Vec::new();
    for &item in pending {
        if matches!(item.kind, ItemKind::Refine) {
            if !current.is_empty() {
                chunks.push(std::mem::take(&mut current));
            }
            chunks.push(vec![item]);
            continue;
        }
        current.push(item);
        if current.len() >= CHUNK_ITEMS {
            chunks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// SIGKILL our own process (CLI `--kill-at` hook): the real thing, so
/// no destructor, no flush, no final checkpoint runs — exactly the
/// failure the resume path claims to survive.
fn kill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
    // SIGKILL cannot be handled; reaching here means `kill` was
    // unavailable. Abort still skips destructors and exit handlers.
    std::process::abort();
}

/// Load the newest usable snapshot of `dir`. Corrupt or version-skewed
/// files are skipped (counted as rejected); a *fingerprint* mismatch is
/// a hard error — the store describes different numbers than `expect`
/// and must not be silently reused.
fn load_latest(dir: &Path, study: &str, expect: &str) -> Result<Option<CheckpointFile>, Error> {
    let mut files = list_checkpoints(dir);
    files.reverse();
    for (_, path) in files {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                ckpt_obs::counter_add("study.checkpoint_rejected", 1);
                continue;
            }
        };
        let ckpt = match parse_checkpoint(&src) {
            Ok(c) => c,
            Err(_) => {
                ckpt_obs::counter_add("study.checkpoint_rejected", 1);
                continue;
            }
        };
        if ckpt.version != STORE_VERSION || ckpt.study != study {
            ckpt_obs::counter_add("study.checkpoint_rejected", 1);
            continue;
        }
        if ckpt.fingerprint != expect {
            ckpt_obs::counter_add("study.checkpoint_rejected", 1);
            return Err(bad(format!(
                "stale checkpoint store for study `{study}`: snapshot fingerprint {} \
                 does not match the rebuilt manifest fingerprint {expect} \
                 ({}) — refusing to resume",
                ckpt.fingerprint,
                path.display()
            )));
        }
        return Ok(Some(ckpt));
    }
    Ok(None)
}

/// Run (or resume) a study through the checkpoint store.
///
/// Fresh runs (`resume == false`) refuse to overwrite an existing study
/// directory. Resumes (`resume == true`) require the directory, rebuild
/// the manifest from `def`, validate fingerprints, restore the newest
/// snapshot's completed set, and execute only what is missing —
/// in-progress work of the killed process is implicitly back in
/// pending, completed work is replayed by payload, never re-simulated.
///
/// # Errors
/// [`Error::Checkpoint`] for store-level failures (I/O, corrupt or
/// stale snapshots, id collisions). Cell-level failures are values in
/// the returned report, mirroring [`Study::run_all`](crate::study::Study::run_all).
pub fn run_study(
    def: &StudyDef,
    config: &CheckpointConfig,
    resume: bool,
) -> Result<StudyOutcome, Error> {
    let manifest = build_manifest(def, config);
    let dir = study_dir(config, &def.id);
    let mut completed: BTreeMap<u64, ItemPayload> = BTreeMap::new();
    let mut next_seq: u64 = 0;

    if resume {
        let _span = ckpt_obs::span("study.resume");
        if !dir.is_dir() {
            return Err(bad(format!("no study `{}` under {}", def.id, config.root.display())));
        }
        if let Ok(src) = std::fs::read_to_string(dir.join("manifest.json")) {
            let on_disk = parse_manifest(&src)?;
            if on_disk.fingerprint != manifest.fingerprint {
                ckpt_obs::counter_add("study.checkpoint_rejected", 1);
                return Err(bad(format!(
                    "stale manifest for study `{}`: on-disk fingerprint {} does not \
                     match the rebuilt fingerprint {} — the store describes a \
                     different study; refusing to resume",
                    def.id, on_disk.fingerprint, manifest.fingerprint
                )));
            }
        }
        if let Some(ckpt) = load_latest(&dir, &def.id, &manifest.fingerprint)? {
            next_seq = ckpt.seq + 1;
            completed = ckpt.completed;
        }
        // Payloads for items the manifest does not know are dropped
        // rather than trusted (defensive; fingerprint equality already
        // implies the same item set).
        let known: std::collections::BTreeSet<u64> =
            manifest.items.iter().map(|i| i.id).collect();
        completed.retain(|id, _| known.contains(id));
    } else {
        if dir.join("manifest.json").exists() {
            return Err(bad(format!(
                "study `{}` already exists under {} — resume it or pick a new id",
                def.id,
                config.root.display()
            )));
        }
        std::fs::create_dir_all(&dir)
            .map_err(|e| bad(format!("create {}: {e}", dir.display())))?;
        write_atomic(&dir.join("manifest.json"), &manifest_json(&manifest))?;
    }

    // The store directory exists either way now: point the poisoned-wave
    // flight dump at it for the duration of the run (the guard resets it
    // on every exit path, unwinds included).
    crate::steal::set_flight_dump(Some(dir.join("flightrec.json")));
    let _flight_guard = FlightDumpGuard;

    let items_total = manifest.items.len() as u64;
    let items_resumed = completed.len() as u64;
    ckpt_obs::counter_add("study.items_resumed", items_resumed);

    let ctxs: Vec<CellCtx> = def.cells.iter().map(CellCtx::build).collect();
    let mut cell_items: Vec<Vec<WorkItem>> = vec![Vec::new(); def.cells.len()];
    for item in &manifest.items {
        cell_items[item.cell].push(*item);
    }
    let pending: Vec<WorkItem> = manifest
        .items
        .iter()
        .filter(|i| !completed.contains_key(&i.id))
        .copied()
        .collect();

    let mut executed: u64 = 0;
    let mut checkpoints_written: u64 = 0;
    let mut since_ckpt: u64 = 0;
    let mut last_ckpt = clock_seconds();
    write_status(&dir, &format!("running {}/{items_total}", completed.len()))?;
    let mut progress = crate::progress::StudyProgress::new(
        &def.id,
        &manifest.items,
        |id| completed.contains_key(&id),
        config.progress,
    );
    progress.write(&dir)?;
    write_flightrec(&dir);

    for chunk in chunk_pending(&pending) {
        progress.begin_chunk(&chunk);
        progress.console_tick(false);
        let _ = progress.write(&dir);
        // Drain the chunk through the work-stealing executor: items are
        // independent within a chunk, DP policy items are the long
        // poles (seeded into the worker deques), and the manifest-ID
        // pairing makes the `completed` insertion order-free — the map
        // is keyed, and `reduce::commit` folds in ID order anyway.
        let is_heavy = |item: &WorkItem| match item.kind {
            ItemKind::Policy { policy } => {
                crate::exec::heavy_policy_kind(&ctxs[item.cell].sim_plan.kinds[policy])
            }
            _ => false,
        };
        let (outs, _stats) = crate::steal::run_wave(
            &chunk,
            crate::steal::workers(),
            is_heavy,
            |_, item| (item.id, execute_item(def, &ctxs, &cell_items, item, &completed)),
        );
        for (id, payload) in outs {
            completed.insert(id, payload);
        }
        executed += chunk.len() as u64;
        since_ckpt += chunk.len() as u64;
        ckpt_obs::counter_add("study.items_executed", chunk.len() as u64);
        progress.finish_chunk(&chunk);

        if let Some(frac) = config.kill_at {
            if completed.len() as f64 >= frac * items_total as f64 {
                kill_self();
            }
        }
        if let Some(stop) = config.stop_after_items {
            if executed >= stop {
                // Emulated kill between snapshots: leave the store
                // exactly as the last checkpoint wrote it.
                return Ok(StudyOutcome::Stopped {
                    completed: completed.len() as u64,
                    total: items_total,
                });
            }
        }
        let due_items = since_ckpt >= config.interval_items.max(1);
        let due_time = clock_seconds() - last_ckpt >= config.interval_seconds;
        if due_items || due_time {
            let _span = ckpt_obs::span("study.checkpoint_write");
            write_atomic(
                &dir.join(ckpt_name(next_seq)),
                &checkpoint_json(&def.id, &manifest.fingerprint, next_seq, &completed),
            )?;
            ckpt_obs::counter_add("study.checkpoint_writes", 1);
            next_seq += 1;
            checkpoints_written += 1;
            since_ckpt = 0;
            last_ckpt = clock_seconds();
            prune_checkpoints(&dir, config.max_checkpoints);
            write_status(&dir, &format!("running {}/{items_total}", completed.len()))?;
            // The checkpoint writer committed: dump the flight ring and
            // refresh the progress snapshot next to it.
            write_flightrec(&dir);
            progress.write(&dir)?;
        }
    }

    // Completion: final snapshot first (a crash between here and the
    // aggregates resumes into an all-complete study and just re-commits),
    // then the deterministic commit of every cell in definition order.
    {
        let _span = ckpt_obs::span("study.checkpoint_write");
        write_atomic(
            &dir.join(ckpt_name(next_seq)),
            &checkpoint_json(&def.id, &manifest.fingerprint, next_seq, &completed),
        )?;
        ckpt_obs::counter_add("study.checkpoint_writes", 1);
        checkpoints_written += 1;
        prune_checkpoints(&dir, config.max_checkpoints);
        write_flightrec(&dir);
        progress.write(&dir)?;
        progress.console_tick(true);
    }

    let agg_dir = dir.join("aggregate");
    std::fs::create_dir_all(&agg_dir)
        .map_err(|e| bad(format!("create {}: {e}", agg_dir.display())))?;
    let mut results = Vec::with_capacity(def.cells.len());
    for (c, cell) in def.cells.iter().enumerate() {
        let result = crate::reduce::commit(
            &cell.scenario,
            &ctxs[c].sim_plan,
            &cell_items[c],
            &completed,
        );
        if let Ok(r) = &result {
            write_atomic(&agg_dir.join(format!("{}.json", cell.stem)), &crate::golden::golden_json(r))?;
        }
        results.push((cell.stem.clone(), result));
    }

    if !config.keep_final {
        for (_, path) in list_checkpoints(&dir) {
            let _ = std::fs::remove_file(path);
        }
    }
    write_status(&dir, &format!("done {items_total}/{items_total}"))?;

    Ok(StudyOutcome::Complete(StudyReport {
        id: def.id.clone(),
        results,
        items_total,
        items_resumed,
        items_executed: executed,
        checkpoints_written,
    }))
}

// ---------------------------------------------------------------------
// `study ls` / `study gc`
// ---------------------------------------------------------------------

/// One row of `study ls`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudySummary {
    /// Study id (directory name).
    pub id: String,
    /// Contents of the status file (`running N/M`, `done N/N`), or
    /// `"unknown"`.
    pub status: String,
    /// Checkpoint files on disk.
    pub checkpoints: usize,
    /// Aggregate files on disk.
    pub aggregates: usize,
    /// Items in the manifest (0 when unreadable).
    pub items: usize,
}

/// Enumerate the studies under `root`, sorted by id.
///
/// # Errors
/// Never fails on per-study damage (damaged studies list as
/// `"unknown"`); an unreadable root yields an empty list.
pub fn list_studies(root: &Path) -> Vec<StudySummary> {
    let Ok(entries) = std::fs::read_dir(root) else { return Vec::new() };
    let mut out: Vec<StudySummary> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            if !path.is_dir() {
                return None;
            }
            let id = path.file_name()?.to_str()?.to_string();
            let status = std::fs::read_to_string(path.join("status"))
                .map(|s| s.trim().to_string())
                .unwrap_or_else(|_| "unknown".to_string());
            let items = std::fs::read_to_string(path.join("manifest.json"))
                .ok()
                .and_then(|s| parse_manifest(&s).ok())
                .map_or(0, |m| m.items.len());
            let aggregates = std::fs::read_dir(path.join("aggregate"))
                .map(|d| d.filter_map(Result::ok).count())
                .unwrap_or(0);
            Some(StudySummary {
                id,
                status,
                checkpoints: list_checkpoints(&path).len(),
                aggregates,
                items,
            })
        })
        .collect();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

/// Garbage-collect the store: prune every study to `max_checkpoints`
/// snapshots; `purge` removes one study directory entirely. Returns a
/// human-readable action log.
///
/// # Errors
/// [`Error::Checkpoint`] when the purge target cannot be removed.
pub fn gc_studies(
    root: &Path,
    max_checkpoints: usize,
    purge: Option<&str>,
) -> Result<Vec<String>, Error> {
    let mut actions = Vec::new();
    if let Some(id) = purge {
        let dir = root.join(id);
        if dir.is_dir() {
            std::fs::remove_dir_all(&dir)
                .map_err(|e| bad(format!("purge {}: {e}", dir.display())))?;
            actions.push(format!("purged {id}"));
        } else {
            actions.push(format!("no study `{id}` to purge"));
        }
    }
    for summary in list_studies(root) {
        if Some(summary.id.as_str()) == purge {
            continue;
        }
        let before = summary.checkpoints;
        prune_checkpoints(&root.join(&summary.id), max_checkpoints);
        let after = list_checkpoints(&root.join(&summary.id)).len();
        if after < before {
            actions.push(format!("{}: pruned {} checkpoint(s)", summary.id, before - after));
        }
    }
    Ok(actions)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::runner::PeriodSearch;
    use crate::scenario::DistSpec;
    use ckpt_sim::SimOptions;

    fn tiny_def(id: &str) -> StudyDef {
        let mut s =
            Scenario::single_processor(DistSpec::Exponential { mtbf: 6.0 * 3_600.0 }, 4);
        s.total_work = 12.0 * 3_600.0;
        let options = RunnerOptions {
            lower_bound: true,
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            period_search: PeriodSearch::Full,
            sim: SimOptions::default(),
        };
        StudyDef::new(id, [(s, vec![PolicyKind::Young, PolicyKind::OptExp], options)])
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values of FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn manifest_decomposes_and_fingerprint_is_stable() {
        let def = tiny_def("t");
        let config = CheckpointConfig { trace_block: 2, ..CheckpointConfig::default() };
        let a = build_manifest(&def, &config);
        let b = build_manifest(&def, &config);
        assert_eq!(a, b, "manifest build must be deterministic");
        // 2 policies × 2 blocks + 2 LB blocks + 3 candidates × 2 blocks,
        // full search ⇒ no refine item.
        assert_eq!(a.items.len(), 2 * 2 + 2 + 3 * 2);
        assert!(a.items.iter().all(|i| !matches!(i.kind, ItemKind::Refine)));
        assert_eq!(a.lanes, ckpt_math::simd::LANES);
        // Ids are dense and ordered.
        for (k, item) in a.items.iter().enumerate() {
            assert_eq!(item.id, k as u64);
        }
    }

    #[test]
    fn fingerprint_tracks_content() {
        let config = CheckpointConfig::default();
        let a = build_manifest(&tiny_def("t"), &config);
        // Different roster ⇒ different fingerprint.
        let mut def = tiny_def("t");
        def.cells[0].kinds.pop();
        let b = build_manifest(&def, &config);
        assert_ne!(a.fingerprint, b.fingerprint);
        // Different trace block ⇒ different fingerprint.
        let c = build_manifest(
            &tiny_def("t"),
            &CheckpointConfig { trace_block: 2, ..config },
        );
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn stems_deduplicate() {
        let mut s =
            Scenario::single_processor(DistSpec::Exponential { mtbf: 3_600.0 }, 2);
        s.total_work = 3_600.0;
        let mut s2 = s.clone();
        s2.procs = 2;
        let s3 = s.clone();
        let opts = RunnerOptions { period_lb: None, ..RunnerOptions::default() };
        let def = StudyDef::new(
            "d",
            [
                (s, vec![PolicyKind::Young], opts.clone()),
                (s2, vec![PolicyKind::Young], opts.clone()),
                (s3, vec![PolicyKind::Young], opts),
            ],
        );
        let stems: Vec<&str> = def.cells.iter().map(|c| c.stem.as_str()).collect();
        assert_eq!(stems.len(), 3);
        assert!(stems[1].ends_with("-p2"));
        for (i, a) in stems.iter().enumerate() {
            for b in &stems[i + 1..] {
                assert_ne!(a, b, "stems must be unique");
            }
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let def = tiny_def("rt");
        let m = build_manifest(&def, &CheckpointConfig::default());
        let parsed = parse_manifest(&manifest_json(&m)).expect("parses");
        assert_eq!(parsed, m);
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_non_finite() {
        let mut completed = BTreeMap::new();
        completed.insert(
            3,
            ItemPayload::Policy {
                built: true,
                reason: String::new(),
                stats: vec![TraceStatsBits {
                    makespan: 1234.5f64.to_bits(),
                    failures: 2,
                    decisions: 7,
                    chunk_min: f64::INFINITY.to_bits(),
                    chunk_max: 0.0f64.to_bits(),
                }],
            },
        );
        completed.insert(4, ItemPayload::LowerBound { makespans: vec![99.25f64.to_bits()] });
        completed.insert(
            5,
            ItemPayload::Refine {
                columns: vec![RefineColumn {
                    candidate: 2,
                    stats: vec![TraceStatsBits {
                        makespan: 1.0f64.to_bits(),
                        failures: 0,
                        decisions: 1,
                        chunk_min: 1.0f64.to_bits(),
                        chunk_max: 1.0f64.to_bits(),
                    }],
                }],
            },
        );
        completed.insert(6, ItemPayload::CellFailed { error: "distribution: boom".into() });
        let src = checkpoint_json("s", "00ff", 7, &completed);
        let parsed = parse_checkpoint(&src).expect("parses");
        assert_eq!(parsed.seq, 7);
        assert_eq!(parsed.completed, completed);

        // A NaN makespan violates the store invariant (chunk_min may be
        // +inf — it round-tripped above).
        completed.insert(
            7,
            ItemPayload::LowerBound { makespans: vec![f64::NAN.to_bits()] },
        );
        let bad_src = checkpoint_json("s", "00ff", 8, &completed);
        let err = parse_checkpoint(&bad_src).expect_err("NaN must be rejected");
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn chunks_isolate_refine_items() {
        let mk = |id, kind| WorkItem { id, cell: 0, kind, trace_lo: 0, trace_hi: 1 };
        let items: Vec<WorkItem> = (0..20)
            .map(|i| {
                if i == 9 || i == 19 {
                    mk(i, ItemKind::Refine)
                } else {
                    mk(i, ItemKind::Coarse { candidate: i as usize })
                }
            })
            .collect();
        let chunks = chunk_pending(&items);
        let mut seen = 0u64;
        for chunk in &chunks {
            assert!(chunk.len() <= CHUNK_ITEMS);
            if chunk.iter().any(|i| matches!(i.kind, ItemKind::Refine)) {
                assert_eq!(chunk.len(), 1, "refine items run alone");
            }
            for item in chunk {
                assert_eq!(item.id, seen, "chunks preserve id order");
                seen += 1;
            }
        }
        assert_eq!(seen, 20);
    }

    #[test]
    fn ckpt_names_round_trip_and_retention_prunes() {
        assert_eq!(ckpt_seq(&ckpt_name(42)), Some(42));
        assert_eq!(ckpt_seq("manifest.json"), None);
        let dir = std::env::temp_dir()
            .join(format!("ckpt-retention-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seq in 0..5 {
            std::fs::write(dir.join(ckpt_name(seq)), "{}").unwrap();
        }
        prune_checkpoints(&dir, 2);
        let left: Vec<u64> = list_checkpoints(&dir).into_iter().map(|(s, _)| s).collect();
        assert_eq!(left, [3, 4], "newest snapshots survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_run_refuses_existing_study_and_resume_requires_one() {
        let root = std::env::temp_dir()
            .join(format!("ckpt-store-guard-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let def = tiny_def("guard");
        let config = CheckpointConfig {
            root: root.clone(),
            interval_seconds: 1e9,
            ..CheckpointConfig::default()
        };
        let missing = run_study(&def, &config, true).expect_err("nothing to resume");
        assert!(missing.to_string().contains("no study"), "{missing}");
        match run_study(&def, &config, false).expect("fresh run") {
            StudyOutcome::Complete(report) => {
                assert_eq!(report.items_resumed, 0);
                assert_eq!(report.items_executed, report.items_total);
                assert!(report.results[0].1.is_ok());
            }
            StudyOutcome::Stopped { .. } => panic!("no stop hook configured"),
        }
        let again = run_study(&def, &config, false).expect_err("id collision");
        assert!(again.to_string().contains("already exists"), "{again}");
        // Resuming a completed study replays everything from the final
        // snapshot and re-commits identical aggregates.
        let agg = root.join("guard/aggregate").join(format!("{}.json", def.cells[0].stem));
        let before = std::fs::read_to_string(&agg).expect("aggregate written");
        match run_study(&def, &config, true).expect("resume complete study") {
            StudyOutcome::Complete(report) => {
                assert_eq!(report.items_resumed, report.items_total);
                assert_eq!(report.items_executed, 0);
            }
            StudyOutcome::Stopped { .. } => panic!("no stop hook configured"),
        }
        assert_eq!(std::fs::read_to_string(&agg).expect("rewritten"), before);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn ls_and_gc_report_and_prune() {
        let root = std::env::temp_dir()
            .join(format!("ckpt-store-lsgc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let def = tiny_def("lsgc");
        let config = CheckpointConfig {
            root: root.clone(),
            interval_items: 1,
            interval_seconds: 1e9,
            max_checkpoints: 10,
            ..CheckpointConfig::default()
        };
        run_study(&def, &config, false).expect("runs");
        let ls = list_studies(&root);
        assert_eq!(ls.len(), 1);
        assert_eq!(ls[0].id, "lsgc");
        assert!(ls[0].status.starts_with("done"), "{}", ls[0].status);
        assert!(ls[0].checkpoints > 1);
        assert_eq!(ls[0].aggregates, 1);
        assert!(ls[0].items > 0);
        let actions = gc_studies(&root, 1, None).expect("gc");
        assert_eq!(actions.len(), 1, "{actions:?}");
        assert_eq!(list_checkpoints(&root.join("lsgc")).len(), 1);
        let actions = gc_studies(&root, 1, Some("lsgc")).expect("purge");
        assert!(actions[0].contains("purged"), "{actions:?}");
        assert!(list_studies(&root).is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }
}
