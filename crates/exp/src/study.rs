//! Batch experiment API: run many scenarios with one roster and one set
//! of options.
//!
//! A [`Study`] is the declarative front door to the plan → execute →
//! reduce pipeline: configure the roster and runner options once, then
//! [`Study::run`] one cell or [`Study::run_all`] a batch. Scenario-level
//! failures come back as values (`Result` per cell), so one malformed
//! cell cannot abort a sweep; per-policy failures stay inside each
//! [`ScenarioResult`] as error rows, exactly as in
//! [`run_scenario`](crate::runner::run_scenario).
//!
//! **Where the parallelism lives.** A study runs its cells
//! *sequentially*, in input order; within each cell the runner's waves
//! (trace generation, policy simulations, candidate sims) fan out over
//! the work-stealing executor ([`crate::steal`]). That split is
//! deliberate: cross-cell parallelism would interleave the shared DP
//! plan / trace cache traffic of different cells, making the per-cell
//! delta counters that [`Study::prewarm`] and the obs layer report
//! unattributable — while buying nothing, since each cell's waves
//! already saturate the worker pool. Results are worker-count-invariant
//! either way (the executor commits in task-ID order), so only the
//! scheduling counters, never the aggregates, depend on `--threads`.
//!
//! ```no_run
//! use ckpt_exp::{DistSpec, Scenario, Study};
//!
//! let year = 365.25 * 86_400.0;
//! let cells: Vec<Scenario> = (8..=12)
//!     .map(|e| {
//!         Scenario::petascale(
//!             DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * year },
//!             1 << e,
//!             100,
//!         )
//!     })
//!     .collect();
//! for result in Study::new().run_all(&cells).into_iter().flatten() {
//!     println!("{}: {:?}", result.label, result.period_lb_factor);
//! }
//! ```

use crate::error::Error;
use crate::policies_spec::PolicyKind;
use crate::runner::{run_scenario_checked, RunnerOptions, ScenarioResult};
use crate::scenario::{DistSpec, Scenario};

/// A configured batch of scenario runs. The default study mirrors
/// `ckpt-core`'s `degradation_table`: the paper's §4.1 roster, with
/// `DPMakespan` included only where its makespan table is exact
/// (sequential jobs or Exponential failures).
#[derive(Debug, Clone, Default)]
pub struct Study {
    kinds: Option<Vec<PolicyKind>>,
    options: RunnerOptions,
}

impl Study {
    /// A study with the default roster and default runner options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the per-scenario default roster with a fixed one.
    #[must_use]
    pub fn with_kinds(mut self, kinds: impl Into<Vec<PolicyKind>>) -> Self {
        self.kinds = Some(kinds.into());
        self
    }

    /// Replace the runner options (period grid, search strategy,
    /// lower-bound row, engine options).
    #[must_use]
    pub fn with_options(mut self, options: RunnerOptions) -> Self {
        self.options = options;
        self
    }

    /// The roster this study runs on `scenario`: the configured one, or
    /// the paper's §4.1 roster with `DPMakespan` only where exact.
    pub fn roster_for(&self, scenario: &Scenario) -> Vec<PolicyKind> {
        match &self.kinds {
            Some(kinds) => kinds.clone(),
            None => {
                let include_dp_makespan = scenario.procs == 1
                    || matches!(scenario.dist, DistSpec::Exponential { .. });
                PolicyKind::paper_roster(include_dp_makespan)
            }
        }
    }

    /// Run one scenario.
    ///
    /// # Errors
    /// Scenario-level failures only (a distribution that cannot be
    /// built); per-policy failures surface as error rows in the result.
    pub fn run(&self, scenario: &Scenario) -> Result<ScenarioResult, Error> {
        run_scenario_checked(scenario, &self.roster_for(scenario), &self.options)
    }

    /// Warm the process-wide caches for `scenarios` before a figure
    /// sweep: each cell is run once through the pipeline with the
    /// study's roster but **no** `LowerBound` row and **no** `PeriodLB`
    /// search, which generates every trace set into
    /// [`TraceCache`](crate::cache::TraceCache) and populates the shared
    /// DP plan / kernel-row caches with every key the roster's policy
    /// simulations will ask for. A subsequent [`Study::run`] /
    /// [`Study::run_all`] over the same cells then replays the exact
    /// same lookups, so its plan-cache and trace-cache hit rate is
    /// ~100% — observable through the `plan_cache.*` / `trace_cache.*`
    /// obs counters when a `ckpt-obs` session records the sweep.
    ///
    /// Warming cannot change results: caches are keyed by the exact
    /// quantised state and only ever serve the pure function of the key
    /// (see `crates/sim/tests/cache_equivalence.rs`).
    ///
    /// Results are discarded; one `Result` per cell reports scenario-
    /// level failures (same contract as [`Study::run_all`]): each `Err`
    /// carries its scenario's label ([`Error::Cell`]), and every failed
    /// warm bumps the `study.prewarm_errors` obs counter (labeled by
    /// cell), so a sweep driver can both attribute and count failures
    /// without re-running anything.
    pub fn prewarm(&self, scenarios: &[Scenario]) -> Vec<Result<(), Error>> {
        let options = RunnerOptions {
            lower_bound: false,
            period_lb: None,
            period_search: self.options.period_search,
            sim: self.options.sim,
        };
        scenarios
            .iter()
            .map(|sc| {
                run_scenario_checked(sc, &self.roster_for(sc), &options)
                    .map(|_| ())
                    .map_err(|e| {
                        ckpt_obs::counter_add_labeled("study.prewarm_errors", &sc.label, 1);
                        Error::for_cell(&sc.label, e)
                    })
            })
            .collect()
    }

    /// Run every scenario, one result per cell in input order. Failures
    /// are per-cell values: a malformed cell yields its `Err` — wrapped
    /// as [`Error::Cell`] with the scenario's label, so a failure in a
    /// 100-cell sweep is attributable from the error value alone —
    /// without aborting the rest of the batch.
    pub fn run_all(&self, scenarios: &[Scenario]) -> Vec<Result<ScenarioResult, Error>> {
        scenarios
            .iter()
            .map(|sc| self.run(sc).map_err(|e| Error::for_cell(&sc.label, e)))
            .collect()
    }

    /// Lower this study over `scenarios` into a durable
    /// [`StudyDef`](crate::checkpoint::StudyDef) for the checkpointed
    /// runner ([`crate::checkpoint::run_study`]): same per-scenario
    /// roster, same options, one cell per scenario in input order.
    pub fn to_def(&self, id: impl Into<String>, scenarios: &[Scenario]) -> crate::checkpoint::StudyDef {
        crate::checkpoint::StudyDef::new(
            id,
            scenarios
                .iter()
                .map(|sc| (sc.clone(), self.roster_for(sc), self.options.clone())),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::runner::PeriodSearch;
    use ckpt_sim::SimOptions;

    fn fast_options() -> RunnerOptions {
        RunnerOptions {
            lower_bound: true,
            period_lb: Some(vec![0.5, 1.0, 2.0]),
            period_search: PeriodSearch::Full,
            sim: SimOptions::default(),
        }
    }

    fn tiny(mtbf: f64) -> Scenario {
        let mut s = Scenario::single_processor(DistSpec::Exponential { mtbf }, 4);
        s.total_work = 12.0 * 3_600.0;
        s
    }

    #[test]
    fn run_all_returns_one_result_per_cell_in_order() {
        let study = Study::new()
            .with_kinds([PolicyKind::Young, PolicyKind::OptExp])
            .with_options(fast_options());
        let cells = [tiny(6.0 * 3_600.0), tiny(12.0 * 3_600.0)];
        let results = study.run_all(&cells);
        assert_eq!(results.len(), 2);
        for (r, sc) in results.iter().zip(&cells) {
            let r = r.as_ref().expect("well-formed cells");
            assert_eq!(r.label, sc.label);
            assert!(r.get("Young").is_some());
        }
        // Longer MTBF ⇒ shorter makespan, so order is observable.
        let a = results[0].as_ref().unwrap().get("Young").unwrap().mean_makespan.unwrap();
        let b = results[1].as_ref().unwrap().get("Young").unwrap().mean_makespan.unwrap();
        assert!(b < a);
    }

    #[test]
    fn batch_matches_single_runs_bitwise() {
        let study = Study::new()
            .with_kinds([PolicyKind::Young])
            .with_options(fast_options());
        let cells = [tiny(6.0 * 3_600.0)];
        let batch = study.run_all(&cells);
        let single = study.run(&cells[0]).expect("runs");
        assert_eq!(
            batch[0].as_ref().expect("runs").get("Young").unwrap().mean_makespan,
            single.get("Young").unwrap().mean_makespan
        );
    }

    #[test]
    fn prewarm_runs_cells_and_preserves_results() {
        use crate::policies_spec::PolicyKind;
        let mut cell = tiny(6.0 * 3_600.0);
        cell.label = "study-prewarm-cell".into();
        let study = Study::new()
            .with_kinds([PolicyKind::DpNextFailure(Default::default()), PolicyKind::Young])
            .with_options(fast_options());

        let warmed = study.prewarm(std::slice::from_ref(&cell));
        assert_eq!(warmed.len(), 1);
        warmed[0].as_ref().expect("well-formed cell prewarms");

        // The warm run must serve the DP policy from the shared caches
        // (flow counters are global and monotonic, so a positive delta
        // is attributable even with tests running in parallel) ...
        let before = ckpt_policies::DpCaches::global().stats();
        let hot = study.run(&cell).expect("runs");
        let delta = ckpt_policies::DpCaches::global().stats().delta_since(&before);
        assert!(delta.plans.hits > 0, "prewarmed run must hit the shared plan cache");

        // ... and warming must not perturb results: a repeat run is
        // bit-identical.
        let again = study.run(&cell).expect("runs");
        for (a, b) in hot.outcomes.iter().zip(&again.outcomes) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.mean_makespan, b.mean_makespan, "{}", a.name);
            assert_eq!(a.avg_degradation, b.avg_degradation, "{}", a.name);
        }
    }

    #[test]
    fn study_results_are_bit_identical_across_worker_counts() {
        // The study-level half of the worker-invariance contract: the
        // same batch at 1 and at 8 workers produces bitwise-equal rows.
        // (check.sh proves the same property over the full golden study
        // through the CLI; this pins it in-process for `cargo test`.)
        let study = Study::new()
            .with_kinds([PolicyKind::Young, PolicyKind::OptExp])
            .with_options(fast_options());
        let cells = [tiny(6.0 * 3_600.0), tiny(12.0 * 3_600.0)];
        let run_at = |workers: usize| {
            crate::steal::set_workers(workers);
            let out = study.run_all(&cells);
            crate::steal::set_workers(0);
            out
        };
        let seq = run_at(1);
        let par = run_at(8);
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.label, b.label);
            for (ra, rb) in a.outcomes.iter().zip(&b.outcomes) {
                assert_eq!(ra.name, rb.name);
                assert_eq!(
                    ra.mean_makespan.map(f64::to_bits),
                    rb.mean_makespan.map(f64::to_bits),
                    "{}",
                    ra.name
                );
                assert_eq!(
                    ra.avg_degradation.map(f64::to_bits),
                    rb.avg_degradation.map(f64::to_bits),
                    "{}",
                    ra.name
                );
            }
            assert_eq!(
                a.period_lb_factor.map(f64::to_bits),
                b.period_lb_factor.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn run_all_errors_carry_the_scenario_label() {
        let mut bad = tiny(6.0 * 3_600.0);
        bad.dist = DistSpec::LanlLog { cluster: 99 };
        bad.label = "study-bad-cell".into();
        let study = Study::new()
            .with_kinds([PolicyKind::Young])
            .with_options(fast_options());
        let results = study.run_all(std::slice::from_ref(&bad));
        let err = results[0].as_ref().expect_err("cluster 99 is unmodelled");
        // The failing cell is attributable from the error value alone.
        assert!(
            matches!(err, Error::Cell { label, .. } if label == "study-bad-cell"),
            "{err:?}"
        );
        assert!(err.to_string().starts_with("cell study-bad-cell: "), "{err}");
    }

    #[test]
    fn prewarm_errors_are_labeled_and_counted() {
        let mut bad = tiny(6.0 * 3_600.0);
        bad.dist = DistSpec::LanlLog { cluster: 99 };
        bad.label = "study-bad-prewarm".into();
        let study = Study::new()
            .with_kinds([PolicyKind::Young])
            .with_options(fast_options());
        let warmed = study.prewarm(std::slice::from_ref(&bad));
        let err = warmed[0].as_ref().expect_err("cluster 99 is unmodelled");
        assert!(
            matches!(err, Error::Cell { label, .. } if label == "study-bad-prewarm"),
            "{err:?}"
        );
    }

    #[test]
    fn to_def_lowers_roster_and_options_per_cell() {
        let study = Study::new()
            .with_kinds([PolicyKind::Young, PolicyKind::OptExp])
            .with_options(fast_options());
        let cells = [tiny(6.0 * 3_600.0), tiny(12.0 * 3_600.0)];
        let def = study.to_def("lowered", &cells);
        assert_eq!(def.id, "lowered");
        assert_eq!(def.cells.len(), 2);
        for (cell, sc) in def.cells.iter().zip(&cells) {
            assert_eq!(cell.scenario.label, sc.label);
            assert_eq!(cell.kinds, study.roster_for(sc));
        }
    }

    #[test]
    fn default_roster_mirrors_degradation_table_rule() {
        let study = Study::new();
        let seq = tiny(6.0 * 3_600.0);
        assert!(study
            .roster_for(&seq)
            .iter()
            .any(|k| matches!(k, PolicyKind::DpMakespan(_))));
        let year = 365.25 * 86_400.0;
        let peta = Scenario::petascale(
            DistSpec::Weibull { shape: 0.7, mtbf: 125.0 * year },
            1 << 10,
            2,
        );
        assert!(!study
            .roster_for(&peta)
            .iter()
            .any(|k| matches!(k, PolicyKind::DpMakespan(_))));
    }
}
