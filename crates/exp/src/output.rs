//! Markdown / CSV emitters mirroring the paper's presentation.

use crate::runner::ScenarioResult;

/// Render one scenario as a markdown table in the format of Tables 2–4
/// ("Degradation from best": avg and std per heuristic).
pub fn markdown_table(result: &ScenarioResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### {} — p = {}, {} traces\n\n",
        result.label, result.procs, result.traces
    ));
    out.push_str("| Heuristic | avg degradation | std | mean makespan (h) | mean failures |\n");
    out.push_str("|---|---|---|---|---|\n");
    for o in &result.outcomes {
        match (o.avg_degradation, o.std_degradation) {
            (Some(avg), Some(std)) => {
                let mk = o
                    .mean_makespan
                    .map(|m| format!("{:.2}", m / 3_600.0))
                    .unwrap_or_else(|| "—".into());
                let mf = o
                    .mean_failures
                    .map(|f| format!("{f:.1}"))
                    .unwrap_or_else(|| "—".into());
                out.push_str(&format!(
                    "| {} | {avg:.5} | {std:.5} | {mk} | {mf} |\n",
                    o.name
                ));
            }
            _ => {
                let why = o.error.as_deref().unwrap_or("n/a");
                out.push_str(&format!("| {} | — | — | — | — ({why}) |\n", o.name));
            }
        }
    }
    out
}

/// One CSV line per `(scenario, policy)` for a figure series:
/// `x,policy,avg_degradation,std`.
pub fn csv_series(x: f64, result: &ScenarioResult) -> String {
    let mut out = String::new();
    for o in &result.outcomes {
        let (avg, std) = match (o.avg_degradation, o.std_degradation) {
            (Some(a), Some(s)) => (format!("{a:.6}"), format!("{s:.6}")),
            _ => ("".into(), "".into()),
        };
        out.push_str(&format!("{x},{},{avg},{std}\n", o.name));
    }
    out
}

/// CSV header matching [`csv_series`].
pub const CSV_HEADER: &str = "x,policy,avg_degradation,std_degradation\n";

/// Terminal rendering of a figure series: one line per `(x, policy)` with
/// a proportional bar, mirroring the paper's degradation plots closely
/// enough to eyeball who wins where.
pub fn ascii_figure(title: &str, rows: &[(f64, &ScenarioResult)]) -> String {
    let mut out = format!("{title}\n");
    // Global scale across the figure.
    let mut max_d = 1.0f64;
    for (_, r) in rows {
        for o in &r.outcomes {
            if let Some(d) = o.avg_degradation {
                max_d = max_d.max(d);
            }
        }
    }
    let width = 46usize;
    for (x, r) in rows {
        out.push_str(&format!("x = {x}\n"));
        for o in &r.outcomes {
            match o.avg_degradation {
                Some(d) => {
                    let frac = ((d - 1.0) / (max_d - 1.0).max(1e-9)).clamp(0.0, 1.0);
                    let bar = "#".repeat((frac * width as f64).round() as usize);
                    out.push_str(&format!("  {:<14} {d:8.4} |{bar}\n", o.name));
                }
                None => out.push_str(&format!("  {:<14}      n/a |\n", o.name)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::PolicyOutcome;

    fn result() -> ScenarioResult {
        ScenarioResult {
            label: "demo".into(),
            procs: 4,
            traces: 10,
            outcomes: vec![
                PolicyOutcome {
                    name: "Young".into(),
                    avg_degradation: Some(1.0123),
                    std_degradation: Some(0.01),
                    mean_makespan: Some(7_200.0),
                    mean_failures: Some(3.4),
                    max_failures: Some(7),
                    chunk_range: Some((100.0, 200.0)),
                    period_factor: None,
                    error: None,
                },
                PolicyOutcome {
                    name: "Liu".into(),
                    avg_degradation: None,
                    std_degradation: None,
                    mean_makespan: None,
                    mean_failures: None,
                    max_failures: None,
                    chunk_range: None,
                    period_factor: None,
                    error: Some("interval < C".into()),
                },
            ],
            period_lb_factor: None,
            perf: crate::perf::PipelinePerf::default(),
        }
    }

    #[test]
    fn markdown_contains_rows_and_errors() {
        let md = markdown_table(&result());
        assert!(md.contains("| Young | 1.01230 | 0.01000 | 2.00 | 3.4 |"));
        assert!(md.contains("interval < C"));
    }

    #[test]
    fn csv_has_one_line_per_policy() {
        let csv = csv_series(1024.0, &result());
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("1024,Young,1.012300,0.010000"));
    }

    #[test]
    fn ascii_figure_renders_bars_and_gaps() {
        let r = result();
        let fig = ascii_figure("demo figure", &[(1024.0, &r)]);
        assert!(fig.contains("demo figure"));
        assert!(fig.contains("Young"));
        assert!(fig.contains("1.0123"));
        assert!(fig.contains("n/a"), "missing policies render as gaps");
    }
}
