//! Synthetic LANL-like availability logs.
//!
//! Substitution for the (non-redistributable) LANL Failure Trace Archive
//! logs of clusters 18 and 19. Published characterisations of those
//! systems (Schroeder & Gibson 2006; §4.3/§6 of the paper) pin down:
//!
//! * >1000 four-processor nodes, multi-year observation spans;
//! * availability durations well fitted by Weibull with shape 0.33–0.49,
//!   plus a pronounced short-interval mode (repeated quick failures of
//!   flaky nodes after repair);
//! * a platform MTBF around 1,297 s when scaled to 45,208 processors
//!   (§6 quotes exactly that figure for cluster 19), i.e. a node-level
//!   mean availability around 1.5·10⁷ s.
//!
//! Each node's availability intervals are drawn iid from a two-component
//! mixture (short-interval Weibull spike + heavy Weibull bulk) until the
//! observation span is covered. The resulting `AvailabilityLog` is then
//! consumed through exactly the code path the paper uses for the real
//! logs.

use crate::error::TraceError;
use crate::log::AvailabilityLog;
use ckpt_math::SeedSequence;
use ckpt_dist::{FailureDistribution, Mixture, Weibull};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of a synthetic LANL-like cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct LanlClusterModel {
    /// Log label (e.g. "lanl-19").
    pub label: String,
    /// Number of nodes.
    pub nodes: usize,
    /// Processors per node.
    pub procs_per_node: u32,
    /// Weibull shape of the bulk availability component.
    pub bulk_shape: f64,
    /// Mean of the bulk component, seconds.
    pub bulk_mean: f64,
    /// Mixture weight of the short-interval spike.
    pub spike_weight: f64,
    /// Mean of the spike component, seconds.
    pub spike_mean: f64,
    /// Observation span per node, seconds.
    pub span: f64,
}

impl LanlClusterModel {
    /// Model of LANL cluster 18 (system 7 in Schroeder & Gibson):
    /// slightly smaller shape, slightly flakier.
    pub fn cluster18() -> Self {
        Self {
            label: "lanl-18".into(),
            nodes: 1_024,
            procs_per_node: 4,
            bulk_shape: 0.40,
            bulk_mean: 1.3e7,
            spike_weight: 0.12,
            spike_mean: 900.0,
            span: 5.0 * 365.25 * 86_400.0,
        }
    }

    /// Model of LANL cluster 19 (system 8 in Schroeder & Gibson): the one
    /// behind Figure 7, with §6's ≈1,297 s platform MTBF at 45,208 procs.
    pub fn cluster19() -> Self {
        Self {
            label: "lanl-19".into(),
            nodes: 1_024,
            procs_per_node: 4,
            bulk_shape: 0.45,
            bulk_mean: 1.65e7,
            spike_weight: 0.10,
            spike_mean: 1_200.0,
            span: 5.0 * 365.25 * 86_400.0,
        }
    }

    /// The mixture the availability durations are drawn from.
    pub fn duration_distribution(&self) -> Mixture {
        Mixture::new(vec![
            (
                self.spike_weight,
                Box::new(Weibull::from_mtbf(0.6, self.spike_mean))
                    as Box<dyn FailureDistribution>,
            ),
            (
                1.0 - self.spike_weight,
                Box::new(Weibull::from_mtbf(self.bulk_shape, self.bulk_mean)),
            ),
        ])
    }

    /// Generate the availability log.
    pub fn generate(&self, seeds: SeedSequence) -> AvailabilityLog {
        let dist = self.duration_distribution();
        let nodes = (0..self.nodes)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(seeds.child(i as u64).seed());
                let mut durations = Vec::new();
                let mut t = 0.0;
                while t < self.span {
                    let d = dist.sample(&mut rng).max(1.0);
                    durations.push(d);
                    t += d;
                }
                durations
            })
            .collect();
        AvailabilityLog {
            nodes,
            procs_per_node: self.procs_per_node,
            label: self.label.clone(),
        }
    }
}

/// Generate the synthetic stand-in for LANL cluster `id` (18 or 19).
///
/// # Panics
/// Panics for any id other than 18 or 19; the fallible form is
/// [`try_synthetic_lanl_cluster`].
pub fn synthetic_lanl_cluster(id: u32, seeds: SeedSequence) -> AvailabilityLog {
    match try_synthetic_lanl_cluster(id, seeds) {
        Ok(log) => log,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`synthetic_lanl_cluster`]: reports an unmodelled
/// cluster id as [`TraceError::UnknownCluster`] instead of panicking.
pub fn try_synthetic_lanl_cluster(
    id: u32,
    seeds: SeedSequence,
) -> Result<AvailabilityLog, TraceError> {
    let model = match id {
        18 => LanlClusterModel::cluster18(),
        19 => LanlClusterModel::cluster19(),
        other => return Err(TraceError::UnknownCluster { id: other }),
    };
    Ok(model.generate(seeds))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ckpt_dist::FailureDistribution;

    fn small19() -> LanlClusterModel {
        LanlClusterModel { nodes: 64, span: 2.0e8, ..LanlClusterModel::cluster19() }
    }

    #[test]
    fn log_shape_matches_model() {
        let log = small19().generate(SeedSequence::from_label("t"));
        assert_eq!(log.node_count(), 64);
        assert_eq!(log.procs_per_node, 4);
        assert!(log.interval_count() > 64, "every node logs at least one interval");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small19().generate(SeedSequence::from_label("same"));
        let b = small19().generate(SeedSequence::from_label("same"));
        assert_eq!(a, b);
    }

    #[test]
    fn node_mtbf_near_target() {
        // Pooled mean should land near the mixture mean.
        let model = small19();
        let log = model.generate(SeedSequence::from_label("mtbf"));
        let want = model.duration_distribution().mean();
        let got = log.empirical_mtbf();
        // Span truncation biases the mean down for heavy tails; allow a
        // generous band.
        assert!(
            (0.3 * want..1.5 * want).contains(&got),
            "pooled mean {got} vs mixture mean {want}"
        );
    }

    #[test]
    fn empirical_distribution_has_decreasing_conditional_hazard() {
        // The property that makes DPNextFailure shine on real logs:
        // surviving nodes keep getting safer.
        let log = small19().generate(SeedSequence::from_label("hazard"));
        let d = log.empirical_distribution();
        let young = d.psuc(3_600.0, 600.0);
        let old = d.psuc(3_600.0, 1.0e6);
        assert!(old > young, "old {old} young {young}");
    }

    #[test]
    fn spike_produces_short_intervals() {
        let log = small19().generate(SeedSequence::from_label("spike"));
        let d = log.empirical_distribution();
        // A visible mass of sub-hour intervals.
        let short_frac = 1.0 - d.survival(3_600.0);
        assert!(short_frac > 0.05, "short-interval mass {short_frac}");
    }

    #[test]
    fn full_cluster19_platform_mtbf_order_of_magnitude() {
        // §6: platform MTBF ≈ 1,297 s at 45,208 processors (11,302 nodes).
        // Node-level MTBF / 11,302 should land within a factor ~3.
        let model = LanlClusterModel { nodes: 128, ..LanlClusterModel::cluster19() };
        let log = model.generate(SeedSequence::from_label("platmtbf"));
        let plat = log.empirical_mtbf() / 11_302.0;
        assert!(
            (400.0..4_000.0).contains(&plat),
            "platform MTBF {plat} s, paper reports ≈1,297 s"
        );
    }

    #[test]
    #[should_panic]
    fn unknown_cluster_rejected() {
        synthetic_lanl_cluster(7, SeedSequence::from_label("x"));
    }

    #[test]
    fn unknown_cluster_typed_error() {
        assert_eq!(
            try_synthetic_lanl_cluster(7, SeedSequence::from_label("x")).err(),
            Some(TraceError::UnknownCluster { id: 7 })
        );
        assert!(try_synthetic_lanl_cluster(19, SeedSequence::from_label("x")).is_ok());
    }
}
