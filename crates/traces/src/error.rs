//! Typed errors for availability-log loading and generation.

use ckpt_dist::DistError;

/// Why an availability log could not be parsed, generated, or turned into
/// an empirical distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A line of an FTA-style event table was malformed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The input held no events at all.
    NoEvents,
    /// Events were present but no availability interval could be derived
    /// (e.g. every node logged a single event).
    NoIntervals,
    /// No synthetic model exists for the requested LANL cluster id.
    UnknownCluster {
        /// The requested cluster id (18 and 19 are modelled).
        id: u32,
    },
    /// The log holds no availability durations to pool.
    EmptyLog,
    /// Building the pooled empirical distribution failed.
    Dist(DistError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse { line, reason } => write!(f, "line {line}: {reason}"),
            Self::NoEvents => write!(f, "no events found"),
            Self::NoIntervals => write!(
                f,
                "no availability intervals derivable (single-event nodes only)"
            ),
            Self::UnknownCluster { id } => {
                write!(f, "no synthetic model for LANL cluster {id}")
            }
            Self::EmptyLog => write!(f, "availability log is empty"),
            Self::Dist(e) => write!(f, "empirical distribution: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for TraceError {
    fn from(e: DistError) -> Self {
        Self::Dist(e)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_line_numbers() {
        let e = TraceError::Parse { line: 2, reason: "expected `node start end`".into() };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn dist_errors_convert_and_chain() {
        let e: TraceError = DistError::EmptySample.into();
        assert!(e.to_string().contains("empirical distribution"));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
