//! Availability logs and the §4.3 empirical distribution construction.

use crate::error::TraceError;
use ckpt_dist::Empirical;

/// A cluster availability log: for each node, the sequence of availability
/// interval durations (uptime between consecutive failures), seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityLog {
    /// Per-node availability durations.
    pub nodes: Vec<Vec<f64>>,
    /// Processors per node (LANL clusters 18/19: 4).
    pub procs_per_node: u32,
    /// Human-readable origin label.
    pub label: String,
}

impl AvailabilityLog {
    /// Number of nodes in the log.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of logged availability intervals (the set `S`).
    pub fn interval_count(&self) -> usize {
        self.nodes.iter().map(Vec::len).sum()
    }

    /// Pool every node's availability durations into the paper's set `S`
    /// and build the discrete conditional distribution from it.
    ///
    /// # Panics
    /// Panics if the log holds no (valid) intervals; the fallible form is
    /// [`AvailabilityLog::try_empirical_distribution`].
    pub fn empirical_distribution(&self) -> Empirical {
        match self.try_empirical_distribution() {
            Ok(d) => d,
            Err(e) => panic!("empirical_distribution: {e}"),
        }
    }

    /// Fallible form of
    /// [`empirical_distribution`](AvailabilityLog::empirical_distribution):
    /// reports an empty log or invalid durations as a typed error instead
    /// of panicking.
    pub fn try_empirical_distribution(&self) -> Result<Empirical, TraceError> {
        let durations: Vec<f64> = self.nodes.iter().flatten().copied().collect();
        if durations.is_empty() {
            return Err(TraceError::EmptyLog);
        }
        Ok(Empirical::try_from_durations(durations)?)
    }

    /// Mean availability duration across the log (the node-level MTBF the
    /// periodic heuristics are fed in §6, where they "pretend the
    /// underlying distribution is Exponential with the same MTBF").
    pub fn empirical_mtbf(&self) -> f64 {
        let (sum, n) = self
            .nodes
            .iter()
            .flatten()
            .fold((0.0f64, 0usize), |(s, n), &d| (s + d, n + 1));
        assert!(n > 0, "availability log is empty");
        sum / n as f64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use ckpt_dist::FailureDistribution;

    fn toy_log() -> AvailabilityLog {
        AvailabilityLog {
            nodes: vec![vec![100.0, 300.0], vec![200.0], vec![400.0, 500.0]],
            procs_per_node: 4,
            label: "toy".into(),
        }
    }

    #[test]
    fn counts() {
        let log = toy_log();
        assert_eq!(log.node_count(), 3);
        assert_eq!(log.interval_count(), 5);
    }

    #[test]
    fn empirical_mtbf_is_pooled_mean() {
        let log = toy_log();
        assert!((log.empirical_mtbf() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn distribution_pools_all_nodes() {
        let log = toy_log();
        let d = log.empirical_distribution();
        assert_eq!(d.len(), 5);
        // Survival at 250 s: 3 of 5 durations are ≥ 250.
        assert!((d.survival(250.0) - 0.6).abs() < 1e-12);
        assert!((d.mean() - 300.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_log_panics() {
        AvailabilityLog { nodes: vec![vec![]], procs_per_node: 4, label: "e".into() }
            .empirical_distribution();
    }

    #[test]
    fn try_form_reports_typed_errors() {
        let empty = AvailabilityLog { nodes: vec![vec![]], procs_per_node: 4, label: "e".into() };
        assert_eq!(empty.try_empirical_distribution().err(), Some(TraceError::EmptyLog));
        let bad = AvailabilityLog {
            nodes: vec![vec![100.0, -5.0]],
            procs_per_node: 4,
            label: "b".into(),
        };
        assert!(matches!(
            bad.try_empirical_distribution(),
            Err(TraceError::Dist(ckpt_dist::DistError::InvalidDuration { index: 1, .. }))
        ));
        assert!(toy_log().try_empirical_distribution().is_ok());
    }
}
