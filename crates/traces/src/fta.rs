//! Loader for real availability logs in a simple Failure-Trace-Archive
//! style tabular format.
//!
//! The substitution logs in [`crate::synthetic`] are generated; this
//! module lets a user with access to the actual archive (or any cluster's
//! own failure records) drop in real data and run the identical pipeline.
//!
//! Accepted format — one event per line, whitespace- or comma-separated:
//!
//! ```text
//! # node_id  event_start_time  event_end_time
//! 17  1049620800  1049624400
//! 17  1050001000  1050002000
//! 23  1049700000  1049700060
//! ```
//!
//! Each line records one *unavailability* event of a node (failure at
//! `start`, repaired at `end`, epoch seconds). Availability intervals are
//! the gaps between consecutive events of the same node (and the leading
//! interval from the node's first observation). Lines starting with `#`
//! and blank lines are ignored.

use crate::log::AvailabilityLog;
use std::collections::BTreeMap;

/// Parse an FTA-style event table into an [`AvailabilityLog`].
///
/// `procs_per_node` tags the node granularity (4 for the LANL clusters).
///
/// # Errors
/// Returns a line-numbered message on malformed input; an input with no
/// derivable availability interval is also an error.
pub fn parse_fta_events(input: &str, procs_per_node: u32) -> Result<AvailabilityLog, String> {
    let mut events: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .collect();
        if fields.len() < 3 {
            return Err(format!("line {}: expected `node start end`", lineno + 1));
        }
        let start: f64 = fields[1]
            .parse()
            .map_err(|e| format!("line {}: bad start time: {e}", lineno + 1))?;
        let end: f64 = fields[2]
            .parse()
            .map_err(|e| format!("line {}: bad end time: {e}", lineno + 1))?;
        if end < start {
            return Err(format!("line {}: event ends before it starts", lineno + 1));
        }
        events.entry(fields[0].to_string()).or_default().push((start, end));
    }
    if events.is_empty() {
        return Err("no events found".to_string());
    }
    let mut nodes = Vec::with_capacity(events.len());
    for (_, mut evs) in events {
        evs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        let mut durations = Vec::new();
        let mut up_since = evs.first().map(|&(s, _)| s).unwrap_or(0.0);
        // Leading interval unknown — start counting from the first repair.
        let mut first = true;
        for (start, end) in evs {
            if !first {
                let d = start - up_since;
                if d > 0.0 {
                    durations.push(d);
                }
            }
            first = false;
            up_since = end;
        }
        nodes.push(durations);
    }
    let log = AvailabilityLog { nodes, procs_per_node, label: "fta".into() };
    if log.interval_count() == 0 {
        return Err("no availability intervals derivable (single-event nodes only)".into());
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# node start end
a 100 150
a 450 500
a 900 910
b 0 10
b 1010 1030
";

    #[test]
    fn parses_intervals_between_events() {
        let log = parse_fta_events(SAMPLE, 4).expect("parse");
        assert_eq!(log.node_count(), 2);
        // Node a: 450−150 = 300, 900−500 = 400; node b: 1010−10 = 1000.
        assert_eq!(log.interval_count(), 3);
        let mut all: Vec<f64> = log.nodes.iter().flatten().copied().collect();
        all.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        assert_eq!(all, vec![300.0, 400.0, 1000.0]);
        assert_eq!(log.procs_per_node, 4);
    }

    #[test]
    fn comma_separation_accepted() {
        let log = parse_fta_events("n1,5,10\nn1,110,120\n", 1).expect("parse");
        assert_eq!(log.interval_count(), 1);
        assert_eq!(log.nodes[0], vec![100.0]);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let log = parse_fta_events("# hi\n\nx 1 2\nx 12 13\n", 1).expect("parse");
        assert_eq!(log.interval_count(), 1);
    }

    #[test]
    fn malformed_line_is_located() {
        let err = parse_fta_events("x 1 2\noops\n", 1).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn reversed_event_rejected() {
        let err = parse_fta_events("x 10 5\n", 1).unwrap_err();
        assert!(err.contains("ends before"), "{err}");
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_fta_events("# nothing\n", 1).is_err());
    }

    #[test]
    fn single_event_nodes_yield_no_intervals() {
        assert!(parse_fta_events("x 1 2\ny 3 4\n", 1).is_err());
    }

    #[test]
    fn pipeline_compatible_with_empirical() {
        let log = parse_fta_events(SAMPLE, 4).expect("parse");
        let d = log.empirical_distribution();
        use ckpt_dist::FailureDistribution;
        assert!((d.mean() - (300.0 + 400.0 + 1000.0) / 3.0).abs() < 1e-9);
    }
}
