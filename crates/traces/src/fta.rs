//! Loader for real availability logs in a simple Failure-Trace-Archive
//! style tabular format.
//!
//! The substitution logs in [`crate::synthetic`] are generated; this
//! module lets a user with access to the actual archive (or any cluster's
//! own failure records) drop in real data and run the identical pipeline.
//!
//! Accepted format — one event per line, whitespace- or comma-separated:
//!
//! ```text
//! # node_id  event_start_time  event_end_time
//! 17  1049620800  1049624400
//! 17  1050001000  1050002000
//! 23  1049700000  1049700060
//! ```
//!
//! Each line records one *unavailability* event of a node (failure at
//! `start`, repaired at `end`, epoch seconds). Availability intervals are
//! the gaps between consecutive events of the same node (and the leading
//! interval from the node's first observation). Lines starting with `#`
//! and blank lines are ignored.

use crate::error::TraceError;
use crate::log::AvailabilityLog;
use std::collections::BTreeMap;

/// Parse an FTA-style event table into an [`AvailabilityLog`].
///
/// `procs_per_node` tags the node granularity (4 for the LANL clusters).
///
/// # Errors
/// Returns [`TraceError::Parse`] (whose `Display` carries the 1-based line
/// number) on malformed input — short lines, unparsable or non-finite
/// times, events that end before they start — and [`TraceError::NoEvents`]
/// / [`TraceError::NoIntervals`] when no usable data survives.
pub fn parse_fta_events(input: &str, procs_per_node: u32) -> Result<AvailabilityLog, TraceError> {
    let mut events: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parse_err = |reason: String| TraceError::Parse { line: lineno + 1, reason };
        let fields: Vec<&str> = line
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|s| !s.is_empty())
            .collect();
        if fields.len() < 3 {
            return Err(parse_err("expected `node start end`".into()));
        }
        let start: f64 = fields[1]
            .parse()
            .map_err(|e| parse_err(format!("bad start time: {e}")))?;
        let end: f64 = fields[2]
            .parse()
            .map_err(|e| parse_err(format!("bad end time: {e}")))?;
        if !start.is_finite() || !end.is_finite() {
            return Err(parse_err(format!("non-finite event time {start}..{end}")));
        }
        if end < start {
            return Err(parse_err("event ends before it starts".into()));
        }
        events.entry(fields[0].to_string()).or_default().push((start, end));
    }
    if events.is_empty() {
        return Err(TraceError::NoEvents);
    }
    let mut nodes = Vec::with_capacity(events.len());
    for (_, mut evs) in events {
        evs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut durations = Vec::new();
        let mut up_since = evs.first().map(|&(s, _)| s).unwrap_or(0.0);
        // Leading interval unknown — start counting from the first repair.
        let mut first = true;
        for (start, end) in evs {
            if !first {
                let d = start - up_since;
                if d > 0.0 {
                    durations.push(d);
                }
            }
            first = false;
            up_since = end;
        }
        nodes.push(durations);
    }
    let log = AvailabilityLog { nodes, procs_per_node, label: "fta".into() };
    if log.interval_count() == 0 {
        return Err(TraceError::NoIntervals);
    }
    Ok(log)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# node start end
a 100 150
a 450 500
a 900 910
b 0 10
b 1010 1030
";

    #[test]
    fn parses_intervals_between_events() {
        let log = parse_fta_events(SAMPLE, 4).expect("parse");
        assert_eq!(log.node_count(), 2);
        // Node a: 450−150 = 300, 900−500 = 400; node b: 1010−10 = 1000.
        assert_eq!(log.interval_count(), 3);
        let mut all: Vec<f64> = log.nodes.iter().flatten().copied().collect();
        all.sort_by(|x, y| x.total_cmp(y));
        assert_eq!(all, vec![300.0, 400.0, 1000.0]);
        assert_eq!(log.procs_per_node, 4);
    }

    #[test]
    fn comma_separation_accepted() {
        let log = parse_fta_events("n1,5,10\nn1,110,120\n", 1).expect("parse");
        assert_eq!(log.interval_count(), 1);
        assert_eq!(log.nodes[0], vec![100.0]);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let log = parse_fta_events("# hi\n\nx 1 2\nx 12 13\n", 1).expect("parse");
        assert_eq!(log.interval_count(), 1);
    }

    #[test]
    fn malformed_line_is_located() {
        let err = parse_fta_events("x 1 2\noops\n", 1).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err:?}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn unparsable_time_is_typed_and_located() {
        let err = parse_fta_events("x 1 2\nx abc 3\n", 1).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err:?}");
        assert!(err.to_string().contains("bad start time"), "{err}");
    }

    #[test]
    fn non_finite_time_rejected() {
        let err = parse_fta_events("x nan 5\n", 1).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 1, .. }), "{err:?}");
        assert!(err.to_string().contains("non-finite"), "{err}");
        let err = parse_fta_events("x 1 inf\n", 1).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn reversed_event_rejected() {
        let err = parse_fta_events("x 10 5\n", 1).unwrap_err();
        assert!(err.to_string().contains("ends before"), "{err}");
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(parse_fta_events("# nothing\n", 1).unwrap_err(), TraceError::NoEvents);
    }

    #[test]
    fn single_event_nodes_yield_no_intervals() {
        assert_eq!(
            parse_fta_events("x 1 2\ny 3 4\n", 1).unwrap_err(),
            TraceError::NoIntervals
        );
    }

    #[test]
    fn pipeline_compatible_with_empirical() {
        let log = parse_fta_events(SAMPLE, 4).expect("parse");
        let d = log.empirical_distribution();
        use ckpt_dist::FailureDistribution;
        assert!((d.mean() - (300.0 + 400.0 + 1000.0) / 3.0).abs() < 1e-9);
    }
}
