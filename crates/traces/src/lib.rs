//! Log-based failure substrate (§4.3 "Log-based failure distributions"
//! and §6).
//!
//! The paper replays failure logs of two >1000-node production clusters
//! from the LANL / Failure Trace Archive (clusters 18 and 19, i.e. 7 and 8
//! in Schroeder & Gibson 2006), building a discrete empirical distribution
//! from the logged *availability intervals* and sampling node traces from
//! it. The archive cannot be redistributed here, so [`synthetic`]
//! generates availability logs statistically matched to the published
//! characterisation of those clusters (Weibull shape ≈ 0.33–0.49 with a
//! heavy short-interval mode; 4-processor nodes; multi-year span), and
//! [`log`] then treats the synthetic log *exactly* as the paper treats the
//! real one: the conditional probability `P(X ≥ t | X ≥ τ)` is the ratio
//! of counted availability durations (`ckpt_dist::Empirical`). Every
//! downstream code path — policy, simulator, harness — is therefore
//! identical to a run on the real archive; see DESIGN.md "Substitutions".

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod error;
pub mod fta;
pub mod log;
pub mod synthetic;

pub use error::TraceError;
pub use fta::parse_fta_events;
pub use log::AvailabilityLog;
pub use synthetic::{synthetic_lanl_cluster, try_synthetic_lanl_cluster, LanlClusterModel};
