// Fixture: wall-clock type in a simulation crate.
use std::time::Instant;

pub fn timed() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
