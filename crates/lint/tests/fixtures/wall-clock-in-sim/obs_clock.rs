// Fixture: the observability recorder's clock read. Legal at exactly
// one virtual path — crates/obs/src/clock.rs, the single sanctioned
// wall-clock site — and a violation anywhere else under crates/obs/src.
use std::time::Instant;

pub fn now_micros(origin: Instant) -> u64 {
    origin.elapsed().as_micros() as u64
}
