// Fixture: simulated time is just f64 hours — no wall-clock anywhere.
pub fn advance(now: f64, dt: f64) -> f64 {
    now + dt
}
