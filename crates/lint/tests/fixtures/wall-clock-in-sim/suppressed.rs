// Fixture: acknowledged wall-clock use (e.g. a debug-only probe).
use std::time::Instant; // lint: allow(wall-clock-in-sim) — fixture probe

pub fn timed() -> f64 {
    let t0 = Instant::now(); // lint: allow(wall-clock-in-sim) — fixture probe
    t0.elapsed().as_secs_f64()
}
