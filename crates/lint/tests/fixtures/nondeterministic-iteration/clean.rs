// Fixture: keyed lookups on a hash container never observe its order.
pub fn keyed() -> Option<f64> {
    let mut m: HashMap<u32, f64> = HashMap::new();
    m.insert(1, 2.0);
    m.get(&1).copied()
}
