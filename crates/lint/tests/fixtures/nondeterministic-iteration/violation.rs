// Fixture: iterating a HashMap feeds seeded hash order into results.
pub fn dump(m2: HashMap<u32, f64>) -> Vec<f64> {
    let mut m: HashMap<u32, f64> = HashMap::new();
    let mut out = Vec::new();
    for (_k, v) in m.iter() {
        out.push(*v);
    }
    for _x in m2 {}
    out
}
