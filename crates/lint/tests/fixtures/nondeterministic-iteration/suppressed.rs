// Fixture: iteration whose result is order-insensitive, acknowledged.
pub fn count(m: &HashMap<u32, f64>) -> usize {
    let mut n = 0;
    for _ in m.iter() { // lint: allow(nondeterministic-iteration) — count only
        n += 1;
    }
    n
}
