// lint: allow(todo-fixme-gate) — fixture keeps a deliberate marker
// TODO: suppressed by the pragma directly above.
pub fn marked() -> f64 {
    0.0
}
