// TODO: finish this before merging.
pub fn unfinished() -> f64 {
    0.0 // FIXME: placeholder value
}
