// Fixture: ordinary prose; substrings inside words are not markers.
// The hackathon notes mention TODOS as a plural word, which is fine.
pub fn finished() -> f64 {
    1.0
}
