// Fixture: the fn-level pragma re-affirms the bounds audit.
// lint: allow(panicking-index-in-kernel) — indices affine in slice len, audited
fn solve_with_rows(tri: &[f64], i: usize) -> f64 {
    tri[i]
}
