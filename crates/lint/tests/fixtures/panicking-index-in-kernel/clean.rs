// Fixture: the audited fn indexes nothing; a non-audited fn may index
// freely without a pragma.
fn solve_with_rows(tri: &[f64]) -> f64 {
    tri.iter().copied().fold(0.0, f64::max)
}

fn helper(v: &[f64], i: usize) -> f64 {
    v[i]
}
