// Fixture: an audited kernel fn using panicking `[]` with no pragma.
fn solve_with_rows(tri: &[f64], egrid: &mut [f64], i: usize, j: usize) -> f64 {
    let a = tri[i];
    egrid[j] = a;
    a
}
