//@path crates/exp/src/spec.rs
//! Fixture: fully registered roster — every variant has a label arm,
//! non-internal variants appear in the builder and in a golden row.
pub enum PolicyKind {
    Young,
    Dp(DpConfig),
    Hidden(f64),
}

impl PolicyKind {
    pub fn name(&self) -> String {
        match self {
            Self::Young => "Young".into(),
            Self::Dp(_) => "DP".into(),
            Self::Hidden(f) => format!("Hidden*{f:.4}"),
        }
    }
}
