//@path crates/exp/src/registry.rs
//! Fixture: the builder covers every non-internal variant.
pub fn build_policy(k: &PolicyKind) -> u32 {
    match k {
        PolicyKind::Young => 1,
        PolicyKind::Dp(_) => 2,
        PolicyKind::Hidden(_) => 3,
    }
}
