//@path crates/exp/src/spec.rs
//! Fixture: `Dp` is half-registered like `violation/`, but the variant
//! carries a pragma while its roster lands.
pub enum PolicyKind {
    Young,
    // lint: allow(registry-exhaustive) — fixture: roster growth in flight
    Dp(DpConfig),
    Hidden(f64),
}

impl PolicyKind {
    pub fn name(&self) -> String {
        match self {
            Self::Young => "Young".into(),
            Self::Dp(_) => "DP".into(),
            Self::Hidden(f) => format!("Hidden*{f:.4}"),
        }
    }
}
