//@path crates/exp/src/registry.rs
//! Fixture: the builder knows `Young` (and the internal `Hidden`), but
//! not `Dp` — suppressed at the variant site.
pub fn build_policy(k: &PolicyKind) -> u32 {
    match k {
        PolicyKind::Young => 1,
        PolicyKind::Hidden(_) => 3,
        _ => 0,
    }
}
