//@path crates/exp/src/spec.rs
//! Fixture: `Dp` is half-registered — labelled, but missing from the
//! builder and from every golden row.
pub enum PolicyKind {
    Young,
    Dp(DpConfig),
    Hidden(f64),
}

impl PolicyKind {
    pub fn name(&self) -> String {
        match self {
            Self::Young => "Young".into(),
            Self::Dp(_) => "DP".into(),
            Self::Hidden(f) => format!("Hidden*{f:.4}"),
        }
    }
}
