// Fixture: the audit comment sits within the 3 preceding lines.
pub fn read(p: *const u64) -> u64 {
    // SAFETY: callers guarantee `p` is valid for reads and aligned.
    let x = unsafe { p.read() };
    x
}
