// Fixture: unsafe with no SAFETY audit anywhere near it.
pub fn read(p: *const u64) -> u64 {
    let x = unsafe { p.read() };
    x
}
