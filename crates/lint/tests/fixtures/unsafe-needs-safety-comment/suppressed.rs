// Fixture: pragma instead of a SAFETY comment (discouraged but legal).
pub fn read(p: *const u64) -> u64 {
    let x = unsafe { p.read() }; // lint: allow(unsafe-needs-safety-comment) — fixture
    x
}
