// Fixture: the sanctioned shape — workers buffer results privately and
// the coordinator-free code only imports sync types, never creates them.
use std::sync::atomic::{AtomicUsize, Ordering};

fn drain(tasks: &[u64]) -> Vec<u64> {
    let mut buckets: Vec<Vec<u64>> = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        buckets[i % 4].push(*t);
    }
    let mut out: Vec<u64> = buckets.into_iter().flatten().collect();
    out.sort_unstable();
    out
}
