// Fixture: the audited coordinator site carries the pragma, mirroring
// the real sanctioned lock in crates/exp/src/steal.rs.
fn drain(n: usize) {
    // lint: allow(shared-mutable-in-exec) — the one coordinator lock every
    // claim/complete goes through; commit stays task-ID-ordered.
    let state = parking_lot::Mutex::new(vec![0u64; n]);
    state.lock().fill(1);
}
