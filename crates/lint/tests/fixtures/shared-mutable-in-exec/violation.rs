// Fixture: un-audited shared mutable state in the executor layer — a
// side-channel atomic and a second lock outside the coordinator.
static HOT_TASKS: AtomicU64 = AtomicU64::new(0);

fn drain(tasks: &[u64]) {
    let scratch = std::sync::Mutex::new(Vec::new());
    for t in tasks {
        HOT_TASKS.fetch_add(*t, Ordering::Relaxed);
        scratch.lock().unwrap().push(*t);
    }
}
