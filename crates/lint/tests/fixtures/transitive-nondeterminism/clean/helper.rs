//@path crates/helpers/src/lib.rs
//! Fixture: a deterministic helper. The clock reader below it is real
//! but unreachable from any root, so the taint pass stays quiet.
pub fn combine(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

pub fn unreached_stamp() -> u64 {
    ckpt_obs::clock::now_micros()
}
