//@path crates/exp/src/exec.rs
//! Fixture: the root calls a pure helper — no sink is reachable.
use ckpt_helpers::combine;

pub fn execute() {
    let t = combine(1, 2);
    let _ = t;
}
