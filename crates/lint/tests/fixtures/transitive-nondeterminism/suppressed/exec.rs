//@path crates/exp/src/exec.rs
//! Fixture: same laundering chain as `violation/`, but the sink site
//! carries an audited pragma.
use ckpt_helpers::stamp;

pub fn execute() {
    let t = stamp();
    let _ = t;
}
