//@path crates/helpers/src/lib.rs
//! Fixture: the sink site is pragma'd after audit, so the chain is
//! suppressed (and the pragma is live — no stale-pragma finding).
pub fn stamp() -> u64 {
    // lint: allow(transitive-nondeterminism) — fixture: audited timing probe
    ckpt_obs::clock::now_micros()
}
