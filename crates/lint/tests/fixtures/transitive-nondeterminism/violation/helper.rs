//@path crates/helpers/src/lib.rs
//! Fixture: the helper launders a wall-clock read into the hot path —
//! its crate is outside `wall-clock-in-sim`'s scope, so only the
//! cross-file taint pass can catch the chain.
pub fn stamp() -> u64 {
    ckpt_obs::clock::now_micros()
}
