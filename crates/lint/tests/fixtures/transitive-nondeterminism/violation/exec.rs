//@path crates/exp/src/exec.rs
//! Fixture: the determinism root calls a helper one crate over. Nothing
//! in THIS file reads a clock, so no single-file rule fires here.
use ckpt_helpers::stamp;

pub fn execute() {
    let t = stamp();
    let _ = t;
}
