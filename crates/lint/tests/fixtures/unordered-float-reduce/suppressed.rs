// Fixture: pragma-acknowledged parallel reduction (integer counts are
// order-insensitive; pretend this one was audited).
pub fn total(v: &[f64]) -> f64 {
    v.par_iter().map(|x| x * 2.0).sum() // lint: allow(unordered-float-reduce) — fixture audit
}
