// Fixture: parallel float reduction in one chain — combine order is
// whatever the rayon scheduler produced.
pub fn total(v: &[f64]) -> f64 {
    v.par_iter().map(|x| x * 2.0).sum()
}

pub fn widest(v: &[f64]) -> f64 {
    v.into_par_iter().reduce(|| 0.0, f64::max)
}
