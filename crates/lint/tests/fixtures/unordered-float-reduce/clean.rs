// Fixture: sequential reduction and order-preserving parallel collect
// are both fine.
pub fn total(v: &[f64]) -> f64 {
    v.iter().sum()
}

pub fn doubled(xs: &[Vec<f64>]) -> Vec<f64> {
    xs.par_iter().map(|r| r.iter().sum::<f64>()).collect()
}
