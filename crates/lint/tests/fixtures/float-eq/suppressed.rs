// Fixture: a deliberate exact-zero sentinel, pragma'd with the reason.
pub fn loss(x: f64) -> f64 {
    if x == 0.0 { // lint: allow(float-eq) — exact zero fast path
        return 0.0;
    }
    x * 0.5
}
