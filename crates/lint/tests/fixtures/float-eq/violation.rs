// Fixture: exact float compares against a literal and an f64 constant.
pub fn check(x: f64, ls: f64) -> bool {
    x == 0.0 || ls != f64::NEG_INFINITY
}
