// Fixture: tolerance compare, and integer equality is not a float eq.
pub fn check(x: f64, y: f64, n: usize) -> bool {
    (x - y).abs() < 1e-12 && n == 0
}
