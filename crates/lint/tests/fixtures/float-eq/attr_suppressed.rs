// Fixture: a standalone pragma must reach across attribute lines to
// the first code line they decorate.
// lint: allow(float-eq) — sentinel guard behind attributes
#[inline]
#[must_use]
pub fn sentinel(x: f64) -> bool { x == 0.0 }
