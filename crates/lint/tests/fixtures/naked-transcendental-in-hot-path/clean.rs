// Fixture: the tabulated kernel helpers are the sanctioned path.
pub fn cell(kernel: &KernelTable, x: usize, t: usize) -> f64 {
    kernel.psuc(x, t) * kernel.esuc(x, t)
}
