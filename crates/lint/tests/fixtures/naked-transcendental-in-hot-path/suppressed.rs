// Fixture: audited log-domain conversion, pragma'd.
pub fn back_to_linear(lp: f64) -> f64 {
    lp.exp() // lint: allow(naked-transcendental-in-hot-path) — audited conversion
}
