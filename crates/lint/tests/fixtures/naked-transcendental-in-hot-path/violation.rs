// Fixture: per-grid-point powf/exp in a DP hot-path file, bypassing the
// KernelTable tabulation.
pub fn cell(s: f64, k: f64, lp: f64) -> f64 {
    s.powf(k) + lp.exp()
}
