//@path crates/dist/src/lib.rs
//! Fixture: every pragma suppresses a real finding, so none is stale.

pub fn sentinel(x: f64) -> bool {
    x == 0.0 // lint: allow(float-eq) — exact sentinel guard
}
