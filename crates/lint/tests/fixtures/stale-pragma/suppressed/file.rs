//@path crates/dist/src/lib.rs
//! Fixture: an intentionally idle pragma, itself suppressed by naming
//! `stale-pragma` in its own rule list.

// lint: allow(float-eq, stale-pragma) — kept while the refactor lands
pub fn quiet() -> u32 {
    2
}
