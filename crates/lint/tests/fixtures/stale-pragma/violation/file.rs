//@path crates/dist/src/lib.rs
//! Fixture: a pragma that suppresses nothing — either the violation it
//! covered was fixed, or the pragma is misplaced.

// lint: allow(float-eq) — nothing underneath compares floats
pub fn quiet() -> u32 {
    1
}
