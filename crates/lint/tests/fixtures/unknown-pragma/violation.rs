// Fixture: a typo'd rule name must be its own finding, never silence.
pub fn guarded(x: f64) -> bool {
    x > 0.5 // lint: allow(flaot-eq) — typo, flagged
}
