// Fixture: documenting a bogus name, acknowledged one line above it.
// lint: allow(unknown-pragma) — the next line shows a deliberately bad name
// lint: allow(not-a-real-rule)
pub fn documented() -> f64 {
    1.0
}
