// Fixture: a correctly spelled pragma raises nothing.
pub fn guarded(x: f64) -> bool {
    x == 0.5 // lint: allow(float-eq) — exact sentinel
}
