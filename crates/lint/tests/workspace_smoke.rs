//! The gate the scripts rely on: the checked-in workspace lints clean
//! under the checked-in `lint.toml`. Any new determinism hazard (or a
//! dropped pragma) fails this test before it ever reaches check.sh.

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn workspace_lints_clean_under_checked_in_config() {
    let root = workspace_root();
    assert!(root.join("lint.toml").is_file(), "lint.toml must be checked in");
    let config = ckpt_lint::load_config(root).expect("lint.toml parses");
    let report = ckpt_lint::run_workspace(root, &config).expect("walk workspace");

    assert!(report.files_scanned > 50, "walk found only {} files", report.files_scanned);
    assert_eq!(
        report.deny_count(),
        0,
        "workspace has deny findings:\n{}",
        report.render_human()
    );
    // The deliberate sentinel/conversion sites stay acknowledged.
    assert!(report.suppressed >= 20, "expected the audited pragma sites, got {}", report.suppressed);
    // The workspace passes actually ran: the taint pass leaves its
    // index stats, and stale-pragma proved every pragma live.
    let stats = report.index_stats.as_ref().expect("taint pass ran");
    assert!(stats.fns > 100, "index found only {} fns", stats.fns);
    assert!(stats.resolved_edges > 100, "only {} call edges resolved", stats.resolved_edges);

    // `--json` output stays machine-shaped.
    let json = report.render_json();
    assert!(json.contains("\"version\": 2"));
    assert!(json.contains("\"findings\": []"));
    assert!(json.contains("\"deny\": 0"));
    assert!(json.contains("\"chains\": []"));
    assert!(json.contains("\"index\": {"));
    assert!(json.contains("\"sanctioned\": {"));
    assert!(!json.contains("wall_time_s"), "default output must stay byte-deterministic");
}
