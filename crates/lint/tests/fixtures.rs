//! Fixture-based rule tests: every rule ships a true-positive
//! (`violation.rs`), a clean file (`clean.rs`), and a pragma-suppressed
//! file (`suppressed.rs`) under `tests/fixtures/<rule>/`. The fixtures
//! are inert data — `lint.toml` excludes the tree from workspace runs
//! and cargo never compiles them — so they can contain deliberate
//! violations without tripping the real gate.

use ckpt_lint::config::Config;
use ckpt_lint::lint_source;
use std::fs;
use std::path::Path;

/// A workspace-relative virtual path inside each rule's configured
/// scope, so path-scoped rules actually run over their fixtures.
fn virtual_path(rule: &str) -> &'static str {
    match rule {
        "nondeterministic-iteration" | "wall-clock-in-sim" => "crates/sim/src/fixture.rs",
        "naked-transcendental-in-hot-path" | "panicking-index-in-kernel" => {
            "crates/policies/src/dp_next_failure.rs"
        }
        "float-eq" => "crates/dist/src/fixture.rs",
        "shared-mutable-in-exec" => "crates/exp/src/steal.rs",
        _ => "crates/exp/src/fixture.rs",
    }
}

fn fixture(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(format!("{which}.rs"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn findings_of(rule: &str, which: &str) -> (usize, usize) {
    let src = fixture(rule, which);
    let out = lint_source(virtual_path(rule), &src, &Config::default_config());
    let hits = out.findings.iter().filter(|f| f.rule == rule).count();
    (hits, out.suppressed)
}

#[test]
fn every_rule_has_all_three_fixtures() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for rule in ckpt_lint::rules::ALL_RULES {
        for which in ["violation", "clean", "suppressed"] {
            let path = root.join(rule).join(format!("{which}.rs"));
            assert!(path.is_file(), "missing fixture {}", path.display());
        }
    }
}

#[test]
fn violations_fire_cleans_do_not_pragmas_suppress() {
    for rule in ckpt_lint::rules::ALL_RULES {
        let (hits, _) = findings_of(rule, "violation");
        assert!(hits >= 1, "{rule}: violation fixture raised no finding");

        let (hits, _) = findings_of(rule, "clean");
        assert_eq!(hits, 0, "{rule}: clean fixture raised {hits} finding(s)");

        let (hits, suppressed) = findings_of(rule, "suppressed");
        assert_eq!(hits, 0, "{rule}: pragma failed to suppress {hits} finding(s)");
        assert!(suppressed >= 1, "{rule}: nothing was actually suppressed");
    }
}

#[test]
fn wall_clock_scoping_allows_only_the_obs_clock_site() {
    // The observability crate is inside the wall-clock rule's scope,
    // with exactly one exempt file: the recorder's clock site. The same
    // source must fire everywhere else under crates/obs/src.
    let src = fixture("wall-clock-in-sim", "obs_clock");
    let cfg = Config::default_config();
    let hits = |path: &str| {
        lint_source(path, &src, &cfg)
            .findings
            .iter()
            .filter(|f| f.rule == "wall-clock-in-sim")
            .count()
    };
    assert_eq!(hits("crates/obs/src/clock.rs"), 0, "the sanctioned clock site is exempt");
    assert!(hits("crates/obs/src/shard.rs") >= 1, "any other obs path stays denied");
    assert!(hits("crates/obs/src/lib.rs") >= 1);
}

#[test]
fn finding_positions_are_exact() {
    // Spot-check one rule's line:col anchoring end to end.
    let src = fixture("float-eq", "violation");
    let out = lint_source(virtual_path("float-eq"), &src, &Config::default_config());
    let eqs: Vec<_> = out.findings.iter().filter(|f| f.rule == "float-eq").collect();
    assert_eq!(eqs.len(), 2, "both compares on the `||` line flagged");
    assert_eq!(eqs[0].line, eqs[1].line);
    assert!(eqs[0].col < eqs[1].col);
    assert!(eqs[0].snippet.contains("x == 0.0"));
}
