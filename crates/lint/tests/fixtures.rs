//! Fixture-based rule tests: every per-file rule ships a true-positive
//! (`violation.rs`), a clean file (`clean.rs`), and a pragma-suppressed
//! file (`suppressed.rs`) under `tests/fixtures/<rule>/`. Workspace
//! rules (taint, stale-pragma, registry) need the cross-file view, so
//! their fixtures are *directories* — `violation/`, `clean/`,
//! `suppressed/` — holding `.rs` files whose first line is a
//! `//@path <workspace-relative path>` header (stripped before
//! linting), plus `.json` golden documents for the registry pass. The
//! fixtures are inert data — `lint.toml` excludes the tree from
//! workspace runs and cargo never compiles them — so they can contain
//! deliberate violations without tripping the real gate.

use ckpt_lint::config::Config;
use ckpt_lint::rules::WORKSPACE_RULES;
use ckpt_lint::{lint_files, lint_source};
use std::fs;
use std::path::Path;

/// A workspace-relative virtual path inside each rule's configured
/// scope, so path-scoped rules actually run over their fixtures.
fn virtual_path(rule: &str) -> &'static str {
    match rule {
        "nondeterministic-iteration" | "wall-clock-in-sim" => "crates/sim/src/fixture.rs",
        "naked-transcendental-in-hot-path" | "panicking-index-in-kernel" => {
            "crates/policies/src/dp_next_failure.rs"
        }
        "float-eq" => "crates/dist/src/fixture.rs",
        "shared-mutable-in-exec" => "crates/exp/src/steal.rs",
        _ => "crates/exp/src/fixture.rs",
    }
}

fn fixture(rule: &str, which: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rule)
        .join(format!("{which}.rs"));
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn findings_of(rule: &str, which: &str) -> (usize, usize) {
    let src = fixture(rule, which);
    let out = lint_source(virtual_path(rule), &src, &Config::default_config());
    let hits = out.findings.iter().filter(|f| f.rule == rule).count();
    (hits, out.suppressed)
}

/// Load a workspace-rule directory fixture: `(virtual path, source)`
/// pairs from the `//@path`-headed `.rs` files, plus `(name, text)`
/// golden pairs from any `.json` files.
fn dir_fixture(rule: &str, which: &str) -> (Vec<(String, String)>, Vec<(String, String)>) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rule).join(which);
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read dir {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    let mut files = Vec::new();
    let mut golden = Vec::new();
    for path in entries {
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        if path.extension().is_some_and(|e| e == "json") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            golden.push((name, text));
            continue;
        }
        let (head, rest) = text
            .split_once('\n')
            .unwrap_or_else(|| panic!("{}: empty fixture", path.display()));
        let vpath = head
            .strip_prefix("//@path ")
            .unwrap_or_else(|| panic!("{}: first line must be `//@path …`", path.display()))
            .trim()
            .to_string();
        files.push((vpath, rest.to_string()));
    }
    (files, golden)
}

/// Workspace-rule configs: each rule runs with the others' workspace
/// passes disabled so fixtures stay isolated; the registry fixture
/// tree brings its own spec/builder/golden under virtual paths.
fn workspace_config(rule: &str) -> Config {
    let mut cfg = Config::default_config();
    match rule {
        "transitive-nondeterminism" => cfg.registry.enum_spec.clear(),
        "stale-pragma" => {
            cfg.taint.roots.clear();
            cfg.registry.enum_spec.clear();
        }
        "registry-exhaustive" => {
            cfg.taint.roots.clear();
            cfg.registry.enum_spec = "crates/exp/src/spec.rs::PolicyKind".into();
            cfg.registry.label_fn = "crates/exp/src/spec.rs::name".into();
            cfg.registry.require = vec!["crates/exp/src/registry.rs::build_policy".into()];
            cfg.registry.internal = vec!["Hidden".into()];
        }
        other => panic!("not a workspace rule: {other}"),
    }
    cfg
}

fn workspace_findings_of(rule: &str, which: &str) -> (usize, usize) {
    let (files, golden) = dir_fixture(rule, which);
    let report = lint_files(&files, &golden, &workspace_config(rule));
    let hits = report.findings.iter().filter(|f| f.rule == rule).count();
    let suppressed = report.rule_counts[rule].1;
    (hits, suppressed)
}

#[test]
fn every_rule_has_all_three_fixtures() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for rule in ckpt_lint::rules::ALL_RULES {
        for which in ["violation", "clean", "suppressed"] {
            if WORKSPACE_RULES.contains(rule) {
                let dir = root.join(rule).join(which);
                assert!(dir.is_dir(), "missing fixture dir {}", dir.display());
                let has_rs = fs::read_dir(&dir)
                    .unwrap()
                    .filter_map(Result::ok)
                    .any(|e| e.path().extension().is_some_and(|x| x == "rs"));
                assert!(has_rs, "no .rs fixture under {}", dir.display());
            } else {
                let path = root.join(rule).join(format!("{which}.rs"));
                assert!(path.is_file(), "missing fixture {}", path.display());
            }
        }
    }
}

#[test]
fn violations_fire_cleans_do_not_pragmas_suppress() {
    for rule in ckpt_lint::rules::ALL_RULES {
        let of = |which| {
            if WORKSPACE_RULES.contains(rule) {
                workspace_findings_of(rule, which)
            } else {
                findings_of(rule, which)
            }
        };
        let (hits, _) = of("violation");
        assert!(hits >= 1, "{rule}: violation fixture raised no finding");

        let (hits, _) = of("clean");
        assert_eq!(hits, 0, "{rule}: clean fixture raised {hits} finding(s)");

        let (hits, suppressed) = of("suppressed");
        assert_eq!(hits, 0, "{rule}: pragma failed to suppress {hits} finding(s)");
        assert!(suppressed >= 1, "{rule}: nothing was actually suppressed");
    }
}

#[test]
fn laundering_chain_reports_the_full_path() {
    // The acceptance chain: a helper in one crate wrapping the clock,
    // called from the exec drain in another. The finding anchors at the
    // sink and carries both hops.
    let (files, golden) = dir_fixture("transitive-nondeterminism", "violation");
    let report = lint_files(&files, &golden, &workspace_config("transitive-nondeterminism"));
    let taint: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "transitive-nondeterminism")
        .collect();
    assert_eq!(taint.len(), 1, "{:?}", report.findings);
    assert_eq!(taint[0].path, "crates/helpers/src/lib.rs");
    assert_eq!(taint[0].chain.len(), 2, "{:?}", taint[0].chain);
    assert!(taint[0].chain[0].starts_with("ckpt_exp::exec::execute"));
    assert!(taint[0].chain[1].contains("called at crates/exp/src/exec.rs:"));
    assert!(taint[0].message.contains("ckpt_exp::exec::execute"));
}

#[test]
fn pragmas_reach_through_attribute_lines() {
    let src = fixture("float-eq", "attr_suppressed");
    let out = lint_source(virtual_path("float-eq"), &src, &Config::default_config());
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.suppressed, 1);
}

#[test]
fn wall_clock_scoping_allows_only_the_obs_clock_site() {
    // The observability crate is inside the wall-clock rule's scope,
    // with exactly one exempt file: the recorder's clock site. The same
    // source must fire everywhere else under crates/obs/src.
    let src = fixture("wall-clock-in-sim", "obs_clock");
    let cfg = Config::default_config();
    let hits = |path: &str| {
        lint_source(path, &src, &cfg)
            .findings
            .iter()
            .filter(|f| f.rule == "wall-clock-in-sim")
            .count()
    };
    assert_eq!(hits("crates/obs/src/clock.rs"), 0, "the sanctioned clock site is exempt");
    assert!(hits("crates/obs/src/shard.rs") >= 1, "any other obs path stays denied");
    assert!(hits("crates/obs/src/lib.rs") >= 1);
}

#[test]
fn finding_positions_are_exact() {
    // Spot-check one rule's line:col anchoring end to end.
    let src = fixture("float-eq", "violation");
    let out = lint_source(virtual_path("float-eq"), &src, &Config::default_config());
    let eqs: Vec<_> = out.findings.iter().filter(|f| f.rule == "float-eq").collect();
    assert_eq!(eqs.len(), 2, "both compares on the `||` line flagged");
    assert_eq!(eqs[0].line, eqs[1].line);
    assert!(eqs[0].col < eqs[1].col);
    assert!(eqs[0].snippet.contains("x == 0.0"));
}
