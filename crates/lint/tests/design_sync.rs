//! The DESIGN.md rule table stays in sync with the binary: every rule
//! in `ALL_RULES` appears as a `| `rule` | summary |` row whose summary
//! is exactly `rule_summary` — the same text `--list-rules` prints — in
//! the same order, with no extra rows.

use ckpt_lint::rules::{rule_summary, ALL_RULES};
use std::fs;
use std::path::Path;

#[test]
fn design_rule_table_matches_list_rules() {
    let design = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("DESIGN.md");
    let text = fs::read_to_string(&design).expect("read DESIGN.md");

    // The rule table is the one headed `| rule | contract |`; rows look
    // like: | `rule-name` | summary text |
    let mut lines = text.lines().skip_while(|l| l.trim() != "| rule | contract |");
    assert!(lines.next().is_some(), "DESIGN.md lost the `| rule | contract |` table");
    let rows: Vec<(String, String)> = lines
        .skip(1) // the |---|---| separator
        .map_while(|l| {
            let body = l.trim().strip_prefix("| `")?;
            let (rule, rest) = body.split_once("` | ")?;
            let summary = rest.strip_suffix(" |")?;
            Some((rule.to_string(), summary.to_string()))
        })
        .collect();

    assert_eq!(
        rows.len(),
        ALL_RULES.len(),
        "DESIGN.md rule table has {} rows, the linter registers {} rules",
        rows.len(),
        ALL_RULES.len()
    );
    for (row, rule) in rows.iter().zip(ALL_RULES) {
        assert_eq!(&row.0, rule, "DESIGN.md table order diverges from ALL_RULES");
        assert_eq!(
            row.1,
            rule_summary(rule),
            "DESIGN.md summary for `{rule}` diverges from rule_summary/--list-rules"
        );
    }
}
